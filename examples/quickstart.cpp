// Quickstart: train table-GAN on a table and write a synthetic copy.
//
//   build/examples/quickstart [rows] [epochs]
//
// Walks the minimal API path: build a dataset, fit a TableGan with the
// low-privacy setting, sample as many synthetic rows as the original,
// and save both tables as CSV next to a marginal-statistics comparison.

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "core/table_gan.h"
#include "data/csv.h"
#include "data/datasets.h"

using tablegan::core::TableGan;
using tablegan::core::TableGanOptions;

int main(int argc, char** argv) {
  const int64_t rows = argc > 1 ? std::atoll(argv[1]) : 800;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 60;

  // 1. A table to protect. (Swap in data::ReadCsv for your own data.)
  tablegan::Rng rng(7);
  tablegan::data::Table original =
      tablegan::data::MakeAdultLike(rows, &rng);
  const int label_col =
      original.schema().ColumnsWithRole(
          tablegan::data::ColumnRole::kLabel)[0];
  std::printf("original table: %lld rows, %d columns\n",
              static_cast<long long>(original.num_rows()),
              original.num_columns());

  // 2. Train table-GAN (paper low-privacy setting: delta margins 0).
  TableGanOptions options = TableGanOptions::LowPrivacy();
  options.epochs = epochs;
  options.learning_rate = 1e-3f;  // small-table setting; see README
  options.base_channels = 16;
  options.latent_dim = 32;
  options.verbose = true;
  TableGan gan(options);
  TABLEGAN_CHECK_OK(gan.Fit(original, label_col));

  // 3. Synthesize a same-sized fake table.
  auto synthetic = gan.Sample(original.num_rows());
  TABLEGAN_CHECK_OK(synthetic.status());

  // 4. Persist both.
  TABLEGAN_CHECK_OK(tablegan::data::WriteCsv(original, "original.csv"));
  TABLEGAN_CHECK_OK(tablegan::data::WriteCsv(*synthetic, "synthetic.csv"));
  std::printf("wrote original.csv and synthetic.csv\n");

  // 5. Compare a few marginals.
  std::printf("%-16s %12s %12s\n", "column", "orig mean", "synth mean");
  for (int c = 0; c < original.num_columns(); ++c) {
    double mo = 0, ms = 0;
    for (int64_t r = 0; r < original.num_rows(); ++r) {
      mo += original.Get(r, c);
    }
    for (int64_t r = 0; r < synthetic->num_rows(); ++r) {
      ms += synthetic->Get(r, c);
    }
    std::printf("%-16s %12.2f %12.2f\n",
                original.schema().column(c).name.c_str(),
                mo / static_cast<double>(original.num_rows()),
                ms / static_cast<double>(synthetic->num_rows()));
  }
  return 0;
}
