// Privacy sweep: the hinge-margin trade-off knob in action (paper §4.2.2).
//
// Sweeps the privacy margins delta_mean = delta_sd over the paper's
// three settings (plus an extreme one) on the LACity-like payroll table
// and prints, per setting:
//   - DCR (privacy: larger is safer),
//   - KS distance of the base-salary marginal (fidelity),
//   - the F-1 compatibility pair of a fixed classifier.
// Expected: DCR rises with the margin while fidelity and compatibility
// degrade — the privacy/utility dial of Figure 5 vs Table 5.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "core/table_gan.h"
#include "data/datasets.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/ml_data.h"
#include "privacy/dcr.h"

namespace {

std::vector<double> Cdf(const tablegan::data::Table& t, int col) {
  std::vector<double> v = t.column(col);
  std::sort(v.begin(), v.end());
  std::vector<double> out(21);
  const double lo = v.front(), hi = v.back();
  for (int p = 0; p <= 20; ++p) {
    const double x = lo + (hi - lo) * p / 20.0;
    out[static_cast<size_t>(p)] =
        static_cast<double>(std::upper_bound(v.begin(), v.end(), x) -
                            v.begin()) /
        static_cast<double>(v.size());
  }
  return out;
}

double Ks(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::fabs(a[i] - b[i]));
  }
  return d;
}

}  // namespace

int main() {
  using namespace tablegan;
  auto ds = data::MakeDataset("lacity", /*scale=*/0.06, /*seed=*/55);
  TABLEGAN_CHECK_OK(ds.status());
  const int salary = *ds->train.schema().FindColumn("base_salary");
  const std::vector<double> real_cdf = Cdf(ds->train, salary);

  auto test = ml::TableToMlData(ds->test, ds->label_col,
                                {ds->regression_col});
  auto train_real = ml::TableToMlData(ds->train, ds->label_col,
                                      {ds->regression_col});
  TABLEGAN_CHECK_OK(test.status());
  TABLEGAN_CHECK_OK(train_real.status());
  std::vector<int> truth;
  for (double y : test->y) truth.push_back(y > 0.5 ? 1 : 0);
  ml::TreeOptions topt;
  topt.max_depth = 8;
  ml::DecisionTreeClassifier on_real(topt);
  TABLEGAN_CHECK_OK(on_real.Fit(*train_real));
  const double f1_real = ml::F1Score(truth, on_real.PredictAll(*test));

  std::printf("%-10s %16s %12s %10s %12s\n", "delta", "DCR(mean+/-sd)",
              "KS(salary)", "F1(real)", "F1(synth)");
  for (float delta : {0.0f, 0.35f, 0.5f, 0.8f}) {
    core::TableGanOptions options;
    options.delta_mean = delta;
    options.delta_sd = delta;
    options.epochs = 50;
    options.learning_rate = 1e-3f;
    options.base_channels = 16;
    options.latent_dim = 32;
    core::TableGan gan(options);
    TABLEGAN_CHECK_OK(gan.Fit(ds->train, ds->label_col));
    auto synth = gan.Sample(ds->train.num_rows());
    TABLEGAN_CHECK_OK(synth.status());

    auto dcr = privacy::ComputeDcr(
        ds->train, *synth,
        privacy::QidAndSensitiveColumns(ds->train.schema()));
    TABLEGAN_CHECK_OK(dcr.status());
    const double ks = Ks(real_cdf, Cdf(*synth, salary));

    auto train_synth = ml::TableToMlData(*synth, ds->label_col,
                                         {ds->regression_col});
    TABLEGAN_CHECK_OK(train_synth.status());
    ml::DecisionTreeClassifier on_synth(topt);
    TABLEGAN_CHECK_OK(on_synth.Fit(*train_synth));
    const double f1_synth = ml::F1Score(truth, on_synth.PredictAll(*test));

    char dcr_buf[48];
    std::snprintf(dcr_buf, sizeof(dcr_buf), "%.2f +/- %.2f", dcr->mean,
                  dcr->stddev);
    std::printf("%-10.2f %16s %12.3f %10.3f %12.3f\n",
                static_cast<double>(delta), dcr_buf, ks, f1_real, f1_synth);
  }
  std::printf("\nLarger margins buy privacy (DCR up) at the cost of "
              "fidelity (KS up) and compatibility (F1 gap widens).\n");
  return 0;
}
