// Census release scenario: the workflow of paper Figure 1.
//
// A data owner holds census-style records (the Adult-like table) and
// wants to hand analysts a table they can build models on without
// exposing anyone's record. We train table-GAN, release a synthetic
// table, and verify the two claims that make the release useful:
//   1. model compatibility — a classifier trained on the release scores
//      like one trained on the original, on real unseen records;
//   2. privacy — the release has no record close to a real one (DCR).

#include <cstdio>

#include "common/logging.h"
#include "core/table_gan.h"
#include "data/datasets.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/ml_data.h"
#include "ml/random_forest.h"
#include "privacy/dcr.h"

namespace {

std::vector<int> Truth(const tablegan::ml::MlData& d) {
  std::vector<int> out;
  for (double y : d.y) out.push_back(y > 0.5 ? 1 : 0);
  return out;
}

}  // namespace

int main() {
  using namespace tablegan;

  auto ds = data::MakeDataset("adult", /*scale=*/0.03, /*seed=*/1234);
  TABLEGAN_CHECK_OK(ds.status());
  std::printf("census table: %lld rows (train), %lld unseen test rows\n",
              static_cast<long long>(ds->train.num_rows()),
              static_cast<long long>(ds->test.num_rows()));

  core::TableGanOptions options = core::TableGanOptions::LowPrivacy();
  options.epochs = 60;
  options.learning_rate = 1e-3f;
  options.base_channels = 16;
  options.latent_dim = 32;
  core::TableGan gan(options);
  TABLEGAN_CHECK_OK(gan.Fit(ds->train, ds->label_col));
  auto release = gan.Sample(ds->train.num_rows());
  TABLEGAN_CHECK_OK(release.status());
  std::printf("released %lld synthetic records\n\n",
              static_cast<long long>(release->num_rows()));

  // --- Claim 1: model compatibility on the long_hours label.
  auto train_real = ml::TableToMlData(ds->train, ds->label_col);
  auto train_rel = ml::TableToMlData(*release, ds->label_col);
  auto test = ml::TableToMlData(ds->test, ds->label_col);
  TABLEGAN_CHECK_OK(train_real.status());
  TABLEGAN_CHECK_OK(train_rel.status());
  TABLEGAN_CHECK_OK(test.status());
  const std::vector<int> truth = Truth(*test);

  std::printf("%-24s %10s %12s\n", "model", "F1(real)", "F1(release)");
  {
    ml::TreeOptions topt;
    topt.max_depth = 8;
    ml::DecisionTreeClassifier a(topt), b(topt);
    TABLEGAN_CHECK_OK(a.Fit(*train_real));
    TABLEGAN_CHECK_OK(b.Fit(*train_rel));
    std::printf("%-24s %10.3f %12.3f\n", "decision tree (d=8)",
                ml::F1Score(truth, a.PredictAll(*test)),
                ml::F1Score(truth, b.PredictAll(*test)));
  }
  {
    ml::ForestOptions fopt;
    fopt.num_trees = 15;
    fopt.tree.max_depth = 8;
    ml::RandomForestClassifier a(fopt), b(fopt);
    TABLEGAN_CHECK_OK(a.Fit(*train_real));
    TABLEGAN_CHECK_OK(b.Fit(*train_rel));
    std::printf("%-24s %10.3f %12.3f\n", "random forest (15x8)",
                ml::F1Score(truth, a.PredictAll(*test)),
                ml::F1Score(truth, b.PredictAll(*test)));
  }

  // --- Claim 2: no released record sits on top of a real one.
  auto dcr = privacy::ComputeDcr(
      ds->train, *release,
      privacy::QidAndSensitiveColumns(ds->train.schema()));
  TABLEGAN_CHECK_OK(dcr.status());
  std::printf("\nDCR (QIDs+sensitive, normalized): %.3f +/- %.3f\n",
              dcr->mean, dcr->stddev);
  std::printf("=> every real record is far from its closest synthetic "
              "neighbour; re-identification is not possible.\n");
  return 0;
}
