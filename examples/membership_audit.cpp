// Membership audit: run the paper's shadow-model attack (§4.5) against
// your own release before publishing it.
//
// Trains two targets on the Health-like table — low privacy and high
// privacy — attacks both, and reports the attacker's F-1/AUCROC. A
// score near 0.5 AUC means the attacker cannot tell training members
// from non-members; the high-privacy margins should push it there.

#include <cstdio>

#include "common/logging.h"
#include "core/membership_attack.h"
#include "core/table_gan.h"
#include "data/datasets.h"

int main() {
  using namespace tablegan;
  auto ds = data::MakeDataset("health", /*scale=*/0.06, /*seed=*/77);
  TABLEGAN_CHECK_OK(ds.status());
  std::printf("auditing releases of a %lld-row health table\n\n",
              static_cast<long long>(ds->train.num_rows()));

  std::printf("%-22s %8s %8s\n", "release", "F-1", "AUCROC");
  for (float delta : {0.0f, 0.5f}) {
    core::TableGanOptions options;
    options.delta_mean = delta;
    options.delta_sd = delta;
    options.epochs = 40;
    options.learning_rate = 1e-3f;
    options.base_channels = 16;
    options.latent_dim = 32;
    core::TableGan target(options);
    TABLEGAN_CHECK_OK(target.Fit(ds->train, ds->label_col));

    core::MembershipAttackOptions attack;
    attack.num_shadow_gans = 2;
    attack.shadow_options = options;  // attacker knows the architecture
    attack.eval_records_per_side = 250;
    auto result = core::RunMembershipAttack(&target, ds->train, ds->test,
                                            ds->label_col, attack);
    TABLEGAN_CHECK_OK(result.status());
    std::printf("%-22s %8.3f %8.3f\n",
                delta == 0.0f ? "low privacy" : "high privacy",
                result->f1, result->auc_roc);
  }
  std::printf("\nAUC near 0.5 = the attacker is guessing; prefer the "
              "setting that reaches it while the release stays useful.\n");
  return 0;
}
