// Reproduces paper Figure 6: regression model compatibility.
//
// For LACity, Adult and Airline (Health has only a binary label,
// §5.2.2.2) we print the 40 (x, y) mean-relative-error pairs per
// released table plus the mean diagonal gap. Expected shape: all of
// table-GAN / ARX / sdcMicro sit near the diagonal, with sdcMicro
// closest (its perturbation is mild) and table-GAN beating ARX.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "privacy/anonymizer.h"
#include "privacy/sdc_micro.h"

namespace tablegan {
namespace {

void Run() {
  bench::PrintHeader("Figure 6: regression model compatibility (MRE)");
  for (const std::string& name : {std::string("lacity"),
                                  std::string("adult"),
                                  std::string("airline")}) {
    auto ds = bench::LoadBenchDataset(name);
    TABLEGAN_CHECK_OK(ds.status());
    TABLEGAN_CHECK(ds->regression_col >= 0);

    struct Release {
      std::string label;
      data::Table table;
    };
    std::vector<Release> releases;
    auto low = bench::TrainGan(*ds, bench::BenchGanOptions(0.0f, 0.0f));
    TABLEGAN_CHECK_OK(low.status());
    releases.push_back(
        {"ours-low", *low->gan->Sample(ds->train.num_rows())});
    auto high = bench::TrainGan(*ds, bench::BenchGanOptions(0.5f, 0.5f));
    TABLEGAN_CHECK_OK(high.status());
    releases.push_back(
        {"ours-high", *high->gan->Sample(ds->train.num_rows())});
    privacy::ArxOptions arx;
    arx.k = 5;
    arx.t = 0.01;
    auto arx_result = privacy::ArxAnonymize(ds->train, arx);
    TABLEGAN_CHECK_OK(arx_result.status());
    releases.push_back({"arx-best", std::move(arx_result)->released});
    privacy::SdcMicroOptions sdc;
    auto sdc_result = privacy::SdcMicroPerturb(ds->train, sdc);
    TABLEGAN_CHECK_OK(sdc_result.status());
    releases.push_back({"sdcmicro-best", std::move(sdc_result).value()});

    std::printf("\n[%s] 40 (x, y) MRE pairs per release\n", name.c_str());
    for (const auto& release : releases) {
      auto points = bench::RegressionCompat(ds->train, release.table,
                                            ds->test, ds->regression_col,
                                            ds->label_col);
      TABLEGAN_CHECK_OK(points.status());
      std::printf("  %-14s gap=%.3f points:", release.label.c_str(),
                  bench::MeanDiagonalGap(*points));
      for (const auto& p : *points) std::printf(" (%.2f,%.2f)", p.x, p.y);
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape check: every release stays near the diagonal; sdcmicro "
      "closest, ours-low <= arx-best.\n");
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  return 0;
}
