// Reproduces paper Table 5: distance to the closest record (DCR),
// mean +/- std after attribute-wise normalization, for QIDs+sensitive
// columns and for sensitive columns only.
//
// Expected shape (paper §5.3.1): ARX's sensitive-only DCR is exactly
// 0 +/- 0 (it never touches sensitive values); sdcMicro is small;
// table-GAN low-privacy is well above both, and high-privacy is above
// low-privacy; DCGAN lands near table-GAN but without the privacy knob.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "privacy/anonymizer.h"
#include "privacy/dcr.h"
#include "privacy/sdc_micro.h"

namespace tablegan {
namespace {

// Thread-scaling sweep for the parallel DCR kernel: same inputs and
// bitwise-identical outputs at every thread count, so the sweep measures
// pure speedup. Throughput is original-rows scanned per second.
void RunThreadSweep() {
  bench::PrintHeader("DCR thread scaling (parallel NN kernel)");
  Rng rng(17);
  data::Table a = data::MakeAdultLike(2048, &rng);
  data::Table b = data::MakeAdultLike(2048, &rng);
  const auto cols = privacy::QidAndSensitiveColumns(a.schema());
  const std::vector<int> widths{10, 14, 16};
  bench::PrintRow({"threads", "seconds", "rows/sec"}, widths);
  for (int threads : {1, 2, 4, 8}) {
    SetNumThreads(threads);
    Stopwatch watch;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      auto dcr = privacy::ComputeDcr(a, b, cols);
      TABLEGAN_CHECK_OK(dcr.status());
    }
    const double secs = watch.ElapsedSeconds() / kReps;
    bench::PrintRow({std::to_string(threads), bench::FormatDouble(secs, 4),
                     bench::FormatDouble(
                         static_cast<double>(a.num_rows()) / secs, 0)},
                    widths);
  }
  SetNumThreads(0);
}

void Run() {
  bench::PrintHeader("Table 5: DCR (mean +/- std, normalized Euclidean)");
  const std::vector<int> widths{10, 15, 22, 22};
  bench::PrintRow({"Dataset", "Method", "QIDs+Sensitive", "SensitiveOnly"},
                  widths);
  for (const std::string& name : data::DatasetNames()) {
    auto ds = bench::LoadBenchDataset(name);
    TABLEGAN_CHECK_OK(ds.status());
    const auto all_cols =
        privacy::QidAndSensitiveColumns(ds->train.schema());
    const auto sens_cols =
        privacy::SensitiveOnlyColumns(ds->train.schema());

    struct Release {
      std::string label;
      data::Table table;
    };
    std::vector<Release> releases;
    auto low = bench::TrainGan(*ds, bench::BenchGanOptions(0.0f, 0.0f));
    TABLEGAN_CHECK_OK(low.status());
    releases.push_back(
        {"ours-low", *low->gan->Sample(ds->train.num_rows())});
    auto high = bench::TrainGan(*ds, bench::BenchGanOptions(0.5f, 0.5f));
    TABLEGAN_CHECK_OK(high.status());
    releases.push_back(
        {"ours-high", *high->gan->Sample(ds->train.num_rows())});
    privacy::ArxOptions arx;
    arx.k = 5;
    arx.t = 0.01;
    auto arx_result = privacy::ArxAnonymize(ds->train, arx);
    TABLEGAN_CHECK_OK(arx_result.status());
    releases.push_back({"arx-best", std::move(arx_result)->released});
    privacy::SdcMicroOptions sdc;
    auto sdc_result = privacy::SdcMicroPerturb(ds->train, sdc);
    TABLEGAN_CHECK_OK(sdc_result.status());
    releases.push_back({"sdcmicro-best", std::move(sdc_result).value()});
    core::TableGanOptions dcgan_opts = bench::BenchGanOptions(0.0f, 0.0f);
    dcgan_opts.use_info_loss = false;
    dcgan_opts.use_classifier = false;
    auto dcgan = bench::TrainGan(*ds, dcgan_opts);
    TABLEGAN_CHECK_OK(dcgan.status());
    releases.push_back(
        {"dcgan", *dcgan->gan->Sample(ds->train.num_rows())});

    for (const auto& release : releases) {
      auto dcr_all = privacy::ComputeDcr(ds->train, release.table, all_cols);
      auto dcr_sens =
          privacy::ComputeDcr(ds->train, release.table, sens_cols);
      TABLEGAN_CHECK_OK(dcr_all.status());
      TABLEGAN_CHECK_OK(dcr_sens.status());
      bench::PrintRow(
          {name, release.label,
           bench::FormatDouble(dcr_all->mean, 2) + " +/- " +
               bench::FormatDouble(dcr_all->stddev, 2),
           bench::FormatDouble(dcr_sens->mean, 2) + " +/- " +
               bench::FormatDouble(dcr_sens->stddev, 2)},
          widths);
    }
  }
  std::printf(
      "\nShape check: arx-best sensitive-only must be 0.00 +/- 0.00; "
      "ours-low >> arx/sdcmicro; ours-high >= ours-low.\n");
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  tablegan::RunThreadSweep();
  return 0;
}
