// Reproduces paper Table 6: membership-attack strength versus the
// hinge-loss privacy margins.
//
// For each dataset we train a target table-GAN at the paper's three
// privacy settings (delta_mean = delta_sd in {0, 0.1, 0.2}), run the
// customized shadow-model attack of §4.5 and report F-1 and AUCROC on a
// balanced in/out evaluation set. Expected shape: attack scores decrease
// as the margins grow (low-privacy leaks the most; paper sees e.g. Adult
// F-1 drop 0.51 -> 0.19).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/membership_attack.h"
#include "data/split.h"

namespace tablegan {
namespace {

void Run() {
  bench::PrintHeader("Table 6: membership attack vs privacy setting");
  const std::vector<int> widths{10, 22, 8, 8};
  bench::PrintRow({"Dataset", "Setting", "F-1", "AUCROC"}, widths);
  const struct {
    const char* label;
    float delta;
  } settings[] = {{"low (paper d=0)", 0.0f},
                  {"mid (paper d=0.1)", 0.35f},
                  {"high (paper d=0.2)", 0.5f}};
  for (const std::string& name : data::DatasetNames()) {
    auto ds = bench::LoadBenchDataset(name);
    TABLEGAN_CHECK_OK(ds.status());
    // This bench trains 2 GANs (target + shadow) per setting per
    // dataset — 24 in total — so the Airline table is additionally
    // halved to keep the whole experiment within minutes on one core.
    if (name == "airline") {
      Rng half_rng(5150);
      auto split = data::SplitTrainTest(ds->train, 0.5, &half_rng);
      ds->train = std::move(split.train);
    }
    for (const auto& setting : settings) {
      auto target = bench::TrainGan(
          *ds, bench::BenchGanOptions(setting.delta, setting.delta));
      TABLEGAN_CHECK_OK(target.status());

      core::MembershipAttackOptions attack;
      attack.num_shadow_gans = 1;
      attack.shadow_options =
          bench::BenchGanOptions(setting.delta, setting.delta);
      attack.eval_records_per_side = 300;
      attack.seed = 90210;
      auto result = core::RunMembershipAttack(
          target->gan.get(), ds->train, ds->test, ds->label_col, attack);
      TABLEGAN_CHECK_OK(result.status());
      bench::PrintRow({name, setting.label,
                       bench::FormatDouble(result->f1, 2),
                       bench::FormatDouble(result->auc_roc, 2)},
                      widths);
    }
  }
  std::printf(
      "\nShape check: F-1/AUCROC should not increase with the privacy "
      "margin; the low setting is the most attackable "
      "(paper: up to F-1 0.59 / AUC 0.64).\n");
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  return 0;
}
