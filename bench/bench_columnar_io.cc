// bench_columnar_io — open latency and row-gather throughput of the
// mmap-backed columnar table format versus CSV.
//
//   bench_columnar_io [out.json]   full run (default out:
//                                  BENCH_columnar_io.json)
//   bench_columnar_io --smoke      CI gate: a small write -> mmap ->
//                                  materialize round trip asserting
//                                  bitwise identity; exits nonzero on
//                                  any error or mismatch
//
// Two claims are measured. First, opening a columnar file is O(1):
// ColumnarReader::Open validates the header and maps the file without
// touching column data, so its latency is flat in the row count while
// CSV parse time grows linearly. Second, once open, gathering rows out
// of the map (one page fault per 4 KiB, then a straight block copy) is
// far faster than re-parsing text — this is the gap out-of-core
// training rides on.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "data/columnar.h"
#include "data/csv.h"
#include "data/datasets.h"

namespace tablegan {
namespace {

struct SizeResult {
  int64_t rows = 0;
  double csv_parse_ms = 0.0;
  double columnar_open_ms = 0.0;
  double gather_mmap_rows_per_sec = 0.0;
  double gather_ram_rows_per_sec = 0.0;
  size_t csv_bytes = 0;
  size_t columnar_bytes = 0;
};

std::string TempDir() {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "tablegan_bench_columnar")
                        .string();
  std::filesystem::create_directories(dir);
  return dir;
}

// Median of `trials` timed runs of `fn` (ms). The repeated-open numbers
// are microseconds apart, so one-shot timing would be all noise.
template <typename Fn>
double MedianMs(int trials, Fn fn) {
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Stopwatch watch;
    fn();
    ms.push_back(watch.ElapsedMillis());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

SizeResult RunSize(int64_t rows, const std::string& dir) {
  Rng rng(4242);
  data::Table table = data::MakeAdultLike(rows, &rng);
  const std::string csv_path = dir + "/t" + std::to_string(rows) + ".csv";
  const std::string col_path = dir + "/t" + std::to_string(rows) + ".tgcl";
  TABLEGAN_CHECK_OK(data::WriteCsv(table, csv_path));
  TABLEGAN_CHECK_OK(data::WriteColumnar(table, col_path));

  SizeResult r;
  r.rows = rows;
  r.csv_bytes = std::filesystem::file_size(csv_path);
  r.columnar_bytes = std::filesystem::file_size(col_path);

  const data::Schema schema = table.schema();
  r.csv_parse_ms = MedianMs(3, [&] {
    data::Table parsed = *data::ReadCsv(schema, csv_path);
    TABLEGAN_CHECK(parsed.num_rows() == rows);
  });
  r.columnar_open_ms = MedianMs(9, [&] {
    auto opened = data::ColumnarReader::Open(col_path);
    TABLEGAN_CHECK_OK(opened.status());
    TABLEGAN_CHECK(opened->num_rows() == rows);
  });

  auto opened = data::ColumnarReader::Open(col_path);
  TABLEGAN_CHECK_OK(opened.status());
  data::ColumnarReader reader = std::move(*opened);
  const double mmap_ms = MedianMs(3, [&] {
    data::Table gathered = reader.Materialize();
    TABLEGAN_CHECK(gathered.num_rows() == rows);
  });
  const data::TableView& ram_view = table;
  const double ram_ms = MedianMs(3, [&] {
    data::Table gathered = ram_view.Materialize();
    TABLEGAN_CHECK(gathered.num_rows() == rows);
  });
  r.gather_mmap_rows_per_sec = static_cast<double>(rows) / (mmap_ms / 1e3);
  r.gather_ram_rows_per_sec = static_cast<double>(rows) / (ram_ms / 1e3);
  return r;
}

int RunSmoke() {
  const std::string dir = TempDir();
  const std::string path = dir + "/smoke.tgcl";
  Rng rng(7);
  data::Table table = data::MakeAdultLike(256, &rng);
  TABLEGAN_CHECK_OK(data::WriteColumnar(table, path));
  auto opened = data::ColumnarReader::Open(path);
  TABLEGAN_CHECK_OK(opened.status());
  data::ColumnarReader reader = std::move(*opened);
  TABLEGAN_CHECK_OK(reader.VerifyCrc());
  data::Table back = reader.Materialize();
  TABLEGAN_CHECK(back.num_rows() == table.num_rows());
  TABLEGAN_CHECK(back.schema().Equals(table.schema()));
  for (int c = 0; c < table.num_columns(); ++c) {
    TABLEGAN_CHECK(std::memcmp(back.column_data(c), table.column_data(c),
                               sizeof(double) *
                                   static_cast<size_t>(table.num_rows())) ==
                   0)
        << "column " << c << " not bitwise identical after round trip";
  }
  std::printf("columnar smoke OK: 256-row write -> mmap -> materialize "
              "round trip bitwise identical\n");
  return 0;
}

void RunFull(const std::string& out_path) {
  bench::PrintHeader("Columnar I/O: open latency and gather throughput");
  const double scale = bench::BenchScale();
  std::vector<int64_t> sizes;
  for (int64_t base : {10'000, 50'000, 200'000}) {
    sizes.push_back(
        std::max<int64_t>(1000, static_cast<int64_t>(base * scale)));
  }
  const std::string dir = TempDir();

  const std::vector<int> widths{10, 14, 14, 16, 16};
  bench::PrintRow({"Rows", "CSV parse ms", "Open ms", "Gather mmap r/s",
                   "Gather RAM r/s"},
                  widths);
  std::vector<SizeResult> results;
  for (int64_t rows : sizes) {
    SizeResult r = RunSize(rows, dir);
    results.push_back(r);
    bench::PrintRow({std::to_string(r.rows),
                     bench::FormatDouble(r.csv_parse_ms, 2),
                     bench::FormatDouble(r.columnar_open_ms, 4),
                     bench::FormatDouble(r.gather_mmap_rows_per_sec, 0),
                     bench::FormatDouble(r.gather_ram_rows_per_sec, 0)},
                    widths);
  }

  std::ofstream out(out_path);
  TABLEGAN_CHECK(out.good());
  out << "{\n  \"bench\": \"columnar_io\",\n  \"sizes\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    out << "    {\"rows\": " << r.rows
        << ", \"csv_bytes\": " << r.csv_bytes
        << ", \"columnar_bytes\": " << r.columnar_bytes
        << ", \"csv_parse_ms\": " << bench::JsonNumber(r.csv_parse_ms, 3)
        << ", \"columnar_open_ms\": "
        << bench::JsonNumber(r.columnar_open_ms, 4)
        << ", \"gather_mmap_rows_per_sec\": "
        << bench::JsonNumber(r.gather_mmap_rows_per_sec, 0)
        << ", \"gather_ram_rows_per_sec\": "
        << bench::JsonNumber(r.gather_ram_rows_per_sec, 0) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nWrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace tablegan

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return tablegan::RunSmoke();
  }
  tablegan::RunFull(argc > 1 ? argv[1] : "BENCH_columnar_io.json");
  return 0;
}
