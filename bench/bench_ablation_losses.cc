// Ablation bench (DESIGN.md A1): what do the two extra losses buy?
//
// The paper motivates the information loss (statistical fidelity,
// §4.2.2) and the classification loss (semantic integrity, §4.2.3).
// This bench trains four variants on the Health-like table — full
// table-GAN, no-info-loss, no-classifier, and plain DCGAN — and
// measures (a) the KS distance of a headline sensitive attribute and
// (b) the semantic-violation rate: the fraction of synthetic records
// labelled diabetic whose glucose is below the table's 25th percentile
// (the "cholesterol=60.1, diabetes=1" failure mode from §1).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace tablegan {
namespace {

double SemanticViolationRate(const data::Table& table, int glucose_col,
                             int label_col, double glucose_threshold) {
  int64_t diabetic = 0, violations = 0;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    if (table.Get(r, label_col) < 0.5) continue;
    ++diabetic;
    if (table.Get(r, glucose_col) < glucose_threshold) ++violations;
  }
  return diabetic == 0 ? 0.0
                       : static_cast<double>(violations) /
                             static_cast<double>(diabetic);
}

void Run() {
  bench::PrintHeader("Ablation: information loss & classifier (Health)");
  auto ds = bench::LoadBenchDataset("health");
  TABLEGAN_CHECK_OK(ds.status());
  const int glucose = *ds->train.schema().FindColumn("glucose");

  std::vector<double> sorted = ds->train.column(glucose);
  std::sort(sorted.begin(), sorted.end());
  const double q25 = sorted[sorted.size() / 4];

  const struct {
    const char* label;
    bool info;
    bool classifier;
  } variants[] = {{"full table-GAN", true, true},
                  {"no info loss", false, true},
                  {"no classifier", true, false},
                  {"dcgan (neither)", false, false}};

  const std::vector<int> widths{18, 12, 22, 20};
  bench::PrintRow({"Variant", "KS(glucose)", "SemanticViolations",
                   "RealViolationRate"},
                  widths);
  const double real_rate =
      SemanticViolationRate(ds->train, glucose, ds->label_col, q25);
  const std::vector<double> real_cdf = bench::ColumnCdf(ds->train, glucose);
  for (const auto& variant : variants) {
    core::TableGanOptions options = bench::BenchGanOptions(0.0f, 0.0f);
    options.use_info_loss = variant.info;
    options.use_classifier = variant.classifier;
    auto trained = bench::TrainGan(*ds, options);
    TABLEGAN_CHECK_OK(trained.status());
    auto synth = trained->gan->Sample(ds->train.num_rows());
    TABLEGAN_CHECK_OK(synth.status());
    const double ks =
        bench::KsDistance(real_cdf, bench::ColumnCdf(*synth, glucose));
    const double rate =
        SemanticViolationRate(*synth, glucose, ds->label_col, q25);
    bench::PrintRow({variant.label, bench::FormatDouble(ks, 3),
                     bench::FormatDouble(rate, 3),
                     bench::FormatDouble(real_rate, 3)},
                    widths);
  }
  std::printf(
      "\nShape check: the full model should minimize both columns; "
      "removing the classifier raises semantic violations, removing the "
      "info loss raises KS.\n");
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  return 0;
}
