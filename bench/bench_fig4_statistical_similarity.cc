// Reproduces paper Figure 4 (and appendix Figures 7-8): cumulative
// distributions of selected sensitive attributes for table-GAN
// (low/high privacy), the DCGAN baseline and the condensation method.
//
// For each dataset we print the CDF series of the headline sensitive
// attribute (base salary / work class / destination airport id, plus a
// Health attribute from the appendix) for the original table and each
// synthesizer, followed by Kolmogorov-Smirnov distances. Expected shape
// (paper §5.2.1): table-GAN low-privacy tracks the original closely;
// high-privacy sits between; DCGAN and condensation deviate most.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "eval/fidelity.h"
#include "privacy/condensation.h"

namespace tablegan {
namespace {

constexpr int kCdfPoints = 11;

// Thread-scaling sweep for the column-parallel fidelity metrics. Outputs
// are bitwise identical at every thread count; throughput is pooled rows
// (original + released) evaluated per second.
void RunFidelityThreadSweep() {
  bench::PrintHeader("Fidelity thread scaling (column-parallel KS/TV)");
  Rng rng(19);
  data::Table a = data::MakeAdultLike(4000, &rng);
  data::Table b = data::MakeAdultLike(4000, &rng);
  const std::vector<int> widths{10, 14, 16};
  bench::PrintRow({"threads", "seconds", "rows/sec"}, widths);
  for (int threads : {1, 2, 4, 8}) {
    SetNumThreads(threads);
    Stopwatch watch;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      auto report = eval::EvaluateFidelity(a, b);
      TABLEGAN_CHECK_OK(report.status());
    }
    const double secs = watch.ElapsedSeconds() / kReps;
    const double rows = static_cast<double>(a.num_rows() + b.num_rows());
    bench::PrintRow({std::to_string(threads), bench::FormatDouble(secs, 4),
                     bench::FormatDouble(rows / secs, 0)},
                    widths);
  }
  SetNumThreads(0);
}

void PrintSeries(const std::string& label, const std::vector<double>& cdf) {
  std::printf("  %-18s", label.c_str());
  for (double v : cdf) std::printf(" %.2f", v);
  std::printf("\n");
}

void Run() {
  bench::PrintHeader(
      "Figure 4 (+ Figs 7-8): CDFs of sensitive attributes");
  // First attribute per dataset = the Figure 4 headline attribute; the
  // rest cover the appendix Figures 7-8 exhibits with the same trained
  // models.
  const std::map<std::string, std::vector<std::string>> attributes = {
      {"lacity", {"base_salary", "overtime_pay", "pension_contrib"}},
      {"adult", {"workclass", "hours_per_week", "capital_gain"}},
      {"health", {"glucose", "chol_total", "bp_systolic"}},
      {"airline", {"dest_airport_id", "itin_fare", "distance_miles"}},
  };
  std::printf("%-10s %-18s %8s\n", "dataset", "method", "KS-dist");
  for (const std::string& name : data::DatasetNames()) {
    auto ds = bench::LoadBenchDataset(name);
    TABLEGAN_CHECK_OK(ds.status());

    struct MethodResult {
      std::string label;
      data::Table table;
    };
    std::vector<MethodResult> methods;

    auto low = bench::TrainGan(*ds, bench::BenchGanOptions(0.0f, 0.0f));
    TABLEGAN_CHECK_OK(low.status());
    methods.push_back(
        {"ours-low", *low->gan->Sample(ds->train.num_rows())});

    auto high = bench::TrainGan(*ds, bench::BenchGanOptions(0.5f, 0.5f));
    TABLEGAN_CHECK_OK(high.status());
    methods.push_back(
        {"ours-high", *high->gan->Sample(ds->train.num_rows())});

    core::TableGanOptions dcgan_opts = bench::BenchGanOptions(0.0f, 0.0f);
    dcgan_opts.use_info_loss = false;
    dcgan_opts.use_classifier = false;
    auto dcgan = bench::TrainGan(*ds, dcgan_opts);
    TABLEGAN_CHECK_OK(dcgan.status());
    methods.push_back(
        {"dcgan", *dcgan->gan->Sample(ds->train.num_rows())});

    privacy::CondensationOptions cond;
    cond.group_size =
        ds->train.num_rows() >= 200 ? 100 : 50;  // paper settings
    auto condensed = privacy::CondensationSynthesize(ds->train, cond);
    TABLEGAN_CHECK_OK(condensed.status());
    methods.push_back({"condensation", std::move(condensed).value()});

    for (const std::string& attr : attributes.at(name)) {
      const int col = *ds->train.schema().FindColumn(attr);
      const std::vector<double> original =
          bench::ColumnCdf(ds->train, col, kCdfPoints);
      std::printf("\n[%s] attribute '%s' CDF at %d grid points\n",
                  name.c_str(), attr.c_str(), kCdfPoints);
      PrintSeries("original", original);
      for (const auto& m : methods) {
        PrintSeries(m.label, bench::ColumnCdf(m.table, col, kCdfPoints));
      }
      for (const auto& m : methods) {
        const double ks = bench::KsDistance(
            original, bench::ColumnCdf(m.table, col, kCdfPoints));
        std::printf("%-10s %-12s %-18s %8.3f\n", name.c_str(), attr.c_str(),
                    m.label.c_str(), ks);
      }
    }
  }
  std::printf(
      "\nShape check: ours-low should have the smallest KS distance in "
      "each dataset; condensation/DCGAN the largest.\n");
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  tablegan::RunFidelityThreadSweep();
  return 0;
}
