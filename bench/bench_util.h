#ifndef TABLEGAN_BENCH_BENCH_UTIL_H_
#define TABLEGAN_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/table_gan.h"
#include "data/datasets.h"
#include "ml/metrics.h"
#include "ml/ml_data.h"
#include "ml/model_zoo.h"

namespace tablegan {
namespace bench {

/// Scale multiplier for all benchmark workloads, read from the
/// TABLEGAN_BENCH_SCALE environment variable (default 1.0). Values > 1
/// enlarge datasets toward the paper's sizes; < 1 shrinks them for quick
/// smoke runs. Every bench prints the effective configuration.
double BenchScale();

/// Per-dataset default sampling fraction for benches, tuned so that the
/// full harness finishes in minutes on one CPU core (the paper used a
/// GPU; see DESIGN.md §3 substitutions). Multiplied by BenchScale().
double DefaultFraction(const std::string& dataset);

/// GAN configuration for bench runs: the paper architecture with a
/// learning rate raised to 1e-3 because the scaled-down tables provide
/// ~20x fewer Adam steps per epoch than the full-size ones.
core::TableGanOptions BenchGanOptions(float delta_mean, float delta_sd);

/// Builds the named dataset at the bench fraction.
Result<data::Dataset> LoadBenchDataset(const std::string& name,
                                       uint64_t seed = 4242);

/// Trains a table-GAN and returns it with the elapsed seconds.
struct TrainedGan {
  std::unique_ptr<core::TableGan> gan;
  double seconds = 0.0;
};
Result<TrainedGan> TrainGan(const data::Dataset& dataset,
                            const core::TableGanOptions& options);

/// Empirical CDF of a column evaluated at `points` equally spaced
/// quantile positions of the normalized [0, 1] domain (Figure 4 series).
std::vector<double> ColumnCdf(const data::Table& table, int col,
                              int points = 20);

/// Kolmogorov-Smirnov distance between two CDF series (summary statistic
/// for the statistical-similarity figures).
double KsDistance(const std::vector<double>& a, const std::vector<double>& b);

/// One point of a model-compatibility plot (Figures 5-6): the score of a
/// fixed algorithm+parameters trained on the original table (x) versus
/// trained on the released table (y), both evaluated on unseen test
/// records. Points on the diagonal mean perfect compatibility.
struct CompatPoint {
  std::string model;
  double x = 0.0;
  double y = 0.0;
};

/// F-1 pairs over the 40-classifier grid (Figure 5). The label's source
/// attribute (`drop_col`, the regression target it was thresholded from)
/// is excluded from the features so that the task is non-trivial, which
/// matches the score spread of the paper's plots; pass -1 to keep all.
Result<std::vector<CompatPoint>> ClassificationCompat(
    const data::Table& original, const data::Table& released,
    const data::Table& test, int label_col, int drop_col);

/// MRE pairs over the 40-regressor grid (Figure 6). The derived binary
/// label (`label_col`) is excluded from the features (it leaks the
/// thresholded target).
Result<std::vector<CompatPoint>> RegressionCompat(
    const data::Table& original, const data::Table& released,
    const data::Table& test, int regression_col, int label_col);

/// Mean |x - y| over the points — the scalar "distance from the
/// diagonal" used to summarize each plot.
double MeanDiagonalGap(const std::vector<CompatPoint>& points);

/// Pretty-printing helpers for paper-style tables.
void PrintHeader(const std::string& title);
void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths);
std::string FormatDouble(double v, int precision = 3);

/// FormatDouble for JSON output: a non-finite value renders as `null`.
/// FormatDouble itself (std::fixed) would print bare `nan`/`inf`, which
/// is not JSON — a diverged training run used to poison every BENCH_*
/// json report it touched. Always use this helper, never FormatDouble,
/// when writing a JSON value.
std::string JsonNumber(double v, int precision = 3);

}  // namespace bench
}  // namespace tablegan

#endif  // TABLEGAN_BENCH_BENCH_UTIL_H_
