// Training-stability sweep (DESIGN.md §15): trains every loss mode —
// DCGAN BCE, WGAN-GP, spectral-norm penalty — on scaled-up variants of
// the §3 dataset generators (10-100x the bench row counts, 2-4x the
// column counts) with the divergence guardrail armed at its defaults,
// and asserts the guard never fires. Results (wall time, throughput,
// final losses, guarded EWMA) go to BENCH_stability_sweep.json.
//
//   --smoke    tiny configuration used as a ctest gate: all three modes
//              must complete a short widened-table run with zero
//              anomalies; no JSON is written.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "data/datasets.h"

namespace tablegan {
namespace {

// Widens `base` to `factor` times its column count by appending copies
// of every column: continuous copies carry small deterministic noise
// (so they are correlated but not degenerate duplicates), discrete and
// categorical copies are verbatim (they must stay valid codes). Copies
// are demoted to kSensitive so the label stays unique.
data::Table WidenColumns(const data::Table& base, int factor,
                         uint64_t seed) {
  if (factor <= 1) return base;
  data::Schema schema;
  for (const data::ColumnSpec& spec : base.schema().columns()) {
    schema.AddColumn(spec);
  }
  for (int w = 1; w < factor; ++w) {
    for (const data::ColumnSpec& spec : base.schema().columns()) {
      data::ColumnSpec copy = spec;
      copy.name += "_w" + std::to_string(w);
      copy.role = data::ColumnRole::kSensitive;
      schema.AddColumn(copy);
    }
  }
  data::Table wide(schema);
  wide.Resize(base.num_rows());
  const int cols = base.num_columns();
  for (int c = 0; c < cols; ++c) {
    wide.FillColumn(c, base.column(c).data(), base.num_rows());
  }
  Rng rng(MixSeeds(seed, 0x51DEULL));
  std::vector<double> noisy(static_cast<size_t>(base.num_rows()));
  for (int w = 1; w < factor; ++w) {
    for (int c = 0; c < cols; ++c) {
      const std::vector<double>& src = base.column(c);
      const bool continuous = base.schema().column(c).type ==
                              data::ColumnType::kContinuous;
      if (!continuous) {
        wide.FillColumn(w * cols + c, src.data(), base.num_rows());
        continue;
      }
      for (int64_t r = 0; r < base.num_rows(); ++r) {
        const double v = src[static_cast<size_t>(r)];
        noisy[static_cast<size_t>(r)] =
            v + 0.01 * (std::abs(v) + 1.0) * rng.Gaussian(0.0, 1.0);
      }
      wide.FillColumn(w * cols + c, noisy.data(), base.num_rows());
    }
  }
  return wide;
}

data::Table MakeBase(const std::string& name, int64_t rows, Rng* rng) {
  if (name == "lacity") return data::MakeLaCityLike(rows, rng);
  if (name == "adult") return data::MakeAdultLike(rows, rng);
  if (name == "health") return data::MakeHealthLike(rows, rng);
  if (name == "airline") return data::MakeAirlineLike(rows, rng);
  TABLEGAN_CHECK(false) << "unknown dataset " << name;
  return data::Table();
}

const char* ModeName(core::LossMode mode) {
  switch (mode) {
    case core::LossMode::kDcgan:
      return "dcgan";
    case core::LossMode::kWganGp:
      return "wgan-gp";
    case core::LossMode::kSpectralNorm:
      return "spectral-norm";
  }
  return "?";
}

struct SweepRun {
  std::string dataset;
  int64_t rows = 0;
  int widen = 1;
  int columns = 0;
  int side = 0;
  core::LossMode mode = core::LossMode::kDcgan;
  int epochs = 0;
  double seconds = 0.0;
  double examples_per_sec = 0.0;
  double final_d_loss = 0.0;
  double final_g_loss = 0.0;
  double loss_ewma = 0.0;
  int anomalies = 0;
};

// Trains one (table, mode) cell with the guardrail at its defaults
// (kHalt) and returns the telemetry. Any guard trigger fails the bench:
// a divergence aborts Fit, and a runaway warning would count below.
SweepRun RunCell(const data::Table& table, const std::string& dataset,
                 int widen, core::LossMode mode, int epochs) {
  SweepRun run;
  run.dataset = dataset;
  run.rows = table.num_rows();
  run.widen = widen;
  run.columns = table.num_columns();
  run.mode = mode;
  run.epochs = epochs;
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  core::TableGanOptions options = bench::BenchGanOptions(0.0f, 0.0f);
  options.epochs = epochs;
  options.loss_mode = mode;
  options.seed = 4242;
  options.num_threads = 1;  // single-core host, matches the other benches
  double examples = 0.0;
  options.metrics_callback = [&run, &examples](const TrainingMetrics& m) {
    if (!m.anomaly.empty()) ++run.anomalies;
    run.final_d_loss = m.d_loss;
    run.final_g_loss = m.g_loss;
    run.loss_ewma = m.loss_ewma;
    examples += static_cast<double>(m.examples);
  };
  core::TableGan gan(options);
  Stopwatch watch;
  const Status fit = gan.Fit(table, label_col);
  run.seconds = watch.ElapsedSeconds();
  TABLEGAN_CHECK(fit.ok()) << "mode " << ModeName(mode) << " on " << dataset
                           << " x" << widen << ": " << fit.ToString();
  TABLEGAN_CHECK(run.anomalies == 0)
      << ModeName(mode) << " on " << dataset << " x" << widen << " tripped "
      << run.anomalies << " guardrail anomalies";
  run.side = gan.side();
  run.examples_per_sec =
      run.seconds > 0.0 ? examples / run.seconds : 0.0;
  return run;
}

constexpr core::LossMode kModes[] = {core::LossMode::kDcgan,
                                     core::LossMode::kWganGp,
                                     core::LossMode::kSpectralNorm};

int RunSmoke() {
  Rng rng(2024);
  data::Table table =
      WidenColumns(data::MakeAdultLike(200, &rng), /*factor=*/2, 7);
  for (const core::LossMode mode : kModes) {
    SweepRun run = RunCell(table, "adult", 2, mode, /*epochs=*/3);
    std::printf("smoke %-14s rows=%lld cols=%d side=%d d=%.3f g=%.3f "
                "anomalies=%d\n",
                ModeName(mode), static_cast<long long>(run.rows),
                run.columns, run.side, run.final_d_loss, run.final_g_loss,
                run.anomalies);
  }
  std::printf("stability smoke PASS: 3 modes, 0 guardrail anomalies\n");
  return 0;
}

void RunSweep(const std::string& out_path) {
  bench::PrintHeader("Training-stability sweep: loss modes x scaled tables");
  // Row counts are multiples of the ~900-row bench default (up to 100x);
  // widen factors multiply the §3 column counts 2-4x, which also grows
  // the record matrix side. Epoch counts shrink as the table grows so
  // the whole sweep stays in CPU-minutes territory.
  struct Config {
    const char* dataset;
    int64_t rows;
    int widen;
    int epochs;
  };
  const Config configs[] = {
      {"adult", 9000, 1, 8},    // 10x rows
      {"adult", 90000, 1, 2},   // 100x rows
      {"adult", 9000, 4, 4},    // 10x rows, 4x columns (side 8)
      {"lacity", 9000, 2, 4},   // 10x rows, 2x columns
      {"health", 22500, 2, 3},  // 25x rows, 2x columns
  };
  const std::vector<int> widths{10, 9, 7, 6, 16, 12, 12, 12};
  bench::PrintRow({"Dataset", "Rows", "Cols", "Side", "Mode", "Seconds",
                   "Rows/s", "EWMA"},
                  widths);
  std::vector<SweepRun> runs;
  for (const Config& cfg : configs) {
    Rng rng(2024);
    data::Table table = WidenColumns(MakeBase(cfg.dataset, cfg.rows, &rng),
                                     cfg.widen, cfg.rows);
    for (const core::LossMode mode : kModes) {
      SweepRun run =
          RunCell(table, cfg.dataset, cfg.widen, mode, cfg.epochs);
      bench::PrintRow(
          {run.dataset, std::to_string(run.rows),
           std::to_string(run.columns), std::to_string(run.side),
           ModeName(mode), bench::FormatDouble(run.seconds, 1),
           bench::FormatDouble(run.examples_per_sec, 0),
           bench::FormatDouble(run.loss_ewma, 3)},
          widths);
      runs.push_back(run);
    }
  }
  std::printf("\nGuardrail: 0 anomalies across %zu runs (defaults: "
              "halt, factor 50, warmup 3).\n",
              runs.size());

  std::ofstream out(out_path);
  TABLEGAN_CHECK(out.good());
  out << "{\n  \"bench\": \"stability_sweep\",\n  \"guard\": "
      << "{\"action\": \"halt\", \"factor\": 50, \"warmup_epochs\": 3},\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& r = runs[i];
    out << "    {\"dataset\": \"" << r.dataset << "\", \"rows\": " << r.rows
        << ", \"widen\": " << r.widen << ", \"columns\": " << r.columns
        << ", \"side\": " << r.side << ", \"loss_mode\": \""
        << ModeName(r.mode) << "\", \"epochs\": " << r.epochs
        << ", \"train_seconds\": " << bench::JsonNumber(r.seconds, 2)
        << ", \"examples_per_sec\": "
        << bench::JsonNumber(r.examples_per_sec, 1)
        << ", \"final_d_loss\": " << bench::JsonNumber(r.final_d_loss, 4)
        << ", \"final_g_loss\": " << bench::JsonNumber(r.final_g_loss, 4)
        << ", \"loss_ewma\": " << bench::JsonNumber(r.loss_ewma, 4)
        << ", \"anomalies\": " << r.anomalies << "}"
        << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("Wrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace tablegan

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return tablegan::RunSmoke();
  }
  const std::string out = argc > 1 ? argv[1] : "BENCH_stability_sweep.json";
  tablegan::RunSweep(out);
  return 0;
}
