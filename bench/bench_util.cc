#include "bench/bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "common/metrics.h"
#include "common/stopwatch.h"

namespace tablegan {
namespace bench {

double BenchScale() {
  const char* env = std::getenv("TABLEGAN_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

double DefaultFraction(const std::string& dataset) {
  // Fractions of the paper row counts (Table 3) sized for a single CPU
  // core: lacity 15000 -> ~900, adult 32561 -> ~900, health 9813 -> ~900,
  // airline 1e6 -> ~2000 (exercised through the multi-chunk path).
  double base = 0.06;
  if (dataset == "adult") base = 0.028;
  if (dataset == "health") base = 0.092;
  if (dataset == "airline") base = 0.002;
  return std::min(1.0, base * BenchScale());
}

core::TableGanOptions BenchGanOptions(float delta_mean, float delta_sd) {
  core::TableGanOptions o;
  o.base_channels = 16;
  o.latent_dim = 32;
  // The paper trains 25 epochs at ~500 mini-batches each; our scaled
  // tables yield ~14 mini-batches per epoch, so 50 epochs here is still
  // ~1/18th of the paper's step budget (the raised learning rate covers
  // the rest).
  o.epochs = 50;
  o.batch_size = 64;
  o.learning_rate = 1e-3f;  // scaled-data compensation (see header)
  o.ewma_weight = 0.9f;     // ~13 batches/epoch: w=0.99 would lag badly
  o.delta_mean = delta_mean;
  o.delta_sd = delta_sd;
  return o;
}

Result<data::Dataset> LoadBenchDataset(const std::string& name,
                                       uint64_t seed) {
  return data::MakeDataset(name, DefaultFraction(name), seed);
}

Result<TrainedGan> TrainGan(const data::Dataset& dataset,
                            const core::TableGanOptions& options) {
  TrainedGan out;
  // TABLEGAN_METRICS_OUT=<path> streams the per-epoch loss/timing
  // telemetry of every bench training run to one JSONL file (append
  // mode: the harness trains many GANs per invocation).
  std::unique_ptr<JsonlMetricsSink> metrics;
  core::TableGanOptions effective = options;
  if (const char* path = std::getenv("TABLEGAN_METRICS_OUT")) {
    metrics = std::make_unique<JsonlMetricsSink>(path, /*append=*/true);
    TABLEGAN_RETURN_NOT_OK(metrics->status());
    effective.metrics_sink = metrics.get();
  }
  out.gan = std::make_unique<core::TableGan>(effective);
  Stopwatch watch;
  TABLEGAN_RETURN_NOT_OK(out.gan->Fit(dataset.train, dataset.label_col));
  out.seconds = watch.ElapsedSeconds();
  return out;
}

std::vector<double> ColumnCdf(const data::Table& table, int col,
                              int points) {
  std::vector<double> values = table.column(col);
  std::sort(values.begin(), values.end());
  const double lo = values.front();
  const double hi = values.back();
  std::vector<double> cdf(static_cast<size_t>(points));
  for (int p = 0; p < points; ++p) {
    const double x =
        lo + (hi - lo) * static_cast<double>(p) / (points - 1);
    const auto it = std::upper_bound(values.begin(), values.end(), x);
    cdf[static_cast<size_t>(p)] =
        static_cast<double>(it - values.begin()) /
        static_cast<double>(values.size());
  }
  return cdf;
}

double KsDistance(const std::vector<double>& a,
                  const std::vector<double>& b) {
  double d = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

Result<std::vector<CompatPoint>> ClassificationCompat(
    const data::Table& original, const data::Table& released,
    const data::Table& test, int label_col, int drop_col) {
  std::vector<int> drop;
  if (drop_col >= 0) drop.push_back(drop_col);
  TABLEGAN_ASSIGN_OR_RETURN(ml::MlData train_orig,
                            ml::TableToMlData(original, label_col, drop));
  TABLEGAN_ASSIGN_OR_RETURN(ml::MlData train_rel,
                            ml::TableToMlData(released, label_col, drop));
  TABLEGAN_ASSIGN_OR_RETURN(ml::MlData test_data,
                            ml::TableToMlData(test, label_col, drop));
  std::vector<int> truth;
  truth.reserve(test_data.y.size());
  for (double y : test_data.y) truth.push_back(y > 0.5 ? 1 : 0);

  std::vector<CompatPoint> points;
  for (const auto& spec : ml::ModelCompatibilityClassifiers()) {
    CompatPoint p;
    p.model = spec.name;
    {
      std::unique_ptr<ml::Classifier> model = spec.make();
      TABLEGAN_RETURN_NOT_OK(model->Fit(train_orig));
      p.x = ml::F1Score(truth, model->PredictAll(test_data));
    }
    {
      std::unique_ptr<ml::Classifier> model = spec.make();
      TABLEGAN_RETURN_NOT_OK(model->Fit(train_rel));
      p.y = ml::F1Score(truth, model->PredictAll(test_data));
    }
    points.push_back(std::move(p));
  }
  return points;
}

Result<std::vector<CompatPoint>> RegressionCompat(
    const data::Table& original, const data::Table& released,
    const data::Table& test, int regression_col, int label_col) {
  std::vector<int> drop;
  if (label_col >= 0) drop.push_back(label_col);
  TABLEGAN_ASSIGN_OR_RETURN(
      ml::MlData train_orig,
      ml::TableToMlData(original, regression_col, drop));
  TABLEGAN_ASSIGN_OR_RETURN(
      ml::MlData train_rel,
      ml::TableToMlData(released, regression_col, drop));
  TABLEGAN_ASSIGN_OR_RETURN(ml::MlData test_data,
                            ml::TableToMlData(test, regression_col, drop));

  std::vector<CompatPoint> points;
  for (const auto& spec : ml::ModelCompatibilityRegressors()) {
    CompatPoint p;
    p.model = spec.name;
    {
      std::unique_ptr<ml::Regressor> model = spec.make();
      TABLEGAN_RETURN_NOT_OK(model->Fit(train_orig));
      p.x = ml::MeanRelativeError(test_data.y, model->PredictAll(test_data));
    }
    {
      std::unique_ptr<ml::Regressor> model = spec.make();
      TABLEGAN_RETURN_NOT_OK(model->Fit(train_rel));
      p.y = ml::MeanRelativeError(test_data.y, model->PredictAll(test_data));
    }
    points.push_back(std::move(p));
  }
  return points;
}

double MeanDiagonalGap(const std::vector<CompatPoint>& points) {
  if (points.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& p : points) acc += std::fabs(p.x - p.y);
  return acc / static_cast<double>(points.size());
}

void PrintHeader(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
  std::printf("(bench scale %.3g; set TABLEGAN_BENCH_SCALE to adjust)\n\n",
              BenchScale());
}

void PrintRow(const std::vector<std::string>& cells,
              const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 14;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

std::string JsonNumber(double v, int precision) {
  if (!std::isfinite(v)) return "null";
  return FormatDouble(v, precision);
}

}  // namespace bench
}  // namespace tablegan
