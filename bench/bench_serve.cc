// bench_serve — request latency and throughput of the synthesis daemon.
//
//   bench_serve [out.json]   full run: p50/p95/p99 request latency and
//                            aggregate rows/s at 1, 4 and 16 concurrent
//                            clients (default out: BENCH_serve.json)
//   bench_serve --smoke      CI gate: a short single-client run that
//                            also asserts the served bytes are
//                            bitwise identical to a local Sample;
//                            exits nonzero on any error or mismatch
//
// The server runs in-process on a loopback socket, so the measured
// path is the real one (frame codec, admission, worker pool, SampleRange,
// CSV serialization, TCP) minus only true network distance. Each client
// thread owns one connection and issues sequential requests for
// disjoint row ranges, the sharded-fetch pattern the protocol is
// designed for.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "serve/client.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace tablegan {
namespace {

constexpr int64_t kRowsPerRequest = 64;
constexpr char kModelId[] = "bench";

core::TableGanOptions BenchModelOptions() {
  core::TableGanOptions opt;
  opt.latent_dim = 16;
  opt.base_channels = 8;
  opt.epochs = 1;
  opt.batch_size = 64;
  opt.num_threads = 1;
  opt.verbose = false;
  return opt;
}

core::TableGan FitBenchGan() {
  Rng rng(7);
  data::Table table = data::MakeAdultLike(512, &rng);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  core::TableGan gan(BenchModelOptions());
  TABLEGAN_CHECK_OK(gan.Fit(table, label_col));
  return gan;
}

struct LevelResult {
  int clients = 0;
  int requests = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double rows_per_sec = 0.0;
};

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(idx, sorted_ms->size() - 1)];
}

/// Runs `requests_per_client` sequential requests on each of `clients`
/// connections; request i of client c fetches rows
/// [(c + i*clients) * kRowsPerRequest, ...) so ranges are disjoint and
/// spread across the logical table.
LevelResult RunLevel(int port, int clients, int requests_per_client,
                     uint64_t seed) {
  std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(requests_per_client);
        return;
      }
      for (int i = 0; i < requests_per_client; ++i) {
        const int64_t first =
            (static_cast<int64_t>(i) * clients + c) * kRowsPerRequest;
        Stopwatch one;
        auto got = client.SampleRange(kModelId, seed, first,
                                      first + kRowsPerRequest,
                                      serve::Format::kCsvNoHeader);
        if (!got.ok()) {
          failures.fetch_add(1);
          continue;
        }
        lat[static_cast<size_t>(c)].push_back(one.ElapsedMillis());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  TABLEGAN_CHECK(failures.load() == 0)
      << failures.load() << " failed requests at " << clients << " clients";

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LevelResult r;
  r.clients = clients;
  r.requests = static_cast<int>(all.size());
  r.p50_ms = Percentile(&all, 0.50);
  r.p95_ms = Percentile(&all, 0.95);
  r.p99_ms = Percentile(&all, 0.99);
  r.rows_per_sec = wall_s > 0.0
                       ? static_cast<double>(all.size()) *
                             static_cast<double>(kRowsPerRequest) / wall_s
                       : 0.0;
  return r;
}

int RunSmoke() {
  core::TableGan local = FitBenchGan();
  serve::ModelRegistry registry;
  TABLEGAN_CHECK_OK(registry.Add(kModelId, FitBenchGan()));
  serve::Server server(&registry, serve::ServerOptions());
  TABLEGAN_CHECK_OK(server.Start());
  const uint64_t seed = local.options().seed;

  // Bitwise contract first: remote shard == local SampleRange bytes.
  auto local_rows = local.SampleRange(seed, 128, 192);
  TABLEGAN_CHECK_OK(local_rows.status());
  auto local_csv =
      data::WriteCsvToString(*local_rows, /*include_header=*/false);
  TABLEGAN_CHECK_OK(local_csv.status());
  serve::Client probe;
  TABLEGAN_CHECK_OK(probe.Connect("127.0.0.1", server.port()));
  auto remote_csv = probe.SampleRange(kModelId, seed, 128, 192,
                                      serve::Format::kCsvNoHeader);
  TABLEGAN_CHECK_OK(remote_csv.status());
  if (*remote_csv != *local_csv) {
    std::fprintf(stderr,
                 "FAIL: remote rows [128,192) differ from local Sample "
                 "(%zu vs %zu bytes)\n",
                 remote_csv->size(), local_csv->size());
    return 1;
  }

  const LevelResult r = RunLevel(server.port(), 2, 8, seed);
  server.Shutdown();
  std::printf("serve smoke OK: %d requests, p50 %.2f ms, %.0f rows/s, "
              "remote output bitwise identical to local Sample\n",
              r.requests, r.p50_ms, r.rows_per_sec);
  return 0;
}

void RunFull(const std::string& out_path) {
  bench::PrintHeader("Serve latency: loopback daemon, 64-row requests");
  serve::ModelRegistry registry;
  TABLEGAN_CHECK_OK(registry.Add(kModelId, FitBenchGan()));
  serve::ServerOptions opts;
  opts.num_workers = 16;  // enough for the widest client level
  serve::Server server(&registry, opts);
  TABLEGAN_CHECK_OK(server.Start());
  const uint64_t seed = BenchModelOptions().seed;

  const int total_requests =
      static_cast<int>(256 * std::max(0.125, bench::BenchScale()));
  const std::vector<int> levels{1, 4, 16};
  std::vector<LevelResult> results;
  const std::vector<int> widths{10, 12, 12, 12, 14};
  bench::PrintRow({"Clients", "p50 ms", "p95 ms", "p99 ms", "Rows/s"},
                  widths);
  for (int clients : levels) {
    const int per_client = std::max(1, total_requests / clients);
    // One untimed warmup round lets workers fault in stacks and the
    // first-connection costs stay out of the percentiles.
    RunLevel(server.port(), clients, 2, seed);
    LevelResult r = RunLevel(server.port(), clients, per_client, seed);
    results.push_back(r);
    bench::PrintRow({std::to_string(clients),
                     bench::FormatDouble(r.p50_ms, 2),
                     bench::FormatDouble(r.p95_ms, 2),
                     bench::FormatDouble(r.p99_ms, 2),
                     bench::FormatDouble(r.rows_per_sec, 0)},
                    widths);
  }
  server.Shutdown();

  std::ofstream out(out_path);
  TABLEGAN_CHECK(out.good());
  out << "{\n"
      << "  \"bench\": \"serve_latency\",\n"
      << "  \"rows_per_request\": " << kRowsPerRequest << ",\n"
      << "  \"num_workers\": " << opts.num_workers << ",\n"
      << "  \"levels\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    out << "    {\"clients\": " << r.clients
        << ", \"requests\": " << r.requests
        << ", \"p50_ms\": " << bench::JsonNumber(r.p50_ms, 3)
        << ", \"p95_ms\": " << bench::JsonNumber(r.p95_ms, 3)
        << ", \"p99_ms\": " << bench::JsonNumber(r.p99_ms, 3)
        << ", \"rows_per_sec\": " << bench::JsonNumber(r.rows_per_sec, 1)
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nWrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace tablegan

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return tablegan::RunSmoke();
  }
  tablegan::RunFull(argc > 1 ? argv[1] : "BENCH_serve.json");
  return 0;
}
