// Reproduces paper Table 3: statistics of the four evaluation datasets.
//
// Our dataset simulators substitute for the public downloads (DESIGN.md
// §3); the structural statistics — QID / sensitive attribute counts and
// full paper row counts — are reproduced exactly, while benches sample a
// fraction of the rows for single-core runs.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace tablegan {
namespace {

void Run() {
  bench::PrintHeader("Table 3: Statistics of datasets");
  const std::vector<int> widths{10, 14, 10, 14, 16, 16};
  bench::PrintRow({"Dataset", "#Records", "#QIDs", "#Sensitive",
                   "#TestRecords", "#BenchRows"},
                  widths);
  for (const std::string& name : data::DatasetNames()) {
    auto ds = bench::LoadBenchDataset(name);
    TABLEGAN_CHECK_OK(ds.status());
    const data::Schema& schema = ds->train.schema();
    const auto qids =
        schema.ColumnsWithRole(data::ColumnRole::kQuasiIdentifier).size();
    const auto sens =
        schema.ColumnsWithRole(data::ColumnRole::kSensitive).size();
    bench::PrintRow(
        {name, std::to_string(*data::PaperRowCount(name)),
         std::to_string(qids), std::to_string(sens),
         std::to_string(*data::PaperTestRowCount(name)),
         std::to_string(ds->train.num_rows())},
        widths);
  }
  std::printf(
      "\nPaper Table 3 reference: lacity 15000/2/21/3000, "
      "adult 32561/5/9/16281, health 9813/4/28/1963, "
      "airline 1000000/2/30/200000.\n");
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  return 0;
}
