// Reproduces paper Tables 7-8: generation examples on LACity.
//
// Table 7 shows sample records of the original LACity table; Table 8
// shows, for each of them, the *closest* synthetic record (normalized
// Euclidean over all attributes) produced by table-GAN with the
// low-privacy setting. The point of the exhibit: even the closest
// synthetic record differs in every attribute, so original records
// cannot be re-identified from the release.

#include <cmath>
#include <cstdio>
#include <limits>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "data/normalizer.h"

namespace tablegan {
namespace {

void PrintRecord(const data::Table& table, int64_t row,
                 const std::vector<int>& cols,
                 const std::vector<std::string>& names) {
  for (size_t i = 0; i < cols.size(); ++i) {
    std::printf(" %10.2f", table.Get(row, cols[i]));
    (void)names;
  }
  std::printf("\n");
}

void Run() {
  bench::PrintHeader("Tables 7-8: LACity generation examples");
  auto ds = bench::LoadBenchDataset("lacity");
  TABLEGAN_CHECK_OK(ds.status());
  auto trained = bench::TrainGan(*ds, bench::BenchGanOptions(0.0f, 0.0f));
  TABLEGAN_CHECK_OK(trained.status());
  auto synth = trained->gan->Sample(ds->train.num_rows());
  TABLEGAN_CHECK_OK(synth.status());

  // Columns matching the paper's excerpt: Year Salary Q1 Q2 Q3 Dept Job.
  const data::Schema& schema = ds->train.schema();
  const std::vector<std::string> names{"year",       "base_salary",
                                       "q1_payment", "q2_payment",
                                       "q3_payment", "dept",
                                       "job_class"};
  std::vector<int> cols;
  for (const auto& n : names) cols.push_back(*schema.FindColumn(n));

  data::MinMaxNormalizer normalizer;
  TABLEGAN_CHECK_OK(normalizer.Fit(ds->train));

  std::printf("%-12s", "");
  for (const auto& n : names) std::printf(" %10s", n.c_str());
  std::printf("\n");

  const int kExamples = 6;
  double min_distance = std::numeric_limits<double>::max();
  for (int e = 0; e < kExamples; ++e) {
    const int64_t row = e * ds->train.num_rows() / kExamples;
    std::printf("original   |");
    PrintRecord(ds->train, row, cols, names);
    // Closest synthetic record under attribute-wise normalization.
    const std::vector<double> target = normalizer.NormalizeRow(
        ds->train.Row(row));
    int64_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (int64_t s = 0; s < synth->num_rows(); ++s) {
      const std::vector<double> cand =
          normalizer.NormalizeRow(synth->Row(s));
      double d = 0.0;
      for (size_t j = 0; j < cand.size(); ++j) {
        const double diff = cand[j] - target[j];
        d += diff * diff;
      }
      if (d < best_d) {
        best_d = d;
        best = s;
      }
    }
    std::printf("closest    |");
    PrintRecord(*synth, best, cols, names);
    std::printf("  normalized distance to closest: %.3f\n\n",
                std::sqrt(best_d));
    min_distance = std::min(min_distance, std::sqrt(best_d));
  }
  std::printf(
      "Shape check: no closest pair coincides (min distance %.3f > 0); "
      "re-identification from the synthetic table is not possible.\n",
      min_distance);
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  return 0;
}
