// google-benchmark microbenches for the substrates the reproduction is
// built on: SGEMM, DCGAN conv forward/backward, generator sampling
// throughput, table encoding, and DCR search. These back the Table 4
// discussion (where the paper's GPU minutes become CPU seconds).

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/random.h"
#include "core/networks.h"
#include "core/table_gan.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "data/record_matrix.h"
#include "eval/fidelity.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/init.h"
#include "privacy/dcr.h"
#include "tensor/im2col.h"
#include "tensor/kernels/kernels.h"
#include "tensor/matmul.h"

namespace tablegan {
namespace {

// --- Per-backend kernel benches (BENCH_simd_kernels.json). Arg(0)
// selects the backend (0 = scalar, 1 = avx2, 2 = avx2fma); runs are
// single-threaded so items_per_second reads directly as FLOP/s of the
// serial kernel, and the avx2/scalar ratio is the SIMD speedup the
// dispatch layer buys. Hosts without AVX2 report the vector rows as
// skipped instead of failing.

const kernels::Backend* BenchBackend(int which) {
  switch (which) {
    case 0: return &kernels::Scalar();
    case 1: return kernels::Avx2(/*fma=*/false);
    default: return kernels::Avx2(/*fma=*/true);
  }
}

// Overrides dispatch for the duration of one benchmark run.
struct BackendScope {
  explicit BackendScope(const kernels::Backend* b) {
    kernels::OverrideBackend(b);
  }
  ~BackendScope() { kernels::OverrideBackend(nullptr); }
};

void BM_GemmBackend(benchmark::State& state) {
  const kernels::Backend* backend =
      BenchBackend(static_cast<int>(state.range(0)));
  if (backend == nullptr) {
    state.SkipWithError("AVX2 backend unavailable on this host");
    return;
  }
  const auto n = static_cast<int64_t>(state.range(1));
  Rng rng(1);
  Tensor a = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor b = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor c({n, n});
  BackendScope scope(backend);
  SetNumThreads(1);
  for (auto _ : state) {
    ops::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(backend->name);
}
BENCHMARK(BM_GemmBackend)
    ->ArgsProduct({{0, 1, 2}, {64, 128, 256}})
    ->UseRealTime();

void BM_GemmNtBackend(benchmark::State& state) {
  const kernels::Backend* backend =
      BenchBackend(static_cast<int>(state.range(0)));
  if (backend == nullptr) {
    state.SkipWithError("AVX2 backend unavailable on this host");
    return;
  }
  const auto n = static_cast<int64_t>(state.range(1));
  Rng rng(2);
  Tensor a = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor b = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor c({n, n});
  BackendScope scope(backend);
  SetNumThreads(1);
  for (auto _ : state) {
    ops::RawGemmNT(n, n, n, a.data(), b.data(), c.data(),
                   /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(backend->name);
}
BENCHMARK(BM_GemmNtBackend)
    ->ArgsProduct({{0, 1, 2}, {128, 256}})
    ->UseRealTime();

void BM_GemmTnBackend(benchmark::State& state) {
  const kernels::Backend* backend =
      BenchBackend(static_cast<int>(state.range(0)));
  if (backend == nullptr) {
    state.SkipWithError("AVX2 backend unavailable on this host");
    return;
  }
  const auto n = static_cast<int64_t>(state.range(1));
  Rng rng(3);
  Tensor a = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor b = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor c({n, n});
  BackendScope scope(backend);
  SetNumThreads(1);
  for (auto _ : state) {
    ops::RawGemmTN(n, n, n, a.data(), b.data(), c.data(),
                   /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(backend->name);
}
BENCHMARK(BM_GemmTnBackend)
    ->ArgsProduct({{0, 1, 2}, {128, 256}})
    ->UseRealTime();

void BM_ConvForwardBackend(benchmark::State& state) {
  const kernels::Backend* backend =
      BenchBackend(static_cast<int>(state.range(0)));
  if (backend == nullptr) {
    state.SkipWithError("AVX2 backend unavailable on this host");
    return;
  }
  Rng rng(4);
  nn::Conv2d conv(32, 64, 4, 2, 1);
  nn::DcganInitialize(&conv, &rng);
  Tensor x = Tensor::Uniform({64, 32, 16, 16}, -1, 1, &rng);
  BackendScope scope(backend);
  SetNumThreads(1);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel(backend->name);
}
BENCHMARK(BM_ConvForwardBackend)->Arg(0)->Arg(1)->Arg(2)->UseRealTime();

void BM_ActivationBackend(benchmark::State& state) {
  const kernels::Backend* backend =
      BenchBackend(static_cast<int>(state.range(0)));
  if (backend == nullptr) {
    state.SkipWithError("AVX2 backend unavailable on this host");
    return;
  }
  const int64_t n = 1 << 16;
  Rng rng(5);
  Tensor x = Tensor::Uniform({n}, -1, 1, &rng);
  Tensor y({n});
  for (auto _ : state) {
    backend->leaky_relu(n, 0.2f, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(backend->name);
}
BENCHMARK(BM_ActivationBackend)->Arg(0)->Arg(1)->Arg(2);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<int64_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor b = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor c({n, n});
  for (auto _ : state) {
    ops::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_ConvForward(benchmark::State& state) {
  const auto batch = static_cast<int64_t>(state.range(0));
  Rng rng(2);
  nn::Conv2d conv(1, 32, 4, 2, 1);
  nn::DcganInitialize(&conv, &rng);
  Tensor x = Tensor::Uniform({batch, 1, 8, 8}, -1, 1, &rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(64);

void BM_ConvBackward(benchmark::State& state) {
  const auto batch = static_cast<int64_t>(state.range(0));
  Rng rng(3);
  nn::Conv2d conv(1, 32, 4, 2, 1);
  nn::DcganInitialize(&conv, &rng);
  Tensor x = Tensor::Uniform({batch, 1, 8, 8}, -1, 1, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor grad = Tensor::Uniform(y.shape(), -1, 1, &rng);
  for (auto _ : state) {
    conv.ZeroGrad();
    Tensor gx = conv.Backward(grad);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ConvBackward)->Arg(16)->Arg(64);

// Thread-scaling sweep: the same kernels at 1/2/4/8 worker threads. Every
// parallel kernel is bitwise deterministic, so the sweep measures pure
// speedup, not a numerics trade-off. (On a single-core host the sweep
// still runs the threaded code paths; the recorded speedup is ~1x.)

void BM_GemmThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto n = static_cast<int64_t>(state.range(1));
  SetNumThreads(threads);
  Rng rng(1);
  Tensor a = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor b = Tensor::Uniform({n, n}, -1, 1, &rng);
  Tensor c({n, n});
  for (auto _ : state) {
    ops::Gemm(false, false, 1.0f, a, b, 0.0f, &c);
    benchmark::DoNotOptimize(c.data());
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_GemmThreads)
    ->ArgsProduct({{1, 2, 4, 8}, {128, 256}})
    ->UseRealTime();

void BM_ConvForwardThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  SetNumThreads(threads);
  Rng rng(2);
  // Mid-stack discriminator layer at DCGAN width: 32->64, k4 s2 p1.
  nn::Conv2d conv(32, 64, 4, 2, 1);
  nn::DcganInitialize(&conv, &rng);
  Tensor x = Tensor::Uniform({64, 32, 16, 16}, -1, 1, &rng);
  for (auto _ : state) {
    Tensor y = conv.Forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ConvForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ConvBackwardThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  SetNumThreads(threads);
  Rng rng(3);
  nn::Conv2d conv(32, 64, 4, 2, 1);
  nn::DcganInitialize(&conv, &rng);
  Tensor x = Tensor::Uniform({64, 32, 16, 16}, -1, 1, &rng);
  Tensor y = conv.Forward(x, true);
  Tensor grad = Tensor::Uniform(y.shape(), -1, 1, &rng);
  for (auto _ : state) {
    conv.ZeroGrad();
    Tensor gx = conv.Backward(grad);
    benchmark::DoNotOptimize(gx.data());
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ConvBackwardThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ConvTransposeForwardThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  SetNumThreads(threads);
  Rng rng(4);
  // Mid-stack generator layer: 64->32 upsampling, k4 s2 p1.
  nn::ConvTranspose2d deconv(64, 32, 4, 2, 1);
  nn::DcganInitialize(&deconv, &rng);
  Tensor x = Tensor::Uniform({64, 64, 8, 8}, -1, 1, &rng);
  for (auto _ : state) {
    Tensor y = deconv.Forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ConvTransposeForwardThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_GeneratorSample(benchmark::State& state) {
  Rng rng(4);
  auto g = core::BuildGenerator(/*side=*/8, /*latent_dim=*/32,
                                /*base_channels=*/16, &rng);
  Tensor z = Tensor::Uniform({64, 32}, -1, 1, &rng);
  for (auto _ : state) {
    Tensor out = g->Forward(z, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_GeneratorSample);

void BM_TableEncode(benchmark::State& state) {
  Rng rng(5);
  data::Table table = data::MakeHealthLike(1000, &rng);
  data::MinMaxNormalizer norm;
  (void)norm.Fit(table);
  data::RecordMatrixCodec codec(
      table.num_columns(),
      data::RecordMatrixCodec::ChooseSide(table.num_columns()));
  for (auto _ : state) {
    Tensor records = *norm.Transform(table);
    Tensor mats = *codec.ToMatrices(records);
    benchmark::DoNotOptimize(mats.data());
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_TableEncode);

void BM_DcrSearch(benchmark::State& state) {
  const auto rows = static_cast<int64_t>(state.range(0));
  Rng rng(6);
  data::Table a = data::MakeAdultLike(rows, &rng);
  data::Table b = data::MakeAdultLike(rows, &rng);
  const auto cols = privacy::QidAndSensitiveColumns(a.schema());
  for (auto _ : state) {
    auto dcr = privacy::ComputeDcr(a, b, cols);
    benchmark::DoNotOptimize(dcr->mean);
  }
  state.SetItemsProcessed(state.iterations() * rows * rows);
}
BENCHMARK(BM_DcrSearch)->Arg(256)->Arg(1024);

// Evaluation-pipeline thread sweeps: DCR search, per-column fidelity and
// generator sampling at 1/2/4/8 workers. items_per_second reads as
// row-pairs/sec (DCR), rows/sec (fidelity over pooled rows), and
// synthetic rows/sec (sampling).

void BM_DcrSearchThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto rows = static_cast<int64_t>(state.range(1));
  SetNumThreads(threads);
  Rng rng(6);
  data::Table a = data::MakeAdultLike(rows, &rng);
  data::Table b = data::MakeAdultLike(rows, &rng);
  const auto cols = privacy::QidAndSensitiveColumns(a.schema());
  for (auto _ : state) {
    auto dcr = privacy::ComputeDcr(a, b, cols);
    benchmark::DoNotOptimize(dcr->mean);
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * rows * rows);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_DcrSearchThreads)
    ->ArgsProduct({{1, 2, 4, 8}, {1024}})
    ->UseRealTime();

void BM_FidelityThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  SetNumThreads(threads);
  Rng rng(7);
  data::Table a = data::MakeAdultLike(2000, &rng);
  data::Table b = data::MakeAdultLike(2000, &rng);
  for (auto _ : state) {
    auto report = eval::EvaluateFidelity(a, b);
    benchmark::DoNotOptimize(report->mean_ks);
  }
  SetNumThreads(0);
  state.SetItemsProcessed(state.iterations() * (a.num_rows() + b.num_rows()));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_FidelityThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_SampleThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(8);
  data::Table table = data::MakeAdultLike(128, &rng);
  const auto labels =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel);
  core::TableGanOptions options;
  options.epochs = 1;
  options.batch_size = 32;
  options.base_channels = 8;
  options.latent_dim = 16;
  options.seed = 9;
  options.num_threads = threads;
  core::TableGan gan(options);
  if (!gan.Fit(table, labels[0]).ok()) {
    state.SkipWithError("Fit failed");
    return;
  }
  const int64_t rows = 512;
  for (auto _ : state) {
    auto samples = gan.Sample(rows);
    benchmark::DoNotOptimize(samples->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["threads"] = threads;
}
BENCHMARK(BM_SampleThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace tablegan

BENCHMARK_MAIN();
