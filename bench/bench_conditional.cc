// Conditional generation + mode-specific normalization payoff bench
// (DESIGN.md §16): trains the min-max and GMM-normalized variants of a
// conditional table-GAN on a bimodal §3-style generator keyed by the
// binary label, then reports training throughput, conditional sampling
// rows/s, and the per-label fidelity (KS distance of the bimodal column
// against the matching real rows) that mode-specific normalization buys
// over plain min-max. Results go to BENCH_conditional.json.
//
//   --smoke    tiny configuration used as a ctest gate: both variants
//              must train, every conditionally sampled row must carry
//              exactly the requested label, and all KS distances must be
//              finite; no JSON is written.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/table_gan.h"
#include "data/table.h"

namespace tablegan {
namespace {

// Bimodal dataset in the style of the §3 generators: the "balance"
// column is a two-mode mixture whose mode is decided by the binary
// label — the shape min-max normalization smears and mode-specific
// normalization preserves — plus a unimodal "age" column as ballast.
data::Table MakeBimodalTable(int64_t rows, uint64_t seed) {
  data::Schema schema;
  data::ColumnSpec balance;
  balance.name = "balance";
  balance.type = data::ColumnType::kContinuous;
  schema.AddColumn(balance);
  data::ColumnSpec age;
  age.name = "age";
  age.type = data::ColumnType::kContinuous;
  schema.AddColumn(age);
  data::ColumnSpec label;
  label.name = "label";
  label.type = data::ColumnType::kDiscrete;
  label.role = data::ColumnRole::kLabel;
  schema.AddColumn(label);
  data::Table t(schema);
  Rng rng(MixSeeds(seed, 0xB1340DA1ULL));
  for (int64_t r = 0; r < rows; ++r) {
    const double y = static_cast<double>(r % 2);
    const double bal = y == 0.0 ? rng.Gaussian(-1200.0, 90.0)
                                : rng.Gaussian(5400.0, 350.0);
    t.AppendRow({bal, rng.Gaussian(41.0, 11.0), y});
  }
  return t;
}

// Rows of `table` whose label column equals `level`, same schema.
data::Table FilterByLabel(const data::Table& table, int label_col,
                          double level) {
  data::Table out(table.schema());
  std::vector<double> row(static_cast<size_t>(table.num_columns()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    if (table.Get(r, label_col) != level) continue;
    for (int c = 0; c < table.num_columns(); ++c) {
      row[static_cast<size_t>(c)] = table.Get(r, c);
    }
    out.AppendRow(row);
  }
  return out;
}

struct VariantRun {
  std::string normalizer;       // "minmax" | "gmm"
  int64_t rows = 0;
  int epochs = 0;
  double train_seconds = 0.0;
  double train_rows_per_sec = 0.0;
  double sample_rows_per_sec = 0.0;  // conditional path
  double ks_marginal = 0.0;  // bimodal column, unconditional sample vs real
  double ks_label0 = 0.0;    // bimodal column, conditional sample vs real
  double ks_label1 = 0.0;
};

// Trains one normalizer variant of the conditional model and measures
// throughput plus per-label fidelity of the bimodal column.
VariantRun RunVariant(const data::Table& table, bool with_gmm, int epochs,
                      int64_t sample_rows) {
  VariantRun run;
  run.normalizer = with_gmm ? "gmm" : "minmax";
  run.rows = table.num_rows();
  run.epochs = epochs;

  core::TableGanOptions options = bench::BenchGanOptions(0.0f, 0.0f);
  options.epochs = epochs;
  options.seed = 4242;
  options.num_threads = 1;  // single-core host, matches the other benches
  options.conditional = true;
  if (with_gmm) {
    options.gmm_columns = {0};
    options.gmm_components = 4;
  }
  core::TableGan gan(options);
  Stopwatch train_watch;
  const Status fit = gan.Fit(table, /*label_col=*/2);
  run.train_seconds = train_watch.ElapsedSeconds();
  TABLEGAN_CHECK(fit.ok()) << run.normalizer << ": " << fit.ToString();
  run.train_rows_per_sec =
      run.train_seconds > 0.0
          ? static_cast<double>(table.num_rows()) * epochs / run.train_seconds
          : 0.0;

  Stopwatch sample_watch;
  Result<data::Table> cond0 =
      gan.SampleConditional(options.seed, 0, sample_rows, 0.0);
  Result<data::Table> cond1 =
      gan.SampleConditional(options.seed, 0, sample_rows, 1.0);
  const double sample_seconds = sample_watch.ElapsedSeconds();
  TABLEGAN_CHECK(cond0.ok()) << cond0.status().ToString();
  TABLEGAN_CHECK(cond1.ok()) << cond1.status().ToString();
  run.sample_rows_per_sec =
      sample_seconds > 0.0 ? 2.0 * static_cast<double>(sample_rows) /
                                 sample_seconds
                           : 0.0;
  // The condition is a contract: every sampled row carries the level.
  for (int64_t r = 0; r < sample_rows; ++r) {
    TABLEGAN_CHECK(cond0->Get(r, 2) == 0.0 && cond1->Get(r, 2) == 1.0)
        << run.normalizer << ": conditional sample broke the label contract"
        << " at row " << r;
  }

  Result<data::Table> marginal = gan.Sample(sample_rows);
  TABLEGAN_CHECK(marginal.ok()) << marginal.status().ToString();
  run.ks_marginal = bench::KsDistance(bench::ColumnCdf(table, 0),
                                      bench::ColumnCdf(*marginal, 0));
  run.ks_label0 = bench::KsDistance(
      bench::ColumnCdf(FilterByLabel(table, 2, 0.0), 0),
      bench::ColumnCdf(*cond0, 0));
  run.ks_label1 = bench::KsDistance(
      bench::ColumnCdf(FilterByLabel(table, 2, 1.0), 0),
      bench::ColumnCdf(*cond1, 0));
  return run;
}

int RunSmoke() {
  const data::Table table = MakeBimodalTable(160, 7);
  for (const bool with_gmm : {false, true}) {
    const VariantRun run =
        RunVariant(table, with_gmm, /*epochs=*/2, /*sample_rows=*/64);
    TABLEGAN_CHECK(std::isfinite(run.ks_marginal) &&
                   std::isfinite(run.ks_label0) &&
                   std::isfinite(run.ks_label1))
        << run.normalizer << ": non-finite KS distance";
    std::printf("smoke %-7s train=%.2fs ksm=%.3f ks0=%.3f ks1=%.3f\n",
                run.normalizer.c_str(), run.train_seconds, run.ks_marginal,
                run.ks_label0, run.ks_label1);
  }
  std::printf("conditional smoke PASS: 2 variants, label contract held\n");
  return 0;
}

void RunSweep(const std::string& out_path) {
  bench::PrintHeader(
      "Conditional sampling: min-max vs mode-specific normalization");
  const int64_t rows =
      static_cast<int64_t>(1800 * bench::BenchScale());
  const int epochs = 40;
  const data::Table table = MakeBimodalTable(rows, 7);
  const std::vector<int> widths{8, 7, 10, 10, 11, 9, 9, 9};
  bench::PrintRow({"Norm", "Rows", "Train s", "Train r/s", "Sample r/s",
                   "KS marg", "KS y=0", "KS y=1"},
                  widths);
  std::vector<VariantRun> runs;
  for (const bool with_gmm : {false, true}) {
    const VariantRun run = RunVariant(table, with_gmm, epochs, rows);
    bench::PrintRow({run.normalizer, std::to_string(run.rows),
                     bench::FormatDouble(run.train_seconds, 1),
                     bench::FormatDouble(run.train_rows_per_sec, 0),
                     bench::FormatDouble(run.sample_rows_per_sec, 0),
                     bench::FormatDouble(run.ks_marginal, 3),
                     bench::FormatDouble(run.ks_label0, 3),
                     bench::FormatDouble(run.ks_label1, 3)},
                    widths);
    runs.push_back(run);
  }
  // The headline number: how much closer the synthetic bimodal marginal
  // sits to the real one once the column is GMM-normalized.
  const double delta = runs[0].ks_marginal - runs[1].ks_marginal;
  std::printf("\nFidelity delta (min-max KS - GMM KS, positive favors "
              "GMM): marginal %+.3f\n",
              delta);

  std::ofstream out(out_path);
  TABLEGAN_CHECK(out.good());
  out << "{\n  \"bench\": \"conditional\",\n  \"fidelity_delta\": "
      << "{\"marginal\": " << bench::JsonNumber(delta, 4) << "},\n"
      << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const VariantRun& r = runs[i];
    out << "    {\"normalizer\": \"" << r.normalizer
        << "\", \"rows\": " << r.rows << ", \"epochs\": " << r.epochs
        << ", \"train_seconds\": " << bench::JsonNumber(r.train_seconds, 2)
        << ", \"train_rows_per_sec\": "
        << bench::JsonNumber(r.train_rows_per_sec, 1)
        << ", \"sample_rows_per_sec\": "
        << bench::JsonNumber(r.sample_rows_per_sec, 1)
        << ", \"ks_marginal\": " << bench::JsonNumber(r.ks_marginal, 4)
        << ", \"ks_label0\": " << bench::JsonNumber(r.ks_label0, 4)
        << ", \"ks_label1\": " << bench::JsonNumber(r.ks_label1, 4) << "}"
        << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("Wrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace tablegan

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return tablegan::RunSmoke();
  }
  const std::string out = argc > 1 ? argv[1] : "BENCH_conditional.json";
  tablegan::RunSweep(out);
  return 0;
}
