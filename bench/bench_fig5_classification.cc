// Reproduces paper Figure 5: classification model compatibility.
//
// For every dataset and every released table (table-GAN low/high
// privacy, ARX-best, sdcMicro-best) we print the 40 (x, y) F-1 pairs —
// x from training on the original table, y from training on the
// released table, both scored on unseen test records — plus the mean
// distance from the x=y diagonal. Expected shape (paper §5.2.2.1):
// table-GAN low-privacy hugs the diagonal; high-privacy scatters wider;
// ARX/sdcMicro are near-diagonal on LACity/Adult/Airline but degrade on
// Health, where only table-GAN stays compatible.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "privacy/anonymizer.h"
#include "privacy/sdc_micro.h"

namespace tablegan {
namespace {

void Run() {
  bench::PrintHeader("Figure 5: classification model compatibility (F-1)");
  for (const std::string& name : data::DatasetNames()) {
    auto ds = bench::LoadBenchDataset(name);
    TABLEGAN_CHECK_OK(ds.status());

    struct Release {
      std::string label;
      data::Table table;
    };
    std::vector<Release> releases;

    auto low = bench::TrainGan(*ds, bench::BenchGanOptions(0.0f, 0.0f));
    TABLEGAN_CHECK_OK(low.status());
    releases.push_back(
        {"ours-low", *low->gan->Sample(ds->train.num_rows())});
    auto high = bench::TrainGan(*ds, bench::BenchGanOptions(0.5f, 0.5f));
    TABLEGAN_CHECK_OK(high.status());
    releases.push_back(
        {"ours-high", *high->gan->Sample(ds->train.num_rows())});

    privacy::ArxOptions arx;  // paper-best LACity setting: 5-anon, t=0.01
    arx.k = 5;
    arx.t = 0.01;
    auto arx_result = privacy::ArxAnonymize(ds->train, arx);
    TABLEGAN_CHECK_OK(arx_result.status());
    releases.push_back({"arx-best", std::move(arx_result)->released});

    privacy::SdcMicroOptions sdc;
    sdc.aggregation_group = 3;
    sdc.pram_pd = 0.5;
    auto sdc_result = privacy::SdcMicroPerturb(ds->train, sdc);
    TABLEGAN_CHECK_OK(sdc_result.status());
    releases.push_back({"sdcmicro-best", std::move(sdc_result).value()});

    std::printf("\n[%s] 40 (x, y) F-1 pairs per release\n", name.c_str());
    for (const auto& release : releases) {
      auto points = bench::ClassificationCompat(
          ds->train, release.table, ds->test, ds->label_col,
          ds->regression_col);
      TABLEGAN_CHECK_OK(points.status());
      std::printf("  %-14s gap=%.3f points:", release.label.c_str(),
                  bench::MeanDiagonalGap(*points));
      for (const auto& p : *points) std::printf(" (%.2f,%.2f)", p.x, p.y);
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape check: ours-low gap should be small everywhere; on health "
      "it should beat arx-best.\n");
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  return 0;
}
