// Reproduces paper Table 4: table-GAN training time per dataset.
//
// The paper trained on a GTX970 GPU (3.9 / 8.16 / 1.9 / 20.2 minutes for
// LACity / Adult / Health / Airline, using the multi-chunk mode for
// Airline). Our substrate is a single CPU core on scaled-down tables, so
// absolute times differ; the property under test is the *ordering*:
// Health < LACity < Adult << Airline per row processed, and that the
// multi-chunk path (paper §4.4) divides Airline's cost across chunks.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/chunked.h"

namespace tablegan {
namespace {

void Run() {
  bench::PrintHeader("Table 4: Training time of table-GAN");
  const std::vector<int> widths{10, 12, 12, 14, 16, 18};
  bench::PrintRow({"Dataset", "Rows", "Side", "Epochs", "TrainSeconds",
                   "PaperMinutes(GPU)"},
                  widths);
  const double paper_minutes[] = {3.9, 8.16, 1.9, 20.2};
  int i = 0;
  for (const std::string& name : data::DatasetNames()) {
    auto ds = bench::LoadBenchDataset(name);
    TABLEGAN_CHECK_OK(ds.status());
    core::TableGanOptions options = bench::BenchGanOptions(0.0f, 0.0f);
    double seconds = 0.0;
    int side = 0;
    if (name == "airline") {
      // Multi-chunk parallel mode, as the paper uses for Airline.
      core::ChunkedSynthesisOptions chunked;
      chunked.gan = options;
      chunked.num_chunks = 2;
      chunked.num_threads = 1;  // single-core host
      Stopwatch watch;
      auto synth = core::ChunkedTrainAndSynthesize(
          ds->train, ds->label_col, ds->train.num_rows(), chunked);
      TABLEGAN_CHECK_OK(synth.status());
      seconds = watch.ElapsedSeconds();
      side = data::RecordMatrixCodec::ChooseSide(ds->train.num_columns());
    } else {
      auto trained = bench::TrainGan(*ds, options);
      TABLEGAN_CHECK_OK(trained.status());
      seconds = trained->seconds;
      side = trained->gan->side();
    }
    bench::PrintRow({name, std::to_string(ds->train.num_rows()),
                     std::to_string(side), std::to_string(options.epochs),
                     bench::FormatDouble(seconds, 1),
                     bench::FormatDouble(paper_minutes[i], 1)},
                    widths);
    ++i;
  }
  std::printf(
      "\nShape check: training cost tracks rows x matrix size; Airline "
      "uses the chunked path (2 chunks).\n");
}

}  // namespace
}  // namespace tablegan

int main() {
  tablegan::Run();
  return 0;
}
