// Reproduces paper Table 4: table-GAN training time per dataset.
//
// The paper trained on a GTX970 GPU (3.9 / 8.16 / 1.9 / 20.2 minutes for
// LACity / Adult / Health / Airline, using the multi-chunk mode for
// Airline). Our substrate is a single CPU core on scaled-down tables, so
// absolute times differ; the property under test is the *ordering*:
// Health < LACity < Adult << Airline per row processed, and that the
// multi-chunk path (paper §4.4) divides Airline's cost across chunks.
//
// Two extra modes cover the training-step workspace:
//   --train-step [out.json]  times the steady-state step with buffer
//                            reuse off vs. on and writes the comparison
//                            to out.json (default BENCH_train_step.json)
//   --alloc-smoke            exits nonzero if any post-warmup epoch
//                            allocates from the workspace pool

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "core/chunked.h"

namespace tablegan {
namespace {

void Run() {
  bench::PrintHeader("Table 4: Training time of table-GAN");
  const std::vector<int> widths{10, 12, 12, 14, 16, 18};
  bench::PrintRow({"Dataset", "Rows", "Side", "Epochs", "TrainSeconds",
                   "PaperMinutes(GPU)"},
                  widths);
  const double paper_minutes[] = {3.9, 8.16, 1.9, 20.2};
  int i = 0;
  for (const std::string& name : data::DatasetNames()) {
    auto ds = bench::LoadBenchDataset(name);
    TABLEGAN_CHECK_OK(ds.status());
    core::TableGanOptions options = bench::BenchGanOptions(0.0f, 0.0f);
    double seconds = 0.0;
    int side = 0;
    if (name == "airline") {
      // Multi-chunk parallel mode, as the paper uses for Airline.
      core::ChunkedSynthesisOptions chunked;
      chunked.gan = options;
      chunked.num_chunks = 2;
      chunked.num_threads = 1;  // single-core host
      Stopwatch watch;
      auto synth = core::ChunkedTrainAndSynthesize(
          ds->train, ds->label_col, ds->train.num_rows(), chunked);
      TABLEGAN_CHECK_OK(synth.status());
      seconds = watch.ElapsedSeconds();
      side = data::RecordMatrixCodec::ChooseSide(ds->train.num_columns());
    } else {
      auto trained = bench::TrainGan(*ds, options);
      TABLEGAN_CHECK_OK(trained.status());
      seconds = trained->seconds;
      side = trained->gan->side();
    }
    bench::PrintRow({name, std::to_string(ds->train.num_rows()),
                     std::to_string(side), std::to_string(options.epochs),
                     bench::FormatDouble(seconds, 1),
                     bench::FormatDouble(paper_minutes[i], 1)},
                    widths);
    ++i;
  }
  std::printf(
      "\nShape check: training cost tracks rows x matrix size; Airline "
      "uses the chunked path (2 chunks).\n");
}

// --- Steady-state training-step bench (--train-step) --------------------

core::TableGanOptions TrainStepOptions(bool reuse_workspace) {
  core::TableGanOptions options;
  options.base_channels = 16;
  options.epochs = 8;
  options.batch_size = 32;
  options.latent_dim = 32;
  options.seed = 9001;
  options.num_threads = 1;  // single-core host; isolates allocator cost
  options.reuse_workspace = reuse_workspace;
  return options;
}

struct TrainStepRun {
  std::vector<TrainingMetrics> epochs;
  double total_seconds = 0.0;
};

TrainStepRun RunTrainStepOnce(const data::Table& table, int label_col,
                              bool reuse_workspace) {
  TrainStepRun run;
  core::TableGanOptions options = TrainStepOptions(reuse_workspace);
  options.metrics_callback = [&run](const TrainingMetrics& m) {
    run.epochs.push_back(m);
  };
  core::TableGan gan(options);
  Stopwatch watch;
  TABLEGAN_CHECK_OK(gan.Fit(table, label_col));
  run.total_seconds = watch.ElapsedSeconds();
  return run;
}

// Mean steady-state throughput: epoch 1 warms the pool (and caches), so
// it is excluded from both configurations symmetrically.
double SteadyExamplesPerSec(const TrainStepRun& run) {
  double examples = 0.0, seconds = 0.0;
  for (size_t e = 1; e < run.epochs.size(); ++e) {
    examples += static_cast<double>(run.epochs[e].examples);
    seconds += run.epochs[e].epoch_seconds;
  }
  return seconds > 0.0 ? examples / seconds : 0.0;
}

void RunTrainStep(const std::string& out_path) {
  bench::PrintHeader("Training-step throughput: workspace reuse off vs. on");
  Rng rng(7);
  data::Table table = data::MakeAdultLike(4096, &rng);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];

  // Alternate the configurations and keep the best repetition of each so
  // that run order, page-cache state and background load on the shared
  // host do not bias one side.
  TrainStepRun off, on;
  double off_eps = 0.0, on_eps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    TrainStepRun o = RunTrainStepOnce(table, label_col, false);
    TrainStepRun p = RunTrainStepOnce(table, label_col, true);
    const double oe = SteadyExamplesPerSec(o);
    const double pe = SteadyExamplesPerSec(p);
    if (oe > off_eps) { off_eps = oe; off = o; }
    if (pe > on_eps) { on_eps = pe; on = p; }
  }
  const double speedup = off_eps > 0.0 ? on_eps / off_eps : 0.0;

  int64_t steady_allocs = 0;
  const TrainingMetrics& last = on.epochs.back();
  for (size_t e = 1; e < on.epochs.size(); ++e) {
    steady_allocs += on.epochs[e].workspace_allocs;
  }

  const std::vector<int> widths{14, 18, 14, 18};
  bench::PrintRow({"Mode", "SteadyRows/s", "TotalSecs", "PoolBytes"}, widths);
  bench::PrintRow({"reuse off", bench::FormatDouble(off_eps, 1),
                   bench::FormatDouble(off.total_seconds, 2), "0"},
                  widths);
  bench::PrintRow({"reuse on", bench::FormatDouble(on_eps, 1),
                   bench::FormatDouble(on.total_seconds, 2),
                   std::to_string(last.workspace_bytes)},
                  widths);
  std::printf("\nSpeedup (steady-state rows/s): %.3fx; post-warmup pool "
              "allocations: %lld\n",
              speedup, static_cast<long long>(steady_allocs));

  std::ofstream out(out_path);
  TABLEGAN_CHECK(out.good());
  out << "{\n"
      << "  \"bench\": \"train_step_workspace_reuse\",\n"
      << "  \"rows\": " << table.num_rows() << ",\n"
      << "  \"batch_size\": " << TrainStepOptions(true).batch_size << ",\n"
      << "  \"epochs\": " << TrainStepOptions(true).epochs << ",\n"
      << "  \"num_threads\": 1,\n"
      << "  \"reuse_off\": {\n"
      << "    \"steady_examples_per_sec\": " << bench::JsonNumber(off_eps, 3)
      << ",\n"
      << "    \"total_seconds\": " << bench::JsonNumber(off.total_seconds, 4)
      << "\n  },\n"
      << "  \"reuse_on\": {\n"
      << "    \"steady_examples_per_sec\": " << bench::JsonNumber(on_eps, 3)
      << ",\n"
      << "    \"total_seconds\": " << bench::JsonNumber(on.total_seconds, 4)
      << ",\n"
      << "    \"post_warmup_allocs\": " << steady_allocs << ",\n"
      << "    \"workspace_bytes\": " << last.workspace_bytes << "\n  },\n"
      << "  \"speedup\": " << bench::JsonNumber(speedup, 4) << "\n"
      << "}\n";
  std::printf("Wrote %s\n", out_path.c_str());
}

// --- Allocation smoke check (--alloc-smoke) -----------------------------

// Fast gate for CI: after the warmup epoch every training-step buffer
// must come from the pool. Any post-warmup pool miss fails the run.
int RunAllocSmoke() {
  Rng rng(11);
  data::Table table = data::MakeAdultLike(200, &rng);  // includes a tail batch
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  std::vector<TrainingMetrics> seen;
  core::TableGanOptions options = TrainStepOptions(true);
  options.epochs = 3;
  options.metrics_callback = [&seen](const TrainingMetrics& m) {
    seen.push_back(m);
  };
  core::TableGan gan(options);
  TABLEGAN_CHECK_OK(gan.Fit(table, label_col));

  int failures = 0;
  if (seen.empty() || seen[0].workspace_allocs == 0) {
    std::printf("FAIL: warmup epoch reported no pool allocations "
                "(workspace accounting broken?)\n");
    ++failures;
  }
  for (size_t e = 1; e < seen.size(); ++e) {
    if (seen[e].workspace_allocs != 0) {
      std::printf("FAIL: epoch %lld allocated %lld buffers after warmup\n",
                  static_cast<long long>(seen[e].epoch),
                  static_cast<long long>(seen[e].workspace_allocs));
      ++failures;
    }
    if (seen[e].workspace_bytes != seen[0].workspace_bytes) {
      std::printf("FAIL: pool grew after warmup (epoch %lld: %lld bytes, "
                  "warmup: %lld bytes)\n",
                  static_cast<long long>(seen[e].epoch),
                  static_cast<long long>(seen[e].workspace_bytes),
                  static_cast<long long>(seen[0].workspace_bytes));
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("OK: zero pool allocations across %zu post-warmup epochs "
                "(pool holds %lld bytes)\n",
                seen.size() - 1,
                static_cast<long long>(seen[0].workspace_bytes));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tablegan

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--train-step") == 0) {
    tablegan::RunTrainStep(argc > 2 ? argv[2] : "BENCH_train_step.json");
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--alloc-smoke") == 0) {
    return tablegan::RunAllocSmoke();
  }
  tablegan::Run();
  return 0;
}
