#include "privacy/risk.h"

#include <algorithm>

namespace tablegan {
namespace privacy {

ProsecutorRisk ComputeProsecutorRisk(const Partition& partition, int k) {
  ProsecutorRisk out;
  int64_t total = 0, below = 0;
  double risk_sum = 0.0;
  for (const auto& group : partition) {
    const auto size = static_cast<int64_t>(group.size());
    if (size == 0) continue;
    const double risk = 1.0 / static_cast<double>(size);
    risk_sum += risk * static_cast<double>(size);
    out.maximum = std::max(out.maximum, risk);
    total += size;
    if (size < k) below += size;
  }
  if (total > 0) {
    out.average = risk_sum / static_cast<double>(total);
    out.fraction_below_k =
        static_cast<double>(below) / static_cast<double>(total);
  }
  return out;
}

double ComputeJournalistRisk(const Partition& partition) {
  size_t smallest = 0;
  for (const auto& group : partition) {
    if (group.empty()) continue;
    if (smallest == 0 || group.size() < smallest) smallest = group.size();
  }
  return smallest == 0 ? 0.0 : 1.0 / static_cast<double>(smallest);
}

double ComputeMarketerRisk(const Partition& partition) {
  int64_t total = 0;
  int64_t classes = 0;
  for (const auto& group : partition) {
    if (group.empty()) continue;
    total += static_cast<int64_t>(group.size());
    ++classes;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(classes) /
                          static_cast<double>(total);
}

}  // namespace privacy
}  // namespace tablegan
