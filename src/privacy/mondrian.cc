#include "privacy/mondrian.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tablegan {
namespace privacy {
namespace {

struct MondrianContext {
  const data::Table& table;
  std::vector<int> qids;
  std::vector<double> col_span;  // global ranges for normalization
  int k;
  Partition result;

  void Split(std::vector<int64_t> rows) {
    if (static_cast<int>(rows.size()) < 2 * k) {
      result.push_back(std::move(rows));
      return;
    }
    // Widest normalized QID range within this partition.
    int best_qid = -1;
    double best_width = 0.0;
    for (size_t qi = 0; qi < qids.size(); ++qi) {
      const int col = qids[qi];
      double lo = table.Get(rows[0], col), hi = lo;
      for (int64_t r : rows) {
        const double v = table.Get(r, col);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      const double span = col_span[qi];
      const double width = span > 0.0 ? (hi - lo) / span : 0.0;
      if (width > best_width) {
        best_width = width;
        best_qid = col;
      }
    }
    if (best_qid < 0 || best_width <= 0.0) {
      result.push_back(std::move(rows));  // all QIDs constant: one class
      return;
    }
    // Median split (strict partition: <= median goes left).
    std::vector<double> values;
    values.reserve(rows.size());
    for (int64_t r : rows) values.push_back(table.Get(r, best_qid));
    std::nth_element(values.begin(),
                     values.begin() + static_cast<int64_t>(values.size() / 2),
                     values.end());
    const double median = values[values.size() / 2];
    std::vector<int64_t> left, right;
    for (int64_t r : rows) {
      if (table.Get(r, best_qid) < median) {
        left.push_back(r);
      } else {
        right.push_back(r);
      }
    }
    if (static_cast<int>(left.size()) < k ||
        static_cast<int>(right.size()) < k) {
      // Try the other tie-breaking direction before giving up.
      left.clear();
      right.clear();
      for (int64_t r : rows) {
        if (table.Get(r, best_qid) <= median) {
          left.push_back(r);
        } else {
          right.push_back(r);
        }
      }
      if (static_cast<int>(left.size()) < k ||
          static_cast<int>(right.size()) < k) {
        result.push_back(std::move(rows));
        return;
      }
    }
    Split(std::move(left));
    Split(std::move(right));
  }
};

}  // namespace

Result<Partition> MondrianPartition(const data::Table& table, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (table.num_rows() < k) {
    return Status::InvalidArgument("fewer rows than k");
  }
  std::vector<int> qids =
      table.schema().ColumnsWithRole(data::ColumnRole::kQuasiIdentifier);
  if (qids.empty()) {
    return Status::FailedPrecondition("schema declares no QID columns");
  }
  MondrianContext ctx{table, qids, {}, k, {}};
  for (int col : qids) {
    const auto& values = table.column(col);
    double lo = values[0], hi = values[0];
    for (double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    ctx.col_span.push_back(hi - lo);
  }
  std::vector<int64_t> all(static_cast<size_t>(table.num_rows()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    all[static_cast<size_t>(i)] = i;
  }
  ctx.Split(std::move(all));
  return ctx.result;
}

data::Table GeneralizeQids(const data::Table& table,
                           const Partition& partition) {
  data::Table out = table.SelectRows([&] {
    std::vector<int64_t> all(static_cast<size_t>(table.num_rows()));
    for (int64_t i = 0; i < table.num_rows(); ++i) {
      all[static_cast<size_t>(i)] = i;
    }
    return all;
  }());
  const std::vector<int> qids =
      table.schema().ColumnsWithRole(data::ColumnRole::kQuasiIdentifier);
  for (const auto& group : partition) {
    for (int col : qids) {
      double mean = 0.0;
      for (int64_t r : group) mean += table.Get(r, col);
      mean /= static_cast<double>(group.size());
      if (table.schema().column(col).type != data::ColumnType::kContinuous) {
        mean = std::round(mean);
      }
      for (int64_t r : group) out.Set(r, col, mean);
    }
  }
  return out;
}

}  // namespace privacy
}  // namespace tablegan
