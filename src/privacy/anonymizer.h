#ifndef TABLEGAN_PRIVACY_ANONYMIZER_H_
#define TABLEGAN_PRIVACY_ANONYMIZER_H_

#include "common/random.h"
#include "common/status.h"
#include "data/table.h"
#include "privacy/partition.h"

namespace tablegan {
namespace privacy {

/// Our substitute for the ARX anonymization tool (paper §5.1.3). Two
/// pipelines are offered, mirroring the paper's two ARX baselines:
///
///  1. k-anonymity + t-closeness: Mondrian partition with parameter k,
///     then greedy merging of equivalence classes until every class
///     passes the t-closeness EMD test on every sensitive attribute.
///  2. (epsilon, d)-differential privacy + delta-disclosure: the
///     partition is additionally required to satisfy delta-disclosure
///     (classes merged until it does), and released QID centroids are
///     perturbed with Laplace(range/epsilon) noise; a fraction d of the
///     released rows is resampled uniformly from the table (the "d"
///     relaxation). Sensitive attributes remain unmodified in both
///     pipelines, as in ARX.
struct ArxOptions {
  int k = 5;
  /// t-closeness bound; <= 0 disables the t-closeness pass.
  double t = 0.01;
  /// l-diversity bound; <= 1 disables the l-diversity pass.
  int l = 0;
  uint64_t seed = 31;
};

struct DpOptions {
  double epsilon = 1.0;
  double d = 1e-6;
  /// delta-disclosure bound; <= 0 disables that pass.
  double delta_disclosure = 1.0;
  int k = 5;  // base partition parameter
  uint64_t seed = 37;
};

struct AnonymizationResult {
  data::Table released;
  Partition partition;
};

/// Pipeline 1: k-anonymity (+ optional l-diversity / t-closeness).
Result<AnonymizationResult> ArxAnonymize(const data::Table& table,
                                         const ArxOptions& options);

/// Pipeline 2: (epsilon, d)-DP-style release with delta-disclosure.
Result<AnonymizationResult> DpAnonymize(const data::Table& table,
                                        const DpOptions& options);

}  // namespace privacy
}  // namespace tablegan

#endif  // TABLEGAN_PRIVACY_ANONYMIZER_H_
