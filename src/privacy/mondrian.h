#ifndef TABLEGAN_PRIVACY_MONDRIAN_H_
#define TABLEGAN_PRIVACY_MONDRIAN_H_

#include "common/status.h"
#include "data/table.h"
#include "privacy/partition.h"

namespace tablegan {
namespace privacy {

/// Multidimensional Mondrian partitioning [LeFevre et al.]: recursively
/// splits the record set at the median of the QID with the widest
/// normalized range, stopping when a further split would violate
/// k-anonymity. This is the generalization engine our ARX-substitute
/// anonymizer is built on (paper baseline, §5.1.3).
Result<Partition> MondrianPartition(const data::Table& table, int k);

/// Materializes a released table from a partition: each QID cell is
/// replaced by its equivalence-class mean (rounded for discrete /
/// categorical QIDs — the numeric counterpart of the paper's label
/// encoding of generalized values, footnote 6); sensitive attributes are
/// left untouched, exactly as ARX does.
data::Table GeneralizeQids(const data::Table& table,
                           const Partition& partition);

}  // namespace privacy
}  // namespace tablegan

#endif  // TABLEGAN_PRIVACY_MONDRIAN_H_
