#ifndef TABLEGAN_PRIVACY_SDC_MICRO_H_
#define TABLEGAN_PRIVACY_SDC_MICRO_H_

#include "common/random.h"
#include "common/status.h"
#include "data/table.h"

namespace tablegan {
namespace privacy {

/// Our substitute for the sdcMicro R package baseline (paper §5.1.3):
/// micro-aggregation perturbs the QIDs and continuous sensitive
/// attributes, PRAM post-randomizes the categorical sensitive
/// attributes — note that unlike ARX, sdcMicro perturbs sensitive
/// attributes too.
struct SdcMicroOptions {
  /// Micro-aggregation group size (records per aggregate).
  int aggregation_group = 3;
  /// PRAM retention probability pd: a categorical cell keeps its value
  /// with probability pd and is resampled from the column's empirical
  /// marginal otherwise.
  double pram_pd = 0.5;
  /// Weight alpha of the marginal used for resampling (alpha = 1 is the
  /// plain invariant marginal; smaller alpha flattens it toward uniform).
  double pram_alpha = 1.0;
  uint64_t seed = 41;
};

/// Micro-aggregation of a single numeric column: records are sorted by
/// value, grouped in runs of `group` and replaced by the group mean.
void MicroAggregateColumn(data::Table* table, int col, int group);

/// PRAM on a single categorical column.
void PramColumn(data::Table* table, int col, double pd, double alpha,
                Rng* rng);

/// Full sdcMicro-style release over all QID and sensitive columns.
Result<data::Table> SdcMicroPerturb(const data::Table& table,
                                    const SdcMicroOptions& options);

}  // namespace privacy
}  // namespace tablegan

#endif  // TABLEGAN_PRIVACY_SDC_MICRO_H_
