#include "privacy/dcr.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tablegan {
namespace privacy {

std::vector<int> QidAndSensitiveColumns(const data::Schema& schema) {
  std::vector<int> out =
      schema.ColumnsWithRole(data::ColumnRole::kQuasiIdentifier);
  for (int c : schema.ColumnsWithRole(data::ColumnRole::kSensitive)) {
    out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> SensitiveOnlyColumns(const data::Schema& schema) {
  return schema.ColumnsWithRole(data::ColumnRole::kSensitive);
}

Result<DcrResult> ComputeDcr(const data::Table& original,
                             const data::Table& released,
                             const std::vector<int>& columns) {
  if (original.num_rows() == 0 || released.num_rows() == 0) {
    return Status::InvalidArgument("empty table in DCR computation");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("no columns selected for DCR");
  }
  for (int c : columns) {
    if (c < 0 || c >= original.num_columns() || c >= released.num_columns()) {
      return Status::OutOfRange("DCR column out of range");
    }
  }
  const size_t f = columns.size();
  // Normalization constants fitted on the original table.
  std::vector<double> lo(f), inv_span(f);
  for (size_t j = 0; j < f; ++j) {
    const auto& col = original.column(columns[j]);
    const double mn = *std::min_element(col.begin(), col.end());
    const double mx = *std::max_element(col.begin(), col.end());
    lo[j] = mn;
    inv_span[j] = mx > mn ? 1.0 / (mx - mn) : 0.0;
  }

  // Pre-normalize both tables into dense row-major buffers.
  const int64_t n = original.num_rows();
  const int64_t m = released.num_rows();
  std::vector<float> orig(static_cast<size_t>(n) * f);
  std::vector<float> rel(static_cast<size_t>(m) * f);
  for (int64_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < f; ++j) {
      orig[static_cast<size_t>(r) * f + j] = static_cast<float>(
          (original.Get(r, columns[j]) - lo[j]) * inv_span[j]);
    }
  }
  for (int64_t r = 0; r < m; ++r) {
    for (size_t j = 0; j < f; ++j) {
      rel[static_cast<size_t>(r) * f + j] = static_cast<float>(
          (released.Get(r, columns[j]) - lo[j]) * inv_span[j]);
    }
  }

  double sum = 0.0, sum_sq = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    const float* a = orig.data() + static_cast<size_t>(r) * f;
    float best = std::numeric_limits<float>::max();
    for (int64_t s = 0; s < m; ++s) {
      const float* b = rel.data() + static_cast<size_t>(s) * f;
      float d = 0.0f;
      for (size_t j = 0; j < f; ++j) {
        const float diff = a[j] - b[j];
        d += diff * diff;
      }
      best = std::min(best, d);
    }
    const double dist = std::sqrt(static_cast<double>(best));
    sum += dist;
    sum_sq += dist * dist;
  }
  DcrResult out;
  out.mean = sum / static_cast<double>(n);
  out.stddev =
      std::sqrt(std::max(0.0, sum_sq / static_cast<double>(n) -
                                  out.mean * out.mean));
  return out;
}

}  // namespace privacy
}  // namespace tablegan
