#include "privacy/dcr.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/neighbors.h"
#include "common/parallel.h"

namespace tablegan {
namespace privacy {

std::vector<int> QidAndSensitiveColumns(const data::Schema& schema) {
  std::vector<int> out =
      schema.ColumnsWithRole(data::ColumnRole::kQuasiIdentifier);
  for (int c : schema.ColumnsWithRole(data::ColumnRole::kSensitive)) {
    out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> SensitiveOnlyColumns(const data::Schema& schema) {
  return schema.ColumnsWithRole(data::ColumnRole::kSensitive);
}

Result<DcrResult> ComputeDcr(const data::Table& original,
                             const data::Table& released,
                             const std::vector<int>& columns) {
  if (original.num_rows() == 0 || released.num_rows() == 0) {
    return Status::InvalidArgument("empty table in DCR computation");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("no columns selected for DCR");
  }
  for (int c : columns) {
    if (c < 0 || c >= original.num_columns() || c >= released.num_columns()) {
      return Status::OutOfRange("DCR column out of range");
    }
  }
  const size_t f = columns.size();
  // Normalization constants fitted on the original table.
  std::vector<double> lo(f), inv_span(f);
  for (size_t j = 0; j < f; ++j) {
    const auto& col = original.column(columns[j]);
    const double mn = *std::min_element(col.begin(), col.end());
    const double mx = *std::max_element(col.begin(), col.end());
    lo[j] = mn;
    inv_span[j] = mx > mn ? 1.0 / (mx - mn) : 0.0;
  }

  // Pre-normalize both tables into dense row-major buffers (row-parallel;
  // each row writes its own slice).
  const int64_t n = original.num_rows();
  const int64_t m = released.num_rows();
  std::vector<float> orig(static_cast<size_t>(n) * f);
  std::vector<float> rel(static_cast<size_t>(m) * f);
  const int64_t fill_grain = std::max<int64_t>(
      1, 4096 / static_cast<int64_t>(f));
  ParallelFor(n, fill_grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (size_t j = 0; j < f; ++j) {
        orig[static_cast<size_t>(r) * f + j] = static_cast<float>(
            (original.Get(r, columns[j]) - lo[j]) * inv_span[j]);
      }
    }
  });
  ParallelFor(m, fill_grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (size_t j = 0; j < f; ++j) {
        rel[static_cast<size_t>(r) * f + j] = static_cast<float>(
            (released.Get(r, columns[j]) - lo[j]) * inv_span[j]);
      }
    }
  });

  // Blocked parallel nearest-neighbor scan shared with the risk paths,
  // then Welford moments over per-chunk partials — both bitwise
  // identical to a serial pass at any thread count, and free of the
  // E[x^2] - mean^2 cancellation the stddev here used to suffer from.
  std::vector<float> best(static_cast<size_t>(n));
  NearestSquaredDistances(orig.data(), n, rel.data(), m,
                          static_cast<int64_t>(f), best.data());
  const Moments moments = ComputeMoments(n, [&](int64_t i) {
    return std::sqrt(static_cast<double>(best[static_cast<size_t>(i)]));
  });
  DcrResult out;
  out.mean = moments.mean;
  out.stddev = moments.StdDev();
  return out;
}

}  // namespace privacy
}  // namespace tablegan
