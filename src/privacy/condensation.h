#ifndef TABLEGAN_PRIVACY_CONDENSATION_H_
#define TABLEGAN_PRIVACY_CONDENSATION_H_

#include "common/random.h"
#include "common/status.h"
#include "data/table.h"

namespace tablegan {
namespace privacy {

/// The condensation synthesis baseline [Aggarwal & Yu 2004] (paper
/// §5.1.3): records are grouped into clusters of `group_size` similar
/// records; each group is condensed to its first- and second-order
/// statistics (mean vector and covariance matrix), and synthetic records
/// are drawn along the group's covariance eigenvectors with uniform
/// coefficients whose variances match the eigenvalues — preserving both
/// moments in expectation while never releasing a real record.
struct CondensationOptions {
  int group_size = 100;  // paper tests 100 and 50
  uint64_t seed = 43;
};

Result<data::Table> CondensationSynthesize(const data::Table& table,
                                           const CondensationOptions& options);

namespace internal_condensation {

/// Cyclic Jacobi eigendecomposition of a symmetric n x n matrix (row
/// major). Outputs eigenvalues and matching column eigenvectors
/// (v[i*n+j] = component i of eigenvector j). Exposed for testing.
void JacobiEigen(std::vector<double> a, int n, std::vector<double>* eigvals,
                 std::vector<double>* eigvecs, int sweeps = 30);

}  // namespace internal_condensation

}  // namespace privacy
}  // namespace tablegan

#endif  // TABLEGAN_PRIVACY_CONDENSATION_H_
