#ifndef TABLEGAN_PRIVACY_PARTITION_H_
#define TABLEGAN_PRIVACY_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/table.h"

namespace tablegan {
namespace privacy {

/// A partition of table rows into equivalence classes: groups of records
/// indistinguishable w.r.t. their (generalized) QIDs — the core artifact
/// of the generalization-based privacy models in paper §2.1.
using Partition = std::vector<std::vector<int64_t>>;

/// True iff every class has at least k members (k-anonymity).
bool SatisfiesKAnonymity(const Partition& partition, int k);

/// True iff within every class, `sensitive_col` takes at least l distinct
/// values (l-diversity [Machanavajjhala et al.]).
bool SatisfiesLDiversity(const data::Table& table,
                         const Partition& partition, int sensitive_col,
                         int l);

/// Earth-mover's distance between the distribution of `sensitive_col`
/// inside a class and its global distribution, computed on the ordered
/// domain (numeric EMD via cumulative sums over `bins` equal-width bins,
/// normalized to [0,1]).
double OrderedEmd(const data::Table& table, const std::vector<int64_t>& rows,
                  int sensitive_col, int bins = 16);

/// True iff every class has OrderedEmd <= t for `sensitive_col`
/// (t-closeness [Li et al. 2007]).
bool SatisfiesTCloseness(const data::Table& table,
                         const Partition& partition, int sensitive_col,
                         double t, int bins = 16);

/// delta-disclosure [Brickell & Shmatikov]: for every class and every
/// observed sensitive value v, |log(P(v|class) / P(v))| < delta. Values
/// are bucketed into `bins` bins for continuous attributes.
bool SatisfiesDeltaDisclosure(const data::Table& table,
                              const Partition& partition, int sensitive_col,
                              double delta, int bins = 16);

}  // namespace privacy
}  // namespace tablegan

#endif  // TABLEGAN_PRIVACY_PARTITION_H_
