#ifndef TABLEGAN_PRIVACY_RISK_H_
#define TABLEGAN_PRIVACY_RISK_H_

#include "data/table.h"
#include "privacy/partition.h"

namespace tablegan {
namespace privacy {

/// Prosecutor-model re-identification risk (paper §2.2): the attacker
/// knows every target's QIDs, so a record's risk is 1/|matching
/// equivalence class|. Only applies to generalization-based releases —
/// table-GAN has no one-to-one correspondence, which is exactly why the
/// paper switches to DCR for it.
struct ProsecutorRisk {
  double average = 0.0;  // mean per-record risk
  double maximum = 0.0;  // worst-case record
  /// Fraction of records whose class is smaller than k (given below).
  double fraction_below_k = 0.0;
};

ProsecutorRisk ComputeProsecutorRisk(const Partition& partition, int k);

/// Journalist-model risk (paper §2.2): the attacker has no specific
/// target and matches against an external register; the standard
/// conservative estimate is the risk of the *smallest* equivalence
/// class, 1/min|class|.
double ComputeJournalistRisk(const Partition& partition);

/// Marketer-model risk (paper §2.2): the attacker wants to re-identify
/// as many records as possible; the expected fraction of re-identified
/// records is (#classes)/(#records) — each class contributes one
/// expected hit.
double ComputeMarketerRisk(const Partition& partition);

}  // namespace privacy
}  // namespace tablegan

#endif  // TABLEGAN_PRIVACY_RISK_H_
