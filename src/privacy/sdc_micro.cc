#include "privacy/sdc_micro.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace tablegan {
namespace privacy {

void MicroAggregateColumn(data::Table* table, int col, int group) {
  TABLEGAN_CHECK(group >= 1);
  const int64_t n = table->num_rows();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return table->Get(a, col) < table->Get(b, col);
  });
  const bool discrete =
      table->schema().column(col).type != data::ColumnType::kContinuous;
  for (int64_t start = 0; start < n; start += group) {
    const int64_t end = std::min<int64_t>(n, start + group);
    double mean = 0.0;
    for (int64_t i = start; i < end; ++i) {
      mean += table->Get(order[static_cast<size_t>(i)], col);
    }
    mean /= static_cast<double>(end - start);
    if (discrete) mean = std::round(mean);
    for (int64_t i = start; i < end; ++i) {
      table->Set(order[static_cast<size_t>(i)], col, mean);
    }
  }
}

void PramColumn(data::Table* table, int col, double pd, double alpha,
                Rng* rng) {
  TABLEGAN_CHECK(pd >= 0.0 && pd <= 1.0);
  const int64_t n = table->num_rows();
  // Empirical marginal over observed levels.
  std::vector<double> levels;
  std::vector<double> counts;
  for (int64_t r = 0; r < n; ++r) {
    const double v = table->Get(r, col);
    auto it = std::find(levels.begin(), levels.end(), v);
    if (it == levels.end()) {
      levels.push_back(v);
      counts.push_back(1.0);
    } else {
      counts[static_cast<size_t>(it - levels.begin())] += 1.0;
    }
  }
  // alpha < 1 flattens the resampling distribution toward uniform.
  std::vector<double> weights(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    weights[i] = std::pow(counts[i], alpha);
  }
  for (int64_t r = 0; r < n; ++r) {
    if (rng->NextBool(pd)) continue;  // retained
    table->Set(r, col, levels[static_cast<size_t>(
                           rng->NextCategorical(weights))]);
  }
}

Result<data::Table> SdcMicroPerturb(const data::Table& table,
                                    const SdcMicroOptions& options) {
  if (options.aggregation_group < 1) {
    return Status::InvalidArgument("aggregation_group must be >= 1");
  }
  if (options.pram_pd < 0.0 || options.pram_pd > 1.0) {
    return Status::InvalidArgument("pram_pd must be in [0, 1]");
  }
  data::Table out = table.SelectRows([&] {
    std::vector<int64_t> all(static_cast<size_t>(table.num_rows()));
    std::iota(all.begin(), all.end(), int64_t{0});
    return all;
  }());
  Rng rng(options.seed);
  const data::Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    const data::ColumnSpec& spec = schema.column(c);
    if (spec.role == data::ColumnRole::kLabel) continue;
    if (spec.type == data::ColumnType::kCategorical &&
        spec.role == data::ColumnRole::kSensitive) {
      PramColumn(&out, c, options.pram_pd, options.pram_alpha, &rng);
    } else {
      MicroAggregateColumn(&out, c, options.aggregation_group);
    }
  }
  return out;
}

}  // namespace privacy
}  // namespace tablegan
