#include "privacy/partition.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"

namespace tablegan {
namespace privacy {
namespace {

// Histogram of `col` restricted to `rows` (nullptr = all rows) over
// `bins` equal-width bins spanning the global column range.
std::vector<double> BinnedDistribution(const data::Table& table,
                                       const std::vector<int64_t>* rows,
                                       int col, int bins) {
  const auto& values = table.column(col);
  TABLEGAN_CHECK(!values.empty());
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::vector<double> hist(static_cast<size_t>(bins), 0.0);
  const double span = hi - lo;
  auto add = [&](double v) {
    int b = span > 0.0 ? static_cast<int>((v - lo) / span *
                                          static_cast<double>(bins))
                       : 0;
    b = std::clamp(b, 0, bins - 1);
    hist[static_cast<size_t>(b)] += 1.0;
  };
  double total = 0.0;
  if (rows == nullptr) {
    for (double v : values) add(v);
    total = static_cast<double>(values.size());
  } else {
    for (int64_t r : *rows) add(values[static_cast<size_t>(r)]);
    total = static_cast<double>(rows->size());
  }
  if (total > 0.0) {
    for (double& h : hist) h /= total;
  }
  return hist;
}

}  // namespace

bool SatisfiesKAnonymity(const Partition& partition, int k) {
  for (const auto& group : partition) {
    if (static_cast<int>(group.size()) < k) return false;
  }
  return !partition.empty();
}

bool SatisfiesLDiversity(const data::Table& table,
                         const Partition& partition, int sensitive_col,
                         int l) {
  for (const auto& group : partition) {
    std::set<double> distinct;
    for (int64_t r : group) {
      distinct.insert(table.Get(r, sensitive_col));
      if (static_cast<int>(distinct.size()) >= l) break;
    }
    if (static_cast<int>(distinct.size()) < l) return false;
  }
  return !partition.empty();
}

double OrderedEmd(const data::Table& table, const std::vector<int64_t>& rows,
                  int sensitive_col, int bins) {
  const std::vector<double> local =
      BinnedDistribution(table, &rows, sensitive_col, bins);
  const std::vector<double> global =
      BinnedDistribution(table, nullptr, sensitive_col, bins);
  // Ordered-domain EMD = normalized L1 distance of the CDFs.
  double emd = 0.0, cum = 0.0;
  for (int b = 0; b < bins; ++b) {
    cum += local[static_cast<size_t>(b)] - global[static_cast<size_t>(b)];
    emd += std::fabs(cum);
  }
  return emd / static_cast<double>(bins - 1);
}

bool SatisfiesTCloseness(const data::Table& table,
                         const Partition& partition, int sensitive_col,
                         double t, int bins) {
  for (const auto& group : partition) {
    if (OrderedEmd(table, group, sensitive_col, bins) > t) return false;
  }
  return !partition.empty();
}

bool SatisfiesDeltaDisclosure(const data::Table& table,
                              const Partition& partition, int sensitive_col,
                              double delta, int bins) {
  const std::vector<double> global =
      BinnedDistribution(table, nullptr, sensitive_col, bins);
  for (const auto& group : partition) {
    const std::vector<double> local =
        BinnedDistribution(table, &group, sensitive_col, bins);
    for (int b = 0; b < bins; ++b) {
      const double p = local[static_cast<size_t>(b)];
      const double q = global[static_cast<size_t>(b)];
      if (p <= 0.0) continue;  // only observed values constrain
      if (q <= 0.0) return false;
      if (std::fabs(std::log(p / q)) >= delta) return false;
    }
  }
  return !partition.empty();
}

}  // namespace privacy
}  // namespace tablegan
