#include "privacy/anonymizer.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.h"
#include "privacy/mondrian.h"

namespace tablegan {
namespace privacy {
namespace {

// Greedily merges adjacent equivalence classes until `ok(partition)`
// holds (or only one class remains). Classes produced by Mondrian are
// QID-adjacent in creation order, so merging neighbors keeps
// generalization loss low.
Partition MergeUntil(Partition partition,
                     const std::function<bool(const Partition&)>& ok) {
  while (partition.size() > 1 && !ok(partition)) {
    // Find the first violating class by bisection over a copy: simply
    // merge the smallest class with its neighbor — cheap and effective.
    size_t smallest = 0;
    for (size_t i = 1; i < partition.size(); ++i) {
      if (partition[i].size() < partition[smallest].size()) smallest = i;
    }
    const size_t neighbor = smallest + 1 < partition.size() ? smallest + 1
                                                            : smallest - 1;
    auto& dst = partition[std::min(smallest, neighbor)];
    auto& src = partition[std::max(smallest, neighbor)];
    dst.insert(dst.end(), src.begin(), src.end());
    partition.erase(partition.begin() +
                    static_cast<int64_t>(std::max(smallest, neighbor)));
  }
  return partition;
}

std::vector<int> SensitiveColumns(const data::Table& table) {
  return table.schema().ColumnsWithRole(data::ColumnRole::kSensitive);
}

}  // namespace

Result<AnonymizationResult> ArxAnonymize(const data::Table& table,
                                         const ArxOptions& options) {
  TABLEGAN_ASSIGN_OR_RETURN(Partition partition,
                            MondrianPartition(table, options.k));
  const std::vector<int> sensitive = SensitiveColumns(table);
  if (options.l > 1) {
    partition = MergeUntil(std::move(partition), [&](const Partition& p) {
      for (int col : sensitive) {
        if (!SatisfiesLDiversity(table, p, col, options.l)) return false;
      }
      return true;
    });
  }
  if (options.t > 0.0) {
    partition = MergeUntil(std::move(partition), [&](const Partition& p) {
      for (int col : sensitive) {
        if (!SatisfiesTCloseness(table, p, col, options.t)) return false;
      }
      return true;
    });
  }
  AnonymizationResult out{GeneralizeQids(table, partition),
                          std::move(partition)};
  return out;
}

Result<AnonymizationResult> DpAnonymize(const data::Table& table,
                                        const DpOptions& options) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  TABLEGAN_ASSIGN_OR_RETURN(Partition partition,
                            MondrianPartition(table, options.k));
  const std::vector<int> sensitive = SensitiveColumns(table);
  if (options.delta_disclosure > 0.0) {
    partition = MergeUntil(std::move(partition), [&](const Partition& p) {
      for (int col : sensitive) {
        if (!SatisfiesDeltaDisclosure(table, p, col,
                                      options.delta_disclosure)) {
          return false;
        }
      }
      return true;
    });
  }
  data::Table released = GeneralizeQids(table, partition);

  // Laplace perturbation of released QID centroids: scale = range/eps.
  Rng rng(options.seed);
  auto laplace = [&rng](double scale) {
    const double u = rng.NextDouble() - 0.5;
    return -scale * (u < 0 ? -1.0 : 1.0) *
           std::log(1.0 - 2.0 * std::fabs(u));
  };
  const std::vector<int> qids =
      table.schema().ColumnsWithRole(data::ColumnRole::kQuasiIdentifier);
  for (int col : qids) {
    const auto& values = table.column(col);
    double lo = values[0], hi = values[0];
    for (double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double scale = (hi - lo) / options.epsilon;
    const bool discrete =
        table.schema().column(col).type != data::ColumnType::kContinuous;
    for (int64_t r = 0; r < released.num_rows(); ++r) {
      double v = released.Get(r, col) + laplace(scale);
      v = std::clamp(v, lo, hi);
      if (discrete) v = std::round(v);
      released.Set(r, col, v);
    }
  }
  // The "d" relaxation: a fraction d of rows is released unperturbed
  // (sampled uniformly from the original table).
  const auto swaps = static_cast<int64_t>(
      options.d * static_cast<double>(released.num_rows()));
  for (int64_t s = 0; s < swaps; ++s) {
    const auto r = static_cast<int64_t>(
        rng.NextUint64(static_cast<uint64_t>(released.num_rows())));
    for (int col : qids) released.Set(r, col, table.Get(r, col));
  }
  AnonymizationResult out{std::move(released), std::move(partition)};
  return out;
}

}  // namespace privacy
}  // namespace tablegan
