#include "privacy/condensation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace tablegan {
namespace privacy {
namespace internal_condensation {

void JacobiEigen(std::vector<double> a, int n, std::vector<double>* eigvals,
                 std::vector<double>* eigvecs, int sweeps) {
  eigvecs->assign(static_cast<size_t>(n * n), 0.0);
  for (int i = 0; i < n; ++i) (*eigvecs)[static_cast<size_t>(i * n + i)] = 1.0;
  auto idx = [n](int i, int j) { return static_cast<size_t>(i * n + j); };
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += a[idx(p, q)] * a[idx(p, q)];
    }
    if (off < 1e-20) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a[idx(p, q)];
        if (std::fabs(apq) < 1e-18) continue;
        const double theta = (a[idx(q, q)] - a[idx(p, p)]) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q.
        for (int i = 0; i < n; ++i) {
          const double aip = a[idx(i, p)], aiq = a[idx(i, q)];
          a[idx(i, p)] = c * aip - s * aiq;
          a[idx(i, q)] = s * aip + c * aiq;
        }
        for (int i = 0; i < n; ++i) {
          const double api = a[idx(p, i)], aqi = a[idx(q, i)];
          a[idx(p, i)] = c * api - s * aqi;
          a[idx(q, i)] = s * api + c * aqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = (*eigvecs)[idx(i, p)];
          const double viq = (*eigvecs)[idx(i, q)];
          (*eigvecs)[idx(i, p)] = c * vip - s * viq;
          (*eigvecs)[idx(i, q)] = s * vip + c * viq;
        }
      }
    }
  }
  eigvals->assign(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) (*eigvals)[static_cast<size_t>(i)] = a[idx(i, i)];
}

}  // namespace internal_condensation

Result<data::Table> CondensationSynthesize(
    const data::Table& table, const CondensationOptions& options) {
  const int64_t n = table.num_rows();
  const int f = table.num_columns();
  if (n == 0) return Status::InvalidArgument("empty table");
  if (options.group_size < 2) {
    return Status::InvalidArgument("group_size must be >= 2");
  }
  Rng rng(options.seed);

  // Column stats for standardized distances and output clamping.
  std::vector<double> lo(static_cast<size_t>(f)), hi(static_cast<size_t>(f)),
      inv_span(static_cast<size_t>(f));
  for (int c = 0; c < f; ++c) {
    const auto& col = table.column(c);
    lo[static_cast<size_t>(c)] = *std::min_element(col.begin(), col.end());
    hi[static_cast<size_t>(c)] = *std::max_element(col.begin(), col.end());
    const double span =
        hi[static_cast<size_t>(c)] - lo[static_cast<size_t>(c)];
    inv_span[static_cast<size_t>(c)] = span > 0.0 ? 1.0 / span : 0.0;
  }

  // Greedy clustering: random seed record, take the group_size-1 nearest
  // unused records (normalized Euclidean).
  std::vector<int64_t> unused(static_cast<size_t>(n));
  std::iota(unused.begin(), unused.end(), int64_t{0});
  rng.Shuffle(&unused);
  std::vector<std::vector<int64_t>> groups;
  while (!unused.empty()) {
    const int64_t seed_row = unused.back();
    unused.pop_back();
    const int64_t take = std::min<int64_t>(
        options.group_size - 1, static_cast<int64_t>(unused.size()));
    std::vector<std::pair<double, size_t>> dist;
    dist.reserve(unused.size());
    for (size_t u = 0; u < unused.size(); ++u) {
      double d = 0.0;
      for (int c = 0; c < f; ++c) {
        const double diff = (table.Get(seed_row, c) -
                             table.Get(unused[u], c)) *
                            inv_span[static_cast<size_t>(c)];
        d += diff * diff;
      }
      dist.emplace_back(d, u);
    }
    std::partial_sort(dist.begin(), dist.begin() + take, dist.end());
    std::vector<int64_t> group{seed_row};
    std::vector<size_t> taken;
    for (int64_t i = 0; i < take; ++i) {
      group.push_back(unused[dist[static_cast<size_t>(i)].second]);
      taken.push_back(dist[static_cast<size_t>(i)].second);
    }
    std::sort(taken.rbegin(), taken.rend());
    for (size_t u : taken) {
      unused[u] = unused.back();
      unused.pop_back();
    }
    groups.push_back(std::move(group));
  }

  // Condense each group to (mean, covariance) and synthesize.
  data::Table out(table.schema());
  for (const auto& group : groups) {
    const auto m = static_cast<double>(group.size());
    std::vector<double> mean(static_cast<size_t>(f), 0.0);
    for (int64_t r : group) {
      for (int c = 0; c < f; ++c) {
        mean[static_cast<size_t>(c)] += table.Get(r, c);
      }
    }
    for (double& v : mean) v /= m;
    std::vector<double> cov(static_cast<size_t>(f * f), 0.0);
    for (int64_t r : group) {
      for (int a = 0; a < f; ++a) {
        const double da = table.Get(r, a) - mean[static_cast<size_t>(a)];
        for (int b = a; b < f; ++b) {
          const double db = table.Get(r, b) - mean[static_cast<size_t>(b)];
          cov[static_cast<size_t>(a * f + b)] += da * db;
        }
      }
    }
    for (int a = 0; a < f; ++a) {
      for (int b = a; b < f; ++b) {
        cov[static_cast<size_t>(a * f + b)] /= m;
        cov[static_cast<size_t>(b * f + a)] =
            cov[static_cast<size_t>(a * f + b)];
      }
    }
    std::vector<double> eigvals, eigvecs;
    internal_condensation::JacobiEigen(cov, f, &eigvals, &eigvecs);

    std::vector<double> row(static_cast<size_t>(f));
    for (size_t s = 0; s < group.size(); ++s) {
      row = mean;
      for (int e = 0; e < f; ++e) {
        const double lambda = std::max(0.0, eigvals[static_cast<size_t>(e)]);
        if (lambda <= 0.0) continue;
        // U(-a, a) with a = sqrt(3*lambda) has variance lambda.
        const double coeff =
            rng.Uniform(-1.0, 1.0) * std::sqrt(3.0 * lambda);
        for (int c = 0; c < f; ++c) {
          row[static_cast<size_t>(c)] +=
              coeff * eigvecs[static_cast<size_t>(c * f + e)];
        }
      }
      for (int c = 0; c < f; ++c) {
        double v = std::clamp(row[static_cast<size_t>(c)],
                              lo[static_cast<size_t>(c)],
                              hi[static_cast<size_t>(c)]);
        if (table.schema().column(c).type != data::ColumnType::kContinuous) {
          v = std::round(v);
        }
        row[static_cast<size_t>(c)] = v;
      }
      out.AppendRow(row);
    }
  }
  return out;
}

}  // namespace privacy
}  // namespace tablegan
