#ifndef TABLEGAN_PRIVACY_DCR_H_
#define TABLEGAN_PRIVACY_DCR_H_

#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace tablegan {
namespace privacy {

/// Distance to the closest record (paper §5.1.2 / Table 5): for every
/// record of `original`, the Euclidean distance — after attribute-wise
/// min-max normalization fitted on `original` — to its nearest record in
/// `released`, summarized as mean ± population standard deviation. A
/// small mean or a large std-dev flags privacy risk (some released
/// records sit on top of real ones).
struct DcrResult {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes DCR over the given column subset (e.g. QIDs + sensitive, or
/// sensitive only, matching the two blocks of Table 5).
Result<DcrResult> ComputeDcr(const data::Table& original,
                             const data::Table& released,
                             const std::vector<int>& columns);

/// Convenience: columns with QID+sensitive roles / sensitive role only.
std::vector<int> QidAndSensitiveColumns(const data::Schema& schema);
std::vector<int> SensitiveOnlyColumns(const data::Schema& schema);

}  // namespace privacy
}  // namespace tablegan

#endif  // TABLEGAN_PRIVACY_DCR_H_
