#ifndef TABLEGAN_DATA_SPLIT_H_
#define TABLEGAN_DATA_SPLIT_H_

#include <utility>

#include "common/random.h"
#include "data/table.h"

namespace tablegan {
namespace data {

/// Random train/test partition. The paper holds out ~20% of each dataset
/// as unknown testing records for the model-compatibility and
/// membership-attack experiments (§5.1.1).
struct TrainTestSplit {
  Table train;
  Table test;
};

TrainTestSplit SplitTrainTest(const Table& table, double test_fraction,
                              Rng* rng);

/// Splits a table into `num_chunks` near-equal row ranges for the
/// multi-chunk parallel training mode (paper §4.4).
std::vector<Table> SplitChunks(const Table& table, int num_chunks);

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_SPLIT_H_
