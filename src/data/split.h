#ifndef TABLEGAN_DATA_SPLIT_H_
#define TABLEGAN_DATA_SPLIT_H_

#include <utility>

#include "common/random.h"
#include "data/table.h"
#include "data/table_view.h"

namespace tablegan {
namespace data {

/// Random train/test partition. The paper holds out ~20% of each dataset
/// as unknown testing records for the model-compatibility and
/// membership-attack experiments (§5.1.1).
struct TrainTestSplit {
  Table train;
  Table test;
};

TrainTestSplit SplitTrainTest(const Table& table, double test_fraction,
                              Rng* rng);

/// Splits a table into `num_chunks` near-equal row ranges for the
/// multi-chunk parallel training mode (paper §4.4).
std::vector<Table> SplitChunks(const Table& table, int num_chunks);

/// Zero-copy variant of SplitChunks: the same clamping and row-range
/// math, but each chunk is a TableRangeView into `table` instead of a
/// materialized copy. This is what lets multi-chunk training run over
/// an mmap'd columnar file without ever loading it into RAM. The views
/// borrow `table`; it must outlive them.
std::vector<TableRangeView> SplitChunkViews(const TableView& table,
                                            int num_chunks);

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_SPLIT_H_
