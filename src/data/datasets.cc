#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/logging.h"

namespace tablegan {
namespace data {
namespace {

ColumnSpec Qid(std::string name, ColumnType type) {
  return {std::move(name), type, ColumnRole::kQuasiIdentifier, {}};
}

ColumnSpec Sens(std::string name, ColumnType type) {
  return {std::move(name), type, ColumnRole::kSensitive, {}};
}

ColumnSpec Cat(std::string name, ColumnRole role,
               std::vector<std::string> levels) {
  return {std::move(name), ColumnType::kCategorical, role,
          std::move(levels)};
}

ColumnSpec Label(std::string name) {
  return {std::move(name), ColumnType::kDiscrete, ColumnRole::kLabel, {}};
}

double Median(std::vector<double> v) {
  TABLEGAN_CHECK(!v.empty());
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<int64_t>(mid), v.end());
  return v[mid];
}

// Sets `label_col` to 1{value of `target_col` > median of target_col}.
void DeriveMedianLabel(Table* table, int target_col, int label_col) {
  std::vector<double> target = table->column(target_col);
  const double med = Median(target);
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    table->Set(r, label_col, table->Get(r, target_col) > med ? 1.0 : 0.0);
  }
}

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

// ---------------------------------------------------------------------
// LACity-like payroll: 2 QIDs + 21 sensitive + high_salary label (paper
// Table 3: 15000 train / 3000 test rows). Pay components are strongly
// correlated with an underlying job-grade factor, mirroring the real
// table where quarterly payments track base salary.
Table MakeLaCityLike(int64_t rows, Rng* rng) {
  Schema schema({
      Qid("year", ColumnType::kDiscrete),
      Qid("dept", ColumnType::kDiscrete),
      Sens("job_class", ColumnType::kDiscrete),
      Sens("years_service", ColumnType::kDiscrete),
      Sens("fte_ratio", ColumnType::kContinuous),
      Sens("base_salary", ColumnType::kContinuous),
      Sens("q1_payment", ColumnType::kContinuous),
      Sens("q2_payment", ColumnType::kContinuous),
      Sens("q3_payment", ColumnType::kContinuous),
      Sens("q4_payment", ColumnType::kContinuous),
      Sens("overtime_pay", ColumnType::kContinuous),
      Sens("bonus_pay", ColumnType::kContinuous),
      Sens("longevity_pay", ColumnType::kContinuous),
      Sens("total_pay", ColumnType::kContinuous),
      Sens("health_cost", ColumnType::kContinuous),
      Sens("dental_cost", ColumnType::kContinuous),
      Sens("pension_contrib", ColumnType::kContinuous),
      Sens("benefit_cost", ColumnType::kContinuous),
      Cat("union_member", ColumnRole::kSensitive, {"no", "yes"}),
      Sens("mou_code", ColumnType::kDiscrete),
      Sens("leave_hours", ColumnType::kDiscrete),
      Sens("sick_hours", ColumnType::kDiscrete),
      Sens("payroll_dept_size", ColumnType::kDiscrete),
      Label("high_salary"),
  });
  Table table(schema);
  table.Resize(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const double grade = rng->Uniform(0.0, 1.0);  // latent job grade
    const int year = rng->NextBool(0.5) ? 2013 : 2014;
    const int dept = static_cast<int>(rng->UniformInt(1, 98));
    const int job_class = 1000 + static_cast<int>(grade * 2200.0) +
                          static_cast<int>(rng->UniformInt(0, 99));
    const int years = static_cast<int>(Clamp(
        rng->Gaussian(5.0 + grade * 20.0, 4.0), 0.0, 40.0));
    const double fte = rng->NextBool(0.85) ? 1.0 : rng->Uniform(0.5, 1.0);
    const double base =
        fte * (32000.0 + grade * 90000.0 + years * 600.0 +
               rng->Gaussian(0.0, 4000.0));
    auto quarter = [&]() {
      return base / 4.0 * rng->Uniform(0.85, 1.15);
    };
    const double q1 = quarter(), q2 = quarter(), q3 = quarter(),
                 q4 = quarter();
    const double overtime =
        std::max(0.0, rng->Gaussian((1.0 - grade) * 6000.0, 2500.0));
    const double bonus = std::max(0.0, rng->Gaussian(grade * 4000.0, 1500.0));
    const double longevity = years > 15 ? 0.02 * base : 0.0;
    const double total = q1 + q2 + q3 + q4 + overtime + bonus + longevity;
    const double health = 6000.0 + grade * 4000.0 + rng->Gaussian(0.0, 500.0);
    const double dental = 400.0 + rng->Gaussian(grade * 300.0, 60.0);
    const double pension = 0.18 * base + rng->Gaussian(0.0, 300.0);
    const double benefits = health + dental + pension;
    const bool union_member = rng->NextBool(0.6 + 0.2 * (1.0 - grade));
    const int mou = static_cast<int>(rng->UniformInt(1, 45));
    const int leave = static_cast<int>(
        Clamp(rng->Gaussian(80.0 + years * 3.0, 25.0), 0.0, 400.0));
    const int sick = static_cast<int>(
        Clamp(rng->Gaussian(40.0, 15.0), 0.0, 200.0));
    const int dept_size = 20 + (dept * 7) % 300;

    int c = 0;
    table.Set(r, c++, year);
    table.Set(r, c++, dept);
    table.Set(r, c++, job_class);
    table.Set(r, c++, years);
    table.Set(r, c++, fte);
    table.Set(r, c++, base);
    table.Set(r, c++, q1);
    table.Set(r, c++, q2);
    table.Set(r, c++, q3);
    table.Set(r, c++, q4);
    table.Set(r, c++, overtime);
    table.Set(r, c++, bonus);
    table.Set(r, c++, longevity);
    table.Set(r, c++, total);
    table.Set(r, c++, health);
    table.Set(r, c++, dental);
    table.Set(r, c++, pension);
    table.Set(r, c++, benefits);
    table.Set(r, c++, union_member ? 1.0 : 0.0);
    table.Set(r, c++, mou);
    table.Set(r, c++, leave);
    table.Set(r, c++, sick);
    table.Set(r, c++, dept_size);
  }
  int total_col = *schema.FindColumn("total_pay");
  int label_col = *schema.FindColumn("high_salary");
  DeriveMedianLabel(&table, total_col, label_col);
  return table;
}

// ---------------------------------------------------------------------
// Adult-like census: 5 QIDs + 9 sensitive + long_hours label (paper
// Table 3: 32561 train / 16281 test). Work hours correlate with
// occupation, education and self-employment, so the hours>median label
// is learnable, as in the UCI table.
Table MakeAdultLike(int64_t rows, Rng* rng) {
  Schema schema({
      Qid("age", ColumnType::kDiscrete),
      Cat("education", ColumnRole::kQuasiIdentifier,
          {"dropout", "hs_grad", "some_college", "assoc", "bachelors",
           "masters", "professional", "doctorate"}),
      Cat("occupation", ColumnRole::kQuasiIdentifier,
          {"clerical", "craft", "exec", "farming", "machine_op", "service",
           "professional", "protective", "sales", "transport"}),
      Cat("race", ColumnRole::kQuasiIdentifier,
          {"group_a", "group_b", "group_c", "group_d", "group_e"}),
      Cat("sex", ColumnRole::kQuasiIdentifier, {"female", "male"}),
      Cat("workclass", ColumnRole::kSensitive,
          {"private", "self_emp", "federal", "state", "local", "unpaid"}),
      Cat("marital", ColumnRole::kSensitive,
          {"never", "married", "divorced", "separated", "widowed"}),
      Cat("relationship", ColumnRole::kSensitive,
          {"husband", "wife", "own_child", "unmarried", "other", "alone"}),
      Sens("education_years", ColumnType::kDiscrete),
      Sens("capital_gain", ColumnType::kContinuous),
      Sens("capital_loss", ColumnType::kContinuous),
      Sens("hours_per_week", ColumnType::kDiscrete),
      Cat("native_region", ColumnRole::kSensitive,
          {"region_1", "region_2", "region_3", "region_4", "region_5"}),
      Cat("income_over_50k", ColumnRole::kSensitive, {"no", "yes"}),
      Label("long_hours"),
  });
  Table table(schema);
  table.Resize(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const int age = static_cast<int>(Clamp(rng->Gaussian(39.0, 13.0), 17, 90));
    const int education = rng->NextCategorical(
        {0.12, 0.32, 0.22, 0.07, 0.16, 0.06, 0.03, 0.02});
    const int occupation = static_cast<int>(rng->UniformInt(0, 9));
    const int race = rng->NextCategorical({0.85, 0.09, 0.03, 0.01, 0.02});
    const int sex = rng->NextBool(0.67) ? 1 : 0;
    const int workclass =
        rng->NextCategorical({0.70, 0.11, 0.03, 0.04, 0.07, 0.05});
    const int marital = rng->NextCategorical({0.33, 0.46, 0.14, 0.03, 0.04});
    const int relationship = static_cast<int>(rng->UniformInt(0, 5));
    const int edu_years = 6 + education * 2 -
                          static_cast<int>(rng->UniformInt(0, 1));
    const bool high_earner =
        rng->NextBool(0.05 + 0.04 * education + 0.05 * (occupation == 2));
    const double cap_gain =
        high_earner && rng->NextBool(0.3)
            ? std::exp(rng->Gaussian(8.0, 1.0))
            : 0.0;
    const double cap_loss =
        rng->NextBool(0.05) ? std::exp(rng->Gaussian(7.0, 0.5)) : 0.0;
    // Exec/professional and self-employed people work longer weeks.
    double hours = rng->Gaussian(
        40.0 + 10.0 * (occupation == 2) + 5.0 * (occupation == 6) +
            8.0 * (workclass == 1) - 9.0 * (workclass == 5) +
            3.0 * sex + 1.2 * education,
        6.5);
    hours = Clamp(std::round(hours), 1.0, 99.0);
    const bool income50k =
        high_earner || rng->NextBool(0.05 + 0.002 * hours);
    const int region = rng->NextCategorical({0.90, 0.03, 0.03, 0.02, 0.02});

    int c = 0;
    table.Set(r, c++, age);
    table.Set(r, c++, education);
    table.Set(r, c++, occupation);
    table.Set(r, c++, race);
    table.Set(r, c++, sex);
    table.Set(r, c++, workclass);
    table.Set(r, c++, marital);
    table.Set(r, c++, relationship);
    table.Set(r, c++, edu_years);
    table.Set(r, c++, cap_gain);
    table.Set(r, c++, cap_loss);
    table.Set(r, c++, hours);
    table.Set(r, c++, region);
    table.Set(r, c++, income50k ? 1.0 : 0.0);
  }
  DeriveMedianLabel(&table, *schema.FindColumn("hours_per_week"),
                    *schema.FindColumn("long_hours"));
  return table;
}

// ---------------------------------------------------------------------
// Health-like (NHANES-style): 4 QIDs + 28 sensitive + diabetes label
// (paper Table 3: 9813 train / 1963 test). Diabetes probability follows
// a logistic model over glucose, HbA1c, BMI and age, so the record
// semantics the paper's classifier network enforces (e.g. "cholesterol
// too low for diabetes=1") exist in the data.
Table MakeHealthLike(int64_t rows, Rng* rng) {
  Schema schema({
      Qid("age", ColumnType::kDiscrete),
      Cat("gender", ColumnRole::kQuasiIdentifier, {"female", "male"}),
      Cat("race", ColumnRole::kQuasiIdentifier,
          {"group_a", "group_b", "group_c", "group_d", "group_e"}),
      Qid("income_bracket", ColumnType::kDiscrete),
      Sens("bmi", ColumnType::kContinuous),
      Sens("waist_cm", ColumnType::kContinuous),
      Sens("glucose", ColumnType::kContinuous),
      Sens("hba1c", ColumnType::kContinuous),
      Sens("insulin", ColumnType::kContinuous),
      Sens("chol_total", ColumnType::kContinuous),
      Sens("chol_hdl", ColumnType::kContinuous),
      Sens("chol_ldl", ColumnType::kContinuous),
      Sens("triglycerides", ColumnType::kContinuous),
      Sens("bp_systolic", ColumnType::kContinuous),
      Sens("bp_diastolic", ColumnType::kContinuous),
      Sens("pulse", ColumnType::kDiscrete),
      Sens("creatinine", ColumnType::kContinuous),
      Sens("uric_acid", ColumnType::kContinuous),
      Sens("wbc_count", ColumnType::kContinuous),
      Sens("hemoglobin", ColumnType::kContinuous),
      Sens("hematocrit", ColumnType::kContinuous),
      Sens("platelets", ColumnType::kContinuous),
      Sens("vitamin_d", ColumnType::kContinuous),
      Sens("sodium", ColumnType::kContinuous),
      Sens("potassium", ColumnType::kContinuous),
      Cat("smoker", ColumnRole::kSensitive, {"never", "former", "current"}),
      Sens("alcohol_days_week", ColumnType::kDiscrete),
      Sens("activity_hours_week", ColumnType::kContinuous),
      Sens("sleep_hours", ColumnType::kContinuous),
      Sens("med_count", ColumnType::kDiscrete),
      Cat("family_history", ColumnRole::kSensitive, {"no", "yes"}),
      Sens("survey_cycle", ColumnType::kDiscrete),
      Label("diabetes"),
  });
  Table table(schema);
  table.Resize(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const int age = static_cast<int>(rng->UniformInt(18, 80));
    const int gender = rng->NextBool(0.5) ? 1 : 0;
    const int race = rng->NextCategorical({0.38, 0.24, 0.15, 0.12, 0.11});
    const int income = static_cast<int>(rng->UniformInt(1, 10));
    const double bmi = Clamp(rng->Gaussian(28.5, 6.0), 15.0, 60.0);
    const double waist = 40.0 + bmi * 2.0 + rng->Gaussian(0.0, 5.0);
    const bool family = rng->NextBool(0.25);
    // Metabolic latent raises glucose, HbA1c, insulin together.
    const double metab = rng->Gaussian(0.0, 1.0) + 0.08 * (bmi - 28.0) +
                         0.02 * (age - 50) + 0.8 * family;
    const double glucose = Clamp(95.0 + 14.0 * metab +
                                 rng->Gaussian(0.0, 8.0), 60.0, 350.0);
    const double hba1c =
        Clamp(5.4 + 0.35 * metab + rng->Gaussian(0.0, 0.25), 4.0, 14.0);
    const double insulin =
        std::max(2.0, 10.0 + 5.0 * metab + rng->Gaussian(0.0, 3.0));
    const double chol = Clamp(
        160.0 + 10.0 * metab + 0.5 * age + rng->Gaussian(0.0, 25.0),
        90.0, 350.0);
    const double hdl = Clamp(58.0 - 4.0 * metab - 4.0 * gender +
                             rng->Gaussian(0.0, 9.0), 20.0, 110.0);
    const double ldl = Clamp(chol - hdl - rng->Uniform(15.0, 40.0),
                             30.0, 260.0);
    const double trig = std::max(
        40.0, 110.0 + 30.0 * metab + rng->Gaussian(0.0, 35.0));
    const double bp_sys = Clamp(
        112.0 + 0.45 * age + 3.0 * metab + rng->Gaussian(0.0, 9.0),
        85.0, 220.0);
    const double bp_dia =
        Clamp(bp_sys * 0.62 + rng->Gaussian(0.0, 6.0), 50.0, 130.0);
    const int pulse = static_cast<int>(
        Clamp(rng->Gaussian(72.0 + 2.0 * metab, 9.0), 45.0, 130.0));
    const double creat = Clamp(
        0.9 + 0.15 * gender + rng->Gaussian(0.0, 0.18), 0.4, 3.5);
    const double uric = Clamp(
        5.0 + 0.5 * metab + 0.7 * gender + rng->Gaussian(0.0, 1.0),
        2.0, 12.0);
    const double wbc = Clamp(rng->Gaussian(7.0, 1.7), 3.0, 16.0);
    const double hgb = Clamp(
        13.5 + 1.3 * gender + rng->Gaussian(0.0, 1.0), 9.0, 19.0);
    const double hct = Clamp(hgb * 3.0 + rng->Gaussian(0.0, 1.2),
                             28.0, 56.0);
    const double plt = Clamp(rng->Gaussian(250.0, 55.0), 100.0, 500.0);
    const double vitd = Clamp(rng->Gaussian(26.0, 9.0), 5.0, 70.0);
    const double sodium = Clamp(rng->Gaussian(139.0, 2.2), 128.0, 150.0);
    const double potassium = Clamp(rng->Gaussian(4.0, 0.35), 2.8, 5.8);
    const int smoker = rng->NextCategorical({0.55, 0.25, 0.20});
    const int alcohol = static_cast<int>(rng->UniformInt(0, 7));
    const double activity =
        std::max(0.0, rng->Gaussian(4.0 - 0.5 * metab, 2.5));
    const double sleep = Clamp(rng->Gaussian(7.0, 1.1), 3.0, 12.0);
    const double logit = 0.05 * (glucose - 105.0) + 1.0 * (hba1c - 5.6) +
                         0.05 * (bmi - 29.0) + 0.03 * (age - 50) +
                         0.6 * family - 0.5;
    const bool diabetes = rng->NextBool(1.0 / (1.0 + std::exp(-logit)));
    const int meds = static_cast<int>(Clamp(
        rng->Gaussian(1.5 + 2.5 * diabetes + age * 0.03, 1.2), 0.0, 15.0));
    const int cycle = rng->NextBool(0.5) ? 2015 : 2016;

    int c = 0;
    table.Set(r, c++, age);
    table.Set(r, c++, gender);
    table.Set(r, c++, race);
    table.Set(r, c++, income);
    table.Set(r, c++, bmi);
    table.Set(r, c++, waist);
    table.Set(r, c++, glucose);
    table.Set(r, c++, hba1c);
    table.Set(r, c++, insulin);
    table.Set(r, c++, chol);
    table.Set(r, c++, hdl);
    table.Set(r, c++, ldl);
    table.Set(r, c++, trig);
    table.Set(r, c++, bp_sys);
    table.Set(r, c++, bp_dia);
    table.Set(r, c++, pulse);
    table.Set(r, c++, creat);
    table.Set(r, c++, uric);
    table.Set(r, c++, wbc);
    table.Set(r, c++, hgb);
    table.Set(r, c++, hct);
    table.Set(r, c++, plt);
    table.Set(r, c++, vitd);
    table.Set(r, c++, sodium);
    table.Set(r, c++, potassium);
    table.Set(r, c++, smoker);
    table.Set(r, c++, alcohol);
    table.Set(r, c++, activity);
    table.Set(r, c++, sleep);
    table.Set(r, c++, meds);
    table.Set(r, c++, family ? 1.0 : 0.0);
    table.Set(r, c++, cycle);
    table.Set(r, c++, diabetes ? 1.0 : 0.0);
  }
  return table;
}

// ---------------------------------------------------------------------
// Airline-like (BTS DB1B-style 10% ticket sample): 2 QIDs + 30 sensitive
// + expensive_ticket label (paper Table 3: 1,000,000 train / 200,000
// test). Fare components scale with distance and booking class, so the
// price regression and price>median classification are learnable.
Table MakeAirlineLike(int64_t rows, Rng* rng) {
  Schema schema({
      Qid("quarter", ColumnType::kDiscrete),
      Qid("origin_state", ColumnType::kDiscrete),
      Sens("dest_state", ColumnType::kDiscrete),
      Sens("origin_airport_id", ColumnType::kDiscrete),
      Sens("dest_airport_id", ColumnType::kDiscrete),
      Cat("carrier", ColumnRole::kSensitive,
          {"aa", "dl", "ua", "wn", "b6", "as", "nk", "f9", "ha", "g4"}),
      Sens("distance_miles", ColumnType::kContinuous),
      Sens("miles_flown", ColumnType::kContinuous),
      Sens("num_coupons", ColumnType::kDiscrete),
      Sens("passengers", ColumnType::kDiscrete),
      Cat("round_trip", ColumnRole::kSensitive, {"no", "yes"}),
      Cat("online_booking", ColumnRole::kSensitive, {"no", "yes"}),
      Cat("refundable", ColumnRole::kSensitive, {"no", "yes"}),
      Cat("booking_class", ColumnRole::kSensitive,
          {"basic", "economy", "premium", "business", "first"}),
      Sens("days_before_departure", ColumnType::kDiscrete),
      Sens("base_fare", ColumnType::kContinuous),
      Sens("taxes", ColumnType::kContinuous),
      Sens("fuel_surcharge", ColumnType::kContinuous),
      Sens("segment_fee", ColumnType::kContinuous),
      Sens("itin_fare", ColumnType::kContinuous),
      Sens("fare_per_mile", ColumnType::kContinuous),
      Sens("dep_hour", ColumnType::kDiscrete),
      Sens("arr_hour", ColumnType::kDiscrete),
      Sens("layovers", ColumnType::kDiscrete),
      Sens("layover_minutes", ColumnType::kDiscrete),
      Sens("aircraft_seats", ColumnType::kDiscrete),
      Sens("load_factor", ColumnType::kContinuous),
      Sens("bag_fee", ColumnType::kContinuous),
      Sens("seat_fee", ColumnType::kContinuous),
      Sens("market_share", ColumnType::kContinuous),
      Sens("competitors", ColumnType::kDiscrete),
      Sens("ticket_year", ColumnType::kDiscrete),
      Label("expensive_ticket"),
  });
  Table table(schema);
  table.Resize(rows);
  for (int64_t r = 0; r < rows; ++r) {
    const int quarter = static_cast<int>(rng->UniformInt(1, 4));
    const int o_state = static_cast<int>(rng->UniformInt(1, 50));
    const int d_state = static_cast<int>(rng->UniformInt(1, 50));
    const int o_airport = 10000 + o_state * 90 +
                          static_cast<int>(rng->UniformInt(0, 89));
    const int d_airport = 10000 + d_state * 90 +
                          static_cast<int>(rng->UniformInt(0, 89));
    const int carrier = rng->NextCategorical(
        {0.18, 0.17, 0.15, 0.20, 0.08, 0.07, 0.06, 0.04, 0.02, 0.03});
    const double distance = Clamp(
        std::exp(rng->Gaussian(6.7, 0.55)), 100.0, 5000.0);
    const int layovers = rng->NextCategorical({0.55, 0.35, 0.10});
    const double miles = distance * (1.0 + 0.12 * layovers) *
                         rng->Uniform(1.0, 1.05);
    const bool round_trip = rng->NextBool(0.65);
    const int coupons = (1 + layovers) * (round_trip ? 2 : 1);
    const int passengers = 1 + rng->NextCategorical({0.7, 0.2, 0.07, 0.03});
    const bool online = rng->NextBool(0.75);
    const int booking =
        rng->NextCategorical({0.20, 0.55, 0.13, 0.09, 0.03});
    const bool refundable = booking >= 3 || rng->NextBool(0.08);
    const int days_before = static_cast<int>(Clamp(
        std::exp(rng->Gaussian(3.2, 0.9)), 0.0, 330.0));
    const double class_mult = 1.0 + 0.35 * booking * booking * 0.5;
    const double last_minute = days_before < 7 ? 1.4 : 1.0;
    const double base = (40.0 + 0.11 * distance) * class_mult * last_minute *
                        (round_trip ? 1.85 : 1.0) *
                        rng->Uniform(0.8, 1.25);
    const double taxes = 5.6 + 0.075 * base + 4.5 * coupons;
    const double fuel = 0.008 * miles + rng->Uniform(0.0, 8.0);
    const double seg_fee = 4.2 * coupons;
    const double itin = base + taxes + fuel + seg_fee;
    const double fpm = itin / miles;
    const int dep_hour = static_cast<int>(rng->UniformInt(5, 23));
    const int arr_hour =
        (dep_hour + 1 + static_cast<int>(distance / 450.0)) % 24;
    const int layover_min =
        layovers == 0 ? 0
                      : static_cast<int>(rng->UniformInt(35, 240)) * layovers;
    const int seats = rng->NextBool(0.3) ? 76 : (rng->NextBool(0.5) ? 143
                                                                    : 180);
    const double load = Clamp(rng->Gaussian(0.84, 0.08), 0.4, 1.0);
    const double bag_fee =
        (carrier == 3 || booking >= 2) ? 0.0 : rng->Uniform(25.0, 40.0);
    const double seat_fee =
        booking <= 1 && rng->NextBool(0.4) ? rng->Uniform(8.0, 45.0) : 0.0;
    const double share = Clamp(rng->Gaussian(0.25, 0.12), 0.02, 0.9);
    const int competitors = static_cast<int>(rng->UniformInt(1, 6));
    const int year = 2017;

    int c = 0;
    table.Set(r, c++, quarter);
    table.Set(r, c++, o_state);
    table.Set(r, c++, d_state);
    table.Set(r, c++, o_airport);
    table.Set(r, c++, d_airport);
    table.Set(r, c++, carrier);
    table.Set(r, c++, distance);
    table.Set(r, c++, miles);
    table.Set(r, c++, coupons);
    table.Set(r, c++, passengers);
    table.Set(r, c++, round_trip ? 1.0 : 0.0);
    table.Set(r, c++, online ? 1.0 : 0.0);
    table.Set(r, c++, refundable ? 1.0 : 0.0);
    table.Set(r, c++, booking);
    table.Set(r, c++, days_before);
    table.Set(r, c++, base);
    table.Set(r, c++, taxes);
    table.Set(r, c++, fuel);
    table.Set(r, c++, seg_fee);
    table.Set(r, c++, itin);
    table.Set(r, c++, fpm);
    table.Set(r, c++, dep_hour);
    table.Set(r, c++, arr_hour);
    table.Set(r, c++, layovers);
    table.Set(r, c++, layover_min);
    table.Set(r, c++, seats);
    table.Set(r, c++, load);
    table.Set(r, c++, bag_fee);
    table.Set(r, c++, seat_fee);
    table.Set(r, c++, share);
    table.Set(r, c++, competitors);
    table.Set(r, c++, year);
  }
  DeriveMedianLabel(&table, *schema.FindColumn("itin_fare"),
                    *schema.FindColumn("expensive_ticket"));
  return table;
}

// ---------------------------------------------------------------------

std::vector<std::string> DatasetNames() {
  return {"lacity", "adult", "health", "airline"};
}

Result<int64_t> PaperRowCount(const std::string& name) {
  if (name == "lacity") return int64_t{15000};
  if (name == "adult") return int64_t{32561};
  if (name == "health") return int64_t{9813};
  if (name == "airline") return int64_t{1000000};
  return Status::NotFound("unknown dataset: " + name);
}

Result<int64_t> PaperTestRowCount(const std::string& name) {
  if (name == "lacity") return int64_t{3000};
  if (name == "adult") return int64_t{16281};
  if (name == "health") return int64_t{1963};
  if (name == "airline") return int64_t{200000};
  return Status::NotFound("unknown dataset: " + name);
}

Result<Dataset> MakeDataset(const std::string& name, double scale,
                            uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  // Stands in for the failed-download / unreadable-source-file case the
  // real public datasets would hit; callers must survive it cleanly.
  if (TABLEGAN_FAILPOINT("dataset.make")) {
    return Status::IOError("injected dataset load failure: " + name);
  }
  TABLEGAN_ASSIGN_OR_RETURN(int64_t paper_train, PaperRowCount(name));
  TABLEGAN_ASSIGN_OR_RETURN(int64_t paper_test, PaperTestRowCount(name));
  const int64_t train_rows = std::max<int64_t>(
      50, static_cast<int64_t>(static_cast<double>(paper_train) * scale));
  const int64_t test_rows = std::max<int64_t>(
      50, static_cast<int64_t>(static_cast<double>(paper_test) * scale));

  Rng rng(seed);
  Table (*make)(int64_t, Rng*) = nullptr;
  if (name == "lacity") {
    make = &MakeLaCityLike;
  } else if (name == "adult") {
    make = &MakeAdultLike;
  } else if (name == "health") {
    make = &MakeHealthLike;
  } else if (name == "airline") {
    make = &MakeAirlineLike;
  } else {
    return Status::NotFound("unknown dataset: " + name);
  }

  Dataset out;
  out.name = name;
  out.train = make(train_rows, &rng);
  out.test = make(test_rows, &rng);
  const Schema& schema = out.train.schema();
  std::vector<int> labels = schema.ColumnsWithRole(ColumnRole::kLabel);
  TABLEGAN_CHECK(labels.size() == 1);
  out.label_col = labels[0];
  out.regression_col = -1;
  if (name == "lacity") out.regression_col = *schema.FindColumn("total_pay");
  if (name == "adult") {
    out.regression_col = *schema.FindColumn("hours_per_week");
  }
  if (name == "airline") out.regression_col = *schema.FindColumn("itin_fare");
  return out;
}

}  // namespace data
}  // namespace tablegan
