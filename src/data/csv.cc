#include "data/csv.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/failpoint.h"
#include "common/io_retry.h"

namespace tablegan {
namespace data {
namespace {

// RFC-4180-style quoting: a field is quoted iff it contains a comma,
// a double quote or a line break; embedded quotes are doubled. Plain
// fields (numbers, simple category names) are written verbatim.
bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

void WriteField(std::ostream& out, const std::string& s) {
  if (!NeedsQuoting(s)) {
    out << s;
    return;
  }
  out << '"';
  for (char ch : s) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}

enum class SplitResult {
  kOk,
  // The record ends inside a quoted field: the caller should append the
  // next physical line (the field contains a line break) and retry.
  kUnterminatedQuote,
  // A closing quote is followed by something other than a comma or the
  // end of the record.
  kBadQuote,
};

// Quote-aware splitting of one logical CSV record. Unquoted fields are
// taken verbatim; quoted fields may contain commas, doubled quotes and
// line breaks.
SplitResult SplitCsvRecord(const std::string& line,
                           std::vector<std::string>* out) {
  out->clear();
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  const size_t n = line.size();
  bool at_field_start = true;
  while (i < n) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < n && line[i + 1] == '"') {  // escaped quote
          cur.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        if (i < n && line[i] != ',') return SplitResult::kBadQuote;
        continue;
      }
      cur.push_back(ch);
      ++i;
      continue;
    }
    if (ch == ',') {
      out->push_back(std::move(cur));
      cur.clear();
      at_field_start = true;
      ++i;
      continue;
    }
    if (ch == '"' && at_field_start) {
      in_quotes = true;
      at_field_start = false;
      ++i;
      continue;
    }
    cur.push_back(ch);
    at_field_start = false;
    ++i;
  }
  if (in_quotes) return SplitResult::kUnterminatedQuote;
  out->push_back(std::move(cur));
  return SplitResult::kOk;
}

// Reads one logical record: a physical line, plus continuation lines
// while a quoted field spans a line break. Strips one trailing '\r' per
// physical line (CRLF input). Returns false at end of input.
Result<bool> ReadRecord(std::istream& in, std::vector<std::string>* cells,
                        int64_t* line_no) {
  std::string line;
  if (TABLEGAN_FAILPOINT("csv.read_record")) in.setstate(std::ios::badbit);
  if (!std::getline(in, line)) {
    // badbit means the stream broke mid-file (I/O error, not end of
    // data); reporting it as a clean EOF would silently truncate the
    // table.
    if (in.bad()) {
      return Status::IOError("read failed after line " +
                             std::to_string(*line_no));
    }
    return false;
  }
  ++*line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  SplitResult result = SplitCsvRecord(line, cells);
  while (result == SplitResult::kUnterminatedQuote) {
    std::string next;
    if (!std::getline(in, next)) {
      return Status::InvalidArgument(
          "unterminated quoted field starting at line " +
          std::to_string(*line_no));
    }
    ++*line_no;
    if (!next.empty() && next.back() == '\r') next.pop_back();
    line.push_back('\n');
    line.append(next);
    result = SplitCsvRecord(line, cells);
  }
  if (result == SplitResult::kBadQuote) {
    return Status::InvalidArgument(
        "malformed quoting (text after closing quote) at line " +
        std::to_string(*line_no));
  }
  return true;
}

// Serializes the table into `out` (an in-memory stream); the per-row
// csv.write_row failpoint breaks the stream exactly as a failing disk
// write used to, so the mid-file-failure tests keep their semantics.
// `where` names the destination in error messages.
Status WriteCsvToStream(const Table& table, std::ostream& out,
                        bool include_header, const std::string& where) {
  const Schema& schema = table.schema();
  if (include_header) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c) out << ',';
      WriteField(out, schema.column(c).name);
    }
    out << '\n';
  }
  // max_digits10 makes the double -> text -> double trip lossless; the
  // old precision(10) silently perturbed values below ~1e-10 relative.
  out.precision(std::numeric_limits<double>::max_digits10);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c) out << ',';
      const ColumnSpec& spec = schema.column(c);
      const double v = table.Get(r, c);
      if (spec.type == ColumnType::kCategorical &&
          !spec.categories.empty()) {
        const int idx = static_cast<int>(std::lround(v));
        if (!std::isfinite(v) || idx < 0 || idx >= spec.num_categories()) {
          // Emitting the raw code would produce a file ReadCsv rejects
          // (it is not a category of this column); fail loudly instead.
          return Status::InvalidArgument(
              "categorical value " + std::to_string(v) +
              " out of range [0, " +
              std::to_string(spec.num_categories()) + ") for column '" +
              spec.name + "' at row " + std::to_string(r));
        }
        WriteField(out, spec.categories[static_cast<size_t>(idx)]);
        continue;
      }
      out << v;
    }
    out << '\n';
    // Per-row site so after(n)/every(n) triggers can break the stream
    // mid-file, not just at the first byte.
    if (TABLEGAN_FAILPOINT("csv.write_row")) out.setstate(std::ios::badbit);
  }
  if (!out) return Status::IOError("write failed: " + where);
  return Status::OK();
}

// Parses CSV text from an in-memory stream (the file path is only used
// in error messages). Extracted so file- and string-based readers share
// one parser.
Result<Table> ReadCsvFromStream(const Schema& schema, std::istream& in,
                                const std::string& path) {
  std::vector<std::string> header;
  int64_t line_no = 0;
  TABLEGAN_ASSIGN_OR_RETURN(bool has_header,
                            ReadRecord(in, &header, &line_no));
  if (!has_header) return Status::IOError("empty CSV: " + path);
  if (static_cast<int>(header.size()) != schema.num_columns()) {
    return Status::InvalidArgument("CSV header width mismatch in " + path);
  }
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (header[static_cast<size_t>(c)] != schema.column(c).name) {
      return Status::InvalidArgument("CSV column '" +
                                     header[static_cast<size_t>(c)] +
                                     "' does not match schema");
    }
  }

  Table table(schema);
  std::vector<double> row(static_cast<size_t>(schema.num_columns()));
  std::vector<std::string> cells;
  for (;;) {
    TABLEGAN_ASSIGN_OR_RETURN(bool more, ReadRecord(in, &cells, &line_no));
    if (!more) break;
    if (cells.size() == 1 && cells[0].empty()) continue;  // blank line
    if (static_cast<int>(cells.size()) != schema.num_columns()) {
      return Status::InvalidArgument("bad cell count at line " +
                                     std::to_string(line_no));
    }
    for (int c = 0; c < schema.num_columns(); ++c) {
      const std::string& cell = cells[static_cast<size_t>(c)];
      const ColumnSpec& spec = schema.column(c);
      if (spec.type == ColumnType::kCategorical &&
          !spec.categories.empty()) {
        bool matched = false;
        for (int k = 0; k < spec.num_categories(); ++k) {
          if (spec.categories[static_cast<size_t>(k)] == cell) {
            row[static_cast<size_t>(c)] = k;
            matched = true;
            break;
          }
        }
        // A numeric-looking unknown level must not fall through to the
        // number parser: it would silently become an out-of-range code.
        if (!matched) {
          return Status::InvalidArgument(
              "unknown category '" + cell + "' for column '" + spec.name +
              "' at line " + std::to_string(line_no));
        }
        continue;
      }
      // std::stod throws out_of_range on strtod's ERANGE, which glibc
      // also raises for gradual underflow — rejecting subnormal values
      // WriteCsv itself emits. Parse with strtod directly: accept
      // underflow (the returned value is the correct nearest double),
      // still reject overflow and trailing garbage.
      errno = 0;
      char* cell_end = nullptr;
      const double parsed =
          cell.empty() ? 0.0 : std::strtod(cell.c_str(), &cell_end);
      const bool consumed_all =
          !cell.empty() && cell_end == cell.c_str() + cell.size();
      const bool overflowed =
          errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL);
      if (!consumed_all || overflowed) {
        return Status::InvalidArgument("unparseable cell '" + cell +
                                       "' at line " +
                                       std::to_string(line_no));
      }
      row[static_cast<size_t>(c)] = parsed;
    }
    table.AppendRow(row);
  }
  return table;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  // Open first (matching the old ofstream order, so csv.open_write
  // fires before any row is serialized), buffer the whole file, then
  // push it to disk through the EINTR-retrying writer.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0 || TABLEGAN_FAILPOINT("csv.open_write")) {
    if (fd >= 0) ::close(fd);
    return Status::IOError("cannot open for write: " + path);
  }
  std::ostringstream out;
  Status serialized =
      WriteCsvToStream(table, out, /*include_header=*/true, path);
  if (!serialized.ok()) {
    ::close(fd);
    return serialized;
  }
  const std::string text = std::move(out).str();
  Status written = io::WriteFull(fd, text.data(), text.size());
  ::close(fd);
  if (!written.ok()) {
    return Status::IOError(written.message() + ": " + path);
  }
  return Status::OK();
}

Result<std::string> WriteCsvToString(const Table& table,
                                     bool include_header) {
  std::ostringstream out;
  TABLEGAN_RETURN_NOT_OK(
      WriteCsvToStream(table, out, include_header, "<string>"));
  return std::move(out).str();
}

Result<Table> ReadCsv(const Schema& schema, const std::string& path) {
  if (TABLEGAN_FAILPOINT("csv.open_read")) {
    return Status::IOError("cannot open for read: " + path);
  }
  // Whole-file read through the EINTR-safe loop; parsing then runs over
  // the in-memory copy, so a signal can never tear a logical record.
  TABLEGAN_ASSIGN_OR_RETURN(std::string text, io::ReadWholeFile(path));
  std::istringstream in(std::move(text));
  return ReadCsvFromStream(schema, in, path);
}

Result<Table> ReadCsvFromString(const Schema& schema,
                                const std::string& text) {
  std::istringstream in(text);
  return ReadCsvFromStream(schema, in, "<string>");
}

}  // namespace data
}  // namespace tablegan
