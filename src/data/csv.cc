#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>

namespace tablegan {
namespace data {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c) out << ',';
    out << schema.column(c).name;
  }
  out << '\n';
  out.precision(10);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c) out << ',';
      const ColumnSpec& spec = schema.column(c);
      const double v = table.Get(r, c);
      if (spec.type == ColumnType::kCategorical &&
          !spec.categories.empty()) {
        int idx = static_cast<int>(std::lround(v));
        if (idx >= 0 && idx < spec.num_categories()) {
          out << spec.categories[static_cast<size_t>(idx)];
          continue;
        }
      }
      out << v;
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty CSV: " + path);
  }
  std::vector<std::string> header = SplitLine(line);
  if (static_cast<int>(header.size()) != schema.num_columns()) {
    return Status::InvalidArgument("CSV header width mismatch in " + path);
  }
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (header[static_cast<size_t>(c)] != schema.column(c).name) {
      return Status::InvalidArgument("CSV column '" +
                                     header[static_cast<size_t>(c)] +
                                     "' does not match schema");
    }
  }

  Table table(schema);
  std::vector<double> row(static_cast<size_t>(schema.num_columns()));
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitLine(line);
    if (static_cast<int>(cells.size()) != schema.num_columns()) {
      return Status::InvalidArgument("bad cell count at line " +
                                     std::to_string(line_no));
    }
    for (int c = 0; c < schema.num_columns(); ++c) {
      const std::string& cell = cells[static_cast<size_t>(c)];
      const ColumnSpec& spec = schema.column(c);
      bool parsed = false;
      if (spec.type == ColumnType::kCategorical) {
        for (int k = 0; k < spec.num_categories(); ++k) {
          if (spec.categories[static_cast<size_t>(k)] == cell) {
            row[static_cast<size_t>(c)] = k;
            parsed = true;
            break;
          }
        }
      }
      if (!parsed) {
        try {
          row[static_cast<size_t>(c)] = std::stod(cell);
        } catch (...) {
          return Status::InvalidArgument("unparseable cell '" + cell +
                                         "' at line " +
                                         std::to_string(line_no));
        }
      }
    }
    table.AppendRow(row);
  }
  return table;
}

}  // namespace data
}  // namespace tablegan
