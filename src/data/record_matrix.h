#ifndef TABLEGAN_DATA_RECORD_MATRIX_H_
#define TABLEGAN_DATA_RECORD_MATRIX_H_

#include "common/status.h"
#include "tensor/tensor.h"

namespace tablegan {
namespace data {

/// Converts normalized records to the square-matrix form table-GAN trains
/// on and back (paper §3.2 step 1): a record of `a` values is zero-padded
/// to side*side cells and reshaped to a side×side single-channel image.
class RecordMatrixCodec {
 public:
  /// `num_attributes` values per record; `side` must be a power of two
  /// with side*side >= num_attributes (see ChooseSide).
  RecordMatrixCodec(int num_attributes, int side);

  /// Smallest power-of-two side (>= 4, so the DCGAN pyramid has at least
  /// one stride-2 stage) whose square holds `num_attributes` values.
  static int ChooseSide(int num_attributes);

  int num_attributes() const { return num_attributes_; }
  int side() const { return side_; }

  /// [n, a] record tensor -> [n, 1, side, side] image tensor.
  Result<Tensor> ToMatrices(const Tensor& records) const;

  /// [n, 1, side, side] image tensor -> [n, a] record tensor (padding
  /// cells are dropped).
  Result<Tensor> FromMatrices(const Tensor& matrices) const;

 private:
  int num_attributes_;
  int side_;
};

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_RECORD_MATRIX_H_
