#ifndef TABLEGAN_DATA_MMAP_FILE_H_
#define TABLEGAN_DATA_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace tablegan {
namespace data {

/// Read-only memory-mapped file (RAII).
///
/// Opening is O(1) in the file size: the kernel maps the pages lazily
/// and faults them in on first touch, so a multi-gigabyte columnar
/// table becomes addressable without reading a byte of column data.
/// The mapping is private/read-only; the backing file must not be
/// truncated while mapped (mutating it is the writer's atomic
/// temp-file + rename job, which never touches a mapped inode).
///
/// The open() syscall is retried on EINTR like every raw-fd loop in
/// the library (common/io_retry). Failpoint sites, each forced by
/// tests: `mmap.open_eintr` (simulated interrupted open — must retry
/// and succeed), `mmap.open` (open failure), `mmap.map` (mmap
/// failure). The fd is closed right after mapping; the mapping alone
/// keeps the file alive.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. An empty file yields a valid object with
  /// size() == 0 and data() == nullptr (mmap of length 0 is undefined).
  static Result<MmapFile> Open(const std::string& path);

  const char* data() const { return static_cast<const char*>(addr_); }
  size_t size() const { return size_; }
  bool mapped() const { return addr_ != nullptr; }

 private:
  void Unmap();

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_MMAP_FILE_H_
