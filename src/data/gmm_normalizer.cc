#include "data/gmm_normalizer.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace tablegan {
namespace data {
namespace {

// Dirichlet pseudo-count on the mixture weights. Acts as the variational
// prior: a mode that explains almost no data keeps a small but non-zero
// weight during EM (no division blow-ups) and lands below the prune
// threshold afterwards instead of collapsing onto a single point.
constexpr double kWeightPseudoCount = 1.0;
// Modes below this posterior mass after EM are dropped.
constexpr double kPruneWeight = 1e-3;
// Scale floor in unit space; also bounds halfwidths away from zero.
constexpr double kSigmaFloor = 1e-4;
constexpr int kMaxEmIters = 50;
constexpr double kMeanTolerance = 1e-7;

// Unnormalized log posterior of mode `comp` at unit-space value u. Both
// the fitting pass and Encode() select modes with this exact expression
// (ties to the lowest index), which is what makes the fitted halfwidths
// cover every training value at encode time.
double LogPosterior(const GmmComponent& comp, double u) {
  const double z = (u - comp.mean) / comp.sigma;
  return std::log(comp.weight) - std::log(comp.sigma) - 0.5 * z * z;
}

}  // namespace

int GmmColumnNormalizer::SelectMode(double u) const {
  int best = 0;
  double best_lp = LogPosterior(components_[0], u);
  for (int m = 1; m < num_components(); ++m) {
    const double lp = LogPosterior(components_[static_cast<size_t>(m)], u);
    if (lp > best_lp) {
      best_lp = lp;
      best = m;
    }
  }
  return best;
}

Status GmmColumnNormalizer::Fit(const double* values, int64_t n,
                                int max_components) {
  if (n <= 0) {
    return Status::InvalidArgument("cannot fit GMM normalizer on empty column");
  }
  if (max_components < 1 || max_components > 64) {
    return Status::InvalidArgument(
        "GMM component count must be in [1, 64], got " +
        std::to_string(max_components));
  }
  double lo = values[0], hi = values[0];
  for (int64_t i = 0; i < n; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  lo_ = lo;
  hi_ = hi;
  const double span = hi - lo;
  if (!(span > 0.0)) {
    // Constant column: one degenerate mode; Encode maps everything to
    // scalar 0 and Decode returns the constant.
    components_.assign(1, GmmComponent{1.0, 0.0, 1.0, 1.0});
    return Status::OK();
  }

  // All mixture math happens on the unit-space image of the data.
  std::vector<double> u(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    u[static_cast<size_t>(i)] = EncodeUnit(values[i], lo, hi, span);
  }
  std::vector<double> sorted = u;
  std::sort(sorted.begin(), sorted.end());
  int64_t distinct = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1]) ++distinct;
  }
  const int k =
      static_cast<int>(std::min<int64_t>(max_components, distinct));

  // Quantile initialization off the sorted sample: deterministic, and it
  // lands one seed mean inside each populated region of the column.
  std::vector<GmmComponent> comps(static_cast<size_t>(k));
  for (int m = 0; m < k; ++m) {
    const int64_t idx = (n - 1) * (2 * m + 1) / (2 * k);
    comps[static_cast<size_t>(m)].mean = sorted[static_cast<size_t>(idx)];
    comps[static_cast<size_t>(m)].sigma = std::max(kSigmaFloor, 1.0 / k);
    comps[static_cast<size_t>(m)].weight = 1.0 / k;
  }

  std::vector<double> resp(static_cast<size_t>(k));
  std::vector<double> nm(static_cast<size_t>(k));
  std::vector<double> mean_acc(static_cast<size_t>(k));
  std::vector<double> var_acc(static_cast<size_t>(k));
  for (int iter = 0; iter < kMaxEmIters; ++iter) {
    std::fill(nm.begin(), nm.end(), 0.0);
    std::fill(mean_acc.begin(), mean_acc.end(), 0.0);
    std::fill(var_acc.begin(), var_acc.end(), 0.0);
    // E-step + sufficient statistics, serial in row order so the fitted
    // parameters never depend on the thread count.
    for (int64_t i = 0; i < n; ++i) {
      const double ui = u[static_cast<size_t>(i)];
      double max_lp = LogPosterior(comps[0], ui);
      for (int m = 1; m < k; ++m) {
        max_lp = std::max(max_lp, LogPosterior(comps[static_cast<size_t>(m)], ui));
      }
      double total = 0.0;
      for (int m = 0; m < k; ++m) {
        const double r =
            std::exp(LogPosterior(comps[static_cast<size_t>(m)], ui) - max_lp);
        resp[static_cast<size_t>(m)] = r;
        total += r;
      }
      for (int m = 0; m < k; ++m) {
        const double r = resp[static_cast<size_t>(m)] / total;
        const double d = ui - comps[static_cast<size_t>(m)].mean;
        nm[static_cast<size_t>(m)] += r;
        mean_acc[static_cast<size_t>(m)] += r * ui;
        var_acc[static_cast<size_t>(m)] += r * d * d;
      }
    }
    // M-step with the Dirichlet pseudo-count folded into the weights.
    double max_shift = 0.0;
    for (int m = 0; m < k; ++m) {
      GmmComponent& comp = comps[static_cast<size_t>(m)];
      const double mass = nm[static_cast<size_t>(m)];
      comp.weight = (mass + kWeightPseudoCount) /
                    (static_cast<double>(n) + k * kWeightPseudoCount);
      if (mass > 1e-12) {
        const double new_mean = mean_acc[static_cast<size_t>(m)] / mass;
        max_shift = std::max(max_shift, std::abs(new_mean - comp.mean));
        comp.mean = new_mean;
        comp.sigma = std::max(
            kSigmaFloor, std::sqrt(var_acc[static_cast<size_t>(m)] / mass));
      }
    }
    if (max_shift < kMeanTolerance) break;
  }

  // Prune starved modes (always keeping the heaviest) and renormalize.
  double best_weight = comps[0].weight;
  for (const GmmComponent& comp : comps) {
    best_weight = std::max(best_weight, comp.weight);
  }
  std::vector<GmmComponent> kept;
  for (const GmmComponent& comp : comps) {
    if (comp.weight >= kPruneWeight || comp.weight == best_weight) {
      kept.push_back(comp);
    }
  }
  double total_weight = 0.0;
  for (const GmmComponent& comp : kept) total_weight += comp.weight;
  for (GmmComponent& comp : kept) comp.weight /= total_weight;
  // Canonical order: ascending mean, so the fitted layout is a pure
  // function of the data rather than of initialization accidents.
  std::stable_sort(kept.begin(), kept.end(),
                   [](const GmmComponent& a, const GmmComponent& b) {
                     return a.mean < b.mean;
                   });
  components_ = std::move(kept);

  // Hard-assignment pass: size each mode's halfwidth to cover the
  // farthest training point it will actually be asked to encode, then
  // drop modes that win no points at all (dropping them cannot change
  // any other point's argmax). This is what makes encode->decode the
  // identity on the training data up to float rounding.
  const int kk = num_components();
  std::vector<double> maxdev(static_cast<size_t>(kk), 0.0);
  std::vector<int64_t> assigned(static_cast<size_t>(kk), 0);
  for (int64_t i = 0; i < n; ++i) {
    const double ui = u[static_cast<size_t>(i)];
    const int m = SelectMode(ui);
    maxdev[static_cast<size_t>(m)] =
        std::max(maxdev[static_cast<size_t>(m)],
                 std::abs(ui - components_[static_cast<size_t>(m)].mean));
    ++assigned[static_cast<size_t>(m)];
  }
  std::vector<GmmComponent> final_comps;
  for (int m = 0; m < kk; ++m) {
    if (assigned[static_cast<size_t>(m)] == 0) continue;
    GmmComponent comp = components_[static_cast<size_t>(m)];
    comp.halfwidth =
        std::max(4.0 * comp.sigma, maxdev[static_cast<size_t>(m)]);
    final_comps.push_back(comp);
  }
  total_weight = 0.0;
  for (const GmmComponent& comp : final_comps) total_weight += comp.weight;
  for (GmmComponent& comp : final_comps) comp.weight /= total_weight;
  components_ = std::move(final_comps);
  return Status::OK();
}

void GmmColumnNormalizer::Encode(double v, float* out) const {
  TABLEGAN_CHECK(fitted());
  const double span = hi_ - lo_;
  const double u = span > 0.0 ? EncodeUnit(v, lo_, hi_, span) : 0.0;
  const int m = SelectMode(u);
  const GmmComponent& comp = components_[static_cast<size_t>(m)];
  const double s =
      std::clamp((u - comp.mean) / comp.halfwidth, -1.0, 1.0);
  out[0] = static_cast<float>(s);
  for (int j = 0; j < num_components(); ++j) {
    out[1 + j] = j == m ? 1.0f : -1.0f;
  }
}

double GmmColumnNormalizer::Decode(const float* cells) const {
  TABLEGAN_CHECK(fitted());
  int m = 0;
  for (int j = 1; j < num_components(); ++j) {
    if (cells[1 + j] > cells[1 + m]) m = j;
  }
  const GmmComponent& comp = components_[static_cast<size_t>(m)];
  const double s = std::clamp(static_cast<double>(cells[0]), -1.0, 1.0);
  const double u =
      std::clamp(comp.mean + s * comp.halfwidth, -1.0, 1.0);
  const double span = hi_ - lo_;
  return span > 0.0 ? DecodeUnit(u, lo_, hi_, span) : lo_;
}

Status RecordNormalizer::Fit(const TableView& table,
                             const std::vector<ColumnNormalizerSpec>& specs) {
  const int cols = table.num_columns();
  if (!specs.empty() && static_cast<int>(specs.size()) != cols) {
    return Status::InvalidArgument(
        "normalizer spec count " + std::to_string(specs.size()) +
        " does not match column count " + std::to_string(cols));
  }
  TABLEGAN_RETURN_NOT_OK(minmax_.Fit(table));
  types_.resize(static_cast<size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    types_[static_cast<size_t>(c)] = table.schema().column(c).type;
  }
  specs_ = specs.empty()
               ? std::vector<ColumnNormalizerSpec>(static_cast<size_t>(cols))
               : specs;
  gmms_.clear();
  gmms_.resize(static_cast<size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    const ColumnNormalizerSpec& spec = specs_[static_cast<size_t>(c)];
    if (spec.kind != NormalizerKind::kGmm) continue;
    if (types_[static_cast<size_t>(c)] != ColumnType::kContinuous) {
      return Status::InvalidArgument(
          "GMM normalization requires a continuous column, but column " +
          std::to_string(c) + " ('" + table.schema().column(c).name +
          "') is not");
    }
    auto gmm = std::make_unique<GmmColumnNormalizer>();
    TABLEGAN_RETURN_NOT_OK(
        gmm->Fit(table.column_data(c), table.num_rows(), spec.components));
    gmms_[static_cast<size_t>(c)] = std::move(gmm);
  }
  RebuildLayout();
  return Status::OK();
}

void RecordNormalizer::RebuildLayout() {
  const int cols = num_columns();
  offsets_.resize(static_cast<size_t>(cols));
  int w = 0;
  all_minmax_ = true;
  for (int c = 0; c < cols; ++c) {
    offsets_[static_cast<size_t>(c)] = w;
    w += column_width(c);
    if (gmm(c) != nullptr) all_minmax_ = false;
  }
  encoded_width_ = w;
}

void RecordNormalizer::Restore(
    std::vector<double> mins, std::vector<double> maxs,
    std::vector<ColumnType> types, std::vector<ColumnNormalizerSpec> specs,
    std::vector<std::unique_ptr<GmmColumnNormalizer>> gmms) {
  const size_t cols = mins.size();
  types_ = types;
  minmax_.Restore(std::move(mins), std::move(maxs), std::move(types));
  specs_ = specs.empty() ? std::vector<ColumnNormalizerSpec>(cols)
                         : std::move(specs);
  gmms_ = std::move(gmms);
  gmms_.resize(cols);
  RebuildLayout();
}

Result<Tensor> RecordNormalizer::Transform(const TableView& table) const {
  if (all_minmax_) return minmax_.Transform(table);
  if (!fitted()) return Status::FailedPrecondition("normalizer not fitted");
  if (table.num_columns() != num_columns()) {
    return Status::InvalidArgument("column count mismatch in Transform");
  }
  const int64_t n = table.num_rows();
  Tensor out({n, encoded_width_});
  std::vector<int64_t> rows(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) rows[static_cast<size_t>(r)] = r;
  EncodeRowsInto(table, rows.data(), n, out.data(), encoded_width_);
  return out;
}

void RecordNormalizer::EncodeRowsInto(const TableView& table,
                                      const int64_t* rows, int64_t count,
                                      float* out, int64_t stride) const {
  if (all_minmax_) {
    minmax_.EncodeRowsInto(table, rows, count, out, stride);
    return;
  }
  TABLEGAN_CHECK(fitted() && table.num_columns() == num_columns());
  TABLEGAN_CHECK(stride >= encoded_width_);
  const int cols = num_columns();
  for (int c = 0; c < cols; ++c) {
    const int64_t off = offsets_[static_cast<size_t>(c)];
    const double* col = table.column_data(c);
    const GmmColumnNormalizer* g = gmm(c);
    if (g != nullptr) {
      for (int64_t i = 0; i < count; ++i) {
        g->Encode(col[rows[i]], out + i * stride + off);
      }
      continue;
    }
    // Same per-cell expression as the plain min-max path, so min-max
    // columns of a mixed record encode bitwise identically.
    const double lo = minmax_.column_min(c);
    const double hi = minmax_.column_max(c);
    const double span = hi - lo;
    for (int64_t i = 0; i < count; ++i) {
      const double v = col[rows[i]];
      out[i * stride + off] =
          span > 0.0 ? static_cast<float>(EncodeUnit(v, lo, hi, span))
                     : 0.0f;
    }
  }
}

Result<Table> RecordNormalizer::InverseTransform(const Tensor& encoded,
                                                 const Schema& schema) const {
  if (all_minmax_) return minmax_.InverseTransform(encoded, schema);
  if (!fitted()) return Status::FailedPrecondition("normalizer not fitted");
  if (encoded.rank() != 2 || encoded.dim(1) != encoded_width_) {
    return Status::InvalidArgument("encoded shape mismatch");
  }
  if (schema.num_columns() != num_columns()) {
    return Status::InvalidArgument("schema width mismatch");
  }
  const int64_t n = encoded.dim(0);
  const int cols = num_columns();
  Table out(schema);
  out.Resize(n);
  for (int64_t r = 0; r < n; ++r) {
    const float* row = encoded.data() + r * encoded_width_;
    for (int c = 0; c < cols; ++c) {
      const int64_t off = offsets_[static_cast<size_t>(c)];
      const GmmColumnNormalizer* g = gmm(c);
      if (g != nullptr) {
        out.Set(r, c, g->Decode(row + off));
        continue;
      }
      const double lo = minmax_.column_min(c);
      const double hi = minmax_.column_max(c);
      double u = std::clamp(static_cast<double>(row[off]), -1.0, 1.0);
      double v = DecodeUnit(u, lo, hi, hi - lo);
      if (types_[static_cast<size_t>(c)] != ColumnType::kContinuous) {
        v = std::round(v);
      }
      if (types_[static_cast<size_t>(c)] == ColumnType::kCategorical) {
        const int nc = schema.column(c).num_categories();
        if (nc > 0) {
          v = std::clamp(v, 0.0, static_cast<double>(nc - 1));
        } else {
          v = std::clamp(v, std::round(lo), std::round(hi));
        }
      }
      out.Set(r, c, v);
    }
  }
  return out;
}

}  // namespace data
}  // namespace tablegan
