#include "data/table_view.h"

#include <algorithm>

#include "common/logging.h"
#include "data/table.h"

namespace tablegan {
namespace data {

Table TableView::Materialize() const {
  Table out(schema());
  const int64_t n = num_rows();
  out.Resize(n);
  for (int c = 0; c < num_columns(); ++c) {
    const double* src = column_data(c);
    if (n > 0) out.FillColumn(c, src, n);
  }
  return out;
}

TableRangeView::TableRangeView(const TableView& base, int64_t begin,
                               int64_t rows)
    : base_(&base), begin_(begin), rows_(rows) {
  TABLEGAN_CHECK(begin >= 0 && rows >= 0 &&
                 begin + rows <= base.num_rows())
      << "row range [" << begin << ", " << begin + rows
      << ") outside table of " << base.num_rows() << " rows";
}

const double* TableRangeView::column_data(int col) const {
  const double* base = base_->column_data(col);
  return base == nullptr ? nullptr : base + begin_;
}

}  // namespace data
}  // namespace tablegan
