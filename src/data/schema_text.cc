#include "data/schema_text.h"

#include <fstream>
#include <sstream>

namespace tablegan {
namespace data {
namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

Result<ColumnType> ParseType(const std::string& s) {
  if (s == "continuous") return ColumnType::kContinuous;
  if (s == "discrete") return ColumnType::kDiscrete;
  if (s == "categorical") return ColumnType::kCategorical;
  return Status::InvalidArgument("unknown column type '" + s + "'");
}

Result<ColumnRole> ParseRole(const std::string& s) {
  if (s == "qid") return ColumnRole::kQuasiIdentifier;
  if (s == "sensitive") return ColumnRole::kSensitive;
  if (s == "label") return ColumnRole::kLabel;
  return Status::InvalidArgument("unknown column role '" + s + "'");
}

}  // namespace

Result<Schema> ParseSchemaText(const std::string& text) {
  Schema schema;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> parts = Split(line, ',');
    if (parts.size() < 3 || parts.size() > 4) {
      return Status::InvalidArgument(
          "schema line " + std::to_string(line_no) +
          ": expected name,type,role[,levels]");
    }
    ColumnSpec spec;
    spec.name = Trim(parts[0]);
    if (spec.name.empty()) {
      return Status::InvalidArgument("schema line " +
                                     std::to_string(line_no) +
                                     ": empty column name");
    }
    TABLEGAN_ASSIGN_OR_RETURN(spec.type, ParseType(Trim(parts[1])));
    TABLEGAN_ASSIGN_OR_RETURN(spec.role, ParseRole(Trim(parts[2])));
    if (parts.size() == 4) {
      if (spec.type != ColumnType::kCategorical) {
        return Status::InvalidArgument(
            "schema line " + std::to_string(line_no) +
            ": only categorical columns take levels");
      }
      for (const std::string& level : Split(Trim(parts[3]), '|')) {
        const std::string trimmed = Trim(level);
        if (trimmed.empty()) {
          return Status::InvalidArgument("schema line " +
                                         std::to_string(line_no) +
                                         ": empty categorical level");
        }
        spec.categories.push_back(trimmed);
      }
    } else if (spec.type == ColumnType::kCategorical) {
      return Status::InvalidArgument(
          "schema line " + std::to_string(line_no) +
          ": categorical column needs levels (a|b|c)");
    }
    schema.AddColumn(std::move(spec));
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("schema text declares no columns");
  }
  return schema;
}

Result<Schema> ReadSchemaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open schema file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSchemaText(buffer.str());
}

std::string SchemaToText(const Schema& schema) {
  std::ostringstream out;
  for (int c = 0; c < schema.num_columns(); ++c) {
    const ColumnSpec& spec = schema.column(c);
    out << spec.name << ',' << ColumnTypeToString(spec.type) << ',';
    switch (spec.role) {
      case ColumnRole::kQuasiIdentifier:
        out << "qid";
        break;
      case ColumnRole::kSensitive:
        out << "sensitive";
        break;
      case ColumnRole::kLabel:
        out << "label";
        break;
    }
    if (!spec.categories.empty()) {
      out << ',';
      for (size_t i = 0; i < spec.categories.size(); ++i) {
        if (i) out << '|';
        out << spec.categories[i];
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace data
}  // namespace tablegan
