#ifndef TABLEGAN_DATA_GMM_NORMALIZER_H_
#define TABLEGAN_DATA_GMM_NORMALIZER_H_

#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "data/normalizer.h"
#include "data/table.h"
#include "data/table_view.h"
#include "tensor/tensor.h"

namespace tablegan {
namespace data {

/// Which per-column encoding a RecordNormalizer applies. The values are
/// the on-disk encoding of checkpoint format v6 — do not renumber.
enum class NormalizerKind : int {
  kMinMax = 0,
  kGmm = 1,
};

/// Per-column normalizer selection. `components` is the EM component
/// budget and is only meaningful for kGmm; the fitted mixture may end up
/// smaller after low-weight modes are pruned.
struct ColumnNormalizerSpec {
  NormalizerKind kind = NormalizerKind::kMinMax;
  int components = 4;
};

/// One fitted mixture mode. All four parameters live in the min-max unit
/// space ([-1, 1] after EncodeUnit), not in raw column units: fitting in
/// unit space means extreme doubles (DBL_MAX spans, denormals, -0.0) are
/// tamed by the same overflow-safe mapping the min-max normalizer uses,
/// and the mixture math never leaves a well-scaled range. `halfwidth` is
/// the within-mode scale used for encoding — max(4*sigma, farthest
/// training point hard-assigned to the mode) — so every training value
/// encodes to a within-mode scalar in [-1, 1] without saturating.
struct GmmComponent {
  double weight = 0.0;
  double mean = 0.0;
  double sigma = 0.0;
  double halfwidth = 0.0;
};

/// Mode-specific normalization for one continuous column (TGAN-style,
/// Xu & Veeramachaneni 1811.11264 §4.2): a k-component Gaussian mixture
/// is fitted by EM with a Dirichlet pseudo-count on the weights (the
/// "variational" regularizer — it keeps starved modes from collapsing to
/// zero-width spikes and prunes them cleanly instead), and each value is
/// encoded as one within-mode scalar plus a k-wide one-hot mode
/// indicator in {-1, +1}.
///
/// Fitting is strictly serial with a fixed accumulation order, so the
/// fitted parameters are bitwise identical at any thread count — the
/// same contract the rest of the training path keeps.
class GmmColumnNormalizer {
 public:
  GmmColumnNormalizer() = default;

  /// Fits at most `max_components` modes to `values[0..n)`. Constant
  /// columns fit a single degenerate mode; columns with fewer distinct
  /// values than `max_components` fit one mode per distinct cluster at
  /// most. n must be >= 1 and max_components in [1, 64].
  Status Fit(const double* values, int64_t n, int max_components);

  bool fitted() const { return !components_.empty(); }
  int num_components() const { return static_cast<int>(components_.size()); }
  /// Floats written per value: 1 scalar + num_components() indicator.
  int encoded_width() const { return 1 + num_components(); }

  /// Writes encoded_width() floats: out[0] is the within-mode scalar in
  /// [-1, 1], out[1 + m] is +1 for the selected mode and -1 otherwise.
  /// Mode selection is the posterior argmax (ties to the lowest index),
  /// the same rule the fitting pass used to size the halfwidths, so
  /// every training value round-trips within float precision.
  void Encode(double v, float* out) const;

  /// Inverts Encode: picks the argmax indicator cell (ties to the lowest
  /// index), clamps the scalar to [-1, 1], and maps back through the
  /// mode's mean/halfwidth and the column's unit-space bounds.
  double Decode(const float* cells) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<GmmComponent>& components() const { return components_; }

  /// Model persistence: reinstates a fitted state verbatim.
  void Restore(double lo, double hi, std::vector<GmmComponent> components) {
    lo_ = lo;
    hi_ = hi;
    components_ = std::move(components);
  }

 private:
  int SelectMode(double u) const;

  double lo_ = 0.0;
  double hi_ = 0.0;
  std::vector<GmmComponent> components_;
};

/// The Schema/Normalizer seam of paper §3.2 with per-column selection:
/// every column defaults to the min-max encoding, and individual
/// continuous columns can opt into mode-specific GMM encoding.
///
/// When every column is min-max (the default, and every checkpoint
/// format before v6), all four encode/decode entry points delegate
/// wholesale to the wrapped MinMaxNormalizer, so the encoded tensor —
/// and therefore every trained weight and sampled byte — is bitwise
/// identical to what the plain normalizer produces. GMM columns widen
/// the record: the encoded row lays columns out in schema order, each
/// occupying column_width(c) consecutive cells starting at
/// column_offset(c) (1 for min-max, 1 + k for a k-mode GMM column).
class RecordNormalizer {
 public:
  RecordNormalizer() = default;

  /// Fits every column. `specs` is either empty (all min-max) or one
  /// entry per column; kGmm is only valid on kContinuous columns.
  Status Fit(const TableView& table,
             const std::vector<ColumnNormalizerSpec>& specs = {});

  bool fitted() const { return minmax_.fitted(); }
  int num_columns() const { return minmax_.num_columns(); }
  /// Total cells per encoded row (== num_columns() when all min-max).
  int encoded_width() const { return encoded_width_; }
  bool all_minmax() const { return all_minmax_; }

  int column_offset(int c) const { return offsets_[static_cast<size_t>(c)]; }
  int column_width(int c) const {
    const GmmColumnNormalizer* g = gmm(c);
    return g ? g->encoded_width() : 1;
  }

  /// Encodes the whole table as a [rows, encoded_width()] tensor.
  Result<Tensor> Transform(const TableView& table) const;

  /// Strided selected-row encoding with the same bitwise-equals-gather
  /// contract as MinMaxNormalizer::EncodeRowsInto; writes
  /// encoded_width() cells per row.
  void EncodeRowsInto(const TableView& table, const int64_t* rows,
                      int64_t count, float* out, int64_t stride) const;

  /// Decodes a [rows, encoded_width()] tensor back into a table under
  /// `schema`. Min-max columns round/clamp exactly as the plain
  /// normalizer; GMM columns decode through their selected mode.
  Result<Table> InverseTransform(const Tensor& encoded,
                                 const Schema& schema) const;

  const MinMaxNormalizer& minmax() const { return minmax_; }
  const std::vector<ColumnNormalizerSpec>& specs() const { return specs_; }
  /// nullptr for min-max columns.
  const GmmColumnNormalizer* gmm(int c) const {
    return gmms_[static_cast<size_t>(c)].get();
  }

  double column_min(int c) const { return minmax_.column_min(c); }
  double column_max(int c) const { return minmax_.column_max(c); }

  /// Model persistence: `gmms[c]` must be non-null exactly where
  /// `specs[c].kind == kGmm` (specs may be empty for all min-max).
  void Restore(std::vector<double> mins, std::vector<double> maxs,
               std::vector<ColumnType> types,
               std::vector<ColumnNormalizerSpec> specs,
               std::vector<std::unique_ptr<GmmColumnNormalizer>> gmms);

 private:
  void RebuildLayout();

  MinMaxNormalizer minmax_;
  std::vector<ColumnType> types_;
  std::vector<ColumnNormalizerSpec> specs_;
  std::vector<std::unique_ptr<GmmColumnNormalizer>> gmms_;
  std::vector<int> offsets_;
  int encoded_width_ = 0;
  bool all_minmax_ = true;
};

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_GMM_NORMALIZER_H_
