#include "data/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace tablegan {
namespace data {

MmapFile::~MmapFile() { Unmap(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::Unmap() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
    addr_ = nullptr;
    size_ = 0;
  }
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = -1;
  for (;;) {
    if (TABLEGAN_FAILPOINT("mmap.open_eintr")) {
      errno = EINTR;  // simulated interrupted open; loop must retry
      continue;
    }
    fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0 || errno != EINTR) break;
  }
  if (fd < 0 || TABLEGAN_FAILPOINT("mmap.open")) {
    if (fd >= 0) ::close(fd);
    return Status::IOError("cannot open for read: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError("cannot stat regular file: " + path);
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ == 0) {
    ::close(fd);
    return out;  // empty file: valid, unmapped
  }
  void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  // The fd is not needed past this point either way.
  ::close(fd);
  if (addr == MAP_FAILED || TABLEGAN_FAILPOINT("mmap.map")) {
    if (addr != MAP_FAILED) ::munmap(addr, out.size_);
    return Status::IOError(std::string("mmap failed: ") +
                           std::strerror(errno) + ": " + path);
  }
  out.addr_ = addr;
  return out;
}

}  // namespace data
}  // namespace tablegan
