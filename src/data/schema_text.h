#ifndef TABLEGAN_DATA_SCHEMA_TEXT_H_
#define TABLEGAN_DATA_SCHEMA_TEXT_H_

#include <string>

#include "common/status.h"
#include "data/schema.h"

namespace tablegan {
namespace data {

/// Plain-text schema description used by the CLI, one column per line:
///
///   # comments and blank lines are ignored
///   age,discrete,qid
///   education,categorical,qid,dropout|hs_grad|bachelors
///   salary,continuous,sensitive
///   high_salary,discrete,label
///
/// Types: continuous | discrete | categorical.
/// Roles: qid | sensitive | label.
/// Categorical columns list their levels after a third comma, separated
/// by '|'.
Result<Schema> ParseSchemaText(const std::string& text);

/// Reads and parses a schema file.
Result<Schema> ReadSchemaFile(const std::string& path);

/// Inverse of ParseSchemaText (round-trips).
std::string SchemaToText(const Schema& schema);

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_SCHEMA_TEXT_H_
