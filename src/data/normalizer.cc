#include "data/normalizer.h"

#include <algorithm>
#include <cmath>

namespace tablegan {
namespace data {

double EncodeUnit(double v, double lo, double hi, double span) {
  if (std::isfinite(span)) return (v - lo) / span * 2.0 - 1.0;
  return (0.5 * v - 0.5 * lo) / (0.5 * hi - 0.5 * lo) * 2.0 - 1.0;
}

double DecodeUnit(double u, double lo, double hi, double span) {
  if (std::isfinite(span)) return lo + (u + 1.0) * 0.5 * span;
  const double w = (u + 1.0) * 0.5;
  return lo * (1.0 - w) + hi * w;
}

Status MinMaxNormalizer::Fit(const TableView& table) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit normalizer on empty table");
  }
  const int cols = table.num_columns();
  const int64_t n = table.num_rows();
  mins_.assign(static_cast<size_t>(cols), 0.0);
  maxs_.assign(static_cast<size_t>(cols), 0.0);
  types_.resize(static_cast<size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    const double* col = table.column_data(c);
    double lo = col[0], hi = col[0];
    for (int64_t r = 0; r < n; ++r) {
      lo = std::min(lo, col[r]);
      hi = std::max(hi, col[r]);
    }
    mins_[static_cast<size_t>(c)] = lo;
    maxs_[static_cast<size_t>(c)] = hi;
    types_[static_cast<size_t>(c)] = table.schema().column(c).type;
  }
  return Status::OK();
}

Result<Tensor> MinMaxNormalizer::Transform(const TableView& table) const {
  if (!fitted()) return Status::FailedPrecondition("normalizer not fitted");
  if (table.num_columns() != num_columns()) {
    return Status::InvalidArgument("column count mismatch in Transform");
  }
  const int64_t n = table.num_rows();
  const int cols = num_columns();
  Tensor out({n, cols});
  for (int c = 0; c < cols; ++c) {
    const double lo = mins_[static_cast<size_t>(c)];
    const double hi = maxs_[static_cast<size_t>(c)];
    const double span = hi - lo;
    const double* col = table.column_data(c);
    for (int64_t r = 0; r < n; ++r) {
      const double v = col[r];
      out.at2(r, c) = span > 0.0
                          ? static_cast<float>(EncodeUnit(v, lo, hi, span))
                          : 0.0f;
    }
  }
  return out;
}

void MinMaxNormalizer::EncodeRowsInto(const TableView& table,
                                      const int64_t* rows, int64_t count,
                                      float* out, int64_t stride) const {
  TABLEGAN_CHECK(fitted() && table.num_columns() == num_columns());
  TABLEGAN_CHECK(stride >= num_columns());
  const int cols = num_columns();
  // Column-major like Transform: the source column stays hot and the
  // per-column bounds are hoisted, while each output row lands at its
  // own stride offset.
  for (int c = 0; c < cols; ++c) {
    const double lo = mins_[static_cast<size_t>(c)];
    const double hi = maxs_[static_cast<size_t>(c)];
    const double span = hi - lo;
    const double* col = table.column_data(c);
    for (int64_t i = 0; i < count; ++i) {
      const double v = col[rows[i]];
      out[i * stride + c] =
          span > 0.0 ? static_cast<float>(EncodeUnit(v, lo, hi, span))
                     : 0.0f;
    }
  }
}

Result<Table> MinMaxNormalizer::InverseTransform(const Tensor& encoded,
                                                 const Schema& schema) const {
  if (!fitted()) return Status::FailedPrecondition("normalizer not fitted");
  if (encoded.rank() != 2 || encoded.dim(1) != num_columns()) {
    return Status::InvalidArgument("encoded shape mismatch");
  }
  if (schema.num_columns() != num_columns()) {
    return Status::InvalidArgument("schema width mismatch");
  }
  const int64_t n = encoded.dim(0);
  const int cols = num_columns();
  Table out(schema);
  out.Resize(n);
  for (int64_t r = 0; r < n; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double lo = mins_[static_cast<size_t>(c)];
      const double hi = maxs_[static_cast<size_t>(c)];
      double u = std::clamp(static_cast<double>(encoded.at2(r, c)), -1.0, 1.0);
      double v = DecodeUnit(u, lo, hi, hi - lo);
      if (types_[static_cast<size_t>(c)] != ColumnType::kContinuous) {
        v = std::round(v);
      }
      if (types_[static_cast<size_t>(c)] == ColumnType::kCategorical) {
        // Rounding can push a sampled code just past the level range
        // (e.g. non-integer fitted bounds); clamp into the schema's
        // category domain so WriteCsv never sees an unwritable code.
        const int nc = schema.column(c).num_categories();
        if (nc > 0) {
          v = std::clamp(v, 0.0, static_cast<double>(nc - 1));
        } else {
          v = std::clamp(v, std::round(lo), std::round(hi));
        }
      }
      out.Set(r, c, v);
    }
  }
  return out;
}

std::vector<double> MinMaxNormalizer::NormalizeRow(
    const std::vector<double>& row) const {
  TABLEGAN_CHECK(static_cast<int>(row.size()) == num_columns());
  std::vector<double> out(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    const double lo = mins_[c], hi = maxs_[c];
    out[c] = hi > lo ? EncodeUnit(row[c], lo, hi, hi - lo) : 0.0;
  }
  return out;
}

}  // namespace data
}  // namespace tablegan
