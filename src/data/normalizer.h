#ifndef TABLEGAN_DATA_NORMALIZER_H_
#define TABLEGAN_DATA_NORMALIZER_H_

#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "data/table_view.h"
#include "tensor/tensor.h"

namespace tablegan {
namespace data {

/// (v - lo) mapped to [-1, 1] without intermediate overflow. Dividing
/// before doubling keeps every intermediate <= span; when hi - lo itself
/// overflows (columns spanning most of the double range), the same ratio
/// is formed from exactly-halved operands. Both forms round identically
/// to the naive 2*(v-lo)/span - 1 wherever that one is finite. Shared by
/// the min-max normalizer and the GMM normalizer (gmm_normalizer.h),
/// which fits its mixtures in this unit space so extreme doubles are
/// handled by one audited mapping.
double EncodeUnit(double v, double lo, double hi, double span);

/// Inverse map of EncodeUnit for u in [-1, 1]. The naive
/// lo + (u+1)*0.5*span overflows with span; the wide-span branch
/// interpolates lo/hi directly, keeping every term within the domain.
double DecodeUnit(double u, double lo, double hi, double span);

/// Attribute-wise min-max scaler to [-1, 1].
///
/// This is the record encoding of paper §3.2: every attribute — after
/// label-encoding categoricals to level indices — is linearly mapped to
/// the generator's tanh range, and the mapping is inverted at synthesis
/// time. Discrete and categorical attributes are rounded to the nearest
/// valid level on the way back; continuous attributes are clamped to the
/// observed range. The same normalization underlies the DCR privacy
/// metric ("distance after attribute-wise normalization", §5.1.2), for
/// which NormalizeRow() is exposed.
class MinMaxNormalizer {
 public:
  MinMaxNormalizer() = default;

  /// Learns per-column min/max from `table`. Constant columns are handled
  /// by mapping every value to 0. Takes any TableView, so fitting reads
  /// straight out of an mmap'd columnar file as readily as a Table.
  Status Fit(const TableView& table);

  bool fitted() const { return !mins_.empty(); }
  int num_columns() const { return static_cast<int>(mins_.size()); }

  /// Encodes the whole table as a [rows, cols] float tensor in [-1, 1].
  Result<Tensor> Transform(const TableView& table) const;

  /// Encodes `count` selected rows (`rows[i]` indexes into `table`) into
  /// `out`, one row every `stride` floats, writing num_columns() cells
  /// per row and leaving the rest of each stride untouched. Cell (i, c)
  /// is computed with exactly the per-cell expression of Transform, so a
  /// mini-batch assembled this way is bitwise identical to gathering the
  /// same rows out of Transform's full tensor — which is what lets
  /// TableGan::Fit stream batches straight off an mmap'd columnar file
  /// instead of materializing the whole encoded table.
  void EncodeRowsInto(const TableView& table, const int64_t* rows,
                      int64_t count, float* out, int64_t stride) const;

  /// Decodes a [rows, cols] tensor back into a table under `schema`,
  /// rounding discrete/categorical attributes and clamping to the fitted
  /// range.
  Result<Table> InverseTransform(const Tensor& encoded,
                                 const Schema& schema) const;

  /// Encodes a single row (used by DCR and the generation-example bench).
  std::vector<double> NormalizeRow(const std::vector<double>& row) const;

  double column_min(int c) const { return mins_[static_cast<size_t>(c)]; }
  double column_max(int c) const { return maxs_[static_cast<size_t>(c)]; }

  /// Serialization accessors / restore (model persistence).
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }
  void Restore(std::vector<double> mins, std::vector<double> maxs,
               std::vector<ColumnType> types) {
    mins_ = std::move(mins);
    maxs_ = std::move(maxs);
    types_ = std::move(types);
  }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
  std::vector<ColumnType> types_;
};

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_NORMALIZER_H_
