#include "data/columnar.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/io_retry.h"
#include "data/schema_text.h"

namespace tablegan {
namespace data {
namespace {

constexpr char kMagic[8] = {'T', 'G', 'C', 'L', '0', '0', '0', '1'};
constexpr size_t kMagicSize = sizeof(kMagic);
constexpr size_t kFixedHeaderSize = kMagicSize + 3 * sizeof(uint64_t);
constexpr size_t kFooterSize = sizeof(uint32_t);

size_t PadTo8(size_t n) { return (n + 7) & ~size_t{7}; }

// Header through the end of the (padded) schema text.
size_t DataOffset(size_t schema_len) {
  return kFixedHeaderSize + PadTo8(schema_len);
}

}  // namespace

bool LooksLikeColumnarFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  char magic[kMagicSize];
  Result<size_t> got = io::ReadFull(fd, magic, kMagicSize);
  ::close(fd);
  return got.ok() && *got == kMagicSize &&
         std::memcmp(magic, kMagic, kMagicSize) == 0;
}

Status WriteColumnar(const TableView& table, const std::string& path) {
  const std::string schema_text = SchemaToText(table.schema());
  // The embedded schema must survive the text format (which cannot
  // represent e.g. commas or line breaks in column names) — otherwise
  // Open would read back a different schema than was written. Reject
  // loudly instead of persisting a silently-mangled header.
  Result<Schema> reparsed = ParseSchemaText(schema_text);
  if (!reparsed.ok() || !reparsed->Equals(table.schema())) {
    return Status::InvalidArgument(
        "schema is not representable in columnar schema text (column "
        "names/levels must be free of ',', '|', '#' and line breaks): " +
        path);
  }
  const uint64_t rows = static_cast<uint64_t>(table.num_rows());
  const uint64_t cols = static_cast<uint64_t>(table.num_columns());
  const uint64_t schema_len = schema_text.size();

  std::string header;
  header.reserve(DataOffset(schema_text.size()));
  header.append(kMagic, kMagicSize);
  header.append(reinterpret_cast<const char*>(&rows), sizeof(rows));
  header.append(reinterpret_cast<const char*>(&cols), sizeof(cols));
  header.append(reinterpret_cast<const char*>(&schema_len),
                sizeof(schema_len));
  header.append(schema_text);
  header.resize(DataOffset(schema_text.size()), '\0');  // align columns

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0 || TABLEGAN_FAILPOINT("columnar.open_write")) {
    if (fd >= 0) ::close(fd);
    std::remove(tmp.c_str());
    return Status::IOError("cannot open for write: " + tmp);
  }
  // Stream header then each column block, accumulating the CRC
  // incrementally so no second pass (and no full-file copy) is needed.
  uint32_t crc = Crc32(header.data(), header.size());
  Status written = io::WriteFull(fd, header.data(), header.size());
  const bool short_write = TABLEGAN_FAILPOINT("columnar.short_write");
  // Simulated bit rot: the first column byte on disk diverges from the
  // byte the CRC was computed over, so Open must still succeed (the
  // header and length are intact) but VerifyCrc must fail.
  bool corrupt_byte = TABLEGAN_FAILPOINT("columnar.corrupt_byte");
  for (int c = 0; written.ok() && c < table.num_columns(); ++c) {
    const double* col = table.column_data(c);
    size_t bytes = static_cast<size_t>(rows) * sizeof(double);
    if (short_write && c + 1 == table.num_columns()) {
      bytes /= 2;  // the last column block is torn mid-write
    }
    if (bytes == 0) continue;
    crc = Crc32(col, bytes, crc);
    if (corrupt_byte) {
      corrupt_byte = false;
      double flipped = col[0];
      reinterpret_cast<char*>(&flipped)[0] ^= 0x40;
      written = io::WriteFull(fd, &flipped, sizeof(double));
      if (written.ok() && bytes > sizeof(double)) {
        written = io::WriteFull(fd, col + 1, bytes - sizeof(double));
      }
      continue;
    }
    written = io::WriteFull(fd, col, bytes);
  }
  if (written.ok() && !short_write) {
    written = io::WriteFull(fd, &crc, kFooterSize);
  }
  ::close(fd);
  if (!written.ok() || short_write) {
    std::remove(tmp.c_str());
    return Status::IOError("write failed: " + tmp);
  }
  if (TABLEGAN_FAILPOINT("columnar.rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<ColumnarReader> ColumnarReader::Open(const std::string& path) {
  TABLEGAN_ASSIGN_OR_RETURN(MmapFile map, MmapFile::Open(path));
  size_t size = map.size();
  if (TABLEGAN_FAILPOINT("columnar.truncated_footer")) {
    // Simulates a file that lost its tail (footer and part of the last
    // column); every check below sees the shorter length.
    size = size > kFooterSize ? size - kFooterSize - 3 : 0;
  }
  if (size < kFixedHeaderSize + kFooterSize ||
      std::memcmp(map.data(), kMagic, kMagicSize) != 0) {
    return Status::InvalidArgument("not a columnar table file: " + path);
  }
  uint64_t rows = 0, cols = 0, schema_len = 0;
  std::memcpy(&rows, map.data() + kMagicSize, sizeof(rows));
  std::memcpy(&cols, map.data() + kMagicSize + 8, sizeof(cols));
  std::memcpy(&schema_len, map.data() + kMagicSize + 16, sizeof(schema_len));
  // Sanity before any size arithmetic: a corrupt header must not drive
  // an overflowing multiply below.
  if (cols > (1u << 20) || schema_len > (1u << 26) ||
      rows > (uint64_t{1} << 40)) {
    return Status::InvalidArgument("implausible columnar header: " + path);
  }
  const size_t data_off = DataOffset(static_cast<size_t>(schema_len));
  const uint64_t data_bytes = rows * cols * sizeof(double);
  const uint64_t expected = data_off + data_bytes + kFooterSize;
  if (expected != size) {
    return Status::IOError(
        "truncated columnar file (expected " + std::to_string(expected) +
        " bytes, have " + std::to_string(size) + "): " + path);
  }
  TABLEGAN_ASSIGN_OR_RETURN(
      Schema schema,
      ParseSchemaText(std::string(map.data() + kFixedHeaderSize,
                                  static_cast<size_t>(schema_len))));
  if (static_cast<uint64_t>(schema.num_columns()) != cols) {
    return Status::InvalidArgument(
        "columnar header declares " + std::to_string(cols) +
        " columns but its schema has " +
        std::to_string(schema.num_columns()) + ": " + path);
  }
  ColumnarReader out;
  out.map_ = std::move(map);
  out.path_ = path;
  out.schema_ = std::move(schema);
  out.num_rows_ = static_cast<int64_t>(rows);
  out.data_offset_ = data_off;
  return out;
}

const double* ColumnarReader::column_data(int col) const {
  if (num_rows_ == 0) return nullptr;
  return reinterpret_cast<const double*>(map_.data() + data_offset_) +
         static_cast<int64_t>(col) * num_rows_;
}

Status ColumnarReader::VerifyCrc() const {
  const size_t body = map_.size() - kFooterSize;
  uint32_t stored = 0;
  std::memcpy(&stored, map_.data() + body, kFooterSize);
  if (Crc32(map_.data(), body) != stored) {
    return Status::IOError("corrupt columnar file (CRC mismatch): " + path_);
  }
  return Status::OK();
}

}  // namespace data
}  // namespace tablegan
