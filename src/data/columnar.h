#ifndef TABLEGAN_DATA_COLUMNAR_H_
#define TABLEGAN_DATA_COLUMNAR_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/mmap_file.h"
#include "data/schema.h"
#include "data/table.h"
#include "data/table_view.h"

namespace tablegan {
namespace data {

/// Binary columnar on-disk table format (DESIGN.md §14).
///
/// Layout (little-endian host; a cache format, like the checkpoints):
///
///   offset 0   magic "TGCL0001" (8 bytes)
///          8   u64 num_rows
///         16   u64 num_cols
///         24   u64 schema_len (bytes of schema text)
///         32   schema text (schema_text.h format), zero-padded to the
///              next 8-byte boundary so the column data is aligned
///   data_off   num_cols blocks of num_rows doubles, one per column,
///              in schema order, each contiguous
///     footer   u32 CRC-32 (common/crc32) over every byte before it
///
/// The doubles are the exact bit patterns of the in-RAM Table columns,
/// so write -> read -> materialize is bitwise identity (a property-fuzz
/// invariant), and a model trained from the mmap is bitwise identical
/// to one trained from the Table the file was written from.
///
/// Opening is O(1): the reader maps the file, checks the magic, header
/// sanity and the exact expected file length (which catches truncation
/// without touching column data), and parses the schema text. The
/// footer CRC guards against bit rot, not truncation; verifying it
/// requires one full pass, so it is a separate call (VerifyCrc) used by
/// `tablegan_cli inspect`, `convert` and the tests rather than by Open.

/// True when the file at `path` starts with the columnar magic. Used to
/// sniff table inputs (CLI --data, the serving daemon's registry) so
/// columnar files need no format flag. False on unreadable files.
bool LooksLikeColumnarFile(const std::string& path);

/// Serializes `table` to `path` atomically (temp file + rename) with
/// the CRC-32 footer. Column data streams straight out of the view's
/// column_data pointers through the EINTR-safe io:: helpers.
///
/// Failpoint sites (tests force each; the target path is never torn):
/// columnar.open_write, columnar.corrupt_byte (CRC must catch it),
/// columnar.short_write, columnar.rename.
Status WriteColumnar(const TableView& table, const std::string& path);

/// Zero-copy mmap-backed reader; satisfies TableView, so it trains,
/// normalizes and splits exactly like an in-RAM Table without ever
/// materializing the rows.
class ColumnarReader : public TableView {
 public:
  /// Opens and validates `path` in O(1) (no column data is read).
  /// Truncated or foreign files are rejected; failpoint site
  /// columnar.truncated_footer simulates a file that lost its tail.
  static Result<ColumnarReader> Open(const std::string& path);

  const Schema& schema() const override { return schema_; }
  int64_t num_rows() const override { return num_rows_; }
  const double* column_data(int col) const override;

  /// Recomputes the CRC-32 over the mapped body against the footer —
  /// one full sequential pass over the map.
  Status VerifyCrc() const;

  const std::string& path() const { return path_; }
  /// Bytes of the backing file.
  size_t file_size() const { return map_.size(); }

 private:
  MmapFile map_;
  std::string path_;
  Schema schema_;
  int64_t num_rows_ = 0;
  size_t data_offset_ = 0;
};

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_COLUMNAR_H_
