#include "data/split.h"

#include <algorithm>

#include "common/logging.h"

namespace tablegan {
namespace data {

TrainTestSplit SplitTrainTest(const Table& table, double test_fraction,
                              Rng* rng) {
  TABLEGAN_CHECK(test_fraction >= 0.0 && test_fraction < 1.0);
  const int64_t n = table.num_rows();
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  rng->Shuffle(&idx);
  const int64_t test_n = static_cast<int64_t>(
      static_cast<double>(n) * test_fraction);
  std::vector<int64_t> test_idx(idx.begin(), idx.begin() + test_n);
  std::vector<int64_t> train_idx(idx.begin() + test_n, idx.end());
  return {table.SelectRows(train_idx), table.SelectRows(test_idx)};
}

std::vector<Table> SplitChunks(const Table& table, int num_chunks) {
  std::vector<Table> out;
  for (const TableRangeView& view : SplitChunkViews(table, num_chunks)) {
    out.push_back(view.Materialize());
  }
  return out;
}

std::vector<TableRangeView> SplitChunkViews(const TableView& table,
                                            int num_chunks) {
  TABLEGAN_CHECK(num_chunks >= 1);
  const int64_t n = table.num_rows();
  num_chunks = static_cast<int>(
      std::min<int64_t>(num_chunks, std::max<int64_t>(n, 1)));
  std::vector<TableRangeView> out;
  out.reserve(static_cast<size_t>(num_chunks));
  int64_t start = 0;
  for (int k = 0; k < num_chunks; ++k) {
    const int64_t end = n * (k + 1) / num_chunks;
    out.emplace_back(table, start, end - start);
    start = end;
  }
  return out;
}

}  // namespace data
}  // namespace tablegan
