#include "data/record_matrix.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace tablegan {
namespace data {

RecordMatrixCodec::RecordMatrixCodec(int num_attributes, int side)
    : num_attributes_(num_attributes), side_(side) {
  TABLEGAN_CHECK(num_attributes >= 1);
  TABLEGAN_CHECK(side >= 4 && (side & (side - 1)) == 0)
      << "side must be a power of two >= 4, got " << side;
  TABLEGAN_CHECK(side * side >= num_attributes)
      << side << "x" << side << " matrix cannot hold " << num_attributes
      << " attributes";
}

int RecordMatrixCodec::ChooseSide(int num_attributes) {
  int side = 4;
  while (side * side < num_attributes) side *= 2;
  return side;
}

Result<Tensor> RecordMatrixCodec::ToMatrices(const Tensor& records) const {
  if (records.rank() != 2 || records.dim(1) != num_attributes_) {
    return Status::InvalidArgument("expected [n, " +
                                   std::to_string(num_attributes_) +
                                   "] records, got " +
                                   ShapeToString(records.shape()));
  }
  const int64_t n = records.dim(0);
  const int64_t cells = static_cast<int64_t>(side_) * side_;
  const int64_t pad = cells - num_attributes_;
  Tensor out({n, 1, side_, side_});
  for (int64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * cells, records.data() + i * num_attributes_,
                sizeof(float) * static_cast<size_t>(num_attributes_));
    // The discriminator sees every cell: the padding beyond the
    // attributes must be exactly zero (paper §3.2). Zero it explicitly
    // rather than relying on Tensor's zero-construction, so a future
    // uninitialized-allocation optimization cannot leak garbage here.
    if (pad > 0) {
      std::memset(out.data() + i * cells + num_attributes_, 0,
                  sizeof(float) * static_cast<size_t>(pad));
    }
  }
  TABLEGAN_DCHECK(pad == 0 || out[cells - 1] == 0.0f);
  return out;
}

Result<Tensor> RecordMatrixCodec::FromMatrices(const Tensor& matrices) const {
  if (matrices.rank() != 4 || matrices.dim(1) != 1 ||
      matrices.dim(2) != side_ || matrices.dim(3) != side_) {
    return Status::InvalidArgument("expected [n, 1, " +
                                   std::to_string(side_) + ", " +
                                   std::to_string(side_) + "] matrices, got " +
                                   ShapeToString(matrices.shape()));
  }
  const int64_t n = matrices.dim(0);
  const int64_t cells = static_cast<int64_t>(side_) * side_;
  Tensor out({n, num_attributes_});
  for (int64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * num_attributes_, matrices.data() + i * cells,
                sizeof(float) * static_cast<size_t>(num_attributes_));
  }
  return out;
}

}  // namespace data
}  // namespace tablegan
