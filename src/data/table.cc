#include "data/table.h"

#include <algorithm>

#include "common/logging.h"

namespace tablegan {
namespace data {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(static_cast<size_t>(schema_.num_columns()));
}

double Table::Get(int64_t row, int col) const {
  TABLEGAN_DCHECK(row >= 0 && row < num_rows_);
  TABLEGAN_DCHECK(col >= 0 && col < num_columns());
  return columns_[static_cast<size_t>(col)][static_cast<size_t>(row)];
}

void Table::Set(int64_t row, int col, double value) {
  TABLEGAN_DCHECK(row >= 0 && row < num_rows_);
  TABLEGAN_DCHECK(col >= 0 && col < num_columns());
  columns_[static_cast<size_t>(col)][static_cast<size_t>(row)] = value;
}

const std::vector<double>& Table::column(int col) const {
  TABLEGAN_DCHECK(col >= 0 && col < num_columns());
  return columns_[static_cast<size_t>(col)];
}

const double* Table::column_data(int col) const {
  TABLEGAN_DCHECK(col >= 0 && col < num_columns());
  return columns_[static_cast<size_t>(col)].data();
}

void Table::AppendRow(const std::vector<double>& values) {
  TABLEGAN_CHECK(static_cast<int>(values.size()) == num_columns())
      << "row width " << values.size() << " vs schema " << num_columns();
  for (size_t c = 0; c < values.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
  ++num_rows_;
}

std::vector<double> Table::Row(int64_t row) const {
  std::vector<double> out(static_cast<size_t>(num_columns()));
  for (int c = 0; c < num_columns(); ++c) out[static_cast<size_t>(c)] = Get(row, c);
  return out;
}

void Table::Resize(int64_t rows) {
  for (auto& col : columns_) col.resize(static_cast<size_t>(rows), 0.0);
  num_rows_ = rows;
}

void Table::FillColumn(int col, const double* values, int64_t n) {
  TABLEGAN_DCHECK(col >= 0 && col < num_columns());
  TABLEGAN_CHECK(n <= num_rows_)
      << "FillColumn of " << n << " values into " << num_rows_ << " rows";
  std::copy(values, values + n, columns_[static_cast<size_t>(col)].begin());
}

Table Table::SelectRows(const std::vector<int64_t>& rows) const {
  Table out(schema_);
  out.Resize(static_cast<int64_t>(rows.size()));
  for (int c = 0; c < num_columns(); ++c) {
    const auto& src = columns_[static_cast<size_t>(c)];
    auto& dst = out.columns_[static_cast<size_t>(c)];
    for (size_t i = 0; i < rows.size(); ++i) {
      TABLEGAN_DCHECK(rows[i] >= 0 && rows[i] < num_rows_);
      dst[i] = src[static_cast<size_t>(rows[i])];
    }
  }
  return out;
}

Result<Table> Table::SelectColumns(const std::vector<int>& cols) const {
  Schema projected;
  for (int c : cols) {
    if (c < 0 || c >= num_columns()) {
      return Status::OutOfRange("column index out of range");
    }
    projected.AddColumn(schema_.column(c));
  }
  Table out(projected);
  out.num_rows_ = num_rows_;
  for (size_t i = 0; i < cols.size(); ++i) {
    out.columns_[i] = columns_[static_cast<size_t>(cols[i])];
  }
  return out;
}

Result<Table> Table::ConcatRows(const std::vector<Table>& parts) {
  if (parts.empty()) return Status::InvalidArgument("no tables to concat");
  int64_t total = 0;
  for (const Table& p : parts) {
    if (!p.schema().Equals(parts[0].schema())) {
      return Status::InvalidArgument("schema mismatch in ConcatRows");
    }
    total += p.num_rows();
  }
  // Per-column block copies into a pre-sized table: the old code built
  // every row through Row()/AppendRow(), allocating a fresh
  // std::vector<double> per row and push_back-ing cell by cell.
  Table out(parts[0].schema());
  out.Resize(total);
  for (int c = 0; c < out.num_columns(); ++c) {
    auto& dst = out.columns_[static_cast<size_t>(c)];
    int64_t at = 0;
    for (const Table& p : parts) {
      const auto& src = p.columns_[static_cast<size_t>(c)];
      std::copy(src.begin(), src.end(), dst.begin() + at);
      at += p.num_rows();
    }
  }
  return out;
}

}  // namespace data
}  // namespace tablegan
