#ifndef TABLEGAN_DATA_DATASETS_H_
#define TABLEGAN_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/table.h"

namespace tablegan {
namespace data {

/// One evaluation dataset: a training table, a held-out testing table
/// drawn from the same distribution (the paper's "testing records that
/// are not part of the original table", §5.1.1), and the columns used by
/// the model-compatibility experiments.
struct Dataset {
  std::string name;
  Table train;
  Table test;
  /// Binary ground-truth label column (role kLabel).
  int label_col = -1;
  /// Continuous regression target, or -1 (Health has none — §5.2.2.2).
  int regression_col = -1;
};

/// The four dataset simulators. They substitute for the paper's public
/// downloads (LACity payroll [5], UCI Adult [1], NHANES Health [4], BTS
/// Airline [2]) with synthetic tables matching the paper's Table 3
/// statistics: column counts and roles, mixed categorical / discrete /
/// continuous types, and a label correlated with the other attributes so
/// model-compatibility tests have real signal.
///
/// `rows` is the total row count to generate. Full paper sizes are the
/// defaults in PaperRowCount(); benches scale them down for CPU runs.
Table MakeLaCityLike(int64_t rows, Rng* rng);
Table MakeAdultLike(int64_t rows, Rng* rng);
Table MakeHealthLike(int64_t rows, Rng* rng);
Table MakeAirlineLike(int64_t rows, Rng* rng);

/// Names accepted by MakeDataset: "lacity", "adult", "health", "airline".
std::vector<std::string> DatasetNames();

/// Paper Table 3 training-set row count for `name`.
Result<int64_t> PaperRowCount(const std::string& name);
/// Paper Table 3 testing-set row count for `name`.
Result<int64_t> PaperTestRowCount(const std::string& name);

/// Builds train and test tables for `name`, scaled to
/// round(paper_rows * scale) (min 50 rows each split).
Result<Dataset> MakeDataset(const std::string& name, double scale,
                            uint64_t seed);

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_DATASETS_H_
