#ifndef TABLEGAN_DATA_TABLE_VIEW_H_
#define TABLEGAN_DATA_TABLE_VIEW_H_

#include <cstdint>

#include "data/schema.h"

namespace tablegan {
namespace data {

class Table;

/// Read-only columnar view of a relational table.
///
/// The one interface the training pipeline consumes: a schema plus one
/// contiguous array of doubles per column. Both the in-RAM `Table` and
/// the mmap-backed `ColumnarReader` satisfy it, so `Normalizer::Fit`,
/// `TableGan::Fit` batch assembly and the chunk splitter are agnostic to
/// whether rows live on the heap or on a memory-mapped file — the
/// out-of-core path is the in-RAM path pointed at different memory, and
/// produces bitwise-identical results (DESIGN.md §14).
///
/// Implementations keep the backing storage alive for the lifetime of
/// the view; `column_data` pointers are stable for that lifetime.
class TableView {
 public:
  virtual ~TableView() = default;

  virtual const Schema& schema() const = 0;
  virtual int64_t num_rows() const = 0;

  /// Pointer to the `num_rows()` contiguous values of column `col`.
  /// May be null only when num_rows() == 0.
  virtual const double* column_data(int col) const = 0;

  int num_columns() const { return schema().num_columns(); }

  /// Cell access for cold paths; hot loops should hoist column_data.
  double Cell(int64_t row, int col) const { return column_data(col)[row]; }

  /// Deep-copies the viewed rows into an in-RAM Table.
  Table Materialize() const;
};

/// Zero-copy view of a contiguous row range [begin, begin + rows) of
/// another view. Because every column is contiguous, a row range of a
/// column is itself contiguous — chunked training splits a table into
/// these instead of copying chunk tables (paper §4.4 at mmap scale).
/// The base view must outlive the range view.
class TableRangeView : public TableView {
 public:
  TableRangeView(const TableView& base, int64_t begin, int64_t rows);

  const Schema& schema() const override { return base_->schema(); }
  int64_t num_rows() const override { return rows_; }
  const double* column_data(int col) const override;

  int64_t begin() const { return begin_; }

 private:
  const TableView* base_;
  int64_t begin_ = 0;
  int64_t rows_ = 0;
};

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_TABLE_VIEW_H_
