#ifndef TABLEGAN_DATA_CSV_H_
#define TABLEGAN_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace tablegan {
namespace data {

/// Writes `table` as CSV with a header row. Categorical cells are written
/// as their level names; numeric cells with full double precision.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV produced by WriteCsv (or hand-authored with the same
/// header) against a known schema. Column order must match the schema;
/// categorical cells may be level names or numeric level indices.
Result<Table> ReadCsv(const Schema& schema, const std::string& path);

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_CSV_H_
