#ifndef TABLEGAN_DATA_CSV_H_
#define TABLEGAN_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace tablegan {
namespace data {

/// Writes `table` as CSV with a header row. Categorical cells are written
/// as their level names; numeric cells with full double precision. The
/// file write goes through the EINTR-safe io:: helpers, so a signal
/// landing mid-write (routine for the serving daemon and supervised
/// trainers) is retried instead of surfacing as a spurious I/O error.
Status WriteCsv(const Table& table, const std::string& path);

/// Serializes `table` to a CSV string (same layout as WriteCsv). With
/// include_header false only data rows are emitted, so row-range shards
/// of one logical table concatenate into a valid file.
Result<std::string> WriteCsvToString(const Table& table,
                                     bool include_header = true);

/// Reads a CSV produced by WriteCsv (or hand-authored with the same
/// header) against a known schema. Column order must match the schema;
/// categorical cells may be level names or numeric level indices.
Result<Table> ReadCsv(const Schema& schema, const std::string& path);

/// ReadCsv over in-memory CSV text (e.g. a serve-protocol payload).
Result<Table> ReadCsvFromString(const Schema& schema,
                                const std::string& text);

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_CSV_H_
