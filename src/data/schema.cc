#include "data/schema.h"

namespace tablegan {
namespace data {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kContinuous:
      return "continuous";
    case ColumnType::kDiscrete:
      return "discrete";
    case ColumnType::kCategorical:
      return "categorical";
  }
  return "?";
}

const char* ColumnRoleToString(ColumnRole role) {
  switch (role) {
    case ColumnRole::kQuasiIdentifier:
      return "qid";
    case ColumnRole::kSensitive:
      return "sensitive";
    case ColumnRole::kLabel:
      return "label";
  }
  return "?";
}

Result<int> Schema::FindColumn(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[static_cast<size_t>(i)].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

std::vector<int> Schema::ColumnsWithRole(ColumnRole role) const {
  std::vector<int> out;
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[static_cast<size_t>(i)].role == role) out.push_back(i);
  }
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (num_columns() != other.num_columns()) return false;
  for (int i = 0; i < num_columns(); ++i) {
    const ColumnSpec& a = column(i);
    const ColumnSpec& b = other.column(i);
    if (a.name != b.name || a.type != b.type || a.role != b.role) {
      return false;
    }
  }
  return true;
}

}  // namespace data
}  // namespace tablegan
