#ifndef TABLEGAN_DATA_TABLE_H_
#define TABLEGAN_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"
#include "data/table_view.h"

namespace tablegan {
namespace data {

/// In-memory relational table with columnar double storage.
///
/// Categorical values are stored as level indices into the schema's
/// category list; discrete values as integral doubles. This single
/// numeric representation is what every stage of the pipeline
/// (normalization, GAN training, anonymizers, ML models) operates on.
///
/// Table satisfies the TableView interface, so everything written
/// against a view (Normalizer::Fit, TableGan::Fit, SplitChunkViews)
/// accepts a Table directly; the mmap-backed ColumnarReader is the
/// other implementation (DESIGN.md §14).
class Table : public TableView {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const override { return schema_; }
  int64_t num_rows() const override { return num_rows_; }
  const double* column_data(int col) const override;

  /// Cell access (bounds-checked in debug builds via CHECK).
  double Get(int64_t row, int col) const;
  void Set(int64_t row, int col, double value);

  /// Whole-column access for columnar algorithms.
  const std::vector<double>& column(int col) const;

  /// Appends a row; must have exactly num_columns() values.
  void AppendRow(const std::vector<double>& values);
  /// Copies a full row out.
  std::vector<double> Row(int64_t row) const;

  /// Pre-allocates `rows` zero-filled rows (faster bulk fill).
  void Resize(int64_t rows);

  /// Block-copies `n` values into column `col` starting at row 0; the
  /// table must already hold >= n rows (Resize first).
  void FillColumn(int col, const double* values, int64_t n);

  /// Returns a new table with the given row subset (indices may repeat).
  Table SelectRows(const std::vector<int64_t>& rows) const;

  /// Returns a new table with the given column subset; the schema is
  /// projected accordingly.
  Result<Table> SelectColumns(const std::vector<int>& cols) const;

  /// Vertically concatenates tables with equal schemas.
  static Result<Table> ConcatRows(const std::vector<Table>& parts);

 private:
  Schema schema_;
  std::vector<std::vector<double>> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_TABLE_H_
