#ifndef TABLEGAN_DATA_SCHEMA_H_
#define TABLEGAN_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace tablegan {
namespace data {

/// Attribute value type (paper §1: table-GAN synthesizes categorical,
/// discrete and continuous values).
enum class ColumnType {
  kContinuous,   // real-valued
  kDiscrete,     // integer-valued (counts, codes with ordinal meaning)
  kCategorical,  // enumerated levels, stored as level indices
};

/// Privacy role of an attribute (paper §2 terminology). Identifiers are
/// never stored — the pipeline assumes they were dropped upfront, as all
/// anonymization methods do.
enum class ColumnRole {
  kQuasiIdentifier,  // QID: generalized by anonymizers
  kSensitive,        // sensitive attribute
  kLabel,            // derived ground-truth label for model-compatibility
};

const char* ColumnTypeToString(ColumnType type);
const char* ColumnRoleToString(ColumnRole role);

/// Static description of one attribute.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kContinuous;
  ColumnRole role = ColumnRole::kSensitive;
  /// Level names for categorical columns; values are indices into this.
  std::vector<std::string> categories;

  int num_categories() const { return static_cast<int>(categories.size()); }
};

/// Ordered collection of column specs describing a relational table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns)
      : columns_(std::move(columns)) {}

  void AddColumn(ColumnSpec spec) { columns_.push_back(std::move(spec)); }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnSpec& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column named `name`.
  Result<int> FindColumn(const std::string& name) const;

  /// Indices of all columns with the given role.
  std::vector<int> ColumnsWithRole(ColumnRole role) const;

  /// True iff both schemas have the same column names/types/roles.
  bool Equals(const Schema& other) const;

 private:
  std::vector<ColumnSpec> columns_;
};

}  // namespace data
}  // namespace tablegan

#endif  // TABLEGAN_DATA_SCHEMA_H_
