#include "nn/reshape.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace tablegan {
namespace nn {
namespace {

// Copies `src`'s elements into a workspace buffer of `shape` — bitwise
// identical to src.Reshaped(shape), minus the fresh allocation.
Tensor PooledCopy(Workspace* ws, const Tensor& src,
                  const std::vector<int64_t>& shape) {
  Tensor out = ws->Take(shape);
  std::copy(src.data(), src.data() + src.size(), out.data());
  return out;
}

}  // namespace

Reshape::Reshape(std::vector<int64_t> sample_shape)
    : sample_shape_(std::move(sample_shape)),
      sample_size_(ShapeSize(sample_shape_)) {}

Tensor Reshape::Forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  TABLEGAN_CHECK(input.rank() >= 1);
  const int64_t n = input.dim(0);
  TABLEGAN_CHECK(input.size() == n * sample_size_)
      << "Reshape: sample size mismatch for "
      << ShapeToString(input.shape());
  std::vector<int64_t> out_shape{n};
  out_shape.insert(out_shape.end(), sample_shape_.begin(),
                   sample_shape_.end());
  if (ws_ == nullptr) return input.Reshaped(std::move(out_shape));
  return PooledCopy(ws_, input, out_shape);
}

Tensor Reshape::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() >= 1);
  const int64_t n = input.dim(0);
  TABLEGAN_CHECK(input.size() == n * sample_size_)
      << "Reshape: sample size mismatch for "
      << ShapeToString(input.shape());
  std::vector<int64_t> out_shape{n};
  out_shape.insert(out_shape.end(), sample_shape_.begin(),
                   sample_shape_.end());
  return input.Reshaped(std::move(out_shape));
}

Tensor Reshape::Backward(const Tensor& grad_output) {
  if (ws_ == nullptr) return grad_output.Reshaped(cached_input_shape_);
  return PooledCopy(ws_, grad_output, cached_input_shape_);
}

std::string Reshape::name() const {
  std::ostringstream os;
  os << "Reshape(" << ShapeToString(sample_shape_) << ")";
  return os.str();
}

Tensor Flatten::Forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  TABLEGAN_CHECK(input.rank() >= 2);
  const int64_t n = input.dim(0);
  if (ws_ == nullptr) return input.Reshaped({n, input.size() / n});
  return PooledCopy(ws_, input, {n, input.size() / n});
}

Tensor Flatten::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() >= 2);
  const int64_t n = input.dim(0);
  return input.Reshaped({n, input.size() / n});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  if (ws_ == nullptr) return grad_output.Reshaped(cached_input_shape_);
  return PooledCopy(ws_, grad_output, cached_input_shape_);
}

}  // namespace nn
}  // namespace tablegan
