#include "nn/reshape.h"

#include <sstream>

namespace tablegan {
namespace nn {

Reshape::Reshape(std::vector<int64_t> sample_shape)
    : sample_shape_(std::move(sample_shape)),
      sample_size_(ShapeSize(sample_shape_)) {}

Tensor Reshape::Forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  return Infer(input);
}

Tensor Reshape::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() >= 1);
  const int64_t n = input.dim(0);
  TABLEGAN_CHECK(input.size() == n * sample_size_)
      << "Reshape: sample size mismatch for "
      << ShapeToString(input.shape());
  std::vector<int64_t> out_shape{n};
  out_shape.insert(out_shape.end(), sample_shape_.begin(),
                   sample_shape_.end());
  return input.Reshaped(std::move(out_shape));
}

Tensor Reshape::Backward(const Tensor& grad_output) {
  return grad_output.Reshaped(cached_input_shape_);
}

std::string Reshape::name() const {
  std::ostringstream os;
  os << "Reshape(" << ShapeToString(sample_shape_) << ")";
  return os.str();
}

Tensor Flatten::Forward(const Tensor& input, bool /*training*/) {
  cached_input_shape_ = input.shape();
  return Infer(input);
}

Tensor Flatten::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() >= 2);
  const int64_t n = input.dim(0);
  return input.Reshaped({n, input.size() / n});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshaped(cached_input_shape_);
}

}  // namespace nn
}  // namespace tablegan
