#include "nn/conv2d.h"

#include <sstream>
#include <vector>

#include "common/parallel.h"
#include "tensor/matmul.h"

namespace tablegan {
namespace nn {

// Threading model: both passes run batch-parallel over a FixedChunks
// partition of the sample dimension. Chunk boundaries depend only on the
// batch size, each sample's arithmetic is self-contained, and the weight/
// bias gradients accumulate into per-chunk partials that are combined
// serially in chunk order — so results are bitwise identical at any
// thread count.

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({bias ? out_channels : 0}),
      grad_weight_({out_channels, in_channels * kernel * kernel}),
      grad_bias_({bias ? out_channels : 0}) {}

void Conv2d::EnsureChunkScratch(int64_t count, int64_t patch,
                                int64_t spatial, bool backward) {
  if (static_cast<int64_t>(chunk_cols_.size()) < count) {
    chunk_cols_.resize(static_cast<size_t>(count));
  }
  for (int64_t c = 0; c < count; ++c) {
    chunk_cols_[static_cast<size_t>(c)].ResizeUninitialized(
        {patch, spatial});
  }
  if (!backward) return;
  if (static_cast<int64_t>(chunk_grad_cols_.size()) < count) {
    chunk_grad_cols_.resize(static_cast<size_t>(count));
    dw_partials_.resize(static_cast<size_t>(count));
    if (has_bias_) db_partials_.resize(static_cast<size_t>(count));
  }
  for (int64_t c = 0; c < count; ++c) {
    chunk_grad_cols_[static_cast<size_t>(c)].ResizeUninitialized(
        {patch, spatial});
    dw_partials_[static_cast<size_t>(c)].ResizeUninitialized(
        {out_channels_, patch});
    if (has_bias_) {
      db_partials_[static_cast<size_t>(c)].ResizeUninitialized(
          {out_channels_});
    }
  }
}

Tensor Conv2d::Forward(const Tensor& input, bool /*training*/) {
  TABLEGAN_CHECK(input.rank() == 4 && input.dim(1) == in_channels_)
      << "Conv2d input " << ShapeToString(input.shape());
  cached_input_ = input;
  const int64_t n = input.dim(0);
  ops::Conv2dGeometry g{in_channels_, input.dim(2), input.dim(3), kernel_,
                        stride_, padding_};
  const int64_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;
  TABLEGAN_CHECK(oh > 0 && ow > 0);
  // Pooled output is safe uninitialized: RawGemmNN with accumulate=false
  // overwrites every output slice before the bias is added.
  Tensor output = NewBuffer({n, out_channels_, oh, ow});
  const int64_t in_sample = in_channels_ * g.in_h * g.in_w;
  const FixedChunks chunks(n, kDefaultBatchChunks);
  EnsureChunkScratch(chunks.count, g.patch_size(), spatial,
                     /*backward=*/false);
  ParallelFor(chunks.count, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      Tensor& cols = chunk_cols_[static_cast<size_t>(c)];
      for (int64_t i = chunks.begin(c); i < chunks.end(c); ++i) {
        ops::Im2Col(g, input.data() + i * in_sample, cols.data());
        float* out_slice = output.data() + i * out_channels_ * spatial;
        ops::RawGemmNN(out_channels_, spatial, g.patch_size(), weight_.data(),
                       cols.data(), out_slice, /*accumulate=*/false);
        if (has_bias_) {
          for (int64_t ch = 0; ch < out_channels_; ++ch) {
            const float b = bias_[ch];
            float* row = out_slice + ch * spatial;
            for (int64_t s = 0; s < spatial; ++s) row[s] += b;
          }
        }
      }
    }
  });
  return output;
}

Tensor Conv2d::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() == 4 && input.dim(1) == in_channels_)
      << "Conv2d input " << ShapeToString(input.shape());
  const int64_t n = input.dim(0);
  ops::Conv2dGeometry g{in_channels_, input.dim(2), input.dim(3), kernel_,
                        stride_, padding_};
  const int64_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;
  TABLEGAN_CHECK(oh > 0 && ow > 0);
  Tensor output({n, out_channels_, oh, ow});
  const int64_t in_sample = in_channels_ * g.in_h * g.in_w;
  const FixedChunks chunks(n, kDefaultBatchChunks);
  ParallelFor(chunks.count, 1, [&](int64_t c0, int64_t c1) {
    Tensor cols({g.patch_size(), spatial});
    for (int64_t c = c0; c < c1; ++c) {
      for (int64_t i = chunks.begin(c); i < chunks.end(c); ++i) {
        ops::Im2Col(g, input.data() + i * in_sample, cols.data());
        float* out_slice = output.data() + i * out_channels_ * spatial;
        ops::RawGemmNN(out_channels_, spatial, g.patch_size(), weight_.data(),
                       cols.data(), out_slice, /*accumulate=*/false);
        if (has_bias_) {
          for (int64_t ch = 0; ch < out_channels_; ++ch) {
            const float b = bias_[ch];
            float* row = out_slice + ch * spatial;
            for (int64_t s = 0; s < spatial; ++s) row[s] += b;
          }
        }
      }
    }
  });
  return output;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  TABLEGAN_CHECK(!input.empty()) << "Backward before Forward";
  const int64_t n = input.dim(0);
  ops::Conv2dGeometry g{in_channels_, input.dim(2), input.dim(3), kernel_,
                        stride_, padding_};
  const int64_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;
  TABLEGAN_CHECK(grad_output.rank() == 4 && grad_output.dim(0) == n &&
                 grad_output.dim(1) == out_channels_ &&
                 grad_output.dim(2) == oh && grad_output.dim(3) == ow);

  // Col2Im accumulates into its target, so the pooled grad_input must be
  // explicitly zeroed (matching the zero-filled fresh tensor it replaces).
  Tensor grad_input = NewZeroedBuffer(input.shape());
  const int64_t in_sample = in_channels_ * g.in_h * g.in_w;
  const FixedChunks chunks(n, kDefaultBatchChunks);
  EnsureChunkScratch(chunks.count, g.patch_size(), spatial,
                     /*backward=*/true);
  std::vector<Tensor>& dw = dw_partials_;
  std::vector<Tensor>& db = db_partials_;
  ParallelFor(chunks.count, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      Tensor& cols = chunk_cols_[static_cast<size_t>(c)];
      Tensor& grad_cols = chunk_grad_cols_[static_cast<size_t>(c)];
      auto& dw_c = dw[static_cast<size_t>(c)];
      dw_c.SetZero();
      if (has_bias_) db[static_cast<size_t>(c)].SetZero();
      for (int64_t i = chunks.begin(c); i < chunks.end(c); ++i) {
        const float* go_slice =
            grad_output.data() + i * out_channels_ * spatial;
        // dW_c += dOut * cols^T  (recompute cols; cheaper than caching N
        // copies)
        ops::Im2Col(g, input.data() + i * in_sample, cols.data());
        ops::RawGemmNT(out_channels_, g.patch_size(), spatial, go_slice,
                       cols.data(), dw_c.data(), /*accumulate=*/true);
        if (has_bias_) {
          float* db_c = db[static_cast<size_t>(c)].data();
          for (int64_t ch = 0; ch < out_channels_; ++ch) {
            const float* row = go_slice + ch * spatial;
            float acc = 0.0f;
            for (int64_t s = 0; s < spatial; ++s) acc += row[s];
            db_c[ch] += acc;
          }
        }
        // dCols = W^T * dOut; dInput = col2im(dCols)
        ops::RawGemmTN(g.patch_size(), spatial, out_channels_, weight_.data(),
                       go_slice, grad_cols.data(), /*accumulate=*/false);
        ops::Col2Im(g, grad_cols.data(), grad_input.data() + i * in_sample);
      }
    }
  });
  // Combine chunk partials serially in chunk order (fixed reduction order
  // keeps gradients independent of the thread count).
  for (int64_t c = 0; c < chunks.count; ++c) {
    const float* p = dw[static_cast<size_t>(c)].data();
    float* gw = grad_weight_.data();
    for (int64_t idx = 0; idx < grad_weight_.size(); ++idx) gw[idx] += p[idx];
    if (has_bias_) {
      const float* pb = db[static_cast<size_t>(c)].data();
      float* gb = grad_bias_.data();
      for (int64_t ch = 0; ch < out_channels_; ++ch) gb[ch] += pb[ch];
    }
  }
  return grad_input;
}

std::vector<Tensor*> Conv2d::Parameters() {
  std::vector<Tensor*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

std::vector<Tensor*> Conv2d::Gradients() {
  std::vector<Tensor*> p{&grad_weight_};
  if (has_bias_) p.push_back(&grad_bias_);
  return p;
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ",k" << kernel_
     << ",s" << stride_ << ",p" << padding_ << ")";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
