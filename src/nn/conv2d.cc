#include "nn/conv2d.h"

#include <sstream>

#include "tensor/matmul.h"

namespace tablegan {
namespace nn {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({bias ? out_channels : 0}),
      grad_weight_({out_channels, in_channels * kernel * kernel}),
      grad_bias_({bias ? out_channels : 0}) {}

Tensor Conv2d::Forward(const Tensor& input, bool /*training*/) {
  TABLEGAN_CHECK(input.rank() == 4 && input.dim(1) == in_channels_)
      << "Conv2d input " << ShapeToString(input.shape());
  cached_input_ = input;
  const int64_t n = input.dim(0);
  ops::Conv2dGeometry g{in_channels_, input.dim(2), input.dim(3), kernel_,
                        stride_, padding_};
  const int64_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;
  TABLEGAN_CHECK(oh > 0 && ow > 0);
  Tensor output({n, out_channels_, oh, ow});
  if (cols_.size() != g.patch_size() * spatial) {
    cols_ = Tensor({g.patch_size(), spatial});
  }
  const int64_t in_sample = in_channels_ * g.in_h * g.in_w;
  for (int64_t i = 0; i < n; ++i) {
    ops::Im2Col(g, input.data() + i * in_sample, cols_.data());
    float* out_slice = output.data() + i * out_channels_ * spatial;
    ops::RawGemmNN(out_channels_, spatial, g.patch_size(), weight_.data(),
                   cols_.data(), out_slice, /*accumulate=*/false);
    if (has_bias_) {
      for (int64_t c = 0; c < out_channels_; ++c) {
        const float b = bias_[c];
        float* row = out_slice + c * spatial;
        for (int64_t s = 0; s < spatial; ++s) row[s] += b;
      }
    }
  }
  return output;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  TABLEGAN_CHECK(!input.empty()) << "Backward before Forward";
  const int64_t n = input.dim(0);
  ops::Conv2dGeometry g{in_channels_, input.dim(2), input.dim(3), kernel_,
                        stride_, padding_};
  const int64_t oh = g.out_h(), ow = g.out_w(), spatial = oh * ow;
  TABLEGAN_CHECK(grad_output.rank() == 4 && grad_output.dim(0) == n &&
                 grad_output.dim(1) == out_channels_ &&
                 grad_output.dim(2) == oh && grad_output.dim(3) == ow);

  Tensor grad_input(input.shape());
  Tensor grad_cols({g.patch_size(), spatial});
  const int64_t in_sample = in_channels_ * g.in_h * g.in_w;
  for (int64_t i = 0; i < n; ++i) {
    const float* go_slice = grad_output.data() + i * out_channels_ * spatial;
    // dW += dOut * cols^T    (recompute cols; cheaper than caching N copies)
    ops::Im2Col(g, input.data() + i * in_sample, cols_.data());
    ops::RawGemmNT(out_channels_, g.patch_size(), spatial, go_slice,
                   cols_.data(), grad_weight_.data(), /*accumulate=*/true);
    if (has_bias_) {
      for (int64_t c = 0; c < out_channels_; ++c) {
        const float* row = go_slice + c * spatial;
        float acc = 0.0f;
        for (int64_t s = 0; s < spatial; ++s) acc += row[s];
        grad_bias_[c] += acc;
      }
    }
    // dCols = W^T * dOut; dInput = col2im(dCols)
    ops::RawGemmTN(g.patch_size(), spatial, out_channels_, weight_.data(),
                   go_slice, grad_cols.data(), /*accumulate=*/false);
    ops::Col2Im(g, grad_cols.data(), grad_input.data() + i * in_sample);
  }
  return grad_input;
}

std::vector<Tensor*> Conv2d::Parameters() {
  std::vector<Tensor*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

std::vector<Tensor*> Conv2d::Gradients() {
  std::vector<Tensor*> p{&grad_weight_};
  if (has_bias_) p.push_back(&grad_bias_);
  return p;
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ",k" << kernel_
     << ",s" << stride_ << ",p" << padding_ << ")";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
