#include "nn/init.h"

#include <cmath>

#include "nn/batch_norm.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"
#include "nn/sequential.h"

namespace tablegan {
namespace nn {
namespace {

void FillNormal(Tensor* t, float mean, float stddev, Rng* rng) {
  for (int64_t i = 0; i < t->size(); ++i) {
    (*t)[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
}

void FillUniform(Tensor* t, float lo, float hi, Rng* rng) {
  for (int64_t i = 0; i < t->size(); ++i) {
    (*t)[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

}  // namespace

void DcganInitialize(Layer* layer, Rng* rng) {
  if (auto* seq = dynamic_cast<Sequential*>(layer)) {
    for (int i = 0; i < seq->num_layers(); ++i) {
      DcganInitialize(seq->layer(i), rng);
    }
  } else if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
    FillNormal(&conv->weight(), 0.0f, 0.02f, rng);
    if (conv->has_bias()) conv->bias().SetZero();
  } else if (auto* deconv = dynamic_cast<ConvTranspose2d*>(layer)) {
    FillNormal(&deconv->weight(), 0.0f, 0.02f, rng);
    if (deconv->has_bias()) deconv->bias().SetZero();
  } else if (auto* dense = dynamic_cast<Dense*>(layer)) {
    FillNormal(&dense->weight(), 0.0f, 0.02f, rng);
    if (dense->has_bias()) dense->bias().SetZero();
  } else if (auto* bn = dynamic_cast<BatchNorm*>(layer)) {
    FillNormal(&bn->gamma(), 1.0f, 0.02f, rng);
    bn->beta().SetZero();
  }
  // Activations / reshapes have no parameters.
}

void XavierInitialize(Layer* layer, Rng* rng) {
  if (auto* seq = dynamic_cast<Sequential*>(layer)) {
    for (int i = 0; i < seq->num_layers(); ++i) {
      XavierInitialize(seq->layer(i), rng);
    }
  } else if (auto* dense = dynamic_cast<Dense*>(layer)) {
    const int64_t fan_in = dense->weight().dim(1);
    const int64_t fan_out = dense->weight().dim(0);
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    FillUniform(&dense->weight(), -bound, bound, rng);
    if (dense->has_bias()) dense->bias().SetZero();
  } else if (auto* bn = dynamic_cast<BatchNorm*>(layer)) {
    bn->gamma().Fill(1.0f);
    bn->beta().SetZero();
  }
}

}  // namespace nn
}  // namespace tablegan
