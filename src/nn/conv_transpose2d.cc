#include "nn/conv_transpose2d.h"

#include <sstream>

#include "tensor/matmul.h"

namespace tablegan {
namespace nn {

ConvTranspose2d::ConvTranspose2d(int64_t in_channels, int64_t out_channels,
                                 int64_t kernel, int64_t stride,
                                 int64_t padding, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({in_channels, out_channels * kernel * kernel}),
      bias_({bias ? out_channels : 0}),
      grad_weight_({in_channels, out_channels * kernel * kernel}),
      grad_bias_({bias ? out_channels : 0}) {}

ops::Conv2dGeometry ConvTranspose2d::OutputGeometry(int64_t in_h,
                                                    int64_t in_w) const {
  const int64_t out_h = (in_h - 1) * stride_ - 2 * padding_ + kernel_;
  const int64_t out_w = (in_w - 1) * stride_ - 2 * padding_ + kernel_;
  ops::Conv2dGeometry g{out_channels_, out_h, out_w, kernel_, stride_,
                        padding_};
  TABLEGAN_CHECK(g.out_h() == in_h && g.out_w() == in_w)
      << "incompatible transposed-conv geometry";
  return g;
}

Tensor ConvTranspose2d::Forward(const Tensor& input, bool /*training*/) {
  TABLEGAN_CHECK(input.rank() == 4 && input.dim(1) == in_channels_)
      << "ConvTranspose2d input " << ShapeToString(input.shape());
  cached_input_ = input;
  const int64_t n = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t in_spatial = in_h * in_w;
  ops::Conv2dGeometry g = OutputGeometry(in_h, in_w);
  const int64_t out_spatial = g.in_h * g.in_w;

  Tensor output({n, out_channels_, g.in_h, g.in_w});
  if (cols_.size() != g.patch_size() * in_spatial) {
    cols_ = Tensor({g.patch_size(), in_spatial});
  }
  const int64_t in_sample = in_channels_ * in_spatial;
  const int64_t out_sample = out_channels_ * out_spatial;
  for (int64_t i = 0; i < n; ++i) {
    // cols = W^T * x ; output = col2im(cols)
    ops::RawGemmTN(g.patch_size(), in_spatial, in_channels_, weight_.data(),
                   input.data() + i * in_sample, cols_.data(),
                   /*accumulate=*/false);
    ops::Col2Im(g, cols_.data(), output.data() + i * out_sample);
    if (has_bias_) {
      float* out_slice = output.data() + i * out_sample;
      for (int64_t c = 0; c < out_channels_; ++c) {
        const float b = bias_[c];
        float* row = out_slice + c * out_spatial;
        for (int64_t s = 0; s < out_spatial; ++s) row[s] += b;
      }
    }
  }
  return output;
}

Tensor ConvTranspose2d::Backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  TABLEGAN_CHECK(!input.empty()) << "Backward before Forward";
  const int64_t n = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t in_spatial = in_h * in_w;
  ops::Conv2dGeometry g = OutputGeometry(in_h, in_w);
  const int64_t out_spatial = g.in_h * g.in_w;
  TABLEGAN_CHECK(grad_output.rank() == 4 && grad_output.dim(0) == n &&
                 grad_output.dim(1) == out_channels_ &&
                 grad_output.dim(2) == g.in_h && grad_output.dim(3) == g.in_w);

  Tensor grad_input(input.shape());
  const int64_t in_sample = in_channels_ * in_spatial;
  const int64_t out_sample = out_channels_ * out_spatial;
  for (int64_t i = 0; i < n; ++i) {
    const float* go_slice = grad_output.data() + i * out_sample;
    // cols = im2col(dOut) over the *output* geometry.
    ops::Im2Col(g, go_slice, cols_.data());
    // dX = W * cols
    ops::RawGemmNN(in_channels_, in_spatial, g.patch_size(), weight_.data(),
                   cols_.data(), grad_input.data() + i * in_sample,
                   /*accumulate=*/false);
    // dW += x * cols^T
    ops::RawGemmNT(in_channels_, g.patch_size(), in_spatial,
                   input.data() + i * in_sample, cols_.data(),
                   grad_weight_.data(), /*accumulate=*/true);
    if (has_bias_) {
      for (int64_t c = 0; c < out_channels_; ++c) {
        const float* row = go_slice + c * out_spatial;
        float acc = 0.0f;
        for (int64_t s = 0; s < out_spatial; ++s) acc += row[s];
        grad_bias_[c] += acc;
      }
    }
  }
  return grad_input;
}

std::vector<Tensor*> ConvTranspose2d::Parameters() {
  std::vector<Tensor*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

std::vector<Tensor*> ConvTranspose2d::Gradients() {
  std::vector<Tensor*> p{&grad_weight_};
  if (has_bias_) p.push_back(&grad_bias_);
  return p;
}

std::string ConvTranspose2d::name() const {
  std::ostringstream os;
  os << "ConvTranspose2d(" << in_channels_ << "->" << out_channels_ << ",k"
     << kernel_ << ",s" << stride_ << ",p" << padding_ << ")";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
