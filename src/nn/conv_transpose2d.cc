#include "nn/conv_transpose2d.h"

#include <sstream>
#include <vector>

#include "common/parallel.h"
#include "tensor/matmul.h"

namespace tablegan {
namespace nn {

// Threading model mirrors Conv2d: batch-parallel over a FixedChunks
// partition of the sample dimension, with weight/bias gradients reduced
// over per-chunk partials in chunk order so results are bitwise identical
// at any thread count.

ConvTranspose2d::ConvTranspose2d(int64_t in_channels, int64_t out_channels,
                                 int64_t kernel, int64_t stride,
                                 int64_t padding, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({in_channels, out_channels * kernel * kernel}),
      bias_({bias ? out_channels : 0}),
      grad_weight_({in_channels, out_channels * kernel * kernel}),
      grad_bias_({bias ? out_channels : 0}) {}

ops::Conv2dGeometry ConvTranspose2d::OutputGeometry(int64_t in_h,
                                                    int64_t in_w) const {
  const int64_t out_h = (in_h - 1) * stride_ - 2 * padding_ + kernel_;
  const int64_t out_w = (in_w - 1) * stride_ - 2 * padding_ + kernel_;
  ops::Conv2dGeometry g{out_channels_, out_h, out_w, kernel_, stride_,
                        padding_};
  TABLEGAN_CHECK(g.out_h() == in_h && g.out_w() == in_w)
      << "incompatible transposed-conv geometry";
  return g;
}

void ConvTranspose2d::EnsureChunkScratch(int64_t count, int64_t patch,
                                         int64_t spatial, bool backward) {
  if (static_cast<int64_t>(chunk_cols_.size()) < count) {
    chunk_cols_.resize(static_cast<size_t>(count));
  }
  for (int64_t c = 0; c < count; ++c) {
    chunk_cols_[static_cast<size_t>(c)].ResizeUninitialized(
        {patch, spatial});
  }
  if (!backward) return;
  if (static_cast<int64_t>(dw_partials_.size()) < count) {
    dw_partials_.resize(static_cast<size_t>(count));
    if (has_bias_) db_partials_.resize(static_cast<size_t>(count));
  }
  for (int64_t c = 0; c < count; ++c) {
    dw_partials_[static_cast<size_t>(c)].ResizeUninitialized(
        {in_channels_, patch});
    if (has_bias_) {
      db_partials_[static_cast<size_t>(c)].ResizeUninitialized(
          {out_channels_});
    }
  }
}

Tensor ConvTranspose2d::Forward(const Tensor& input, bool /*training*/) {
  TABLEGAN_CHECK(input.rank() == 4 && input.dim(1) == in_channels_)
      << "ConvTranspose2d input " << ShapeToString(input.shape());
  cached_input_ = input;
  const int64_t n = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t in_spatial = in_h * in_w;
  ops::Conv2dGeometry g = OutputGeometry(in_h, in_w);
  const int64_t out_spatial = g.in_h * g.in_w;

  // Col2Im accumulates into the output, so the pooled buffer must start
  // zeroed — exactly what the fresh zero-filled tensor used to provide.
  Tensor output = NewZeroedBuffer({n, out_channels_, g.in_h, g.in_w});
  const int64_t in_sample = in_channels_ * in_spatial;
  const int64_t out_sample = out_channels_ * out_spatial;
  const FixedChunks chunks(n, kDefaultBatchChunks);
  EnsureChunkScratch(chunks.count, g.patch_size(), in_spatial,
                     /*backward=*/false);
  ParallelFor(chunks.count, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      Tensor& cols = chunk_cols_[static_cast<size_t>(c)];
      for (int64_t i = chunks.begin(c); i < chunks.end(c); ++i) {
        // cols = W^T * x ; output = col2im(cols)
        ops::RawGemmTN(g.patch_size(), in_spatial, in_channels_,
                       weight_.data(), input.data() + i * in_sample,
                       cols.data(), /*accumulate=*/false);
        ops::Col2Im(g, cols.data(), output.data() + i * out_sample);
        if (has_bias_) {
          float* out_slice = output.data() + i * out_sample;
          for (int64_t ch = 0; ch < out_channels_; ++ch) {
            const float b = bias_[ch];
            float* row = out_slice + ch * out_spatial;
            for (int64_t s = 0; s < out_spatial; ++s) row[s] += b;
          }
        }
      }
    }
  });
  return output;
}

Tensor ConvTranspose2d::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() == 4 && input.dim(1) == in_channels_)
      << "ConvTranspose2d input " << ShapeToString(input.shape());
  const int64_t n = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t in_spatial = in_h * in_w;
  ops::Conv2dGeometry g = OutputGeometry(in_h, in_w);
  const int64_t out_spatial = g.in_h * g.in_w;

  Tensor output({n, out_channels_, g.in_h, g.in_w});
  const int64_t in_sample = in_channels_ * in_spatial;
  const int64_t out_sample = out_channels_ * out_spatial;
  const FixedChunks chunks(n, kDefaultBatchChunks);
  ParallelFor(chunks.count, 1, [&](int64_t c0, int64_t c1) {
    Tensor cols({g.patch_size(), in_spatial});
    for (int64_t c = c0; c < c1; ++c) {
      for (int64_t i = chunks.begin(c); i < chunks.end(c); ++i) {
        // cols = W^T * x ; output = col2im(cols)
        ops::RawGemmTN(g.patch_size(), in_spatial, in_channels_,
                       weight_.data(), input.data() + i * in_sample,
                       cols.data(), /*accumulate=*/false);
        ops::Col2Im(g, cols.data(), output.data() + i * out_sample);
        if (has_bias_) {
          float* out_slice = output.data() + i * out_sample;
          for (int64_t ch = 0; ch < out_channels_; ++ch) {
            const float b = bias_[ch];
            float* row = out_slice + ch * out_spatial;
            for (int64_t s = 0; s < out_spatial; ++s) row[s] += b;
          }
        }
      }
    }
  });
  return output;
}

Tensor ConvTranspose2d::Backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  TABLEGAN_CHECK(!input.empty()) << "Backward before Forward";
  const int64_t n = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t in_spatial = in_h * in_w;
  ops::Conv2dGeometry g = OutputGeometry(in_h, in_w);
  const int64_t out_spatial = g.in_h * g.in_w;
  TABLEGAN_CHECK(grad_output.rank() == 4 && grad_output.dim(0) == n &&
                 grad_output.dim(1) == out_channels_ &&
                 grad_output.dim(2) == g.in_h && grad_output.dim(3) == g.in_w);

  // Every sample slice of grad_input is fully overwritten by RawGemmNN
  // (accumulate=false), so the pooled buffer is safe uninitialized.
  Tensor grad_input = NewBuffer(input.shape());
  const int64_t in_sample = in_channels_ * in_spatial;
  const int64_t out_sample = out_channels_ * out_spatial;
  const FixedChunks chunks(n, kDefaultBatchChunks);
  EnsureChunkScratch(chunks.count, g.patch_size(), in_spatial,
                     /*backward=*/true);
  std::vector<Tensor>& dw = dw_partials_;
  std::vector<Tensor>& db = db_partials_;
  ParallelFor(chunks.count, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      Tensor& cols = chunk_cols_[static_cast<size_t>(c)];
      auto& dw_c = dw[static_cast<size_t>(c)];
      dw_c.SetZero();
      if (has_bias_) db[static_cast<size_t>(c)].SetZero();
      for (int64_t i = chunks.begin(c); i < chunks.end(c); ++i) {
        const float* go_slice = grad_output.data() + i * out_sample;
        // cols = im2col(dOut) over the *output* geometry.
        ops::Im2Col(g, go_slice, cols.data());
        // dX = W * cols
        ops::RawGemmNN(in_channels_, in_spatial, g.patch_size(),
                       weight_.data(), cols.data(),
                       grad_input.data() + i * in_sample,
                       /*accumulate=*/false);
        // dW_c += x * cols^T
        ops::RawGemmNT(in_channels_, g.patch_size(), in_spatial,
                       input.data() + i * in_sample, cols.data(),
                       dw_c.data(), /*accumulate=*/true);
        if (has_bias_) {
          float* db_c = db[static_cast<size_t>(c)].data();
          for (int64_t ch = 0; ch < out_channels_; ++ch) {
            const float* row = go_slice + ch * out_spatial;
            float acc = 0.0f;
            for (int64_t s = 0; s < out_spatial; ++s) acc += row[s];
            db_c[ch] += acc;
          }
        }
      }
    }
  });
  // Combine chunk partials serially in chunk order (fixed reduction order
  // keeps gradients independent of the thread count).
  for (int64_t c = 0; c < chunks.count; ++c) {
    const float* p = dw[static_cast<size_t>(c)].data();
    float* gw = grad_weight_.data();
    for (int64_t idx = 0; idx < grad_weight_.size(); ++idx) gw[idx] += p[idx];
    if (has_bias_) {
      const float* pb = db[static_cast<size_t>(c)].data();
      float* gb = grad_bias_.data();
      for (int64_t ch = 0; ch < out_channels_; ++ch) gb[ch] += pb[ch];
    }
  }
  return grad_input;
}

std::vector<Tensor*> ConvTranspose2d::Parameters() {
  std::vector<Tensor*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

std::vector<Tensor*> ConvTranspose2d::Gradients() {
  std::vector<Tensor*> p{&grad_weight_};
  if (has_bias_) p.push_back(&grad_bias_);
  return p;
}

std::string ConvTranspose2d::name() const {
  std::ostringstream os;
  os << "ConvTranspose2d(" << in_channels_ << "->" << out_channels_ << ",k"
     << kernel_ << ",s" << stride_ << ",p" << padding_ << ")";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
