#ifndef TABLEGAN_NN_BATCH_NORM_H_
#define TABLEGAN_NN_BATCH_NORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace tablegan {
namespace nn {

/// Batch normalization [Ioffe & Szegedy 2015], one of the DCGAN
/// architectural ingredients the paper adopts (§4.1).
///
/// Works on rank-4 NCHW inputs (normalizing per channel over N*H*W) and
/// on rank-2 [N, F] inputs (normalizing per feature over N). Training
/// mode uses batch statistics and maintains running estimates with
/// momentum; inference mode uses the running estimates.
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(int64_t num_features, float eps = 1e-5f,
                     float momentum = 0.9f);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::vector<Tensor*> Buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override;

  Tensor& gamma() { return gamma_; }
  Tensor& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t num_features_;
  float eps_, momentum_;
  Tensor gamma_, beta_;
  Tensor grad_gamma_, grad_beta_;
  Tensor running_mean_, running_var_;

  // Cached forward state (training mode) for the backward pass.
  Tensor cached_xhat_;       // normalized input, same shape as input
  Tensor cached_inv_std_;    // [num_features]
  std::vector<int64_t> cached_shape_;
  bool cached_training_ = false;

  // Reusable [num_features] scratch for Forward/Backward (Infer stays
  // const/allocating for concurrent use). Zeroed or fully overwritten at
  // the start of every use.
  Tensor mean_scratch_, var_scratch_;
  Tensor sum_dy_, sum_dy_xhat_;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_BATCH_NORM_H_
