#ifndef TABLEGAN_NN_DENSE_H_
#define TABLEGAN_NN_DENSE_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace tablegan {
namespace nn {

/// Fully-connected layer: y = x W^T + b over rank-2 [batch, in] inputs.
/// Used for the generator's latent projection and the discriminator /
/// classifier heads.
class Dense : public Layer {
 public:
  Dense(int64_t in_features, int64_t out_features, bool bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::string name() const override;

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  int64_t in_features_, out_features_;
  bool has_bias_;
  Tensor weight_;       // [out, in]
  Tensor bias_;         // [out]
  Tensor grad_weight_, grad_bias_;
  Tensor cached_input_;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_DENSE_H_
