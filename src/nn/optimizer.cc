#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace tablegan {
namespace nn {

Optimizer::Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads)
    : params_(std::move(params)), grads_(std::move(grads)) {
  TABLEGAN_CHECK(params_.size() == grads_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    TABLEGAN_CHECK(params_[i]->SameShape(*grads_[i]))
        << "parameter/gradient shape mismatch at index " << i;
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor* g : grads_) g->SetZero();
}

Sgd::Sgd(std::vector<Tensor*> params, std::vector<Tensor*> grads, float lr,
         float momentum)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (Tensor* p : params_) velocity_.emplace_back(p->shape());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = *params_[i];
    const Tensor& g = *grads_[i];
    if (momentum_ == 0.0f) {
      for (int64_t j = 0; j < p.size(); ++j) p[j] -= lr_ * g[j];
    } else {
      Tensor& v = velocity_[i];
      for (int64_t j = 0; j < p.size(); ++j) {
        v[j] = momentum_ * v[j] + g[j];
        p[j] -= lr_ * v[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads, float lr,
           float beta1, float beta2, float eps)
    : Optimizer(std::move(params), std::move(grads)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Tensor* p : params_) {
    m_.emplace_back(p->shape());
    v_.emplace_back(p->shape());
  }
}

void Adam::set_step_count(int64_t t) {
  t_ = t;
  beta1_pow_ = std::pow(static_cast<double>(beta1_), static_cast<double>(t));
  beta2_pow_ = std::pow(static_cast<double>(beta2_), static_cast<double>(t));
}

void Adam::Step() {
  ++t_;
  // Carry beta^t as running double products instead of float std::pow:
  // the float powers lost precision within a few hundred steps, skewing
  // the bias-corrected learning rate.
  beta1_pow_ *= static_cast<double>(beta1_);
  beta2_pow_ *= static_cast<double>(beta2_);
  const float alpha = static_cast<float>(
      static_cast<double>(lr_) * std::sqrt(1.0 - beta2_pow_) /
      (1.0 - beta1_pow_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = *params_[i];
    const Tensor& g = *grads_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < p.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      p[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
}

}  // namespace nn
}  // namespace tablegan
