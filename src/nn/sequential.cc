#include "nn/sequential.h"

#include <sstream>

namespace tablegan {
namespace nn {

// The first layer consumes the caller's tensor directly (no upfront deep
// copy); each move-assignment below recycles the previous activation's
// pooled storage before adopting the next, so a bound Workspace sees
// every intermediate again on the following step.

Tensor Sequential::Forward(const Tensor& input, bool training) {
  if (layers_.empty()) return input;
  Tensor x = layers_.front()->Forward(input, training);
  for (size_t i = 1; i < layers_.size(); ++i) {
    x = layers_[i]->Forward(x, training);
  }
  return x;
}

Tensor Sequential::Infer(const Tensor& input) const {
  if (layers_.empty()) return input;
  Tensor x = layers_.front()->Infer(input);
  for (size_t i = 1; i < layers_.size(); ++i) x = layers_[i]->Infer(x);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  if (layers_.empty()) return grad_output;
  Tensor g = layers_.back()->Backward(grad_output);
  for (size_t i = layers_.size() - 1; i-- > 0;) {
    g = layers_[i]->Backward(g);
  }
  return g;
}

void Sequential::SetWorkspace(Workspace* ws) {
  Layer::SetWorkspace(ws);
  for (auto& layer : layers_) layer->SetWorkspace(ws);
}

std::vector<Tensor*> Sequential::Parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::Gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->Gradients()) out.push_back(g);
  }
  return out;
}

std::vector<Tensor*> Sequential::Buffers() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* b : layer->Buffers()) out.push_back(b);
  }
  return out;
}

std::string Sequential::name() const {
  std::ostringstream os;
  os << "Sequential[";
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i) os << ", ";
    os << layers_[i]->name();
  }
  os << "]";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
