#include "nn/sequential.h"

#include <sstream>

namespace tablegan {
namespace nn {

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->Forward(x, training);
  return x;
}

Tensor Sequential::Infer(const Tensor& input) const {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->Infer(x);
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Tensor*> Sequential::Parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::Gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->Gradients()) out.push_back(g);
  }
  return out;
}

std::vector<Tensor*> Sequential::Buffers() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* b : layer->Buffers()) out.push_back(b);
  }
  return out;
}

std::string Sequential::name() const {
  std::ostringstream os;
  os << "Sequential[";
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i) os << ", ";
    os << layers_[i]->name();
  }
  os << "]";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
