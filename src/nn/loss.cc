#include "nn/loss.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace tablegan {
namespace nn {

float SigmoidBceWithLogits(const Tensor& logits, const Tensor& targets,
                           Tensor* grad) {
  TABLEGAN_CHECK(logits.SameShape(targets));
  const int64_t n = logits.size();
  TABLEGAN_CHECK(n > 0);
  // Every element is written below; reusing the caller's grad tensor
  // capacity keeps the loss allocation-free in steady state.
  grad->ResizeUninitialized(logits.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float z = logits[i];
    const float t = targets[i];
    if (std::isfinite(z)) {
      // softplus(z) - z*t in log-sum-exp form,
      // log(1 + exp(-|z|)) + max(z, 0) - z*t — finite for every finite
      // z (at z = ±100 the log1p term underflows gracefully to 0).
      loss += std::log1p(std::exp(-std::fabs(z))) + std::max(z, 0.0f) -
              z * t;
    } else if (std::isnan(z)) {
      loss += static_cast<double>(z);  // propagate for the guardrails
    } else {
      // Saturated ±inf logits: the closed form above evaluates
      // inf - inf = NaN, but the limit of softplus(z) - z*t is exact:
      // 0 when the logit points at the target, +inf otherwise.
      const bool matches = z > 0.0f ? t >= 1.0f : t <= 0.0f;
      if (!matches) loss += std::numeric_limits<double>::infinity();
    }
    // sigmoid saturates cleanly at the infinities (exp(-inf) = 0,
    // exp(inf) = inf), so the gradient needs no special casing.
    const float sig = 1.0f / (1.0f + std::exp(-z));
    (*grad)[i] = (sig - t) * inv_n;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float L1Loss(const Tensor& predictions, const Tensor& targets, Tensor* grad) {
  TABLEGAN_CHECK(predictions.SameShape(targets));
  const int64_t n = predictions.size();
  TABLEGAN_CHECK(n > 0);
  grad->ResizeUninitialized(predictions.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float d = predictions[i] - targets[i];
    loss += std::fabs(d);
    (*grad)[i] = (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f)) * inv_n;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float MseLoss(const Tensor& predictions, const Tensor& targets, Tensor* grad) {
  TABLEGAN_CHECK(predictions.SameShape(targets));
  const int64_t n = predictions.size();
  TABLEGAN_CHECK(n > 0);
  grad->ResizeUninitialized(predictions.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float d = predictions[i] - targets[i];
    loss += static_cast<double>(d) * d;
    (*grad)[i] = 2.0f * d * inv_n;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

}  // namespace nn
}  // namespace tablegan
