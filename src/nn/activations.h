#ifndef TABLEGAN_NN_ACTIVATIONS_H_
#define TABLEGAN_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace tablegan {
namespace nn {

/// ReLU — the DCGAN generator activation [Nair & Hinton 2010].
class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// LeakyReLU — the DCGAN discriminator activation [Maas et al. 2013].
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.2f)
      : negative_slope_(negative_slope) {}
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float negative_slope_;
  Tensor cached_input_;
};

/// Tanh — the generator output activation; its [-1, 1] range matches the
/// attribute-wise min-max normalization of records (paper §3.2).
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// Sigmoid — probability head of the discriminator/classifier. (Training
/// uses the fused logits losses in loss.h for stability; this layer exists
/// for inference-time probability outputs.)
class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  Tensor Infer(const Tensor& input) const override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_ACTIVATIONS_H_
