#ifndef TABLEGAN_NN_LOSS_H_
#define TABLEGAN_NN_LOSS_H_

#include "tensor/tensor.h"

namespace tablegan {
namespace nn {

/// Loss functions return the scalar loss and write dLoss/dLogits (or
/// dLoss/dPredictions) into `grad`. All are averaged over the batch, so
/// gradients are already scaled by 1/N.

/// Binary cross-entropy on raw logits with a fused sigmoid (numerically
/// stable). `targets` in [0,1], same shape as `logits`. This implements
/// both directions of the original GAN loss (Eq. 1): the discriminator
/// maximizes log D(x) + log(1 - D(G(z))) and the generator uses the
/// standard non-saturating form (maximize log D(G(z))), which is what
/// DCGAN implementations optimize in practice.
float SigmoidBceWithLogits(const Tensor& logits, const Tensor& targets,
                           Tensor* grad);

/// Mean absolute error — the discrepancy |l(x) - C(remove(x))| of the
/// paper's classification loss (Eq. 5). The gradient w.r.t. `predictions`
/// is sign(pred - target)/N.
float L1Loss(const Tensor& predictions, const Tensor& targets, Tensor* grad);

/// Mean squared error (used by the MLP substrate and in tests).
float MseLoss(const Tensor& predictions, const Tensor& targets, Tensor* grad);

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_LOSS_H_
