#ifndef TABLEGAN_NN_RESHAPE_H_
#define TABLEGAN_NN_RESHAPE_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace tablegan {
namespace nn {

/// Reshapes each sample to a fixed per-sample shape (the batch dimension
/// is preserved). Flatten is Reshape({total}); the generator uses
/// Reshape({C, H, W}) after its latent projection.
class Reshape : public Layer {
 public:
  /// `sample_shape` excludes the leading batch dimension.
  explicit Reshape(std::vector<int64_t> sample_shape);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override;

 private:
  std::vector<int64_t> sample_shape_;
  int64_t sample_size_;
  std::vector<int64_t> cached_input_shape_;
};

/// Flattens [N, ...] to [N, total]. The output of the discriminator's
/// convolution stack passes through this before the sigmoid head; the
/// flattened activations are the "extracted features" f of the paper's
/// information loss (Eq. 2-3).
class Flatten : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int64_t> cached_input_shape_;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_RESHAPE_H_
