#include "nn/batch_norm.h"

#include <cmath>
#include <sstream>

#include "tensor/kernels/kernels.h"

namespace tablegan {
namespace nn {
namespace {

// Iterates a NCHW or NF tensor grouping elements by feature/channel `c`.
// Calls fn(c, element_index) for every element. Used by the cold paths;
// the hot moment/normalize/backward loops go through the dispatched
// kernels, which walk elements in this same (row, channel, spatial)
// order.
template <typename Fn>
void ForEachByChannel(const std::vector<int64_t>& shape, Fn fn) {
  if (shape.size() == 2) {
    const int64_t n = shape[0], f = shape[1];
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < f; ++c) fn(c, i * f + c);
    }
  } else {
    const int64_t n = shape[0], ch = shape[1], spatial = shape[2] * shape[3];
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < ch; ++c) {
        const int64_t base = (i * ch + c) * spatial;
        for (int64_t s = 0; s < spatial; ++s) fn(c, base + s);
      }
    }
  }
}

int64_t ElementsPerChannel(const std::vector<int64_t>& shape) {
  if (shape.size() == 2) return shape[0];
  return shape[0] * shape[2] * shape[3];
}

// The [rows, channels, spatial] view the kernels operate on; an NF
// tensor is spatial == 1.
void ChannelView(const std::vector<int64_t>& shape, int64_t* rows,
                 int64_t* channels, int64_t* spatial) {
  *rows = shape[0];
  *channels = shape[1];
  *spatial = shape.size() == 2 ? 1 : shape[2] * shape[3];
}

}  // namespace

BatchNorm::BatchNorm(int64_t num_features, float eps, float momentum)
    : num_features_(num_features),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::Full({num_features}, 1.0f)),
      beta_({num_features}),
      grad_gamma_({num_features}),
      grad_beta_({num_features}),
      running_mean_({num_features}),
      running_var_(Tensor::Full({num_features}, 1.0f)) {}

Tensor BatchNorm::Forward(const Tensor& input, bool training) {
  TABLEGAN_CHECK(input.rank() == 2 || input.rank() == 4)
      << "BatchNorm input " << ShapeToString(input.shape());
  // Both layouts (NF and NCHW) carry the feature/channel count in dim 1.
  const int64_t features = input.dim(1);
  TABLEGAN_CHECK(features == num_features_)
      << name() << " expects " << num_features_ << " features, got "
      << features << " for input " << ShapeToString(input.shape());
  cached_shape_ = input.shape();
  cached_training_ = training;
  const int64_t m = ElementsPerChannel(input.shape());
  TABLEGAN_CHECK(m > 0);
  int64_t rows, channels, spatial;
  ChannelView(input.shape(), &rows, &channels, &spatial);

  // Member scratch replaces the per-call mean/var tensors; the moments
  // kernel writes every element, so stale pool contents are harmless.
  Tensor& mean = mean_scratch_;
  Tensor& var = var_scratch_;
  if (training) {
    mean.ResizeUninitialized({num_features_});
    var.ResizeUninitialized({num_features_});
    kernels::Active().bn_moments(rows, channels, spatial, input.data(),
                                 mean.data(), var.data());
    for (int64_t c = 0; c < num_features_; ++c) {
      running_mean_[c] = momentum_ * running_mean_[c] +
                         (1.0f - momentum_) * mean[c];
      running_var_[c] = momentum_ * running_var_[c] +
                        (1.0f - momentum_) * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  cached_inv_std_.ResizeUninitialized({num_features_});
  for (int64_t c = 0; c < num_features_; ++c) {
    cached_inv_std_[c] = 1.0f / std::sqrt(var[c] + eps_);
  }
  cached_xhat_.ResizeUninitialized(input.shape());
  Tensor output = NewBuffer(input.shape());
  kernels::Active().bn_normalize(rows, channels, spatial, input.data(),
                                 mean.data(), cached_inv_std_.data(),
                                 gamma_.data(), beta_.data(),
                                 cached_xhat_.data(), output.data());
  return output;
}

Tensor BatchNorm::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() == 2 || input.rank() == 4)
      << "BatchNorm input " << ShapeToString(input.shape());
  const int64_t features = input.dim(1);
  TABLEGAN_CHECK(features == num_features_)
      << name() << " expects " << num_features_ << " features, got "
      << features << " for input " << ShapeToString(input.shape());
  // Same arithmetic and evaluation order as Forward(input, false), minus
  // the backward-pass caches.
  Tensor inv_std({num_features_});
  for (int64_t c = 0; c < num_features_; ++c) {
    inv_std[c] = 1.0f / std::sqrt(running_var_[c] + eps_);
  }
  int64_t rows, channels, spatial;
  ChannelView(input.shape(), &rows, &channels, &spatial);
  Tensor output(input.shape());
  kernels::Active().bn_normalize(rows, channels, spatial, input.data(),
                                 running_mean_.data(), inv_std.data(),
                                 gamma_.data(), beta_.data(),
                                 /*xhat=*/nullptr, output.data());
  return output;
}

Tensor BatchNorm::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.shape() == cached_shape_);
  const int64_t m = ElementsPerChannel(cached_shape_);
  int64_t rows, channels, spatial;
  ChannelView(cached_shape_, &rows, &channels, &spatial);

  Tensor& sum_dy = sum_dy_;
  Tensor& sum_dy_xhat = sum_dy_xhat_;
  sum_dy.ResizeUninitialized({num_features_});
  sum_dy.SetZero();
  sum_dy_xhat.ResizeUninitialized({num_features_});
  sum_dy_xhat.SetZero();
  kernels::Active().bn_backward_reduce(rows, channels, spatial,
                                       grad_output.data(),
                                       cached_xhat_.data(), sum_dy.data(),
                                       sum_dy_xhat.data());
  for (int64_t c = 0; c < num_features_; ++c) {
    grad_beta_[c] += sum_dy[c];
    grad_gamma_[c] += sum_dy_xhat[c];
  }

  // Fully overwritten in both branches below, so uninitialized is safe.
  Tensor grad_input = NewBuffer(cached_shape_);
  if (cached_training_) {
    const float inv_m = 1.0f / static_cast<float>(m);
    kernels::Active().bn_backward_input(
        rows, channels, spatial, grad_output.data(), cached_xhat_.data(),
        gamma_.data(), cached_inv_std_.data(), sum_dy.data(),
        sum_dy_xhat.data(), inv_m, grad_input.data());
  } else {
    // Inference-mode statistics are constants w.r.t. the input. Cold
    // path (only reached by explicit eval-mode backward), kept local.
    ForEachByChannel(cached_shape_, [&](int64_t c, int64_t i) {
      grad_input[i] = gamma_[c] * cached_inv_std_[c] * grad_output[i];
    });
  }
  return grad_input;
}

std::vector<Tensor*> BatchNorm::Parameters() { return {&gamma_, &beta_}; }

std::vector<Tensor*> BatchNorm::Gradients() {
  return {&grad_gamma_, &grad_beta_};
}

std::string BatchNorm::name() const {
  std::ostringstream os;
  os << "BatchNorm(" << num_features_ << ")";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
