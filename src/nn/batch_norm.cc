#include "nn/batch_norm.h"

#include <cmath>
#include <sstream>

namespace tablegan {
namespace nn {
namespace {

// Iterates a NCHW or NF tensor grouping elements by feature/channel `c`.
// Calls fn(c, element_index) for every element.
template <typename Fn>
void ForEachByChannel(const std::vector<int64_t>& shape, Fn fn) {
  if (shape.size() == 2) {
    const int64_t n = shape[0], f = shape[1];
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < f; ++c) fn(c, i * f + c);
    }
  } else {
    const int64_t n = shape[0], ch = shape[1], spatial = shape[2] * shape[3];
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < ch; ++c) {
        const int64_t base = (i * ch + c) * spatial;
        for (int64_t s = 0; s < spatial; ++s) fn(c, base + s);
      }
    }
  }
}

int64_t ElementsPerChannel(const std::vector<int64_t>& shape) {
  if (shape.size() == 2) return shape[0];
  return shape[0] * shape[2] * shape[3];
}

}  // namespace

BatchNorm::BatchNorm(int64_t num_features, float eps, float momentum)
    : num_features_(num_features),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::Full({num_features}, 1.0f)),
      beta_({num_features}),
      grad_gamma_({num_features}),
      grad_beta_({num_features}),
      running_mean_({num_features}),
      running_var_(Tensor::Full({num_features}, 1.0f)) {}

Tensor BatchNorm::Forward(const Tensor& input, bool training) {
  TABLEGAN_CHECK(input.rank() == 2 || input.rank() == 4)
      << "BatchNorm input " << ShapeToString(input.shape());
  // Both layouts (NF and NCHW) carry the feature/channel count in dim 1.
  const int64_t features = input.dim(1);
  TABLEGAN_CHECK(features == num_features_)
      << name() << " expects " << num_features_ << " features, got "
      << features << " for input " << ShapeToString(input.shape());
  cached_shape_ = input.shape();
  cached_training_ = training;
  const int64_t m = ElementsPerChannel(input.shape());
  TABLEGAN_CHECK(m > 0);

  // Member scratch replaces the per-call mean/var tensors; zeroing (or
  // copy-assigning) it reproduces the fresh-tensor contents bit for bit.
  Tensor& mean = mean_scratch_;
  Tensor& var = var_scratch_;
  if (training) {
    mean.ResizeUninitialized({num_features_});
    mean.SetZero();
    var.ResizeUninitialized({num_features_});
    var.SetZero();
    ForEachByChannel(input.shape(),
                     [&](int64_t c, int64_t i) { mean[c] += input[i]; });
    for (int64_t c = 0; c < num_features_; ++c) {
      mean[c] /= static_cast<float>(m);
    }
    ForEachByChannel(input.shape(), [&](int64_t c, int64_t i) {
      const float d = input[i] - mean[c];
      var[c] += d * d;
    });
    for (int64_t c = 0; c < num_features_; ++c) {
      var[c] /= static_cast<float>(m);
      running_mean_[c] = momentum_ * running_mean_[c] +
                         (1.0f - momentum_) * mean[c];
      running_var_[c] = momentum_ * running_var_[c] +
                        (1.0f - momentum_) * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  cached_inv_std_.ResizeUninitialized({num_features_});
  for (int64_t c = 0; c < num_features_; ++c) {
    cached_inv_std_[c] = 1.0f / std::sqrt(var[c] + eps_);
  }
  cached_xhat_.ResizeUninitialized(input.shape());
  Tensor output = NewBuffer(input.shape());
  ForEachByChannel(input.shape(), [&](int64_t c, int64_t i) {
    const float xhat = (input[i] - mean[c]) * cached_inv_std_[c];
    cached_xhat_[i] = xhat;
    output[i] = gamma_[c] * xhat + beta_[c];
  });
  return output;
}

Tensor BatchNorm::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() == 2 || input.rank() == 4)
      << "BatchNorm input " << ShapeToString(input.shape());
  const int64_t features = input.dim(1);
  TABLEGAN_CHECK(features == num_features_)
      << name() << " expects " << num_features_ << " features, got "
      << features << " for input " << ShapeToString(input.shape());
  // Same arithmetic and evaluation order as Forward(input, false), minus
  // the backward-pass caches.
  Tensor inv_std({num_features_});
  for (int64_t c = 0; c < num_features_; ++c) {
    inv_std[c] = 1.0f / std::sqrt(running_var_[c] + eps_);
  }
  Tensor output(input.shape());
  ForEachByChannel(input.shape(), [&](int64_t c, int64_t i) {
    const float xhat = (input[i] - running_mean_[c]) * inv_std[c];
    output[i] = gamma_[c] * xhat + beta_[c];
  });
  return output;
}

Tensor BatchNorm::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.shape() == cached_shape_);
  const int64_t m = ElementsPerChannel(cached_shape_);

  Tensor& sum_dy = sum_dy_;
  Tensor& sum_dy_xhat = sum_dy_xhat_;
  sum_dy.ResizeUninitialized({num_features_});
  sum_dy.SetZero();
  sum_dy_xhat.ResizeUninitialized({num_features_});
  sum_dy_xhat.SetZero();
  ForEachByChannel(cached_shape_, [&](int64_t c, int64_t i) {
    sum_dy[c] += grad_output[i];
    sum_dy_xhat[c] += grad_output[i] * cached_xhat_[i];
  });
  for (int64_t c = 0; c < num_features_; ++c) {
    grad_beta_[c] += sum_dy[c];
    grad_gamma_[c] += sum_dy_xhat[c];
  }

  // Fully overwritten in both branches below, so uninitialized is safe.
  Tensor grad_input = NewBuffer(cached_shape_);
  if (cached_training_) {
    const float inv_m = 1.0f / static_cast<float>(m);
    ForEachByChannel(cached_shape_, [&](int64_t c, int64_t i) {
      grad_input[i] = gamma_[c] * cached_inv_std_[c] *
                      (grad_output[i] - sum_dy[c] * inv_m -
                       cached_xhat_[i] * sum_dy_xhat[c] * inv_m);
    });
  } else {
    // Inference-mode statistics are constants w.r.t. the input.
    ForEachByChannel(cached_shape_, [&](int64_t c, int64_t i) {
      grad_input[i] = gamma_[c] * cached_inv_std_[c] * grad_output[i];
    });
  }
  return grad_input;
}

std::vector<Tensor*> BatchNorm::Parameters() { return {&gamma_, &beta_}; }

std::vector<Tensor*> BatchNorm::Gradients() {
  return {&grad_gamma_, &grad_beta_};
}

std::string BatchNorm::name() const {
  std::ostringstream os;
  os << "BatchNorm(" << num_features_ << ")";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
