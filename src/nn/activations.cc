#include "nn/activations.h"

#include <cmath>

namespace tablegan {
namespace nn {

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.size(); ++i) {
    if (cached_input_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}


Tensor ReLU::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor LeakyReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] *= negative_slope_;
  }
  return out;
}

Tensor LeakyReLU::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.size(); ++i) {
    if (cached_input_[i] <= 0.0f) grad[i] *= negative_slope_;
  }
  return grad;
}


Tensor LeakyReLU::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] *= negative_slope_;
  }
  return out;
}

Tensor Tanh::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.size(); ++i) {
    grad[i] *= 1.0f - cached_output_[i] * cached_output_[i];
  }
  return grad;
}


Tensor Tanh::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  return out;
}

Tensor Sigmoid::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad = grad_output;
  for (int64_t i = 0; i < grad.size(); ++i) {
    grad[i] *= cached_output_[i] * (1.0f - cached_output_[i]);
  }
  return grad;
}


Tensor Sigmoid::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  return out;
}

}  // namespace nn
}  // namespace tablegan
