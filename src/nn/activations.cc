#include "nn/activations.h"

#include <cmath>

#include "tensor/kernels/kernels.h"

namespace tablegan {
namespace nn {

// Forward/Backward write into pooled buffers (NewBuffer) through the
// dispatched elementwise kernels, which keep the original per-element
// float expressions, so results are bitwise identical with or without a
// bound workspace. The cached activations are copy-assigned members:
// their capacity is reused across steps, so steady-state caching does
// not allocate either. Infer reuses the same kernels in place (`y` may
// alias `x` per the backend contract).

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = NewBuffer(input.shape());
  kernels::Active().relu(out.size(), input.data(), out.data());
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad = NewBuffer(grad_output.shape());
  kernels::Active().relu_bwd(grad.size(), cached_input_.data(),
                             grad_output.data(), grad.data());
  return grad;
}

Tensor ReLU::Infer(const Tensor& input) const {
  Tensor out = input;
  kernels::Active().relu(out.size(), out.data(), out.data());
  return out;
}

Tensor LeakyReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = NewBuffer(input.shape());
  kernels::Active().leaky_relu(out.size(), negative_slope_, input.data(),
                               out.data());
  return out;
}

Tensor LeakyReLU::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad = NewBuffer(grad_output.shape());
  kernels::Active().leaky_relu_bwd(grad.size(), negative_slope_,
                                   cached_input_.data(), grad_output.data(),
                                   grad.data());
  return grad;
}

Tensor LeakyReLU::Infer(const Tensor& input) const {
  Tensor out = input;
  kernels::Active().leaky_relu(out.size(), negative_slope_, out.data(),
                               out.data());
  return out;
}

Tensor Tanh::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = NewBuffer(input.shape());
  kernels::Active().tanh_fwd(out.size(), input.data(), out.data());
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad = NewBuffer(grad_output.shape());
  kernels::Active().tanh_bwd(grad.size(), cached_output_.data(),
                             grad_output.data(), grad.data());
  return grad;
}

Tensor Tanh::Infer(const Tensor& input) const {
  Tensor out = input;
  kernels::Active().tanh_fwd(out.size(), out.data(), out.data());
  return out;
}

Tensor Sigmoid::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = NewBuffer(input.shape());
  kernels::Active().sigmoid_fwd(out.size(), input.data(), out.data());
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad = NewBuffer(grad_output.shape());
  kernels::Active().sigmoid_bwd(grad.size(), cached_output_.data(),
                                grad_output.data(), grad.data());
  return grad;
}

Tensor Sigmoid::Infer(const Tensor& input) const {
  Tensor out = input;
  kernels::Active().sigmoid_fwd(out.size(), out.data(), out.data());
  return out;
}

}  // namespace nn
}  // namespace tablegan
