#include "nn/activations.h"

#include <cmath>

namespace tablegan {
namespace nn {

// Forward/Backward write into pooled buffers (NewBuffer) with the same
// per-element float expressions the copy-then-mutate originals used, so
// results are bitwise identical with or without a bound workspace. The
// cached activations are copy-assigned members: their capacity is reused
// across steps, so steady-state caching does not allocate either.

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = NewBuffer(input.shape());
  const float* in = input.data();
  float* o = out.data();
  for (int64_t i = 0; i < out.size(); ++i) {
    o[i] = in[i] < 0.0f ? 0.0f : in[i];
  }
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad = NewBuffer(grad_output.shape());
  const float* go = grad_output.data();
  float* g = grad.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    g[i] = cached_input_[i] <= 0.0f ? 0.0f : go[i];
  }
  return grad;
}

Tensor ReLU::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor LeakyReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out = NewBuffer(input.shape());
  const float* in = input.data();
  float* o = out.data();
  for (int64_t i = 0; i < out.size(); ++i) {
    o[i] = in[i] < 0.0f ? in[i] * negative_slope_ : in[i];
  }
  return out;
}

Tensor LeakyReLU::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad = NewBuffer(grad_output.shape());
  const float* go = grad_output.data();
  float* g = grad.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    g[i] = cached_input_[i] <= 0.0f ? go[i] * negative_slope_ : go[i];
  }
  return grad;
}

Tensor LeakyReLU::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] *= negative_slope_;
  }
  return out;
}

Tensor Tanh::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = NewBuffer(input.shape());
  const float* in = input.data();
  float* o = out.data();
  for (int64_t i = 0; i < out.size(); ++i) o[i] = std::tanh(in[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad = NewBuffer(grad_output.shape());
  const float* go = grad_output.data();
  float* g = grad.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    g[i] = go[i] * (1.0f - cached_output_[i] * cached_output_[i]);
  }
  return grad;
}

Tensor Tanh::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  return out;
}

Tensor Sigmoid::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = NewBuffer(input.shape());
  const float* in = input.data();
  float* o = out.data();
  for (int64_t i = 0; i < out.size(); ++i) {
    o[i] = 1.0f / (1.0f + std::exp(-in[i]));
  }
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  TABLEGAN_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad = NewBuffer(grad_output.shape());
  const float* go = grad_output.data();
  float* g = grad.data();
  for (int64_t i = 0; i < grad.size(); ++i) {
    g[i] = go[i] * (cached_output_[i] * (1.0f - cached_output_[i]));
  }
  return grad;
}

Tensor Sigmoid::Infer(const Tensor& input) const {
  Tensor out = input;
  for (int64_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  return out;
}

}  // namespace nn
}  // namespace tablegan
