#include "nn/spectral_norm.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/matmul.h"

namespace tablegan {
namespace nn {
namespace {

// Normalizes `t` in place to unit L2 norm and returns the pre-scaling
// norm. The accumulation runs in double so the estimate is stable for
// the wide conv matrices ([out, in*k*k]).
float NormalizeInPlace(Tensor* t) {
  double sum = 0.0;
  for (int64_t i = 0; i < t->size(); ++i) {
    sum += static_cast<double>((*t)[i]) * (*t)[i];
  }
  const float norm = static_cast<float>(std::sqrt(sum));
  const float inv = norm > 1e-12f ? 1.0f / norm : 0.0f;
  for (int64_t i = 0; i < t->size(); ++i) (*t)[i] *= inv;
  return norm;
}

}  // namespace

SpectralNormRegularizer::SpectralNormRegularizer(
    const std::vector<Tensor*>& params, const std::vector<Tensor*>& grads,
    float weight, int power_iters, uint64_t seed)
    : weight_(weight), power_iters_(power_iters) {
  TABLEGAN_CHECK(params.size() == grads.size());
  TABLEGAN_CHECK(power_iters >= 1);
  Rng rng(seed);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor* w = params[i];
    if (w->rank() != 2 || w->dim(0) < 1 || w->dim(1) < 1) continue;
    Item item;
    item.w = w;
    item.grad = grads[i];
    item.u = Tensor({1, w->dim(0)});
    item.u.FillUniform(-1.0f, 1.0f, &rng);
    NormalizeInPlace(&item.u);
    item.v = Tensor({1, w->dim(1)});
    item.v.SetZero();
    items_.push_back(std::move(item));
  }
}

float SpectralNormRegularizer::Apply() {
  float penalty = 0.0f;
  for (Item& item : items_) {
    const Tensor& w = *item.w;
    // Pool-backed scratch: both buffers are fully overwritten by the
    // beta=0 GEMMs below, and recycle back to the pool when they go out
    // of scope, so the steady-state step stays allocation-free.
    Tensor uw = ws_ != nullptr ? ws_->Take({1, w.dim(1)})
                               : Tensor({1, w.dim(1)});
    for (int iter = 0; iter < power_iters_; ++iter) {
      // v <- normalize(u W)    ([1, out] x [out, in])
      ops::Gemm(false, false, 1.0f, item.u, w, 0.0f, &uw, ws_);
      item.v = uw;
      NormalizeInPlace(&item.v);
      // u <- normalize(v W^T)  ([1, in] x [in, out]); the pre-scaling
      // norm IS the singular-value estimate: ||W v|| for unit v.
      ops::Gemm(false, true, 1.0f, item.v, w, 0.0f, &item.u, ws_);
      item.sigma = NormalizeInPlace(&item.u);
    }
    // grad += weight * sigma * u^T v  (rank-1 outer product).
    ops::Gemm(true, false, weight_ * item.sigma, item.u, item.v, 1.0f,
              item.grad, ws_);
    penalty += 0.5f * weight_ * item.sigma * item.sigma;
  }
  return penalty;
}

std::vector<Tensor*> SpectralNormRegularizer::StateTensors() {
  std::vector<Tensor*> out;
  out.reserve(items_.size() * 2);
  for (Item& item : items_) {
    out.push_back(&item.u);
    out.push_back(&item.v);
  }
  return out;
}

}  // namespace nn
}  // namespace tablegan
