#ifndef TABLEGAN_NN_INIT_H_
#define TABLEGAN_NN_INIT_H_

#include "common/random.h"
#include "nn/layer.h"

namespace tablegan {
namespace nn {

/// Applies the DCGAN weight initialization [Radford et al. 2015] that the
/// paper's architecture inherits: conv / transposed-conv / dense weights
/// ~ N(0, 0.02^2), BatchNorm gamma ~ N(1, 0.02^2), all biases/betas zero.
///
/// Works on any layer tree (dispatches on dynamic type); call it on each
/// Sequential after construction.
void DcganInitialize(Layer* layer, Rng* rng);

/// Xavier/Glorot uniform init for plain MLPs (the ML substrate).
void XavierInitialize(Layer* layer, Rng* rng);

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_INIT_H_
