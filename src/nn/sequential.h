#ifndef TABLEGAN_NN_SEQUENTIAL_H_
#define TABLEGAN_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"

namespace tablegan {
namespace nn {

/// Ordered container of layers. Forward applies layers front-to-back;
/// Backward applies them back-to-front. Owns its layers.
///
/// The table-GAN networks are built as Sequentials; the discriminator is
/// split into a feature stack and a head so the information loss can tap
/// the flattened features (see core/networks.h).
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer and returns a borrowed pointer to it (valid for the
  /// lifetime of the Sequential).
  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void Append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Binds the pool on the container and every child layer.
  void SetWorkspace(Workspace* ws) override;

  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::vector<Tensor*> Buffers() override;
  std::string name() const override;

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer* layer(int i) { return layers_[static_cast<size_t>(i)].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_SEQUENTIAL_H_
