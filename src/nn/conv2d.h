#ifndef TABLEGAN_NN_CONV2D_H_
#define TABLEGAN_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace tablegan {
namespace nn {

/// Strided 2-D convolution over NCHW tensors, implemented as
/// im2col + GEMM. This is the discriminator/classifier building block of
/// the DCGAN architecture (paper §4.1.1).
class Conv2d : public Layer {
 public:
  /// Weight shape [out_channels, in_channels * k * k]; bias [out_channels]
  /// (omitted when `bias` is false, as DCGAN does before BatchNorm).
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t padding, bool bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::string name() const override;

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  /// Grows the per-chunk scratch tensors to `count` chunks. Called
  /// single-threaded before the parallel region; each FixedChunks id then
  /// owns its own scratch, so tasks never share a buffer.
  void EnsureChunkScratch(int64_t count, int64_t patch, int64_t spatial,
                          bool backward);

  int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;

  Tensor cached_input_;   // saved by Forward for the backward pass

  // Reusable per-chunk scratch for the training passes (Forward /
  // Backward only — Infer stays const and allocation-per-call so it can
  // run concurrently). im2col patches are fully overwritten per sample;
  // dw/db partials are zeroed at the start of every Backward.
  std::vector<Tensor> chunk_cols_;       // im2col patches
  std::vector<Tensor> chunk_grad_cols_;  // backward dCols
  std::vector<Tensor> dw_partials_, db_partials_;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_CONV2D_H_
