#include "nn/dense.h"

#include <sstream>

#include "tensor/matmul.h"

namespace tablegan {
namespace nn {

Dense::Dense(int64_t in_features, int64_t out_features, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_({out_features, in_features}),
      bias_({bias ? out_features : 0}),
      grad_weight_({out_features, in_features}),
      grad_bias_({bias ? out_features : 0}) {}

Tensor Dense::Forward(const Tensor& input, bool /*training*/) {
  TABLEGAN_CHECK(input.rank() == 2 && input.dim(1) == in_features_)
      << "Dense input " << ShapeToString(input.shape());
  cached_input_ = input;
  const int64_t n = input.dim(0);
  // Pooled output is safe uninitialized: Gemm with beta == 0 zeroes C
  // before accumulating. The workspace also serves the transposed-weight
  // scratch inside Gemm.
  Tensor output = NewBuffer({n, out_features_});
  // y = x * W^T
  ops::Gemm(false, true, 1.0f, input, weight_, 0.0f, &output, ws_);
  if (has_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      float* row = output.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) row[j] += bias_[j];
    }
  }
  return output;
}

Tensor Dense::Infer(const Tensor& input) const {
  TABLEGAN_CHECK(input.rank() == 2 && input.dim(1) == in_features_)
      << "Dense input " << ShapeToString(input.shape());
  const int64_t n = input.dim(0);
  Tensor output({n, out_features_});
  // y = x * W^T
  ops::Gemm(false, true, 1.0f, input, weight_, 0.0f, &output);
  if (has_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      float* row = output.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) row[j] += bias_[j];
    }
  }
  return output;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  TABLEGAN_CHECK(!input.empty()) << "Backward before Forward";
  const int64_t n = input.dim(0);
  TABLEGAN_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == n &&
                 grad_output.dim(1) == out_features_);
  // dW += dY^T * X
  ops::Gemm(true, false, 1.0f, grad_output, input, 1.0f, &grad_weight_, ws_);
  if (has_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      const float* row = grad_output.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) grad_bias_[j] += row[j];
    }
  }
  // dX = dY * W
  Tensor grad_input = NewBuffer({n, in_features_});
  ops::Gemm(false, false, 1.0f, grad_output, weight_, 0.0f, &grad_input);
  return grad_input;
}

std::vector<Tensor*> Dense::Parameters() {
  std::vector<Tensor*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

std::vector<Tensor*> Dense::Gradients() {
  std::vector<Tensor*> p{&grad_weight_};
  if (has_bias_) p.push_back(&grad_bias_);
  return p;
}

std::string Dense::name() const {
  std::ostringstream os;
  os << "Dense(" << in_features_ << "->" << out_features_ << ")";
  return os.str();
}

}  // namespace nn
}  // namespace tablegan
