#ifndef TABLEGAN_NN_OPTIMIZER_H_
#define TABLEGAN_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace tablegan {
namespace nn {

/// Base optimizer over (parameter, gradient) tensor pairs. The trainer
/// binds a network's Parameters()/Gradients() once; Step() applies one
/// update and the caller zeroes gradients between updates.
class Optimizer {
 public:
  Optimizer(std::vector<Tensor*> params, std::vector<Tensor*> grads);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the currently accumulated gradients.
  virtual void Step() = 0;

  void ZeroGrad();

 protected:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
};

/// Plain SGD with optional momentum (used by the ML substrate's MLP and
/// in optimizer convergence tests).
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor*> params, std::vector<Tensor*> grads, float lr,
      float momentum = 0.0f);
  void Step() override;

 private:
  float lr_, momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam [Kingma & Ba]. table-GAN trains all three networks with Adam at
/// the DCGAN defaults (lr 2e-4, beta1 0.5, beta2 0.999) per paper §5.1.5.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor*> params, std::vector<Tensor*> grads,
       float lr = 2e-4f, float beta1 = 0.5f, float beta2 = 0.999f,
       float eps = 1e-8f);
  void Step() override;

  /// Optimizer state for checkpointing: the bias-correction step count
  /// and the first/second moment tensors (m for every parameter, then v
  /// for every parameter, in binding order).
  int64_t step_count() const { return t_; }
  /// Restores the step count, recomputing the running beta powers from
  /// scratch in double precision (used when loading checkpoints that do
  /// not serialize the powers directly).
  void set_step_count(int64_t t);
  std::vector<Tensor*> MomentTensors() {
    std::vector<Tensor*> out;
    out.reserve(m_.size() + v_.size());
    for (Tensor& m : m_) out.push_back(&m);
    for (Tensor& v : v_) out.push_back(&v);
    return out;
  }

  /// Running beta1^t / beta2^t, carried incrementally in double so the
  /// bias correction stays exact at large t (float std::pow drifted).
  /// Serialized in v4 checkpoints so a resumed run matches bit for bit.
  double beta1_power() const { return beta1_pow_; }
  double beta2_power() const { return beta2_pow_; }
  void set_bias_correction_powers(double beta1_pow, double beta2_pow) {
    beta1_pow_ = beta1_pow;
    beta2_pow_ = beta2_pow;
  }

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  // beta^t carried incrementally across Step() calls (see beta1_power()).
  double beta1_pow_ = 1.0, beta2_pow_ = 1.0;
  std::vector<Tensor> m_, v_;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_OPTIMIZER_H_
