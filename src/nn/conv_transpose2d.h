#ifndef TABLEGAN_NN_CONV_TRANSPOSE2D_H_
#define TABLEGAN_NN_CONV_TRANSPOSE2D_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace tablegan {
namespace nn {

/// Strided transposed (fractionally-strided / "de-") convolution over
/// NCHW tensors — the generator building block of the DCGAN architecture
/// (paper §4.1.2). Output side = (in-1)*stride - 2*padding + kernel.
///
/// The forward pass is exactly the data-gradient of a Conv2d whose input
/// is this layer's output, which lets us reuse Im2Col/Col2Im.
class ConvTranspose2d : public Layer {
 public:
  /// Weight shape [in_channels, out_channels * k * k]; bias [out_channels].
  ConvTranspose2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
                  int64_t stride, int64_t padding, bool bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Infer(const Tensor& input) const override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Tensor*> Parameters() override;
  std::vector<Tensor*> Gradients() override;
  std::string name() const override;

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  /// Geometry of the *output* image, in Conv2dGeometry terms.
  ops::Conv2dGeometry OutputGeometry(int64_t in_h, int64_t in_w) const;

  /// Grows the per-chunk scratch tensors to `count` chunks (see Conv2d;
  /// same ownership rules: one FixedChunks id, one scratch set).
  void EnsureChunkScratch(int64_t count, int64_t patch, int64_t spatial,
                          bool backward);

  int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;

  Tensor cached_input_;

  // Reusable per-chunk scratch for the training passes; Infer stays
  // const/allocating for concurrent use.
  std::vector<Tensor> chunk_cols_;
  std::vector<Tensor> dw_partials_, db_partials_;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_CONV_TRANSPOSE2D_H_
