#ifndef TABLEGAN_NN_SPECTRAL_NORM_H_
#define TABLEGAN_NN_SPECTRAL_NORM_H_

#include <vector>

#include "common/random.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace tablegan {
namespace nn {

/// Spectral-norm-style weight regularization (loss-mode kSpectralNorm,
/// DESIGN.md §15): penalizes (weight/2) * sigma(W)^2 for every rank-2
/// weight matrix it was bound to, where sigma(W) is the largest singular
/// value estimated by power iteration. Apply() adds the penalty gradient
///
///   d/dW (weight/2 * sigma^2) = weight * sigma * u v^T
///
/// into the matching gradient tensor (u, v the leading singular pair,
/// treated as constants — the standard power-iteration estimator of
/// Miyato et al.). Unlike a full spectral-norm reparameterization this
/// leaves the forward pass untouched, so it composes with the existing
/// DCGAN loss without touching any layer.
///
/// The u/v vectors persist across steps (warm start: one iteration per
/// step tracks the slowly-moving leading pair) and are checkpoint state:
/// StateTensors() exposes them in binding order for the v5 training
/// section. Per-step scratch is drawn from the bound Workspace, keeping
/// the steady-state update allocation-free.
class SpectralNormRegularizer {
 public:
  /// Binds every rank-2 tensor of `params` (with its same-index
  /// `grads` partner). Rank-1 biases and BatchNorm scales are skipped.
  /// `seed` initializes the u vectors deterministically.
  SpectralNormRegularizer(const std::vector<Tensor*>& params,
                          const std::vector<Tensor*>& grads, float weight,
                          int power_iters, uint64_t seed);

  void BindWorkspace(Workspace* ws) { ws_ = ws; }

  /// Runs `power_iters` iterations per bound weight and accumulates the
  /// penalty gradients. Returns the total penalty value
  /// sum_W (weight/2) * sigma(W)^2 for telemetry.
  float Apply();

  /// Largest-singular-value estimate of bound weight `i` as of the last
  /// Apply() (0 before the first call).
  float sigma(size_t i) const { return items_[i].sigma; }
  size_t num_weights() const { return items_.size(); }

  /// Power-iteration state (u then v per weight, binding order) for
  /// checkpointing: a resumed run continues the same trajectory.
  std::vector<Tensor*> StateTensors();

 private:
  struct Item {
    Tensor* w;     // [out, in]
    Tensor* grad;  // same shape
    Tensor u;      // [1, out]
    Tensor v;      // [1, in]
    float sigma = 0.0f;
  };

  std::vector<Item> items_;
  float weight_;
  int power_iters_;
  Workspace* ws_ = nullptr;
};

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_SPECTRAL_NORM_H_
