#ifndef TABLEGAN_NN_LAYER_H_
#define TABLEGAN_NN_LAYER_H_

#include <string>
#include <vector>

#include "common/logging.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace tablegan {
namespace nn {

/// Base class of every neural-network layer.
///
/// Layers follow a strict caller protocol: one Forward() followed by at
/// most one Backward() on the same activation (layers cache whatever they
/// need for the backward pass during Forward). Parameter gradients
/// *accumulate* across Backward() calls until ZeroGrad(); this is what
/// lets table-GAN back-propagate the generator loss through a frozen
/// discriminator/classifier and later discard those gradients.
///
/// Memory model: a trainer may bind a Workspace buffer pool with
/// SetWorkspace; Forward/Backward then draw their output and gradient
/// buffers from the pool (NewBuffer/NewZeroedBuffer below), making the
/// steady-state training step allocation-free. Results are bitwise
/// identical with and without a workspace. Infer never touches the
/// workspace or mutable scratch — it stays const, cache-free and safe to
/// call concurrently.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Binds (or unbinds, with nullptr) the buffer pool used by
  /// Forward/Backward. Containers override to propagate to children.
  virtual void SetWorkspace(Workspace* ws) { ws_ = ws; }

  /// Computes the layer output. `training` selects batch statistics in
  /// BatchNorm; inference uses running statistics.
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// Stateless inference: numerically identical to Forward(input, false)
  /// but const and cache-free, so concurrent Infer calls on one layer
  /// from different threads are safe (parameters are only read). This is
  /// what lets TableGan row-shard generator sampling and discriminator
  /// scoring across worker threads without cloning networks. Layers that
  /// never serve the inference path keep the default, which aborts.
  virtual Tensor Infer(const Tensor& input) const;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput for the cached forward activation.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Learnable parameters and matching gradient buffers (same order,
  /// same shapes). Default: none.
  virtual std::vector<Tensor*> Parameters() { return {}; }
  virtual std::vector<Tensor*> Gradients() { return {}; }

  /// Non-learnable persistent state (e.g. BatchNorm running statistics)
  /// that model serialization must capture alongside Parameters().
  virtual std::vector<Tensor*> Buffers() { return {}; }

  /// Human-readable layer name for debugging ("Conv2d(1->64,k4,s2,p1)").
  virtual std::string name() const = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (Tensor* g : Gradients()) g->SetZero();
  }

 protected:
  /// An output/gradient buffer that the caller fully overwrites: pooled
  /// (uninitialized) when a workspace is bound, zero-filled otherwise.
  Tensor NewBuffer(const std::vector<int64_t>& shape) {
    return ws_ != nullptr ? ws_->Take(shape) : Tensor(shape);
  }
  /// A buffer guaranteed zeroed — for consumers that accumulate into it
  /// (e.g. Col2Im targets).
  Tensor NewZeroedBuffer(const std::vector<int64_t>& shape) {
    return ws_ != nullptr ? ws_->TakeZeroed(shape) : Tensor(shape);
  }

  Workspace* ws_ = nullptr;
};

inline Tensor Layer::Infer(const Tensor& input) const {
  (void)input;
  TABLEGAN_CHECK(false) << name() << " has no stateless inference path";
  return Tensor();
}

}  // namespace nn
}  // namespace tablegan

#endif  // TABLEGAN_NN_LAYER_H_
