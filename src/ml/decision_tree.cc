#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace tablegan {
namespace ml {
namespace internal_tree {
namespace {

struct Builder {
  const MlData& data;
  const std::vector<double>* weights;  // nullptr = uniform
  const TreeOptions& options;
  bool classification;
  Rng rng;

  double Weight(int64_t i) const {
    return weights ? (*weights)[static_cast<size_t>(i)] : 1.0;
  }

  // Leaf statistic: weighted P(y=1) or weighted mean.
  double LeafValue(const std::vector<int64_t>& idx) const {
    double wsum = 0.0, ysum = 0.0;
    for (int64_t i : idx) {
      const double w = Weight(i);
      wsum += w;
      ysum += w * data.y[static_cast<size_t>(i)];
    }
    return wsum > 0.0 ? ysum / wsum : 0.0;
  }

  // Impurity of a (weighted) node: Gini for classification, variance for
  // regression. Both are computable from (wsum, ysum, y2sum).
  static double Impurity(double wsum, double ysum, double y2sum,
                         bool classification) {
    if (wsum <= 0.0) return 0.0;
    if (classification) {
      const double p = ysum / wsum;
      return 2.0 * p * (1.0 - p);
    }
    const double mean = ysum / wsum;
    return std::max(0.0, y2sum / wsum - mean * mean);
  }

  struct Split {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };

  Split FindBestSplit(const std::vector<int64_t>& idx) {
    const int num_features = data.num_features();
    std::vector<int> features(static_cast<size_t>(num_features));
    std::iota(features.begin(), features.end(), 0);
    int to_try = num_features;
    if (options.max_features > 0 && options.max_features < num_features) {
      rng.Shuffle(&features);
      to_try = options.max_features;
    }

    double wsum = 0.0, ysum = 0.0, y2sum = 0.0;
    for (int64_t i : idx) {
      const double w = Weight(i);
      const double y = data.y[static_cast<size_t>(i)];
      wsum += w;
      ysum += w * y;
      y2sum += w * y * y;
    }
    const double parent = Impurity(wsum, ysum, y2sum, classification);

    Split best;
    std::vector<int64_t> sorted = idx;
    for (int fi = 0; fi < to_try; ++fi) {
      const int f = features[static_cast<size_t>(fi)];
      std::sort(sorted.begin(), sorted.end(), [&](int64_t a, int64_t b) {
        return data.x[static_cast<size_t>(a)][static_cast<size_t>(f)] <
               data.x[static_cast<size_t>(b)][static_cast<size_t>(f)];
      });
      double lw = 0.0, ly = 0.0, ly2 = 0.0;
      int64_t left_count = 0;
      for (size_t k = 0; k + 1 < sorted.size(); ++k) {
        const int64_t i = sorted[k];
        const double w = Weight(i);
        const double y = data.y[static_cast<size_t>(i)];
        lw += w;
        ly += w * y;
        ly2 += w * y * y;
        ++left_count;
        const double xv =
            data.x[static_cast<size_t>(i)][static_cast<size_t>(f)];
        const double xn =
            data.x[static_cast<size_t>(sorted[k + 1])][static_cast<size_t>(f)];
        if (xv == xn) continue;  // no boundary between equal values
        const int64_t right_count =
            static_cast<int64_t>(sorted.size()) - left_count;
        if (left_count < options.min_samples_leaf ||
            right_count < options.min_samples_leaf) {
          continue;
        }
        const double rw = wsum - lw, ry = ysum - ly, ry2 = y2sum - ly2;
        const double child =
            (lw * Impurity(lw, ly, ly2, classification) +
             rw * Impurity(rw, ry, ry2, classification)) /
            wsum;
        const double gain = parent - child;
        if (gain > best.gain + 1e-12) {
          best.feature = f;
          best.threshold = 0.5 * (xv + xn);
          best.gain = gain;
        }
      }
    }
    return best;
  }

  std::unique_ptr<Node> Build(std::vector<int64_t> idx, int depth) {
    auto node = std::make_unique<Node>();
    node->value = LeafValue(idx);
    const bool too_deep = depth >= options.max_depth;
    const bool too_small =
        static_cast<int>(idx.size()) < options.min_samples_split;
    if (too_deep || too_small) return node;

    Split split = FindBestSplit(idx);
    if (split.feature < 0) return node;

    std::vector<int64_t> left_idx, right_idx;
    for (int64_t i : idx) {
      if (data.x[static_cast<size_t>(i)][static_cast<size_t>(split.feature)] <=
          split.threshold) {
        left_idx.push_back(i);
      } else {
        right_idx.push_back(i);
      }
    }
    if (left_idx.empty() || right_idx.empty()) return node;

    node->feature = split.feature;
    node->threshold = split.threshold;
    node->left = Build(std::move(left_idx), depth + 1);
    node->right = Build(std::move(right_idx), depth + 1);
    return node;
  }
};

}  // namespace

std::unique_ptr<Node> BuildTree(const MlData& data,
                                const std::vector<double>* weights,
                                const TreeOptions& options,
                                bool classification) {
  TABLEGAN_CHECK(data.num_rows() > 0) << "empty training data";
  Builder builder{data, weights, options, classification, Rng(options.seed)};
  std::vector<int64_t> idx(static_cast<size_t>(data.num_rows()));
  std::iota(idx.begin(), idx.end(), int64_t{0});
  return builder.Build(std::move(idx), 0);
}

double Evaluate(const Node* node, const std::vector<double>& x) {
  while (node->feature >= 0) {
    node = x[static_cast<size_t>(node->feature)] <= node->threshold
               ? node->left.get()
               : node->right.get();
  }
  return node->value;
}

}  // namespace internal_tree

Status DecisionTreeClassifier::Fit(const MlData& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  root_ = internal_tree::BuildTree(data, nullptr, options_, true);
  return Status::OK();
}

Status DecisionTreeClassifier::FitWeighted(const MlData& data,
                                           const std::vector<double>& weights) {
  if (data.num_rows() == 0 ||
      weights.size() != static_cast<size_t>(data.num_rows())) {
    return Status::InvalidArgument("bad weighted fit inputs");
  }
  root_ = internal_tree::BuildTree(data, &weights, options_, true);
  return Status::OK();
}

double DecisionTreeClassifier::PredictProba(
    const std::vector<double>& x) const {
  TABLEGAN_CHECK(root_ != nullptr) << "predict before fit";
  return internal_tree::Evaluate(root_.get(), x);
}

Status DecisionTreeRegressor::Fit(const MlData& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  root_ = internal_tree::BuildTree(data, nullptr, options_, false);
  return Status::OK();
}

double DecisionTreeRegressor::Predict(const std::vector<double>& x) const {
  TABLEGAN_CHECK(root_ != nullptr) << "predict before fit";
  return internal_tree::Evaluate(root_.get(), x);
}

}  // namespace ml
}  // namespace tablegan
