#include "ml/model_zoo.h"

#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/linear_models.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "ml/svm.h"

namespace tablegan {
namespace ml {
namespace {

ClassifierSpec TreeSpec(int depth) {
  return {"tree/depth=" + std::to_string(depth), [depth] {
            TreeOptions o;
            o.max_depth = depth;
            o.min_samples_leaf = 2;
            return std::make_unique<DecisionTreeClassifier>(o);
          }};
}

ClassifierSpec ForestSpec(int trees, int depth) {
  return {"forest/trees=" + std::to_string(trees) +
              ",depth=" + std::to_string(depth),
          [trees, depth] {
            ForestOptions o;
            o.num_trees = trees;
            o.tree.max_depth = depth;
            o.tree.min_samples_leaf = 2;
            return std::make_unique<RandomForestClassifier>(o);
          }};
}

ClassifierSpec BoostSpec(int estimators, double lr) {
  return {"adaboost/n=" + std::to_string(estimators) +
              ",lr=" + std::to_string(lr),
          [estimators, lr] {
            AdaBoostOptions o;
            o.num_estimators = estimators;
            o.learning_rate = lr;
            return std::make_unique<AdaBoostClassifier>(o);
          }};
}

ClassifierSpec MlpSpec(std::vector<int> hidden, float lr) {
  std::string name = "mlp/h=";
  for (size_t i = 0; i < hidden.size(); ++i) {
    if (i) name += "-";
    name += std::to_string(hidden[i]);
  }
  name += ",lr=" + std::to_string(lr);
  return {name, [hidden, lr] {
            MlpOptions o;
            o.hidden_sizes = hidden;
            o.learning_rate = lr;
            o.epochs = 15;
            return std::make_unique<MlpClassifier>(o);
          }};
}

}  // namespace

std::vector<ClassifierSpec> ModelCompatibilityClassifiers() {
  std::vector<ClassifierSpec> specs;
  for (int depth : {2, 3, 4, 5, 6, 8, 10, 12, 15, 20}) {
    specs.push_back(TreeSpec(depth));
  }
  specs.push_back(ForestSpec(5, 4));
  specs.push_back(ForestSpec(5, 8));
  specs.push_back(ForestSpec(10, 4));
  specs.push_back(ForestSpec(10, 6));
  specs.push_back(ForestSpec(10, 8));
  specs.push_back(ForestSpec(10, 12));
  specs.push_back(ForestSpec(15, 6));
  specs.push_back(ForestSpec(15, 10));
  specs.push_back(ForestSpec(20, 8));
  specs.push_back(ForestSpec(20, 12));
  specs.push_back(BoostSpec(10, 1.0));
  specs.push_back(BoostSpec(20, 1.0));
  specs.push_back(BoostSpec(30, 1.0));
  specs.push_back(BoostSpec(50, 1.0));
  specs.push_back(BoostSpec(20, 0.5));
  specs.push_back(BoostSpec(30, 0.5));
  specs.push_back(BoostSpec(50, 0.5));
  specs.push_back(BoostSpec(20, 1.5));
  specs.push_back(BoostSpec(30, 1.5));
  specs.push_back(BoostSpec(50, 1.5));
  specs.push_back(MlpSpec({16}, 1e-3f));
  specs.push_back(MlpSpec({32}, 1e-3f));
  specs.push_back(MlpSpec({64}, 1e-3f));
  specs.push_back(MlpSpec({32, 16}, 1e-3f));
  specs.push_back(MlpSpec({64, 32}, 1e-3f));
  specs.push_back(MlpSpec({16}, 1e-2f));
  specs.push_back(MlpSpec({32}, 1e-2f));
  specs.push_back(MlpSpec({64}, 1e-2f));
  specs.push_back(MlpSpec({32, 16}, 1e-2f));
  specs.push_back(MlpSpec({64}, 3e-3f));
  return specs;
}

std::vector<RegressorSpec> ModelCompatibilityRegressors() {
  std::vector<RegressorSpec> specs;
  for (double l2 : {1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 1e-1, 0.3, 1.0, 3.0,
                    10.0}) {
    specs.push_back({"linear/l2=" + std::to_string(l2), [l2] {
                       return std::make_unique<LinearRegression>(l2);
                     }});
  }
  for (double alpha : {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
                       30.0}) {
    specs.push_back({"lasso/alpha=" + std::to_string(alpha), [alpha] {
                       return std::make_unique<LassoRegression>(alpha);
                     }});
  }
  const double pa_params[10][2] = {
      {0.1, 0.05}, {0.1, 0.1}, {0.3, 0.05}, {0.3, 0.1}, {1.0, 0.05},
      {1.0, 0.1},  {1.0, 0.2}, {3.0, 0.1},  {3.0, 0.2}, {10.0, 0.1}};
  for (const auto& p : pa_params) {
    const double c = p[0], eps = p[1];
    specs.push_back({"pa/C=" + std::to_string(c) +
                         ",eps=" + std::to_string(eps),
                     [c, eps] {
                       return std::make_unique<PassiveAggressiveRegressor>(
                           c, eps);
                     }});
  }
  const double huber_params[10][2] = {
      {1.0, 0.05}, {1.0, 0.1},  {1.35, 0.05}, {1.35, 0.1}, {1.35, 0.2},
      {1.8, 0.05}, {1.8, 0.1},  {2.5, 0.1},   {2.5, 0.2},  {3.0, 0.1}};
  for (const auto& p : huber_params) {
    const double delta = p[0], lr = p[1];
    specs.push_back({"huber/delta=" + std::to_string(delta) +
                         ",lr=" + std::to_string(lr),
                     [delta, lr] {
                       return std::make_unique<HuberRegressor>(delta, lr);
                     }});
  }
  return specs;
}

std::vector<ClassifierSpec> MembershipAttackClassifiers() {
  std::vector<ClassifierSpec> specs;
  specs.push_back(MlpSpec({32}, 1e-3f));
  specs.push_back(TreeSpec(6));
  specs.push_back(BoostSpec(30, 1.0));
  specs.push_back(ForestSpec(15, 8));
  specs.push_back({"svm/C=1", [] {
                     SvmOptions o;
                     o.c = 1.0;
                     return std::make_unique<LinearSvmClassifier>(o);
                   }});
  return specs;
}

}  // namespace ml
}  // namespace tablegan
