#ifndef TABLEGAN_ML_MODEL_H_
#define TABLEGAN_ML_MODEL_H_

#include <vector>

#include "common/status.h"
#include "ml/ml_data.h"

namespace tablegan {
namespace ml {

/// Binary classifier interface (labels are 0/1 doubles in MlData::y).
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual Status Fit(const MlData& data) = 0;

  /// P(y = 1 | x).
  virtual double PredictProba(const std::vector<double>& x) const = 0;

  virtual int Predict(const std::vector<double>& x) const {
    return PredictProba(x) >= 0.5 ? 1 : 0;
  }

  std::vector<int> PredictAll(const MlData& data) const {
    std::vector<int> out;
    out.reserve(data.x.size());
    for (const auto& row : data.x) out.push_back(Predict(row));
    return out;
  }

  std::vector<double> PredictProbaAll(const MlData& data) const {
    std::vector<double> out;
    out.reserve(data.x.size());
    for (const auto& row : data.x) out.push_back(PredictProba(row));
    return out;
  }
};

/// Real-valued regressor interface.
class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual Status Fit(const MlData& data) = 0;
  virtual double Predict(const std::vector<double>& x) const = 0;

  std::vector<double> PredictAll(const MlData& data) const {
    std::vector<double> out;
    out.reserve(data.x.size());
    for (const auto& row : data.x) out.push_back(Predict(row));
    return out;
  }
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_MODEL_H_
