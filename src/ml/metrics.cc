#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/logging.h"

namespace tablegan {
namespace ml {

ConfusionCounts Confusion(const std::vector<int>& y_true,
                          const std::vector<int>& y_pred) {
  TABLEGAN_CHECK(y_true.size() == y_pred.size());
  ConfusionCounts c;
  for (size_t i = 0; i < y_true.size(); ++i) {
    const bool t = y_true[i] != 0;
    const bool p = y_pred[i] != 0;
    if (t && p) ++c.tp;
    else if (!t && p) ++c.fp;
    else if (!t && !p) ++c.tn;
    else ++c.fn;
  }
  return c;
}

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred) {
  TABLEGAN_CHECK(!y_true.empty());
  ConfusionCounts c = Confusion(y_true, y_pred);
  return static_cast<double>(c.tp + c.tn) /
         static_cast<double>(y_true.size());
}

double Precision(const ConfusionCounts& c) {
  const int64_t denom = c.tp + c.fp;
  return denom == 0 ? 0.0 : static_cast<double>(c.tp) / denom;
}

double Recall(const ConfusionCounts& c) {
  const int64_t denom = c.tp + c.fn;
  return denom == 0 ? 0.0 : static_cast<double>(c.tp) / denom;
}

double F1Score(const std::vector<int>& y_true,
               const std::vector<int>& y_pred) {
  ConfusionCounts c = Confusion(y_true, y_pred);
  const double p = Precision(c);
  const double r = Recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double AucRoc(const std::vector<int>& y_true,
              const std::vector<double>& scores) {
  TABLEGAN_CHECK(y_true.size() == scores.size());
  const size_t n = y_true.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  // Midrank assignment for ties.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) /
                           2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  int64_t pos = 0, neg = 0;
  double rank_sum_pos = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (y_true[k] != 0) {
      ++pos;
      rank_sum_pos += rank[k];
    } else {
      ++neg;
    }
  }
  if (pos == 0 || neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(pos) * (static_cast<double>(pos) + 1) /
                       2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double MeanRelativeError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred, double eps) {
  TABLEGAN_CHECK(y_true.size() == y_pred.size() && !y_true.empty());
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    acc += std::fabs(y_true[i] - y_pred[i]) /
           std::max(std::fabs(y_true[i]), eps);
  }
  return acc / static_cast<double>(y_true.size());
}

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred) {
  TABLEGAN_CHECK(y_true.size() == y_pred.size() && !y_true.empty());
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    acc += std::fabs(y_true[i] - y_pred[i]);
  }
  return acc / static_cast<double>(y_true.size());
}

double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred) {
  TABLEGAN_CHECK(y_true.size() == y_pred.size() && !y_true.empty());
  double acc = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(y_true.size()));
}

}  // namespace ml
}  // namespace tablegan
