#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace tablegan {
namespace ml {

Status MlpClassifier::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  const int f = data.num_features();
  scaler_.Fit(data);
  const MlData scaled = scaler_.TransformAll(data);

  Rng rng(options_.seed);
  net_ = std::make_unique<nn::Sequential>();
  int in = f;
  for (int h : options_.hidden_sizes) {
    net_->Emplace<nn::Dense>(in, h);
    net_->Emplace<nn::ReLU>();
    in = h;
  }
  net_->Emplace<nn::Dense>(in, 1);  // logits head
  nn::XavierInitialize(net_.get(), &rng);

  nn::Adam optimizer(net_->Parameters(), net_->Gradients(),
                     options_.learning_rate, 0.9f, 0.999f);
  const int64_t batch = std::min<int64_t>(options_.batch_size, n);
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (int64_t start = 0; start + batch <= n; start += batch) {
      Tensor xb({batch, f});
      Tensor yb({batch, 1});
      for (int64_t b = 0; b < batch; ++b) {
        const auto& row = scaled.x[static_cast<size_t>(
            order[static_cast<size_t>(start + b)])];
        for (int j = 0; j < f; ++j) {
          xb.at2(b, j) = static_cast<float>(row[static_cast<size_t>(j)]);
        }
        yb[b] = static_cast<float>(
            scaled.y[static_cast<size_t>(order[static_cast<size_t>(start + b)])]);
      }
      Tensor logits = net_->Forward(xb, /*training=*/true);
      Tensor grad;
      nn::SigmoidBceWithLogits(logits, yb, &grad);
      net_->ZeroGrad();
      net_->Backward(grad);
      optimizer.Step();
    }
  }
  return Status::OK();
}

double MlpClassifier::PredictProba(const std::vector<double>& x) const {
  TABLEGAN_CHECK(net_ != nullptr) << "predict before fit";
  const std::vector<double> scaled = scaler_.Transform(x);
  Tensor xb({1, static_cast<int64_t>(scaled.size())});
  for (size_t j = 0; j < scaled.size(); ++j) {
    xb[static_cast<int64_t>(j)] = static_cast<float>(scaled[j]);
  }
  // Sequential caches activations per Forward; cast away const is avoided
  // by requiring a mutable net. Predictions re-run Forward in inference
  // mode.
  Tensor logits = net_->Forward(xb, /*training=*/false);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logits[0])));
}

}  // namespace ml
}  // namespace tablegan
