#ifndef TABLEGAN_ML_MODEL_ZOO_H_
#define TABLEGAN_ML_MODEL_ZOO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace tablegan {
namespace ml {

/// The paper's model-compatibility protocol (§5.2.2) fixes an algorithm
/// and parameter setup, trains it once on the original table and once on
/// the released table, and compares scores — 4 algorithms x 10 parameter
/// setups = 40 points per plot, grid search explicitly excluded. These
/// factories enumerate that grid.

struct ClassifierSpec {
  std::string name;  // e.g. "tree/depth=4"
  std::function<std::unique_ptr<Classifier>()> make;
};

struct RegressorSpec {
  std::string name;
  std::function<std::unique_ptr<Regressor>()> make;
};

/// 40 classification setups: decision tree, random forest, AdaBoost and
/// MLP, 10 parameterizations each (Figure 5).
std::vector<ClassifierSpec> ModelCompatibilityClassifiers();

/// 40 regression setups: linear, Lasso, passive-aggressive and Huber
/// regression, 10 parameterizations each (Figure 6).
std::vector<RegressorSpec> ModelCompatibilityRegressors();

/// Attack-model family for the membership-inference experiment (§5.3.2):
/// MLP, decision tree, AdaBoost, random forest and SVM candidates.
std::vector<ClassifierSpec> MembershipAttackClassifiers();

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_MODEL_ZOO_H_
