#ifndef TABLEGAN_ML_ADABOOST_H_
#define TABLEGAN_ML_ADABOOST_H_

#include <vector>

#include "ml/decision_tree.h"

namespace tablegan {
namespace ml {

struct AdaBoostOptions {
  int num_estimators = 50;
  double learning_rate = 1.0;
  /// Base learners are shallow CARTs; scikit-learn defaults to stumps.
  int base_max_depth = 1;
  uint64_t seed = 11;
};

/// Discrete AdaBoost (SAMME) over decision stumps/shallow trees — one of
/// the paper's four model-compatibility classifiers.
class AdaBoostClassifier : public Classifier {
 public:
  explicit AdaBoostClassifier(AdaBoostOptions options = {})
      : options_(options) {}

  Status Fit(const MlData& data) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  AdaBoostOptions options_;
  std::vector<DecisionTreeClassifier> stages_;
  std::vector<double> alphas_;
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_ADABOOST_H_
