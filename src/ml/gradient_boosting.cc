#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace tablegan {
namespace ml {
namespace {

// Draws a row subsample (without replacement) for stochastic boosting.
MlData Subsample(const MlData& data, double fraction, Rng* rng) {
  if (fraction >= 1.0) return data;
  const auto take = std::max<int64_t>(
      2, static_cast<int64_t>(static_cast<double>(data.num_rows()) *
                              fraction));
  std::vector<int64_t> idx(static_cast<size_t>(data.num_rows()));
  for (int64_t i = 0; i < data.num_rows(); ++i) {
    idx[static_cast<size_t>(i)] = i;
  }
  rng->Shuffle(&idx);
  MlData out;
  for (int64_t i = 0; i < take; ++i) {
    out.x.push_back(data.x[static_cast<size_t>(idx[static_cast<size_t>(i)])]);
    out.y.push_back(data.y[static_cast<size_t>(idx[static_cast<size_t>(i)])]);
  }
  return out;
}

}  // namespace

Status GradientBoostingRegressor::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  stages_.clear();
  base_ = 0.0;
  for (double y : data.y) base_ += y;
  base_ /= static_cast<double>(n);

  std::vector<double> pred(static_cast<size_t>(n), base_);
  Rng rng(options_.seed);
  for (int stage = 0; stage < options_.num_estimators; ++stage) {
    MlData residuals;
    residuals.x = data.x;
    residuals.y.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      residuals.y[static_cast<size_t>(i)] =
          data.y[static_cast<size_t>(i)] - pred[static_cast<size_t>(i)];
    }
    TreeOptions topt;
    topt.max_depth = options_.max_depth;
    topt.min_samples_leaf = 2;
    topt.seed = rng.NextUint64();
    DecisionTreeRegressor tree(topt);
    TABLEGAN_RETURN_NOT_OK(
        tree.Fit(Subsample(residuals, options_.subsample, &rng)));
    for (int64_t i = 0; i < n; ++i) {
      pred[static_cast<size_t>(i)] +=
          options_.learning_rate *
          tree.Predict(data.x[static_cast<size_t>(i)]);
    }
    stages_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GradientBoostingRegressor::Predict(
    const std::vector<double>& x) const {
  TABLEGAN_CHECK(!stages_.empty()) << "predict before fit";
  double out = base_;
  for (const auto& stage : stages_) {
    out += options_.learning_rate * stage.Predict(x);
  }
  return out;
}

Status GradientBoostingClassifier::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  stages_.clear();
  double positives = 0.0;
  for (double y : data.y) positives += y > 0.5 ? 1.0 : 0.0;
  const double prior =
      std::clamp(positives / static_cast<double>(n), 1e-4, 1.0 - 1e-4);
  base_logit_ = std::log(prior / (1.0 - prior));

  std::vector<double> logit(static_cast<size_t>(n), base_logit_);
  Rng rng(options_.seed);
  for (int stage = 0; stage < options_.num_estimators; ++stage) {
    MlData gradients;
    gradients.x = data.x;
    gradients.y.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const double p =
          1.0 / (1.0 + std::exp(-logit[static_cast<size_t>(i)]));
      gradients.y[static_cast<size_t>(i)] =
          (data.y[static_cast<size_t>(i)] > 0.5 ? 1.0 : 0.0) - p;
    }
    TreeOptions topt;
    topt.max_depth = options_.max_depth;
    topt.min_samples_leaf = 2;
    topt.seed = rng.NextUint64();
    DecisionTreeRegressor tree(topt);
    TABLEGAN_RETURN_NOT_OK(
        tree.Fit(Subsample(gradients, options_.subsample, &rng)));
    for (int64_t i = 0; i < n; ++i) {
      logit[static_cast<size_t>(i)] +=
          options_.learning_rate *
          tree.Predict(data.x[static_cast<size_t>(i)]);
    }
    stages_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GradientBoostingClassifier::Logit(const std::vector<double>& x) const {
  double out = base_logit_;
  for (const auto& stage : stages_) {
    out += options_.learning_rate * stage.Predict(x);
  }
  return out;
}

double GradientBoostingClassifier::PredictProba(
    const std::vector<double>& x) const {
  TABLEGAN_CHECK(!stages_.empty()) << "predict before fit";
  return 1.0 / (1.0 + std::exp(-Logit(x)));
}

}  // namespace ml
}  // namespace tablegan
