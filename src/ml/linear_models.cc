#include "ml/linear_models.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace tablegan {
namespace ml {
namespace {

double DotCoef(const std::vector<double>& coef,
               const std::vector<double>& x) {
  double acc = 0.0;
  for (size_t j = 0; j < coef.size(); ++j) acc += coef[j] * x[j];
  return acc;
}

double MeanOf(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

// Solves the SPD system A w = b in place via Cholesky; returns false if A
// is not positive definite.
bool CholeskySolve(std::vector<double>& a, std::vector<double>& b, int n) {
  // a is row-major n x n, overwritten with the Cholesky factor L.
  for (int j = 0; j < n; ++j) {
    double d = a[static_cast<size_t>(j * n + j)];
    for (int k = 0; k < j; ++k) {
      const double l = a[static_cast<size_t>(j * n + k)];
      d -= l * l;
    }
    if (d <= 0.0) return false;
    const double lj = std::sqrt(d);
    a[static_cast<size_t>(j * n + j)] = lj;
    for (int i = j + 1; i < n; ++i) {
      double s = a[static_cast<size_t>(i * n + j)];
      for (int k = 0; k < j; ++k) {
        s -= a[static_cast<size_t>(i * n + k)] *
             a[static_cast<size_t>(j * n + k)];
      }
      a[static_cast<size_t>(i * n + j)] = s / lj;
    }
  }
  // Forward solve L z = b.
  for (int i = 0; i < n; ++i) {
    double s = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) {
      s -= a[static_cast<size_t>(i * n + k)] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = s / a[static_cast<size_t>(i * n + i)];
  }
  // Backward solve L^T w = z.
  for (int i = n - 1; i >= 0; --i) {
    double s = b[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) {
      s -= a[static_cast<size_t>(k * n + i)] * b[static_cast<size_t>(k)];
    }
    b[static_cast<size_t>(i)] = s / a[static_cast<size_t>(i * n + i)];
  }
  return true;
}

}  // namespace

Status LinearRegression::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  const int f = data.num_features();
  scaler_.Fit(data);
  const MlData sd = scaler_.TransformAll(data);
  const double y_mean = MeanOf(sd.y);

  // Normal equations on standardized features / centered target.
  std::vector<double> xtx(static_cast<size_t>(f * f), 0.0);
  std::vector<double> xty(static_cast<size_t>(f), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const auto& row = sd.x[static_cast<size_t>(i)];
    const double yc = sd.y[static_cast<size_t>(i)] - y_mean;
    for (int a = 0; a < f; ++a) {
      xty[static_cast<size_t>(a)] += row[static_cast<size_t>(a)] * yc;
      for (int b = a; b < f; ++b) {
        xtx[static_cast<size_t>(a * f + b)] +=
            row[static_cast<size_t>(a)] * row[static_cast<size_t>(b)];
      }
    }
  }
  double ridge = std::max(l2_, 1e-10) * static_cast<double>(n);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> a = xtx;
    for (int i = 0; i < f; ++i) {
      for (int j = 0; j < i; ++j) {
        a[static_cast<size_t>(i * f + j)] = a[static_cast<size_t>(j * f + i)];
      }
      a[static_cast<size_t>(i * f + i)] += ridge;
    }
    std::vector<double> b = xty;
    if (CholeskySolve(a, b, f)) {
      coef_ = std::move(b);
      intercept_ = y_mean;
      return Status::OK();
    }
    ridge *= 100.0;  // escalate stabilization for degenerate designs
  }
  return Status::Internal("normal equations are numerically singular");
}

double LinearRegression::Predict(const std::vector<double>& x) const {
  TABLEGAN_CHECK(!coef_.empty()) << "predict before fit";
  return intercept_ + DotCoef(coef_, scaler_.Transform(x));
}

Status LassoRegression::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  const int f = data.num_features();
  scaler_.Fit(data);
  const MlData sd = scaler_.TransformAll(data);
  const double y_mean = MeanOf(sd.y);

  coef_.assign(static_cast<size_t>(f), 0.0);
  intercept_ = y_mean;
  // Residuals start at centered y.
  std::vector<double> residual(sd.y);
  for (double& r : residual) r -= y_mean;
  // Per-feature squared norms (constant: standardized columns).
  std::vector<double> col_sq(static_cast<size_t>(f), 0.0);
  for (const auto& row : sd.x) {
    for (int j = 0; j < f; ++j) {
      col_sq[static_cast<size_t>(j)] +=
          row[static_cast<size_t>(j)] * row[static_cast<size_t>(j)];
    }
  }
  const double lam = alpha_ * static_cast<double>(n);
  for (int it = 0; it < max_iter_; ++it) {
    double max_delta = 0.0;
    for (int j = 0; j < f; ++j) {
      if (col_sq[static_cast<size_t>(j)] <= 1e-12) continue;
      // rho = x_j . (residual + x_j * w_j)
      double rho = 0.0;
      const double wj = coef_[static_cast<size_t>(j)];
      for (int64_t i = 0; i < n; ++i) {
        rho += sd.x[static_cast<size_t>(i)][static_cast<size_t>(j)] *
               residual[static_cast<size_t>(i)];
      }
      rho += wj * col_sq[static_cast<size_t>(j)];
      // Soft threshold.
      double wj_new = 0.0;
      if (rho > lam) {
        wj_new = (rho - lam) / col_sq[static_cast<size_t>(j)];
      } else if (rho < -lam) {
        wj_new = (rho + lam) / col_sq[static_cast<size_t>(j)];
      }
      const double delta = wj_new - wj;
      if (delta != 0.0) {
        for (int64_t i = 0; i < n; ++i) {
          residual[static_cast<size_t>(i)] -=
              delta * sd.x[static_cast<size_t>(i)][static_cast<size_t>(j)];
        }
        coef_[static_cast<size_t>(j)] = wj_new;
      }
      max_delta = std::max(max_delta, std::fabs(delta));
    }
    if (max_delta < tol_) break;
  }
  return Status::OK();
}

double LassoRegression::Predict(const std::vector<double>& x) const {
  TABLEGAN_CHECK(!coef_.empty()) << "predict before fit";
  return intercept_ + DotCoef(coef_, scaler_.Transform(x));
}

Status PassiveAggressiveRegressor::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  const int f = data.num_features();
  scaler_.Fit(data);
  const MlData sd = scaler_.TransformAll(data);
  const double y_mean = MeanOf(sd.y);
  double y_sd = 0.0;
  for (double y : sd.y) y_sd += (y - y_mean) * (y - y_mean);
  y_sd = std::sqrt(y_sd / static_cast<double>(n));
  if (y_sd <= 1e-12) y_sd = 1.0;

  // PA works on a standardized target; predictions rescale back.
  coef_.assign(static_cast<size_t>(f), 0.0);
  std::vector<double> w(static_cast<size_t>(f), 0.0);
  Rng rng(seed_);
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  for (int e = 0; e < epochs_; ++e) {
    rng.Shuffle(&order);
    for (int64_t i : order) {
      const auto& row = sd.x[static_cast<size_t>(i)];
      const double target = (sd.y[static_cast<size_t>(i)] - y_mean) / y_sd;
      const double pred = DotCoef(w, row);
      const double err = pred - target;
      const double loss = std::fabs(err) - epsilon_;
      if (loss <= 0.0) continue;
      double sq = 0.0;
      for (double v : row) sq += v * v;
      if (sq <= 1e-12) continue;
      const double tau = std::min(c_, loss / sq);  // PA-I
      const double sign = err > 0.0 ? 1.0 : -1.0;
      for (int j = 0; j < f; ++j) {
        w[static_cast<size_t>(j)] -= tau * sign * row[static_cast<size_t>(j)];
      }
    }
  }
  for (int j = 0; j < f; ++j) coef_[static_cast<size_t>(j)] = w[static_cast<size_t>(j)] * y_sd;
  intercept_ = y_mean;
  return Status::OK();
}

double PassiveAggressiveRegressor::Predict(
    const std::vector<double>& x) const {
  TABLEGAN_CHECK(!coef_.empty()) << "predict before fit";
  return intercept_ + DotCoef(coef_, scaler_.Transform(x));
}

Status HuberRegressor::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  const int f = data.num_features();
  scaler_.Fit(data);
  const MlData sd = scaler_.TransformAll(data);
  const double y_mean = MeanOf(sd.y);
  double y_sd = 0.0;
  for (double y : sd.y) y_sd += (y - y_mean) * (y - y_mean);
  y_sd = std::sqrt(y_sd / static_cast<double>(n));
  if (y_sd <= 1e-12) y_sd = 1.0;
  y_scale_ = y_sd;

  std::vector<double> w(static_cast<size_t>(f), 0.0);
  double b = 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int it = 0; it < iterations_; ++it) {
    std::vector<double> gw(static_cast<size_t>(f), 0.0);
    double gb = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const auto& row = sd.x[static_cast<size_t>(i)];
      const double target = (sd.y[static_cast<size_t>(i)] - y_mean) / y_sd;
      const double err = DotCoef(w, row) + b - target;
      // Huber gradient: err inside delta, clipped outside.
      const double g = std::fabs(err) <= delta_
                           ? err
                           : delta_ * (err > 0.0 ? 1.0 : -1.0);
      for (int j = 0; j < f; ++j) {
        gw[static_cast<size_t>(j)] += g * row[static_cast<size_t>(j)];
      }
      gb += g;
    }
    for (int j = 0; j < f; ++j) {
      gw[static_cast<size_t>(j)] =
          gw[static_cast<size_t>(j)] * inv_n + l2_ * w[static_cast<size_t>(j)];
      w[static_cast<size_t>(j)] -= learning_rate_ * gw[static_cast<size_t>(j)];
    }
    b -= learning_rate_ * gb * inv_n;
  }
  coef_.assign(static_cast<size_t>(f), 0.0);
  for (int j = 0; j < f; ++j) coef_[static_cast<size_t>(j)] = w[static_cast<size_t>(j)] * y_sd;
  intercept_ = y_mean + b * y_sd;
  return Status::OK();
}

double HuberRegressor::Predict(const std::vector<double>& x) const {
  TABLEGAN_CHECK(!coef_.empty()) << "predict before fit";
  return intercept_ + DotCoef(coef_, scaler_.Transform(x));
}

}  // namespace ml
}  // namespace tablegan
