#ifndef TABLEGAN_ML_DECISION_TREE_H_
#define TABLEGAN_ML_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "ml/model.h"

namespace tablegan {
namespace ml {

/// CART hyper-parameters (shared by the classifier and regressor, and by
/// the forest/AdaBoost ensembles that wrap trees).
struct TreeOptions {
  int max_depth = 10;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Features examined per split; 0 means all (sqrt(f) is typical for
  /// random forests).
  int max_features = 0;
  uint64_t seed = 1;
};

namespace internal_tree {

struct Node {
  int feature = -1;          // -1 = leaf
  double threshold = 0.0;    // go left iff x[feature] <= threshold
  double value = 0.0;        // leaf: P(y=1) for classifiers, mean for regr.
  std::unique_ptr<Node> left, right;
};

/// Shared CART builder. `classification` selects Gini impurity with
/// probability leaves; otherwise variance reduction with mean leaves.
/// `weights` supports AdaBoost; pass nullptr for uniform weights.
std::unique_ptr<Node> BuildTree(const MlData& data,
                                const std::vector<double>* weights,
                                const TreeOptions& options,
                                bool classification);

double Evaluate(const Node* node, const std::vector<double>& x);

}  // namespace internal_tree

/// CART decision-tree classifier (scikit-learn's DecisionTreeClassifier
/// analogue in the paper's model-compatibility grid).
class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(TreeOptions options = {})
      : options_(options) {}

  Status Fit(const MlData& data) override;
  /// Weighted fit, used by AdaBoost.
  Status FitWeighted(const MlData& data, const std::vector<double>& weights);
  double PredictProba(const std::vector<double>& x) const override;

 private:
  TreeOptions options_;
  std::unique_ptr<internal_tree::Node> root_;
};

/// CART decision-tree regressor.
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {})
      : options_(options) {}

  Status Fit(const MlData& data) override;
  double Predict(const std::vector<double>& x) const override;

 private:
  TreeOptions options_;
  std::unique_ptr<internal_tree::Node> root_;
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_DECISION_TREE_H_
