#ifndef TABLEGAN_ML_GRADIENT_BOOSTING_H_
#define TABLEGAN_ML_GRADIENT_BOOSTING_H_

#include <vector>

#include "ml/decision_tree.h"

namespace tablegan {
namespace ml {

struct GbmOptions {
  int num_estimators = 50;
  double learning_rate = 0.1;
  int max_depth = 3;
  /// Row subsample fraction per stage (stochastic gradient boosting).
  double subsample = 1.0;
  uint64_t seed = 67;
};

/// Gradient-boosted regression trees on the squared loss: each stage
/// fits a shallow CART to the current residuals.
class GradientBoostingRegressor : public Regressor {
 public:
  explicit GradientBoostingRegressor(GbmOptions options = {})
      : options_(options) {}

  Status Fit(const MlData& data) override;
  double Predict(const std::vector<double>& x) const override;

 private:
  GbmOptions options_;
  double base_ = 0.0;
  std::vector<DecisionTreeRegressor> stages_;
};

/// Gradient-boosted trees on the logistic loss: stages fit the negative
/// gradient (label minus current probability); prediction sums stage
/// outputs into a logit.
class GradientBoostingClassifier : public Classifier {
 public:
  explicit GradientBoostingClassifier(GbmOptions options = {})
      : options_(options) {}

  Status Fit(const MlData& data) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  double Logit(const std::vector<double>& x) const;

  GbmOptions options_;
  double base_logit_ = 0.0;
  std::vector<DecisionTreeRegressor> stages_;
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_GRADIENT_BOOSTING_H_
