#include "ml/logistic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tablegan {
namespace ml {

Status LogisticRegressionClassifier::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  const int f = data.num_features();
  scaler_.Fit(data);
  const MlData sd = scaler_.TransformAll(data);

  coef_.assign(static_cast<size_t>(f), 0.0);
  intercept_ = 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<double> gw(static_cast<size_t>(f), 0.0);
    double gb = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const auto& row = sd.x[static_cast<size_t>(i)];
      double z = intercept_;
      for (int c = 0; c < f; ++c) {
        z += coef_[static_cast<size_t>(c)] * row[static_cast<size_t>(c)];
      }
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double g = (p - (sd.y[static_cast<size_t>(i)] > 0.5 ? 1.0 : 0.0)) *
                       inv_n;
      for (int c = 0; c < f; ++c) {
        gw[static_cast<size_t>(c)] += g * row[static_cast<size_t>(c)];
      }
      gb += g;
    }
    for (int c = 0; c < f; ++c) {
      gw[static_cast<size_t>(c)] += options_.l2 * coef_[static_cast<size_t>(c)];
      coef_[static_cast<size_t>(c)] -=
          options_.learning_rate * gw[static_cast<size_t>(c)];
    }
    intercept_ -= options_.learning_rate * gb;
  }
  return Status::OK();
}

double LogisticRegressionClassifier::DecisionFunction(
    const std::vector<double>& x) const {
  TABLEGAN_CHECK(!coef_.empty()) << "predict before fit";
  const std::vector<double> sx = scaler_.Transform(x);
  double z = intercept_;
  for (size_t c = 0; c < coef_.size(); ++c) z += coef_[c] * sx[c];
  return z;
}

double LogisticRegressionClassifier::PredictProba(
    const std::vector<double>& x) const {
  return 1.0 / (1.0 + std::exp(-DecisionFunction(x)));
}

Status KnnClassifier::Fit(const MlData& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (k_ < 1) return Status::InvalidArgument("k must be >= 1");
  scaler_.Fit(data);
  train_ = scaler_.TransformAll(data);
  return Status::OK();
}

double KnnClassifier::PredictProba(const std::vector<double>& x) const {
  TABLEGAN_CHECK(!train_.x.empty()) << "predict before fit";
  const std::vector<double> sx = scaler_.Transform(x);
  const int64_t k = std::min<int64_t>(k_, train_.num_rows());
  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, int64_t>> dist;
  dist.reserve(train_.x.size());
  for (int64_t i = 0; i < train_.num_rows(); ++i) {
    const auto& row = train_.x[static_cast<size_t>(i)];
    double d = 0.0;
    for (size_t c = 0; c < sx.size(); ++c) {
      const double diff = row[c] - sx[c];
      d += diff * diff;
    }
    dist.emplace_back(d, i);
  }
  std::nth_element(dist.begin(), dist.begin() + (k - 1), dist.end());
  double positives = 0.0;
  for (int64_t i = 0; i < k; ++i) {
    if (train_.y[static_cast<size_t>(dist[static_cast<size_t>(i)].second)] >
        0.5) {
      positives += 1.0;
    }
  }
  return positives / static_cast<double>(k);
}

}  // namespace ml
}  // namespace tablegan
