#ifndef TABLEGAN_ML_ML_DATA_H_
#define TABLEGAN_ML_ML_DATA_H_

#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace tablegan {
namespace ml {

/// Dense feature matrix + target vector used by every model in the ML
/// substrate. Rows are records; the target has been split out.
struct MlData {
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  int64_t num_rows() const { return static_cast<int64_t>(x.size()); }
  int num_features() const {
    return x.empty() ? 0 : static_cast<int>(x[0].size());
  }
};

/// Extracts features/target from a table. `target_col` becomes y; it and
/// every column in `drop_cols` are excluded from x. This mirrors the
/// paper's protocol, e.g. the classification label is dropped from the
/// features, and the salary column is dropped when predicting the
/// salary-derived high_salary label (otherwise the task is trivial).
Result<MlData> TableToMlData(const data::Table& table, int target_col,
                             const std::vector<int>& drop_cols = {});

/// Per-feature standardization (zero mean, unit variance), fitted on
/// training data and applied to train/test alike. Gradient-based models
/// (MLP, linear family, SVM) fit it internally.
class StandardScaler {
 public:
  void Fit(const MlData& data);
  bool fitted() const { return !mean_.empty(); }
  std::vector<double> Transform(const std::vector<double>& row) const;
  MlData TransformAll(const MlData& data) const;

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_ML_DATA_H_
