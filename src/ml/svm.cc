#include "ml/svm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace tablegan {
namespace ml {

Status LinearSvmClassifier::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  const int f = data.num_features();
  scaler_.Fit(data);
  const MlData sd = scaler_.TransformAll(data);

  coef_.assign(static_cast<size_t>(f), 0.0);
  intercept_ = 0.0;
  const double lambda = 1.0 / (options_.c * static_cast<double>(n));
  Rng rng(options_.seed);
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  int64_t t = 0;
  for (int e = 0; e < options_.epochs; ++e) {
    rng.Shuffle(&order);
    for (int64_t i : order) {
      ++t;
      const double eta = options_.learning_rate /
                         (1.0 + lambda * options_.learning_rate *
                                    static_cast<double>(t));
      const auto& row = sd.x[static_cast<size_t>(i)];
      const double y = sd.y[static_cast<size_t>(i)] > 0.5 ? 1.0 : -1.0;
      double margin = intercept_;
      for (int j = 0; j < f; ++j) {
        margin += coef_[static_cast<size_t>(j)] * row[static_cast<size_t>(j)];
      }
      // L2 shrinkage every step; hinge subgradient when violating.
      for (int j = 0; j < f; ++j) {
        coef_[static_cast<size_t>(j)] *= 1.0 - eta * lambda;
      }
      if (y * margin < 1.0) {
        for (int j = 0; j < f; ++j) {
          coef_[static_cast<size_t>(j)] += eta * y * row[static_cast<size_t>(j)];
        }
        intercept_ += eta * y;
      }
    }
  }
  return Status::OK();
}

double LinearSvmClassifier::DecisionFunction(
    const std::vector<double>& x) const {
  TABLEGAN_CHECK(!coef_.empty()) << "predict before fit";
  const std::vector<double> sx = scaler_.Transform(x);
  double margin = intercept_;
  for (size_t j = 0; j < coef_.size(); ++j) margin += coef_[j] * sx[j];
  return margin;
}

double LinearSvmClassifier::PredictProba(const std::vector<double>& x) const {
  return 1.0 / (1.0 + std::exp(-2.0 * DecisionFunction(x)));
}

}  // namespace ml
}  // namespace tablegan
