#ifndef TABLEGAN_ML_METRICS_H_
#define TABLEGAN_ML_METRICS_H_

#include <cstdint>
#include <vector>

namespace tablegan {
namespace ml {

/// Binary-classification counts for label 1 = positive.
struct ConfusionCounts {
  int64_t tp = 0, fp = 0, tn = 0, fn = 0;
};

ConfusionCounts Confusion(const std::vector<int>& y_true,
                          const std::vector<int>& y_pred);

double Accuracy(const std::vector<int>& y_true,
                const std::vector<int>& y_pred);
double Precision(const ConfusionCounts& c);
double Recall(const ConfusionCounts& c);

/// F-1 score — the paper's classification model-compatibility metric
/// (harmonic mean of precision and recall, footnote 5).
double F1Score(const std::vector<int>& y_true,
               const std::vector<int>& y_pred);

/// Area under the ROC curve from real-valued scores, computed by the
/// rank statistic (ties get midranks). Used for the membership-attack
/// evaluation (paper Table 6). Returns 0.5 when one class is absent.
double AucRoc(const std::vector<int>& y_true,
              const std::vector<double>& scores);

/// Mean relative error — the paper's regression model-compatibility
/// metric: mean(|y - yhat| / max(|y|, eps)).
double MeanRelativeError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred,
                         double eps = 1e-8);

double MeanAbsoluteError(const std::vector<double>& y_true,
                         const std::vector<double>& y_pred);
double RootMeanSquaredError(const std::vector<double>& y_true,
                            const std::vector<double>& y_pred);

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_METRICS_H_
