#include "ml/random_forest.h"

#include <cmath>

#include "common/logging.h"

namespace tablegan {
namespace ml {

Status RandomForestClassifier::Fit(const MlData& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  trees_.clear();
  Rng rng(options_.seed);
  const int64_t n = data.num_rows();
  const int64_t sample_n = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(n) * options_.subsample));
  for (int t = 0; t < options_.num_trees; ++t) {
    MlData boot;
    boot.x.reserve(static_cast<size_t>(sample_n));
    boot.y.reserve(static_cast<size_t>(sample_n));
    for (int64_t i = 0; i < sample_n; ++i) {
      const auto j = static_cast<size_t>(rng.NextUint64(
          static_cast<uint64_t>(n)));
      boot.x.push_back(data.x[j]);
      boot.y.push_back(data.y[j]);
    }
    TreeOptions topt = options_.tree;
    if (topt.max_features == 0) {
      topt.max_features = std::max(
          1, static_cast<int>(std::sqrt(
                 static_cast<double>(data.num_features()))));
    }
    topt.seed = rng.NextUint64();
    DecisionTreeClassifier tree(topt);
    TABLEGAN_RETURN_NOT_OK(tree.Fit(boot));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForestClassifier::PredictProba(
    const std::vector<double>& x) const {
  TABLEGAN_CHECK(!trees_.empty()) << "predict before fit";
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.PredictProba(x);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace ml
}  // namespace tablegan
