#ifndef TABLEGAN_ML_SVM_H_
#define TABLEGAN_ML_SVM_H_

#include <vector>

#include "ml/model.h"

namespace tablegan {
namespace ml {

struct SvmOptions {
  double c = 1.0;          // inverse regularization strength
  int epochs = 20;
  double learning_rate = 0.05;
  uint64_t seed = 29;
};

/// Linear soft-margin SVM trained with Pegasos-style SGD on the hinge
/// loss. Part of the membership-attack model family (paper §5.3.2 uses
/// SVM among the attack classifiers). PredictProba reports a logistic
/// squashing of the margin.
class LinearSvmClassifier : public Classifier {
 public:
  explicit LinearSvmClassifier(SvmOptions options = {}) : options_(options) {}

  Status Fit(const MlData& data) override;
  double PredictProba(const std::vector<double>& x) const override;

  /// Signed margin w.x + b (before squashing).
  double DecisionFunction(const std::vector<double>& x) const;

 private:
  SvmOptions options_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_SVM_H_
