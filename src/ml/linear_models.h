#ifndef TABLEGAN_ML_LINEAR_MODELS_H_
#define TABLEGAN_ML_LINEAR_MODELS_H_

#include <vector>

#include "ml/model.h"

namespace tablegan {
namespace ml {

/// The paper's four regression algorithms (§5.2.2.2): linear regression,
/// Lasso, passive-aggressive, and Huber. All standardize features and
/// center the target internally, so raw table columns can be fed in
/// directly.

/// Ordinary least squares with optional ridge stabilization, solved by
/// Cholesky on the (small) normal equations.
class LinearRegression : public Regressor {
 public:
  explicit LinearRegression(double l2 = 1e-8) : l2_(l2) {}

  Status Fit(const MlData& data) override;
  double Predict(const std::vector<double>& x) const override;

 protected:
  double l2_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// L1-regularized least squares via cyclic coordinate descent.
class LassoRegression : public Regressor {
 public:
  explicit LassoRegression(double alpha = 1.0, int max_iter = 200,
                           double tol = 1e-6)
      : alpha_(alpha), max_iter_(max_iter), tol_(tol) {}

  Status Fit(const MlData& data) override;
  double Predict(const std::vector<double>& x) const override;

 private:
  double alpha_;
  int max_iter_;
  double tol_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Online passive-aggressive regression (PA-I with epsilon-insensitive
/// loss) [Crammer et al. 2006].
class PassiveAggressiveRegressor : public Regressor {
 public:
  PassiveAggressiveRegressor(double c = 1.0, double epsilon = 0.1,
                             int epochs = 5, uint64_t seed = 23)
      : c_(c), epsilon_(epsilon), epochs_(epochs), seed_(seed) {}

  Status Fit(const MlData& data) override;
  double Predict(const std::vector<double>& x) const override;

 private:
  double c_, epsilon_;
  int epochs_;
  uint64_t seed_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Huber-loss regression fitted by full-batch gradient descent — robust
/// to the heavy-tailed pay/fare columns.
class HuberRegressor : public Regressor {
 public:
  HuberRegressor(double delta = 1.35, double learning_rate = 0.1,
                 int iterations = 300, double l2 = 1e-4)
      : delta_(delta),
        learning_rate_(learning_rate),
        iterations_(iterations),
        l2_(l2) {}

  Status Fit(const MlData& data) override;
  double Predict(const std::vector<double>& x) const override;

 private:
  double delta_, learning_rate_;
  int iterations_;
  double l2_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  double y_scale_ = 1.0;
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_LINEAR_MODELS_H_
