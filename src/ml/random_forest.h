#ifndef TABLEGAN_ML_RANDOM_FOREST_H_
#define TABLEGAN_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"

namespace tablegan {
namespace ml {

struct ForestOptions {
  int num_trees = 50;
  TreeOptions tree;
  /// Bootstrap sample fraction per tree.
  double subsample = 1.0;
  uint64_t seed = 7;
};

/// Bagged CART ensemble with per-split feature subsampling (defaults to
/// sqrt(f) when tree.max_features == 0). One of the paper's four
/// model-compatibility classifiers.
class RandomForestClassifier : public Classifier {
 public:
  explicit RandomForestClassifier(ForestOptions options = {})
      : options_(options) {}

  Status Fit(const MlData& data) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  ForestOptions options_;
  std::vector<DecisionTreeClassifier> trees_;
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_RANDOM_FOREST_H_
