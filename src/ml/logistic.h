#ifndef TABLEGAN_ML_LOGISTIC_H_
#define TABLEGAN_ML_LOGISTIC_H_

#include <vector>

#include "ml/model.h"

namespace tablegan {
namespace ml {

struct LogisticOptions {
  double learning_rate = 0.5;
  int epochs = 200;
  double l2 = 1e-4;
};

/// L2-regularized logistic regression fitted by full-batch gradient
/// descent on standardized features. Baseline linear classifier of the
/// substrate; also used as the propensity model idea behind eval/pMSE.
class LogisticRegressionClassifier : public Classifier {
 public:
  explicit LogisticRegressionClassifier(LogisticOptions options = {})
      : options_(options) {}

  Status Fit(const MlData& data) override;
  double PredictProba(const std::vector<double>& x) const override;

  /// Linear score w.x + b before the sigmoid.
  double DecisionFunction(const std::vector<double>& x) const;

 private:
  LogisticOptions options_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

/// Brute-force k-nearest-neighbours classifier over standardized
/// features (majority probability of the k closest training rows).
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  Status Fit(const MlData& data) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  int k_;
  StandardScaler scaler_;
  MlData train_;  // standardized copy
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_LOGISTIC_H_
