#ifndef TABLEGAN_ML_MLP_H_
#define TABLEGAN_ML_MLP_H_

#include <memory>
#include <vector>

#include "ml/model.h"
#include "nn/sequential.h"

namespace tablegan {
namespace ml {

struct MlpOptions {
  std::vector<int> hidden_sizes = {32};
  float learning_rate = 1e-3f;
  int epochs = 30;
  int batch_size = 64;
  uint64_t seed = 17;
};

/// Multi-layer perceptron classifier built on the nn substrate (Dense +
/// ReLU, Adam, fused sigmoid BCE). One of the paper's four
/// model-compatibility classifiers; also used as a membership-attack
/// model (§4.5). Features are standardized internally.
class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(MlpOptions options = {}) : options_(options) {}

  Status Fit(const MlData& data) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  MlpOptions options_;
  StandardScaler scaler_;
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace ml
}  // namespace tablegan

#endif  // TABLEGAN_ML_MLP_H_
