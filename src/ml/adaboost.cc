#include "ml/adaboost.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tablegan {
namespace ml {

Status AdaBoostClassifier::Fit(const MlData& data) {
  const int64_t n = data.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training data");
  stages_.clear();
  alphas_.clear();
  std::vector<double> weights(static_cast<size_t>(n),
                              1.0 / static_cast<double>(n));
  Rng rng(options_.seed);
  for (int t = 0; t < options_.num_estimators; ++t) {
    TreeOptions topt;
    topt.max_depth = options_.base_max_depth;
    topt.seed = rng.NextUint64();
    DecisionTreeClassifier stump(topt);
    TABLEGAN_RETURN_NOT_OK(stump.FitWeighted(data, weights));

    double err = 0.0;
    std::vector<int> preds(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      preds[static_cast<size_t>(i)] = stump.Predict(data.x[static_cast<size_t>(i)]);
      if (preds[static_cast<size_t>(i)] !=
          static_cast<int>(data.y[static_cast<size_t>(i)])) {
        err += weights[static_cast<size_t>(i)];
      }
    }
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    if (err >= 0.5 && t > 0) break;  // no better than chance: stop boosting
    const double alpha = options_.learning_rate * 0.5 *
                         std::log((1.0 - err) / err);
    // Reweight: misclassified samples up, correct ones down.
    double wsum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const bool wrong = preds[static_cast<size_t>(i)] !=
                         static_cast<int>(data.y[static_cast<size_t>(i)]);
      weights[static_cast<size_t>(i)] *= std::exp(wrong ? alpha : -alpha);
      wsum += weights[static_cast<size_t>(i)];
    }
    for (double& w : weights) w /= wsum;
    stages_.push_back(std::move(stump));
    alphas_.push_back(alpha);
  }
  if (stages_.empty()) {
    return Status::Internal("AdaBoost produced no usable stage");
  }
  return Status::OK();
}

double AdaBoostClassifier::PredictProba(const std::vector<double>& x) const {
  TABLEGAN_CHECK(!stages_.empty()) << "predict before fit";
  double score = 0.0, norm = 0.0;
  for (size_t t = 0; t < stages_.size(); ++t) {
    const int pred = stages_[t].Predict(x);
    score += alphas_[t] * (pred == 1 ? 1.0 : -1.0);
    norm += std::fabs(alphas_[t]);
  }
  if (norm <= 0.0) return 0.5;
  // Squash the margin in [-1,1] to a probability.
  return 0.5 * (score / norm) + 0.5;
}

}  // namespace ml
}  // namespace tablegan
