#include "ml/ml_data.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tablegan {
namespace ml {

Result<MlData> TableToMlData(const data::Table& table, int target_col,
                             const std::vector<int>& drop_cols) {
  if (target_col < 0 || target_col >= table.num_columns()) {
    return Status::InvalidArgument("target column out of range");
  }
  std::vector<bool> keep(static_cast<size_t>(table.num_columns()), true);
  keep[static_cast<size_t>(target_col)] = false;
  for (int c : drop_cols) {
    if (c < 0 || c >= table.num_columns()) {
      return Status::InvalidArgument("drop column out of range");
    }
    keep[static_cast<size_t>(c)] = false;
  }
  MlData out;
  out.x.resize(static_cast<size_t>(table.num_rows()));
  out.y.resize(static_cast<size_t>(table.num_rows()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    auto& row = out.x[static_cast<size_t>(r)];
    for (int c = 0; c < table.num_columns(); ++c) {
      if (keep[static_cast<size_t>(c)]) row.push_back(table.Get(r, c));
    }
    out.y[static_cast<size_t>(r)] = table.Get(r, target_col);
  }
  return out;
}

void StandardScaler::Fit(const MlData& data) {
  TABLEGAN_CHECK(data.num_rows() > 0);
  const int f = data.num_features();
  mean_.assign(static_cast<size_t>(f), 0.0);
  inv_std_.assign(static_cast<size_t>(f), 1.0);
  for (const auto& row : data.x) {
    for (int j = 0; j < f; ++j) mean_[static_cast<size_t>(j)] += row[static_cast<size_t>(j)];
  }
  const double n = static_cast<double>(data.num_rows());
  for (double& m : mean_) m /= n;
  std::vector<double> var(static_cast<size_t>(f), 0.0);
  for (const auto& row : data.x) {
    for (int j = 0; j < f; ++j) {
      const double d = row[static_cast<size_t>(j)] - mean_[static_cast<size_t>(j)];
      var[static_cast<size_t>(j)] += d * d;
    }
  }
  for (int j = 0; j < f; ++j) {
    const double sd = std::sqrt(var[static_cast<size_t>(j)] / n);
    inv_std_[static_cast<size_t>(j)] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> StandardScaler::Transform(
    const std::vector<double>& row) const {
  TABLEGAN_CHECK(row.size() == mean_.size());
  std::vector<double> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

MlData StandardScaler::TransformAll(const MlData& data) const {
  MlData out;
  out.y = data.y;
  out.x.reserve(data.x.size());
  for (const auto& row : data.x) out.x.push_back(Transform(row));
  return out;
}

}  // namespace ml
}  // namespace tablegan
