#ifndef TABLEGAN_SERVE_REGISTRY_H_
#define TABLEGAN_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/table_gan.h"

namespace tablegan {
namespace serve {

/// In-memory collection of fitted models, keyed by the id clients put
/// in their requests.
///
/// Models are registered before the server starts and are immutable
/// afterwards; lookups only touch const state, so concurrent request
/// handlers share the registry without locking (TableGan::SampleRange
/// is const and thread-safe — the serving hot path never mutates a
/// model).
class ModelRegistry {
 public:
  /// Loads a checkpoint/model file and registers it under `id`.
  /// InvalidArgument on a duplicate or empty id; load errors propagate.
  Status Load(const std::string& id, const std::string& path);

  /// Registers an already-constructed fitted model (tests, in-process
  /// benches).
  Status Add(const std::string& id, core::TableGan model);

  /// nullptr when `id` is not registered.
  const core::TableGan* Find(const std::string& id) const;

  std::vector<std::string> ids() const;
  size_t size() const { return models_.size(); }

 private:
  std::map<std::string, std::unique_ptr<core::TableGan>> models_;
};

}  // namespace serve
}  // namespace tablegan

#endif  // TABLEGAN_SERVE_REGISTRY_H_
