#ifndef TABLEGAN_SERVE_REGISTRY_H_
#define TABLEGAN_SERVE_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/table_gan.h"
#include "data/columnar.h"

namespace tablegan {
namespace serve {

/// What the serving hot path needs from a registered entry: a
/// deterministic, const, thread-safe row-range generator. Two
/// implementations — a fitted table-GAN (rows are synthesized by
/// TableGan::SampleRange) and an mmap'd columnar table (rows are read
/// straight out of the map; useful for serving pre-generated synthetic
/// tables, or real holdouts, through the same protocol).
class RowSource {
 public:
  virtual ~RowSource() = default;

  /// Rows [row_begin, row_end) of this source's logical table. Pure
  /// function of (seed, row_begin, row_end); must be safe to call
  /// concurrently.
  virtual Result<data::Table> SampleRange(uint64_t seed, int64_t row_begin,
                                          int64_t row_end) const = 0;

  /// Condition-by-label variant: rows [row_begin, row_end) of the
  /// per-label sample stream. Only conditional models support this;
  /// the default rejects with FailedPrecondition (the server maps that
  /// onto a BAD_REQUEST frame), and an untrained label is NotFound
  /// (mapped onto UNKNOWN_LABEL). Same purity/thread-safety contract
  /// as SampleRange.
  virtual Result<data::Table> SampleConditionalRange(
      uint64_t /*seed*/, int64_t /*row_begin*/, int64_t /*row_end*/,
      double /*label*/) const {
    return Status::FailedPrecondition(
        "this source does not support conditional sampling");
  }
};

/// In-memory collection of row sources, keyed by the id clients put
/// in their requests.
///
/// Sources are registered before the server starts and are immutable
/// afterwards; lookups only touch const state, so concurrent request
/// handlers share the registry without locking (both SampleRange
/// implementations are const and thread-safe — the serving hot path
/// never mutates an entry).
class ModelRegistry {
 public:
  /// Loads a file and registers it under `id`. The format is sniffed:
  /// a columnar table file (data/columnar.h magic) becomes a columnar
  /// source serving its stored rows — CRC-verified once at load, so a
  /// corrupt file is rejected at startup rather than served; anything
  /// else is loaded as a model/checkpoint file. InvalidArgument on a
  /// duplicate or empty id; load errors propagate.
  Status Load(const std::string& id, const std::string& path);

  /// Registers an already-constructed fitted model (tests, in-process
  /// benches).
  Status Add(const std::string& id, core::TableGan model);

  /// Registers an opened columnar table.
  Status Add(const std::string& id, data::ColumnarReader table);

  /// nullptr when `id` is not registered.
  const RowSource* Find(const std::string& id) const;

  std::vector<std::string> ids() const;
  size_t size() const { return sources_.size(); }

 private:
  Status Insert(const std::string& id, std::unique_ptr<RowSource> source);

  std::map<std::string, std::unique_ptr<RowSource>> sources_;
};

}  // namespace serve
}  // namespace tablegan

#endif  // TABLEGAN_SERVE_REGISTRY_H_
