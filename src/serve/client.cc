#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tablegan {
namespace serve {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::Connect(const std::string& host, int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status st = Status::IOError("connect " + host + ":" +
                                      std::to_string(port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  fd_ = fd;
  return Status::OK();
}

Result<SampleResponse> Client::Call(const SampleRequest& req) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Status sent = WriteFrame(fd_, EncodeRequest(req));
  if (!sent.ok()) {
    // The connection byte stream is in an unknown state after a failed
    // send; drop it so the next Connect starts clean.
    Close();
    return sent;
  }
  Result<std::string> body = ReadFrame(fd_, kMaxResponseBody);
  if (!body.ok()) {
    Close();
    if (body.status().code() == StatusCode::kNotFound) {
      return Status::IOError("server closed connection before responding");
    }
    return body.status();
  }
  Result<SampleResponse> resp = DecodeResponse(*body);
  if (!resp.ok()) Close();
  return resp;
}

Result<std::string> Client::SampleRange(const std::string& model_id,
                                        uint64_t seed, int64_t row_begin,
                                        int64_t row_end, Format format,
                                        std::optional<double> where_label) {
  SampleRequest req;
  req.model_id = model_id;
  req.seed = seed;
  req.row_begin = row_begin;
  req.row_end = row_end;
  req.format = format;
  req.where_label = where_label;
  TABLEGAN_ASSIGN_OR_RETURN(SampleResponse resp, Call(req));
  if (resp.status != WireStatus::kOk) {
    return Status::IOError(std::string("server replied ") +
                           WireStatusToString(resp.status) + ": " +
                           resp.payload);
  }
  return std::move(resp.payload);
}

}  // namespace serve
}  // namespace tablegan
