#ifndef TABLEGAN_SERVE_PROTOCOL_H_
#define TABLEGAN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace tablegan {
namespace serve {

/// Wire protocol of the synthesis daemon (DESIGN.md §13).
///
/// Every message is one length-prefixed frame:
///
///   [u32 magic "TGSv"][u32 body_len][body_len bytes]
///
/// all integers little-endian. A request body is
///
///   [u32 version][u8 format][u16 model_id_len][model_id bytes]
///   [u64 seed][i64 row_begin][i64 row_end]
///   [u8 has_label][f64 label]            (version 2 only)
///
/// Version 1 requests (no label trailer) are still accepted — an
/// unconditional client needs no upgrade — and an unconditional version
/// 2 request sets has_label = 0 with a zero label field. When has_label
/// is 1 the server samples rows of the requested label through
/// TableGan::SampleConditional; a label the model was not trained on
/// answers with kUnknownLabel.
///
/// A response body is
///
///   [u32 wire_status][payload bytes]
///
/// where the payload is CSV text on kOk and a human-readable error
/// message otherwise. Decoding is strict: bad magic, a body length over
/// the cap, version/format values out of range, truncated fields and
/// trailing garbage are all rejected — a malformed frame must never be
/// partially interpreted.
///
/// Determinism contract: the response to (model, seed, [i, j)) is the
/// byte-exact CSV of rows [i, j) of the model's logical sample table
/// for `seed` — the same rows, bit for bit, that a local
/// TableGan::Sample stream with that seed emits, at any thread count
/// and under any sharding of the range across requests or servers.

constexpr uint32_t kFrameMagic = 0x7653'4754u;  // "TGSv" little-endian
/// Highest request version this build speaks. Version 1 (no conditional
/// trailer) is still decoded, and EncodeRequest emits it whenever the
/// request carries no label, so unconditional traffic is byte-identical
/// to what a v1-only peer produces and expects.
constexpr uint32_t kProtocolVersion = 2;
constexpr uint32_t kMinProtocolVersion = 1;

/// Requests are small (a model id plus counters); responses carry whole
/// CSV payloads.
constexpr uint32_t kMaxRequestBody = 1u << 16;
constexpr uint32_t kMaxResponseBody = 1u << 30;
constexpr size_t kMaxModelIdLen = 256;

/// Response payload format requested by the client.
enum class Format : uint8_t {
  kCsv = 0,          // header row + data rows (WriteCsv layout)
  kCsvNoHeader = 1,  // data rows only, so sharded ranges concatenate
};

/// Status carried on the wire, kept separate from StatusCode so the
/// protocol can stay stable if the library's codes change.
enum class WireStatus : uint32_t {
  kOk = 0,
  kBusy = 1,           // admission queue full; retry later
  kUnknownModel = 2,   // model id not in the registry
  kBadRequest = 3,     // malformed frame or invalid field values
  kInternal = 4,       // sampling/encoding failed server-side
  kUnknownLabel = 5,   // conditional request for a label the model lacks
};

const char* WireStatusToString(WireStatus s);

struct SampleRequest {
  std::string model_id;
  uint64_t seed = 0;
  int64_t row_begin = 0;
  int64_t row_end = 0;
  Format format = Format::kCsv;
  /// Condition-by-label: when set, the server returns rows [row_begin,
  /// row_end) of the model's per-label sample stream for this label.
  std::optional<double> where_label;
};

struct SampleResponse {
  WireStatus status = WireStatus::kOk;
  /// CSV text (kOk) or error message (anything else).
  std::string payload;
};

/// Body codecs. Encode* produce the frame body only (no frame header);
/// Decode* validate every field and reject trailing bytes.
std::string EncodeRequest(const SampleRequest& req);
Result<SampleRequest> DecodeRequest(const std::string& body);
std::string EncodeResponse(const SampleResponse& resp);
Result<SampleResponse> DecodeResponse(const std::string& body);

/// Frame I/O over a socket/pipe fd, built on the EINTR-safe io::
/// helpers. ReadFrame returns NotFound on clean EOF at a frame boundary
/// (the peer hung up between requests), IOError on a mid-frame EOF or
/// transport error, and InvalidArgument on bad magic or an oversized
/// length prefix.
///
/// Failpoint sites, used by tests to force every malformed-frame shape
/// onto a live connection: serve.frame.corrupt_magic (outgoing magic
/// scrambled), serve.frame.truncate (only half the declared body is
/// sent), serve.frame.oversize (length prefix claims more than
/// max_body), serve.frame.read (incoming frame read fails).
Status WriteFrame(int fd, const std::string& body);
Result<std::string> ReadFrame(int fd, uint32_t max_body);

}  // namespace serve
}  // namespace tablegan

#endif  // TABLEGAN_SERVE_PROTOCOL_H_
