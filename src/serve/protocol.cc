#include "serve/protocol.h"

#include <cstring>

#include "common/failpoint.h"
#include "common/io_retry.h"

namespace tablegan {
namespace serve {
namespace {

// --- little-endian primitive append/read over std::string bodies.

template <typename T>
void Append(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

/// Cursor over a frame body; every Read checks bounds.
struct Reader {
  const std::string& body;
  size_t pos = 0;

  template <typename T>
  bool Read(T* v) {
    if (body.size() - pos < sizeof(T)) return false;
    std::memcpy(v, body.data() + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (body.size() - pos < n) return false;
    out->assign(body.data() + pos, n);
    pos += n;
    return true;
  }

  bool AtEnd() const { return pos == body.size(); }
};

}  // namespace

const char* WireStatusToString(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kBusy: return "BUSY";
    case WireStatus::kUnknownModel: return "UNKNOWN_MODEL";
    case WireStatus::kBadRequest: return "BAD_REQUEST";
    case WireStatus::kInternal: return "INTERNAL";
    case WireStatus::kUnknownLabel: return "UNKNOWN_LABEL";
  }
  return "INVALID";
}

std::string EncodeRequest(const SampleRequest& req) {
  std::string body;
  // Unconditional requests stay on version 1: byte-identical to what a
  // pre-conditional client emits, so old servers keep serving them.
  Append<uint32_t>(&body, req.where_label.has_value() ? kProtocolVersion
                                                      : kMinProtocolVersion);
  Append<uint8_t>(&body, static_cast<uint8_t>(req.format));
  Append<uint16_t>(&body, static_cast<uint16_t>(req.model_id.size()));
  body.append(req.model_id);
  Append<uint64_t>(&body, req.seed);
  Append<int64_t>(&body, req.row_begin);
  Append<int64_t>(&body, req.row_end);
  if (req.where_label.has_value()) {
    Append<uint8_t>(&body, 1);
    Append<double>(&body, *req.where_label);
  }
  return body;
}

Result<SampleRequest> DecodeRequest(const std::string& body) {
  Reader r{body};
  uint32_t version = 0;
  uint8_t format = 0;
  uint16_t id_len = 0;
  SampleRequest req;
  if (!r.Read(&version)) {
    return Status::InvalidArgument("request truncated before version");
  }
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  if (!r.Read(&format) || !r.Read(&id_len)) {
    return Status::InvalidArgument("request truncated in header");
  }
  if (format > static_cast<uint8_t>(Format::kCsvNoHeader)) {
    return Status::InvalidArgument("unknown format code " +
                                   std::to_string(format));
  }
  req.format = static_cast<Format>(format);
  if (id_len == 0 || id_len > kMaxModelIdLen) {
    return Status::InvalidArgument("model id length " +
                                   std::to_string(id_len) +
                                   " outside [1, " +
                                   std::to_string(kMaxModelIdLen) + "]");
  }
  if (!r.ReadBytes(id_len, &req.model_id)) {
    return Status::InvalidArgument("request truncated in model id");
  }
  if (!r.Read(&req.seed) || !r.Read(&req.row_begin) || !r.Read(&req.row_end)) {
    return Status::InvalidArgument("request truncated in range fields");
  }
  if (version >= 2) {
    uint8_t has_label = 0;
    double label = 0.0;
    if (!r.Read(&has_label) || !r.Read(&label)) {
      return Status::InvalidArgument("request truncated in label trailer");
    }
    if (has_label > 1) {
      return Status::InvalidArgument("invalid has_label flag " +
                                     std::to_string(has_label));
    }
    if (has_label == 1) req.where_label = label;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after request");
  }
  if (req.row_begin < 0 || req.row_end < req.row_begin) {
    return Status::InvalidArgument(
        "invalid row range [" + std::to_string(req.row_begin) + ", " +
        std::to_string(req.row_end) + ")");
  }
  return req;
}

std::string EncodeResponse(const SampleResponse& resp) {
  std::string body;
  Append<uint32_t>(&body, static_cast<uint32_t>(resp.status));
  body.append(resp.payload);
  return body;
}

Result<SampleResponse> DecodeResponse(const std::string& body) {
  Reader r{body};
  uint32_t status = 0;
  if (!r.Read(&status)) {
    return Status::InvalidArgument("response truncated before status");
  }
  if (status > static_cast<uint32_t>(WireStatus::kUnknownLabel)) {
    return Status::InvalidArgument("unknown wire status " +
                                   std::to_string(status));
  }
  SampleResponse resp;
  resp.status = static_cast<WireStatus>(status);
  resp.payload = body.substr(r.pos);
  return resp;
}

Status WriteFrame(int fd, const std::string& body) {
  uint32_t magic = kFrameMagic;
  if (TABLEGAN_FAILPOINT("serve.frame.corrupt_magic")) magic ^= 0x00FF0000u;
  uint32_t len = static_cast<uint32_t>(body.size());
  if (TABLEGAN_FAILPOINT("serve.frame.oversize")) {
    len = kMaxResponseBody + 1;
  }
  std::string header;
  Append<uint32_t>(&header, magic);
  Append<uint32_t>(&header, len);
  TABLEGAN_RETURN_NOT_OK(io::WriteFull(fd, header.data(), header.size()));
  size_t send = body.size();
  if (TABLEGAN_FAILPOINT("serve.frame.truncate")) send /= 2;
  TABLEGAN_RETURN_NOT_OK(io::WriteFull(fd, body.data(), send));
  if (send != body.size()) {
    // The injected truncation: the peer now sees a mid-frame EOF once
    // this end closes. Report the short write locally too.
    return Status::IOError("short frame write (injected)");
  }
  return Status::OK();
}

Result<std::string> ReadFrame(int fd, uint32_t max_body) {
  if (TABLEGAN_FAILPOINT("serve.frame.read")) {
    return Status::IOError("injected failure: serve.frame.read");
  }
  uint32_t header[2] = {0, 0};
  TABLEGAN_ASSIGN_OR_RETURN(size_t got,
                            io::ReadFull(fd, header, sizeof(header)));
  if (got == 0) {
    // Clean hangup at a frame boundary — the "no more requests" signal.
    return Status::NotFound("connection closed");
  }
  if (got < sizeof(header)) {
    return Status::IOError("connection closed mid-frame header");
  }
  if (header[0] != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint32_t len = header[1];
  if (len > max_body) {
    return Status::InvalidArgument("frame body of " + std::to_string(len) +
                                   " bytes exceeds cap of " +
                                   std::to_string(max_body));
  }
  std::string body(len, '\0');
  if (len > 0) {
    TABLEGAN_ASSIGN_OR_RETURN(size_t body_got,
                              io::ReadFull(fd, body.data(), len));
    if (body_got < len) {
      return Status::IOError("connection closed mid-frame body");
    }
  }
  return body;
}

}  // namespace serve
}  // namespace tablegan
