#ifndef TABLEGAN_SERVE_SERVER_H_
#define TABLEGAN_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace tablegan {
namespace serve {

struct ServerOptions {
  /// Bind address. The default only accepts loopback clients; bind
  /// 0.0.0.0 explicitly to serve a fleet.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with Server::port().
  int port = 0;
  /// Handler threads in the shared ThreadPool. Each admitted connection
  /// occupies one worker while a request is in flight; generation
  /// itself additionally fans out over the process-wide ParallelFor
  /// pool inside TableGan::SampleRange.
  int num_workers = 4;
  /// Maximum admitted connections (running + waiting for a worker).
  /// Beyond this the listener replies with a BUSY frame and closes
  /// instead of queueing unboundedly — clients get instant, explicit
  /// backpressure.
  int admission_depth = 64;
  /// Per-request row cap; larger ranges are rejected as BAD_REQUEST so
  /// one request cannot balloon server memory. Clients shard bigger
  /// tables across range requests (that is the point of the protocol).
  int64_t max_rows_per_request = 1 << 20;
};

/// Long-lived synthesis server: accepts length-prefixed sample requests
/// (serve/protocol.h) and answers them from an immutable ModelRegistry.
///
/// Threading: one listener thread accepts and admits connections; every
/// admitted connection is handled on the shared ThreadPool, requests on
/// one connection serially, different connections concurrently.
/// Admission is a counter, not a queue copy — the pool's FIFO is the
/// queue, the counter bounds it.
///
/// Shutdown (Shutdown(), also run by the destructor) is graceful: the
/// listen socket closes first, in-flight requests run to completion and
/// their responses are flushed, then idle connections are unblocked
/// with an EOF and the workers drain. Start() ignores SIGPIPE process-
/// wide so a client hanging up mid-response surfaces as a per-
/// connection write error instead of killing the daemon.
class Server {
 public:
  Server(const ModelRegistry* registry, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the listener thread. IOError when the
  /// address cannot be bound.
  Status Start();

  /// Stops accepting, drains in-flight requests, joins every thread.
  /// Idempotent.
  void Shutdown();

  /// Actual bound port (after Start; useful with options.port == 0).
  int port() const { return port_; }

  /// Monotonic counters, readable at any time (tests, the bench, and
  /// the daemon's exit log).
  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected_busy = 0;
    uint64_t requests_ok = 0;
    uint64_t requests_error = 0;
  };
  Stats stats() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Builds the response to one decoded request (the sampling hot
  /// path).
  SampleResponse Serve(const SampleRequest& req) const;

  const ModelRegistry* registry_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> admitted_{0};

  /// Open connection fds, so Shutdown can EOF idle readers.
  std::mutex conns_mu_;
  std::set<int> conns_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_busy_{0};
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_error_{0};
};

}  // namespace serve
}  // namespace tablegan

#endif  // TABLEGAN_SERVE_SERVER_H_
