#ifndef TABLEGAN_SERVE_CLIENT_H_
#define TABLEGAN_SERVE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "serve/protocol.h"

namespace tablegan {
namespace serve {

/// Blocking client for the synthesis daemon. One Client owns one TCP
/// connection; requests on it are serial (the protocol has no request
/// ids to match concurrent responses). For concurrent load, open one
/// Client per thread — the bench does exactly that.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port. IOError when the daemon is unreachable.
  Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request and reads its response frame. A transport-level
  /// failure (daemon died, frame corrupt) is a non-OK Status; a served
  /// error (BUSY, UNKNOWN_MODEL, ...) is an OK Status with the wire
  /// status in the response — callers distinguish "could not ask" from
  /// "asked and was refused".
  Result<SampleResponse> Call(const SampleRequest& req);

  /// Convenience wrapper: requests rows [row_begin, row_end) of
  /// (model_id, seed) and returns the CSV payload, folding any non-kOk
  /// wire status into an error Status. When `where_label` is set the
  /// request is conditional — the server serves the per-label stream of
  /// that label (protocol v2; unset keeps the v1 byte layout).
  Result<std::string> SampleRange(
      const std::string& model_id, uint64_t seed, int64_t row_begin,
      int64_t row_end, Format format = Format::kCsv,
      std::optional<double> where_label = std::nullopt);

 private:
  int fd_ = -1;
};

}  // namespace serve
}  // namespace tablegan

#endif  // TABLEGAN_SERVE_CLIENT_H_
