#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "common/logging.h"
#include "data/csv.h"

namespace tablegan {
namespace serve {
namespace {

WireStatus WireStatusForSampling(const Status& s) {
  switch (s.code()) {
    case StatusCode::kInvalidArgument:
    // A conditional request against a source without conditional
    // support is a client mistake, not a server fault.
    case StatusCode::kFailedPrecondition:
      return WireStatus::kBadRequest;
    // SampleConditional's "label not in the training vocabulary".
    case StatusCode::kNotFound:
      return WireStatus::kUnknownLabel;
    default:
      return WireStatus::kInternal;
  }
}

}  // namespace

Server::Server(const ModelRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  // A client that disappears mid-response must cost us one connection,
  // not the process: without this, the first write into a hung-up
  // socket raises SIGPIPE and kills the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("not an IPv4 address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st = Status::IOError("bind " + options_.host + ":" +
                                      std::to_string(options_.port) + ": " +
                                      std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  stopping_.store(false);
  started_.store(true);
  listener_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown closed the listen socket (EBADF/EINVAL), or accept
      // hit a transient error; either way stop when asked to.
      if (stopping_.load()) return;
      if (errno == ECONNABORTED || errno == EAGAIN) continue;
      TABLEGAN_LOG(Error) << "accept failed: " << std::strerror(errno);
      return;
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    accepted_.fetch_add(1);
    // Admission control: the counter covers running AND pool-queued
    // connections, so the pool's FIFO can never grow past
    // admission_depth. Over the limit the client gets an immediate
    // BUSY frame — explicit backpressure instead of unbounded queueing.
    int admitted = admitted_.load();
    bool ok = false;
    while (admitted < options_.admission_depth &&
           !(ok = admitted_.compare_exchange_weak(admitted, admitted + 1))) {
    }
    if (!ok) {
      rejected_busy_.fetch_add(1);
      SampleResponse busy;
      busy.status = WireStatus::kBusy;
      busy.payload = "admission queue full (depth " +
                     std::to_string(options_.admission_depth) + ")";
      // Best effort; the rejected client may already be gone.
      (void)WriteFrame(fd, EncodeResponse(busy));
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.insert(fd);
    }
    pool_->Submit([this, fd] {
      HandleConnection(fd);
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.erase(fd);
      }
      ::close(fd);
      admitted_.fetch_sub(1);
    });
  }
}

void Server::HandleConnection(int fd) {
  // Requests on one connection are served in order until the client
  // hangs up, a frame is malformed (the byte stream may be desynced —
  // answer, then close), or shutdown EOFs the socket.
  for (;;) {
    Result<std::string> frame = ReadFrame(fd, kMaxRequestBody);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kNotFound) return;  // EOF
      requests_error_.fetch_add(1);
      // Drain whatever else already arrived (e.g. the body of a frame
      // whose header was rejected): closing a socket with unread data
      // sends an RST that can destroy the error reply before the
      // client reads it. Non-blocking, so a silent peer cannot park
      // the worker here.
      char sink[4096];
      while (::recv(fd, sink, sizeof(sink), MSG_DONTWAIT) > 0) {
      }
      SampleResponse err;
      err.status = WireStatus::kBadRequest;
      err.payload = frame.status().message();
      (void)WriteFrame(fd, EncodeResponse(err));
      return;
    }
    SampleResponse resp;
    Result<SampleRequest> req = DecodeRequest(*frame);
    if (!req.ok()) {
      resp.status = WireStatus::kBadRequest;
      resp.payload = req.status().message();
    } else {
      resp = Serve(*req);
    }
    (resp.status == WireStatus::kOk ? requests_ok_ : requests_error_)
        .fetch_add(1);
    Status sent = WriteFrame(fd, EncodeResponse(resp));
    if (!sent.ok()) {
      // SIGPIPE is ignored, so a mid-response hangup lands here as
      // EPIPE: log and drop this connection only.
      TABLEGAN_LOG(Error) << "response write failed: "
                          << sent.ToString();
      return;
    }
    if (!req.ok()) return;  // desynced stream; see above
    if (stopping_.load()) return;
  }
}

SampleResponse Server::Serve(const SampleRequest& req) const {
  SampleResponse resp;
  const RowSource* model = registry_->Find(req.model_id);
  if (model == nullptr) {
    resp.status = WireStatus::kUnknownModel;
    resp.payload = "unknown model id '" + req.model_id + "'";
    return resp;
  }
  if (req.row_end - req.row_begin > options_.max_rows_per_request) {
    resp.status = WireStatus::kBadRequest;
    resp.payload = "range of " + std::to_string(req.row_end - req.row_begin) +
                   " rows exceeds per-request cap of " +
                   std::to_string(options_.max_rows_per_request);
    return resp;
  }
  Result<data::Table> rows =
      req.where_label.has_value()
          ? model->SampleConditionalRange(req.seed, req.row_begin,
                                          req.row_end, *req.where_label)
          : model->SampleRange(req.seed, req.row_begin, req.row_end);
  if (!rows.ok()) {
    resp.status = WireStatusForSampling(rows.status());
    resp.payload = rows.status().ToString();
    return resp;
  }
  Result<std::string> csv = data::WriteCsvToString(
      *rows, /*include_header=*/req.format == Format::kCsv);
  if (!csv.ok()) {
    resp.status = WireStatus::kInternal;
    resp.payload = csv.status().ToString();
    return resp;
  }
  resp.status = WireStatus::kOk;
  resp.payload = std::move(*csv);
  return resp;
}

void Server::Shutdown() {
  if (!started_.exchange(false)) return;
  stopping_.store(true);
  // Unblock the listener first: no new work is admitted while we
  // drain.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (listener_.joinable()) listener_.join();
  listen_fd_ = -1;
  // EOF idle connections; handlers mid-request finish and flush their
  // response before noticing (stopping_ is checked between requests).
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RD);
  }
  pool_->WaitIdle();
  pool_.reset();
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.rejected_busy = rejected_busy_.load();
  s.requests_ok = requests_ok_.load();
  s.requests_error = requests_error_.load();
  return s;
}

}  // namespace serve
}  // namespace tablegan
