#include "serve/registry.h"

namespace tablegan {
namespace serve {

Status ModelRegistry::Load(const std::string& id, const std::string& path) {
  TABLEGAN_ASSIGN_OR_RETURN(core::TableGan model,
                            core::TableGan::Load(path));
  return Add(id, std::move(model));
}

Status ModelRegistry::Add(const std::string& id, core::TableGan model) {
  if (id.empty()) {
    return Status::InvalidArgument("model id must be non-empty");
  }
  if (!model.fitted()) {
    return Status::FailedPrecondition("model '" + id + "' is not fitted");
  }
  auto [it, inserted] = models_.emplace(
      id, std::make_unique<core::TableGan>(std::move(model)));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("duplicate model id '" + id + "'");
  }
  return Status::OK();
}

const core::TableGan* ModelRegistry::Find(const std::string& id) const {
  auto it = models_.find(id);
  return it == models_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [id, model] : models_) out.push_back(id);
  return out;
}

}  // namespace serve
}  // namespace tablegan
