#include "serve/registry.h"

#include <utility>

namespace tablegan {
namespace serve {
namespace {

class ModelSource : public RowSource {
 public:
  explicit ModelSource(core::TableGan model) : model_(std::move(model)) {}

  Result<data::Table> SampleRange(uint64_t seed, int64_t row_begin,
                                  int64_t row_end) const override {
    return model_.SampleRange(seed, row_begin, row_end);
  }

  Result<data::Table> SampleConditionalRange(uint64_t seed, int64_t row_begin,
                                             int64_t row_end,
                                             double label) const override {
    return model_.SampleConditional(seed, row_begin, row_end, label);
  }

 private:
  core::TableGan model_;
};

class ColumnarSource : public RowSource {
 public:
  explicit ColumnarSource(data::ColumnarReader table)
      : table_(std::move(table)) {}

  // A stored table has fixed contents: the seed is ignored (every seed
  // serves the same rows) and, unlike a generator, the range is bounded
  // by the file, so past-the-end reads are client errors rather than
  // more synthesis.
  Result<data::Table> SampleRange(uint64_t /*seed*/, int64_t row_begin,
                                  int64_t row_end) const override {
    if (row_begin < 0 || row_end < row_begin) {
      return Status::InvalidArgument(
          "invalid row range [" + std::to_string(row_begin) + ", " +
          std::to_string(row_end) + ")");
    }
    if (row_end > table_.num_rows()) {
      return Status::InvalidArgument(
          "row range ends at " + std::to_string(row_end) +
          " but columnar table '" + table_.path() + "' has " +
          std::to_string(table_.num_rows()) + " rows");
    }
    return data::TableRangeView(table_, row_begin, row_end - row_begin)
        .Materialize();
  }

 private:
  data::ColumnarReader table_;
};

}  // namespace

Status ModelRegistry::Load(const std::string& id, const std::string& path) {
  if (data::LooksLikeColumnarFile(path)) {
    TABLEGAN_ASSIGN_OR_RETURN(data::ColumnarReader table,
                              data::ColumnarReader::Open(path));
    // One full integrity pass at load time; the serving path then
    // trusts the map.
    TABLEGAN_RETURN_NOT_OK(table.VerifyCrc());
    return Add(id, std::move(table));
  }
  TABLEGAN_ASSIGN_OR_RETURN(core::TableGan model,
                            core::TableGan::Load(path));
  return Add(id, std::move(model));
}

Status ModelRegistry::Add(const std::string& id, core::TableGan model) {
  if (!model.fitted()) {
    return Status::FailedPrecondition("model '" + id + "' is not fitted");
  }
  return Insert(id, std::make_unique<ModelSource>(std::move(model)));
}

Status ModelRegistry::Add(const std::string& id,
                          data::ColumnarReader table) {
  return Insert(id, std::make_unique<ColumnarSource>(std::move(table)));
}

Status ModelRegistry::Insert(const std::string& id,
                             std::unique_ptr<RowSource> source) {
  if (id.empty()) {
    return Status::InvalidArgument("model id must be non-empty");
  }
  auto [it, inserted] = sources_.emplace(id, std::move(source));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("duplicate model id '" + id + "'");
  }
  return Status::OK();
}

const RowSource* ModelRegistry::Find(const std::string& id) const {
  auto it = sources_.find(id);
  return it == sources_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [id, source] : sources_) out.push_back(id);
  return out;
}

}  // namespace serve
}  // namespace tablegan
