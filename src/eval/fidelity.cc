#include "eval/fidelity.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"

namespace tablegan {
namespace eval {
namespace {

Status CheckColumns(const data::Table& original,
                    const data::Table& released, int col) {
  if (original.num_rows() == 0 || released.num_rows() == 0) {
    return Status::InvalidArgument("empty table in fidelity metric");
  }
  if (col < 0 || col >= original.num_columns() ||
      col >= released.num_columns()) {
    return Status::OutOfRange("column out of range");
  }
  return Status::OK();
}

}  // namespace

Result<double> ColumnKsDistance(const data::Table& original,
                                const data::Table& released, int col) {
  TABLEGAN_RETURN_NOT_OK(CheckColumns(original, released, col));
  std::vector<double> a = original.column(col);
  std::vector<double> b = released.column(col);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Classic two-pointer sweep over the merged value sequence.
  double ks = 0.0;
  size_t i = 0, j = 0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    ks = std::max(ks, std::fabs(static_cast<double>(i) / na -
                                static_cast<double>(j) / nb));
  }
  return ks;
}

Result<double> ColumnTvDistance(const data::Table& original,
                                const data::Table& released, int col) {
  TABLEGAN_RETURN_NOT_OK(CheckColumns(original, released, col));
  std::map<double, double> pa, pb;
  for (double v : original.column(col)) pa[v] += 1.0;
  for (double v : released.column(col)) pb[v] += 1.0;
  const double na = static_cast<double>(original.num_rows());
  const double nb = static_cast<double>(released.num_rows());
  double tv = 0.0;
  for (const auto& [v, c] : pa) {
    const auto it = pb.find(v);
    const double qb = it == pb.end() ? 0.0 : it->second / nb;
    tv += std::fabs(c / na - qb);
  }
  for (const auto& [v, c] : pb) {
    if (pa.find(v) == pa.end()) tv += c / nb;
  }
  return tv / 2.0;
}

Result<double> ColumnJsDivergence(const data::Table& original,
                                  const data::Table& released, int col,
                                  int bins) {
  TABLEGAN_RETURN_NOT_OK(CheckColumns(original, released, col));
  if (bins < 2) return Status::InvalidArgument("bins must be >= 2");
  // Shared equal-width binning over the pooled range.
  double lo = original.column(col)[0], hi = lo;
  for (double v : original.column(col)) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : released.column(col)) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  auto histogram = [&](const data::Table& t) {
    std::vector<double> h(static_cast<size_t>(bins), 0.0);
    for (double v : t.column(col)) {
      int b = span > 0.0 ? static_cast<int>((v - lo) / span *
                                            static_cast<double>(bins))
                         : 0;
      b = std::clamp(b, 0, bins - 1);
      h[static_cast<size_t>(b)] += 1.0;
    }
    for (double& x : h) x /= static_cast<double>(t.num_rows());
    return h;
  };
  const std::vector<double> p = histogram(original);
  const std::vector<double> q = histogram(released);
  double js = 0.0;
  for (int b = 0; b < bins; ++b) {
    const double pb = p[static_cast<size_t>(b)];
    const double qb = q[static_cast<size_t>(b)];
    const double mb = 0.5 * (pb + qb);
    if (pb > 0.0) js += 0.5 * pb * std::log2(pb / mb);
    if (qb > 0.0) js += 0.5 * qb * std::log2(qb / mb);
  }
  return std::max(0.0, js);
}

Result<double> CorrelationDifference(const data::Table& original,
                                     const data::Table& released) {
  if (original.num_columns() != released.num_columns()) {
    return Status::InvalidArgument("column count mismatch");
  }
  if (original.num_rows() < 2 || released.num_rows() < 2) {
    return Status::InvalidArgument("need at least 2 rows");
  }
  const int f = original.num_columns();

  auto correlations = [f](const data::Table& t) {
    const auto n = static_cast<double>(t.num_rows());
    std::vector<double> mean(static_cast<size_t>(f), 0.0);
    std::vector<double> sd(static_cast<size_t>(f), 0.0);
    for (int c = 0; c < f; ++c) {
      for (double v : t.column(c)) mean[static_cast<size_t>(c)] += v;
      mean[static_cast<size_t>(c)] /= n;
      for (double v : t.column(c)) {
        const double d = v - mean[static_cast<size_t>(c)];
        sd[static_cast<size_t>(c)] += d * d;
      }
      sd[static_cast<size_t>(c)] = std::sqrt(sd[static_cast<size_t>(c)] / n);
    }
    // Pair-parallel over the first index: each `a` owns the disjoint
    // corr[a*f + b] slice, and every pair's covariance sum is computed
    // in the same serial row order regardless of thread count.
    std::vector<double> corr(static_cast<size_t>(f * f), 0.0);
    ParallelFor(f, 1, [&](int64_t a0, int64_t a1) {
      for (int64_t a = a0; a < a1; ++a) {
        for (int64_t b = a + 1; b < f; ++b) {
          if (sd[static_cast<size_t>(a)] < 1e-12 ||
              sd[static_cast<size_t>(b)] < 1e-12) {
            continue;  // constant columns contribute correlation 0
          }
          double cov = 0.0;
          const auto& ca = t.column(static_cast<int>(a));
          const auto& cb = t.column(static_cast<int>(b));
          for (int64_t r = 0; r < t.num_rows(); ++r) {
            cov +=
                (ca[static_cast<size_t>(r)] - mean[static_cast<size_t>(a)]) *
                (cb[static_cast<size_t>(r)] - mean[static_cast<size_t>(b)]);
          }
          corr[static_cast<size_t>(a * f + b)] =
              cov / n /
              (sd[static_cast<size_t>(a)] * sd[static_cast<size_t>(b)]);
        }
      }
    });
    return corr;
  };

  const std::vector<double> ca = correlations(original);
  const std::vector<double> cb = correlations(released);
  double acc = 0.0;
  int64_t pairs = 0;
  for (int a = 0; a < f; ++a) {
    for (int b = a + 1; b < f; ++b) {
      acc += std::fabs(ca[static_cast<size_t>(a * f + b)] -
                       cb[static_cast<size_t>(a * f + b)]);
      ++pairs;
    }
  }
  return pairs > 0 ? acc / static_cast<double>(pairs) : 0.0;
}

Result<double> PropensityMse(const data::Table& original,
                             const data::Table& released,
                             const PmseOptions& options) {
  if (!original.schema().Equals(released.schema())) {
    return Status::InvalidArgument("schema mismatch in pMSE");
  }
  if (original.num_rows() < 4 || released.num_rows() < 4) {
    return Status::InvalidArgument("tables too small for pMSE");
  }
  const int f = original.num_columns();
  const int64_t n = original.num_rows() + released.num_rows();

  // Standardize features over the pooled rows.
  std::vector<double> mean(static_cast<size_t>(f), 0.0);
  std::vector<double> inv_sd(static_cast<size_t>(f), 1.0);
  for (int c = 0; c < f; ++c) {
    double m = 0.0;
    for (double v : original.column(c)) m += v;
    for (double v : released.column(c)) m += v;
    m /= static_cast<double>(n);
    double var = 0.0;
    for (double v : original.column(c)) var += (v - m) * (v - m);
    for (double v : released.column(c)) var += (v - m) * (v - m);
    var /= static_cast<double>(n);
    mean[static_cast<size_t>(c)] = m;
    inv_sd[static_cast<size_t>(c)] =
        var > 1e-12 ? 1.0 / std::sqrt(var) : 0.0;
  }
  auto features = [&](const data::Table& t, int64_t r,
                      std::vector<double>* out) {
    for (int c = 0; c < f; ++c) {
      (*out)[static_cast<size_t>(c)] =
          (t.Get(r, c) - mean[static_cast<size_t>(c)]) *
          inv_sd[static_cast<size_t>(c)];
    }
  };

  // Logistic regression by full-batch gradient descent: original = 1,
  // released = 0.
  std::vector<double> w(static_cast<size_t>(f), 0.0);
  double bias = 0.0;
  std::vector<double> x(static_cast<size_t>(f));
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<double> gw(static_cast<size_t>(f), 0.0);
    double gb = 0.0;
    auto accumulate = [&](const data::Table& t, double label) {
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        features(t, r, &x);
        double z = bias;
        for (int c = 0; c < f; ++c) {
          z += w[static_cast<size_t>(c)] * x[static_cast<size_t>(c)];
        }
        const double p = 1.0 / (1.0 + std::exp(-z));
        const double g = (p - label) * inv_n;
        for (int c = 0; c < f; ++c) {
          gw[static_cast<size_t>(c)] += g * x[static_cast<size_t>(c)];
        }
        gb += g;
      }
    };
    accumulate(original, 1.0);
    accumulate(released, 0.0);
    for (int c = 0; c < f; ++c) {
      w[static_cast<size_t>(c)] -=
          options.learning_rate * gw[static_cast<size_t>(c)];
    }
    bias -= options.learning_rate * gb;
  }

  // pMSE = mean (p_i - 0.5)^2 over the pooled rows.
  double acc = 0.0;
  auto score = [&](const data::Table& t) {
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      features(t, r, &x);
      double z = bias;
      for (int c = 0; c < f; ++c) {
        z += w[static_cast<size_t>(c)] * x[static_cast<size_t>(c)];
      }
      const double p = 1.0 / (1.0 + std::exp(-z));
      acc += (p - 0.5) * (p - 0.5);
    }
  };
  score(original);
  score(released);
  return acc * inv_n;
}

Result<FidelityReport> EvaluateFidelity(const data::Table& original,
                                        const data::Table& released) {
  if (!original.schema().Equals(released.schema())) {
    return Status::InvalidArgument("schema mismatch in fidelity report");
  }
  FidelityReport report;
  // Column-parallel dispatch: every column's KS/TV computation is
  // independent and writes its own slot, so columns can run on any
  // thread. Aggregation (mean/worst) happens serially afterwards in
  // column order — identical results at any thread count.
  const int num_cols = original.num_columns();
  std::vector<ColumnFidelity> columns(static_cast<size_t>(num_cols));
  std::vector<Status> statuses(static_cast<size_t>(num_cols), Status::OK());
  ParallelFor(num_cols, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const int col = static_cast<int>(c);
      ColumnFidelity& cf = columns[static_cast<size_t>(c)];
      cf.name = original.schema().column(col).name;
      auto ks = ColumnKsDistance(original, released, col);
      if (!ks.ok()) {
        statuses[static_cast<size_t>(c)] = ks.status();
        continue;
      }
      cf.ks = *ks;
      if (original.schema().column(col).type !=
          data::ColumnType::kContinuous) {
        auto tv = ColumnTvDistance(original, released, col);
        if (!tv.ok()) {
          statuses[static_cast<size_t>(c)] = tv.status();
          continue;
        }
        cf.tv = *tv;
      }
    }
  });
  double ks_sum = 0.0;
  for (int c = 0; c < num_cols; ++c) {
    TABLEGAN_RETURN_NOT_OK(statuses[static_cast<size_t>(c)]);
    ColumnFidelity& cf = columns[static_cast<size_t>(c)];
    ks_sum += cf.ks;
    report.worst_ks = std::max(report.worst_ks, cf.ks);
    report.columns.push_back(std::move(cf));
  }
  report.mean_ks = ks_sum / static_cast<double>(num_cols);
  TABLEGAN_ASSIGN_OR_RETURN(report.correlation_difference,
                            CorrelationDifference(original, released));
  TABLEGAN_ASSIGN_OR_RETURN(report.pmse, PropensityMse(original, released));
  return report;
}

}  // namespace eval
}  // namespace tablegan
