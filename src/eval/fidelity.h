#ifndef TABLEGAN_EVAL_FIDELITY_H_
#define TABLEGAN_EVAL_FIDELITY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace tablegan {
namespace eval {

/// Statistical-fidelity metrics between an original table and a released
/// (anonymized / perturbed / synthesized) table. These back the paper's
/// statistical-comparison experiments (Figure 4 and appendix): the
/// figures plot per-attribute CDFs; this module reduces them to scalar
/// distances plus two whole-table scores standard in the synthetic-data
/// literature (correlation-difference and pMSE).

/// Kolmogorov-Smirnov distance between the empirical CDFs of column
/// `col` in the two tables (exact two-sample statistic, not binned).
Result<double> ColumnKsDistance(const data::Table& original,
                                const data::Table& released, int col);

/// Total-variation distance between the empirical level distributions
/// of a categorical/discrete column.
Result<double> ColumnTvDistance(const data::Table& original,
                                const data::Table& released, int col);

/// Mean absolute difference between the Pearson correlation matrices of
/// the two tables (upper triangle, constant columns contribute 0).
/// Captures whether inter-attribute structure survived synthesis.
Result<double> CorrelationDifference(const data::Table& original,
                                     const data::Table& released);

/// Propensity-score MSE (pMSE): train a logistic discriminator to tell
/// original from released rows and report mean (p - 0.5)^2. 0 means the
/// released table is indistinguishable; the maximum 0.25 means perfectly
/// separable. [Snoke et al., "General and specific utility measures for
/// synthetic data"]
struct PmseOptions {
  int epochs = 250;
  double learning_rate = 0.5;
  uint64_t seed = 61;
};
Result<double> PropensityMse(const data::Table& original,
                             const data::Table& released,
                             const PmseOptions& options = {});

/// Jensen-Shannon divergence between binned distributions of a column
/// (base-2 logs, so the value lies in [0, 1]). Robust to support
/// mismatch, unlike KL.
Result<double> ColumnJsDivergence(const data::Table& original,
                                  const data::Table& released, int col,
                                  int bins = 32);

/// Per-column fidelity entry of a full report.
struct ColumnFidelity {
  std::string name;
  double ks = 0.0;  // continuous view
  double tv = 0.0;  // level-distribution view (categorical/discrete only)
};

/// Whole-table report.
struct FidelityReport {
  std::vector<ColumnFidelity> columns;
  double mean_ks = 0.0;
  double worst_ks = 0.0;
  double correlation_difference = 0.0;
  double pmse = 0.0;
};

/// Runs every metric. Tables must share a schema.
Result<FidelityReport> EvaluateFidelity(const data::Table& original,
                                        const data::Table& released);

}  // namespace eval
}  // namespace tablegan

#endif  // TABLEGAN_EVAL_FIDELITY_H_
