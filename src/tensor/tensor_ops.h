#ifndef TABLEGAN_TENSOR_TENSOR_OPS_H_
#define TABLEGAN_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace tablegan {
namespace ops {

/// Elementwise kernels. All binary ops require identical shapes.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
/// out = a - b into caller-owned scratch (resized as needed); same float
/// arithmetic as Sub, so results are bitwise identical.
void SubInto(const Tensor& a, const Tensor& b, Tensor* out);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

/// out += a * scale  (axpy). Shapes must match.
void AxpyInPlace(const Tensor& a, float scale, Tensor* out);
/// out *= s.
void ScaleInPlace(float s, Tensor* out);

/// Reductions over the whole tensor.
float Sum(const Tensor& a);
float Mean(const Tensor& a);
float Max(const Tensor& a);
float Min(const Tensor& a);

/// L2 norm of the flattened tensor.
float Norm2(const Tensor& a);

/// Squared L2 distance between two same-shaped tensors.
float SquaredDistance(const Tensor& a, const Tensor& b);

/// Row-wise (axis-0) statistics of a rank-2 tensor [n, f]: returns a
/// rank-1 tensor of length f.
Tensor ColumnMean(const Tensor& a);
/// Population standard deviation per column (divides by n, matching the
/// paper's SD[f] over a mini-batch).
Tensor ColumnStd(const Tensor& a);
/// Allocation-free variants writing into caller-owned scratch tensors
/// (resized as needed). ColumnStdInto recomputes the column mean into
/// `mean_scratch` exactly as ColumnStd does internally, keeping results
/// bitwise identical to the allocating forms.
void ColumnMeanInto(const Tensor& a, Tensor* out);
void ColumnStdInto(const Tensor& a, Tensor* out, Tensor* mean_scratch);

/// Transpose of a rank-2 tensor.
Tensor Transpose2D(const Tensor& a);
/// Transpose into caller-owned scratch (resized to [cols, rows]).
void Transpose2DInto(const Tensor& a, Tensor* out);

/// Concatenates rank-2 tensors with equal column counts along axis 0.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Extracts rows [begin, end) of a rank-2 tensor.
Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end);

}  // namespace ops
}  // namespace tablegan

#endif  // TABLEGAN_TENSOR_TENSOR_OPS_H_
