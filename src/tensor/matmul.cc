#include "tensor/matmul.h"

#include <algorithm>

#include "common/parallel.h"
#include "tensor/kernels/kernels.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace tablegan {
namespace ops {
namespace {

// Threading policy: every kernel below is parallelized by partitioning the
// rows of C, so each worker owns a disjoint block of output rows and the
// per-row arithmetic (loop structure, accumulation order) is identical to
// the serial kernel. Results are therefore bitwise identical at any thread
// count. The gate and grain are pure functions of the problem shape, never
// of the thread count.
//
// The serial block kernels themselves live one layer down, in
// tensor/kernels/ (scalar reference plus the runtime-selected SIMD
// backend); this file only partitions rows and forwards to
// kernels::Active().
constexpr int64_t kMinParallelFlops = int64_t{1} << 18;  // ~262k mul-adds
constexpr int64_t kGrainFlops = int64_t{1} << 15;        // per-chunk floor

bool WorthThreading(int64_t m, int64_t n, int64_t k) {
  return m > 1 && m * n * k >= kMinParallelFlops;
}

int64_t RowGrain(int64_t n, int64_t k) {
  return std::max<int64_t>(1, kGrainFlops / std::max<int64_t>(1, n * k));
}

// Row-partitioned gemm_nn. Each chunk runs the serial kernel on its own
// block of A/C rows; per-row work does not depend on the partition.
void ParallelGemm(int64_t m, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  const auto gemm_nn = kernels::Active().gemm_nn;
  if (!WorthThreading(m, n, k)) {
    gemm_nn(m, n, k, alpha, a, b, c);
    return;
  }
  ParallelFor(m, RowGrain(n, k), [=](int64_t r0, int64_t r1) {
    gemm_nn(r1 - r0, n, k, alpha, a + r0 * k, b, c + r0 * n);
  });
}

}  // namespace

void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c, Workspace* ws) {
  TABLEGAN_CHECK(a.rank() == 2 && b.rank() == 2 && c->rank() == 2);
  const int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const int64_t k = transpose_a ? a.dim(0) : a.dim(1);
  const int64_t kb = transpose_b ? b.dim(1) : b.dim(0);
  const int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  TABLEGAN_CHECK(k == kb) << "inner dimensions differ: " << k << " vs " << kb;
  TABLEGAN_CHECK(c->dim(0) == m && c->dim(1) == n)
      << "output shape " << ShapeToString(c->shape()) << " expected ["
      << m << ", " << n << "]";

  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    ScaleInPlace(beta, c);
  }
  if (m == 0 || n == 0 || k == 0) return;

  // Materializing the transposed operand keeps the hot kernel contiguous;
  // the copy is O(m*k) versus the O(m*k*n) multiply. The scratch comes
  // from the workspace pool when one is supplied (Transpose2DInto writes
  // every element, so stale pool contents are harmless).
  const Tensor* pa = &a;
  const Tensor* pb = &b;
  Tensor at, bt;
  if (transpose_a) {
    if (ws != nullptr) at = ws->Take({a.dim(1), a.dim(0)});
    Transpose2DInto(a, &at);
    pa = &at;
  }
  if (transpose_b) {
    if (ws != nullptr) bt = ws->Take({b.dim(1), b.dim(0)});
    Transpose2DInto(b, &bt);
    pb = &bt;
  }
  ParallelGemm(m, n, k, alpha, pa->data(), pb->data(), c->data());
}

void RawGemmNN(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  ParallelGemm(m, n, k, 1.0f, a, b, c);
}

void RawGemmNT(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  const auto gemm_nt = kernels::Active().gemm_nt;
  if (!WorthThreading(m, n, k)) {
    gemm_nt(m, n, k, a, b, c, accumulate);
    return;
  }
  ParallelFor(m, RowGrain(n, k), [=](int64_t r0, int64_t r1) {
    gemm_nt(r1 - r0, n, k, a + r0 * k, b, c + r0 * n, accumulate);
  });
}

void RawGemmTN(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  const auto gemm_tn = kernels::Active().gemm_tn;
  if (!WorthThreading(m, n, k)) {
    gemm_tn(0, m, m, n, k, a, b, c);
    return;
  }
  ParallelFor(m, RowGrain(n, k), [=](int64_t r0, int64_t r1) {
    gemm_tn(r0, r1, m, n, k, a, b, c);
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TABLEGAN_CHECK(a.rank() == 2 && b.rank() == 2);
  Tensor c({a.dim(0), b.dim(1)});
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

}  // namespace ops
}  // namespace tablegan
