#include "tensor/matmul.h"

#include <algorithm>

#include "tensor/tensor_ops.h"

namespace tablegan {
namespace ops {
namespace {

// Inner kernel: row-major C[m,n] += A[m,k] * B[k,n], cache-blocked over k
// and n. The j-loop is a contiguous fused multiply-add that the compiler
// auto-vectorizes.
void GemmKernel(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                const float* b, float* c) {
  constexpr int64_t kBlockK = 256;
  constexpr int64_t kBlockN = 512;
  for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
    const int64_t k1 = std::min(k, k0 + kBlockK);
    for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
      const int64_t n1 = std::min(n, n0 + kBlockN);
      for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = alpha * arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b + kk * n;
          for (int64_t j = n0; j < n1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c) {
  TABLEGAN_CHECK(a.rank() == 2 && b.rank() == 2 && c->rank() == 2);
  const int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const int64_t k = transpose_a ? a.dim(0) : a.dim(1);
  const int64_t kb = transpose_b ? b.dim(1) : b.dim(0);
  const int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  TABLEGAN_CHECK(k == kb) << "inner dimensions differ: " << k << " vs " << kb;
  TABLEGAN_CHECK(c->dim(0) == m && c->dim(1) == n)
      << "output shape " << ShapeToString(c->shape()) << " expected ["
      << m << ", " << n << "]";

  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    ScaleInPlace(beta, c);
  }
  if (m == 0 || n == 0 || k == 0) return;

  // Materializing the transposed operand keeps the hot kernel contiguous;
  // the copy is O(m*k) versus the O(m*k*n) multiply.
  const Tensor* pa = &a;
  const Tensor* pb = &b;
  Tensor at, bt;
  if (transpose_a) {
    at = Transpose2D(a);
    pa = &at;
  }
  if (transpose_b) {
    bt = Transpose2D(b);
    pb = &bt;
  }
  GemmKernel(m, n, k, alpha, pa->data(), pb->data(), c->data());
}

void RawGemmNN(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  GemmKernel(m, n, k, 1.0f, a, b, c);
}

void RawGemmNT(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void RawGemmTN(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  for (int64_t l = 0; l < k; ++l) {
    const float* arow = a + l * m;
    const float* brow = b + l * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TABLEGAN_CHECK(a.rank() == 2 && b.rank() == 2);
  Tensor c({a.dim(0), b.dim(1)});
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

}  // namespace ops
}  // namespace tablegan
