#include "tensor/matmul.h"

#include <algorithm>

#include "common/parallel.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace tablegan {
namespace ops {
namespace {

// Threading policy: every kernel below is parallelized by partitioning the
// rows of C, so each worker owns a disjoint block of output rows and the
// per-row arithmetic (loop structure, accumulation order) is identical to
// the serial kernel. Results are therefore bitwise identical at any thread
// count. The gate and grain are pure functions of the problem shape, never
// of the thread count.
constexpr int64_t kMinParallelFlops = int64_t{1} << 18;  // ~262k mul-adds
constexpr int64_t kGrainFlops = int64_t{1} << 15;        // per-chunk floor

bool WorthThreading(int64_t m, int64_t n, int64_t k) {
  return m > 1 && m * n * k >= kMinParallelFlops;
}

int64_t RowGrain(int64_t n, int64_t k) {
  return std::max<int64_t>(1, kGrainFlops / std::max<int64_t>(1, n * k));
}

// Inner kernel: row-major C[m,n] += A[m,k] * B[k,n], cache-blocked over k
// and n. The j-loop is a contiguous fused multiply-add that the compiler
// auto-vectorizes.
void GemmKernel(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                const float* b, float* c) {
  constexpr int64_t kBlockK = 256;
  constexpr int64_t kBlockN = 512;
  for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
    const int64_t k1 = std::min(k, k0 + kBlockK);
    for (int64_t n0 = 0; n0 < n; n0 += kBlockN) {
      const int64_t n1 = std::min(n, n0 + kBlockN);
      for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = alpha * arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b + kk * n;
          for (int64_t j = n0; j < n1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

// Row-partitioned GemmKernel. Each chunk runs the serial kernel on its own
// block of A/C rows; per-row work does not depend on the partition.
void ParallelGemm(int64_t m, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  if (!WorthThreading(m, n, k)) {
    GemmKernel(m, n, k, alpha, a, b, c);
    return;
  }
  ParallelFor(m, RowGrain(n, k), [=](int64_t r0, int64_t r1) {
    GemmKernel(r1 - r0, n, k, alpha, a + r0 * k, b, c + r0 * n);
  });
}

// C[m,n] += A[m,k] * B[n,k]^T, cache-blocked over the B rows (j) and the
// shared depth (l) so a kBlockJ x kBlockL tile of B stays hot across all
// rows of A. Per element the l0 tiles accumulate in ascending order, which
// is independent of how the i range is partitioned across threads.
void NtKernel(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
              float* c, bool accumulate) {
  constexpr int64_t kBlockJ = 64;
  constexpr int64_t kBlockL = 256;
  if (!accumulate) {
    for (int64_t i = 0; i < m; ++i) std::fill(c + i * n, c + i * n + n, 0.0f);
  }
  for (int64_t l0 = 0; l0 < k; l0 += kBlockL) {
    const int64_t l1 = std::min(k, l0 + kBlockL);
    for (int64_t j0 = 0; j0 < n; j0 += kBlockJ) {
      const int64_t j1 = std::min(n, j0 + kBlockJ);
      for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t j = j0; j < j1; ++j) {
          const float* brow = b + j * k;
          float acc = 0.0f;
          for (int64_t l = l0; l < l1; ++l) acc += arow[l] * brow[l];
          crow[j] += acc;
        }
      }
    }
  }
}

// C rows [r0, r1) of C[m,n] += A[k,m]^T * B[k,n]. The l loop stays
// outermost exactly as in the serial kernel, so each element accumulates
// its k terms in ascending order regardless of the row partition.
void TnKernel(int64_t r0, int64_t r1, int64_t m, int64_t n, int64_t k,
              const float* a, const float* b, float* c) {
  for (int64_t l = 0; l < k; ++l) {
    const float* arow = a + l * m;
    const float* brow = b + l * n;
    for (int64_t i = r0; i < r1; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c, Workspace* ws) {
  TABLEGAN_CHECK(a.rank() == 2 && b.rank() == 2 && c->rank() == 2);
  const int64_t m = transpose_a ? a.dim(1) : a.dim(0);
  const int64_t k = transpose_a ? a.dim(0) : a.dim(1);
  const int64_t kb = transpose_b ? b.dim(1) : b.dim(0);
  const int64_t n = transpose_b ? b.dim(0) : b.dim(1);
  TABLEGAN_CHECK(k == kb) << "inner dimensions differ: " << k << " vs " << kb;
  TABLEGAN_CHECK(c->dim(0) == m && c->dim(1) == n)
      << "output shape " << ShapeToString(c->shape()) << " expected ["
      << m << ", " << n << "]";

  if (beta == 0.0f) {
    c->SetZero();
  } else if (beta != 1.0f) {
    ScaleInPlace(beta, c);
  }
  if (m == 0 || n == 0 || k == 0) return;

  // Materializing the transposed operand keeps the hot kernel contiguous;
  // the copy is O(m*k) versus the O(m*k*n) multiply. The scratch comes
  // from the workspace pool when one is supplied (Transpose2DInto writes
  // every element, so stale pool contents are harmless).
  const Tensor* pa = &a;
  const Tensor* pb = &b;
  Tensor at, bt;
  if (transpose_a) {
    if (ws != nullptr) at = ws->Take({a.dim(1), a.dim(0)});
    Transpose2DInto(a, &at);
    pa = &at;
  }
  if (transpose_b) {
    if (ws != nullptr) bt = ws->Take({b.dim(1), b.dim(0)});
    Transpose2DInto(b, &bt);
    pb = &bt;
  }
  ParallelGemm(m, n, k, alpha, pa->data(), pb->data(), c->data());
}

void RawGemmNN(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  ParallelGemm(m, n, k, 1.0f, a, b, c);
}

void RawGemmNT(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  if (!WorthThreading(m, n, k)) {
    NtKernel(m, n, k, a, b, c, accumulate);
    return;
  }
  ParallelFor(m, RowGrain(n, k), [=](int64_t r0, int64_t r1) {
    NtKernel(r1 - r0, n, k, a + r0 * k, b, c + r0 * n, accumulate);
  });
}

void RawGemmTN(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  if (!WorthThreading(m, n, k)) {
    TnKernel(0, m, m, n, k, a, b, c);
    return;
  }
  ParallelFor(m, RowGrain(n, k), [=](int64_t r0, int64_t r1) {
    TnKernel(r0, r1, m, n, k, a, b, c);
  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TABLEGAN_CHECK(a.rank() == 2 && b.rank() == 2);
  Tensor c({a.dim(0), b.dim(1)});
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

}  // namespace ops
}  // namespace tablegan
