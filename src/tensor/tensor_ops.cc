#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace tablegan {
namespace ops {
namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  TABLEGAN_CHECK(a.SameShape(b))
      << "shape mismatch: " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < out.size(); ++i) po[i] += pb[i];
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < out.size(); ++i) po[i] -= pb[i];
  return out;
}

void SubInto(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  out->ResizeUninitialized(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  for (int64_t i = 0; i < out->size(); ++i) po[i] = pa[i] - pb[i];
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < out.size(); ++i) po[i] *= pb[i];
  return out;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor out = a;
  float* po = out.data();
  for (int64_t i = 0; i < out.size(); ++i) po[i] += s;
  return out;
}

Tensor MulScalar(const Tensor& a, float s) {
  Tensor out = a;
  float* po = out.data();
  for (int64_t i = 0; i < out.size(); ++i) po[i] *= s;
  return out;
}

void AxpyInPlace(const Tensor& a, float scale, Tensor* out) {
  CheckSameShape(a, *out);
  const float* pa = a.data();
  float* po = out->data();
  for (int64_t i = 0; i < out->size(); ++i) po[i] += scale * pa[i];
}

void ScaleInPlace(float s, Tensor* out) {
  float* po = out->data();
  for (int64_t i = 0; i < out->size(); ++i) po[i] *= s;
}

float Sum(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float Mean(const Tensor& a) {
  TABLEGAN_CHECK(a.size() > 0);
  return Sum(a) / static_cast<float>(a.size());
}

float Max(const Tensor& a) {
  TABLEGAN_CHECK(a.size() > 0);
  float m = a[0];
  for (int64_t i = 1; i < a.size(); ++i) m = std::max(m, a[i]);
  return m;
}

float Min(const Tensor& a) {
  TABLEGAN_CHECK(a.size() > 0);
  float m = a[0];
  for (int64_t i = 1; i < a.size(); ++i) m = std::min(m, a[i]);
  return m;
}

float Norm2(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

float SquaredDistance(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(acc);
}

Tensor ColumnMean(const Tensor& a) {
  TABLEGAN_CHECK(a.rank() == 2);
  int64_t n = a.dim(0), f = a.dim(1);
  TABLEGAN_CHECK(n > 0);
  Tensor out({f});
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * f;
    for (int64_t j = 0; j < f; ++j) out[j] += row[j];
  }
  ScaleInPlace(1.0f / static_cast<float>(n), &out);
  return out;
}

Tensor ColumnStd(const Tensor& a) {
  TABLEGAN_CHECK(a.rank() == 2);
  int64_t n = a.dim(0), f = a.dim(1);
  TABLEGAN_CHECK(n > 0);
  Tensor mean = ColumnMean(a);
  Tensor out({f});
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * f;
    for (int64_t j = 0; j < f; ++j) {
      float d = row[j] - mean[j];
      out[j] += d * d;
    }
  }
  for (int64_t j = 0; j < f; ++j) {
    out[j] = std::sqrt(out[j] / static_cast<float>(n));
  }
  return out;
}

void ColumnMeanInto(const Tensor& a, Tensor* out) {
  TABLEGAN_CHECK(a.rank() == 2);
  int64_t n = a.dim(0), f = a.dim(1);
  TABLEGAN_CHECK(n > 0);
  out->ResizeUninitialized({f});
  out->SetZero();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * f;
    for (int64_t j = 0; j < f; ++j) (*out)[j] += row[j];
  }
  ScaleInPlace(1.0f / static_cast<float>(n), out);
}

void ColumnStdInto(const Tensor& a, Tensor* out, Tensor* mean_scratch) {
  TABLEGAN_CHECK(a.rank() == 2);
  int64_t n = a.dim(0), f = a.dim(1);
  TABLEGAN_CHECK(n > 0);
  ColumnMeanInto(a, mean_scratch);
  const Tensor& mean = *mean_scratch;
  out->ResizeUninitialized({f});
  out->SetZero();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = a.data() + i * f;
    for (int64_t j = 0; j < f; ++j) {
      float d = row[j] - mean[j];
      (*out)[j] += d * d;
    }
  }
  for (int64_t j = 0; j < f; ++j) {
    (*out)[j] = std::sqrt((*out)[j] / static_cast<float>(n));
  }
}

Tensor Transpose2D(const Tensor& a) {
  TABLEGAN_CHECK(a.rank() == 2);
  int64_t r = a.dim(0), c = a.dim(1);
  Tensor out({c, r});
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) out.at2(j, i) = a.at2(i, j);
  }
  return out;
}

void Transpose2DInto(const Tensor& a, Tensor* out) {
  TABLEGAN_CHECK(a.rank() == 2);
  int64_t r = a.dim(0), c = a.dim(1);
  out->ResizeUninitialized({c, r});
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) out->at2(j, i) = a.at2(i, j);
  }
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  TABLEGAN_CHECK(!parts.empty());
  int64_t cols = parts[0].dim(1);
  int64_t rows = 0;
  for (const Tensor& p : parts) {
    TABLEGAN_CHECK(p.rank() == 2 && p.dim(1) == cols);
    rows += p.dim(0);
  }
  Tensor out({rows, cols});
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.data() + offset);
    offset += p.size();
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int64_t begin, int64_t end) {
  TABLEGAN_CHECK(a.rank() == 2);
  TABLEGAN_CHECK(0 <= begin && begin <= end && end <= a.dim(0));
  int64_t cols = a.dim(1);
  Tensor out({end - begin, cols});
  std::copy(a.data() + begin * cols, a.data() + end * cols, out.data());
  return out;
}

}  // namespace ops
}  // namespace tablegan
