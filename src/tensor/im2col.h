#ifndef TABLEGAN_TENSOR_IM2COL_H_
#define TABLEGAN_TENSOR_IM2COL_H_

#include "tensor/tensor.h"

namespace tablegan {
namespace ops {

/// Parameters of a 2-D convolution (square kernels / strides / padding,
/// which is all DCGAN uses).
struct Conv2dGeometry {
  int64_t in_channels = 0;
  int64_t in_h = 0;
  int64_t in_w = 0;
  int64_t kernel = 0;
  int64_t stride = 1;
  int64_t padding = 0;

  int64_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  int64_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
  /// Rows of the im2col matrix: C_in * K * K.
  int64_t patch_size() const { return in_channels * kernel * kernel; }
};

/// Unfolds one image `img` (rank-3 view [C, H, W] given as pointer into a
/// NCHW tensor) into `cols` of shape [patch_size, out_h*out_w]
/// (column-major patches), so that conv = W_matrix * cols.
void Im2Col(const Conv2dGeometry& g, const float* img, float* cols);

/// Transpose of Im2Col: accumulates columns back into the (zeroed by
/// caller) image gradient. Used in conv backward and transposed-conv
/// forward.
void Col2Im(const Conv2dGeometry& g, const float* cols, float* img);

}  // namespace ops
}  // namespace tablegan

#endif  // TABLEGAN_TENSOR_IM2COL_H_
