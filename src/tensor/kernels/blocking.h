#ifndef TABLEGAN_TENSOR_KERNELS_BLOCKING_H_
#define TABLEGAN_TENSOR_KERNELS_BLOCKING_H_

#include <cstdint>

namespace tablegan {
namespace kernels {

// Cache-block sizes shared by every backend. They are part of the
// numerics contract, not just a tuning knob: the NT kernel accumulates
// each output element in per-l-block partial sums (acc over [l0, l1),
// then c += acc), so two backends only produce bitwise-equal results if
// they cut the depth axis at the same block boundaries. The NN and TN
// kernels accumulate straight into C, where re-blocking is bitwise
// neutral, but they keep the same constants for cache behavior.
inline constexpr int64_t kGemmBlockK = 256;  // NN depth block
inline constexpr int64_t kGemmBlockN = 512;  // NN output-column block
inline constexpr int64_t kNtBlockJ = 64;     // NT B-row block
inline constexpr int64_t kNtBlockL = 256;    // NT depth block (contractual)

}  // namespace kernels
}  // namespace tablegan

#endif  // TABLEGAN_TENSOR_KERNELS_BLOCKING_H_
