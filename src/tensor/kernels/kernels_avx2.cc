// AVX2/FMA backend. Compiled with -mavx2 -mfma -ffp-contract=off (see
// src/tensor/CMakeLists.txt): contraction is off so the only FMAs are
// the explicit _mm256_fmadd_ps in the kFma=true instantiation, giving
// the kFma=false variant portable strict IEEE semantics — one rounding
// per multiply and per add. (The production scalar backend is compiled
// with contraction *on*, so the kFma=false variant matches the
// *non-contracted* reference loops bitwise — which the parity suite
// compiles itself — and the scalar backend to a documented bound; see
// the contract in kernels.h.)
//
// Exactness strategy (DESIGN.md §12): vectorize across *independent
// outputs* — GEMM output columns, elementwise lanes, NF channels — so
// every SIMD lane executes the scalar kernel's per-element operation
// sequence. Reductions along the depth axis keep the scalar kernel's
// accumulation order per element (NT reuses the shared kNtBlockL
// boundaries; NN/TN accumulate ascending-k into C-held registers, which
// is store/load elision and rounds identically). The only reassociating
// divergence is the NCHW BatchNorm reductions, which split the spatial
// axis over 8 lanes folded in lane order.

#include "tensor/kernels/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "tensor/kernels/blocking.h"

namespace tablegan {
namespace kernels {

// libm forwards shared with the scalar backend (kernels_scalar.cc).
void TanhFwdLibm(int64_t n, const float* x, float* y);
void SigmoidFwdLibm(int64_t n, const float* x, float* y);

namespace {

template <bool kFma>
inline __m256 MulAdd(__m256 a, __m256 b, __m256 c) {
  if constexpr (kFma) {
    return _mm256_fmadd_ps(a, b, c);
  } else {
    return _mm256_add_ps(c, _mm256_mul_ps(a, b));
  }
}

// Sums the 8 lanes in ascending lane order (the documented fixed
// lane-reduction order for the NCHW BatchNorm reductions).
inline float LaneSum(__m256 v) {
  alignas(32) float lane[8];
  _mm256_store_ps(lane, v);
  float acc = lane[0];
  for (int i = 1; i < 8; ++i) acc += lane[i];
  return acc;
}

// ---------------------------------------------------------------------
// GEMM NN: C[m,n] += alpha * A[m,k] * B[k,n].
//
// Register-blocked micro kernel: kRows rows x 16 columns of C held in
// registers across one k block. Per element this performs the scalar
// kernel's adds in the same ascending-k order (C round-trips through
// memory in the scalar kernel, which does not round), and the
// alpha*a==0 skip is applied per (row, kk) exactly as in scalar.

template <int kRows, bool kFma>
void NnMicro16(int64_t k0, int64_t k1, int64_t k, int64_t n, float alpha,
               const float* a, const float* b, float* c, int64_t j0) {
  __m256 acc[kRows][2];
  for (int r = 0; r < kRows; ++r) {
    acc[r][0] = _mm256_loadu_ps(c + r * n + j0);
    acc[r][1] = _mm256_loadu_ps(c + r * n + j0 + 8);
  }
  for (int64_t kk = k0; kk < k1; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(b + kk * n + j0);
    const __m256 b1 = _mm256_loadu_ps(b + kk * n + j0 + 8);
    for (int r = 0; r < kRows; ++r) {
      const float av = alpha * a[r * k + kk];
      if (av == 0.0f) continue;
      const __m256 avv = _mm256_set1_ps(av);
      acc[r][0] = MulAdd<kFma>(avv, b0, acc[r][0]);
      acc[r][1] = MulAdd<kFma>(avv, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < kRows; ++r) {
    _mm256_storeu_ps(c + r * n + j0, acc[r][0]);
    _mm256_storeu_ps(c + r * n + j0 + 8, acc[r][1]);
  }
}

template <int kRows, bool kFma>
void NnMicro8(int64_t k0, int64_t k1, int64_t k, int64_t n, float alpha,
              const float* a, const float* b, float* c, int64_t j0) {
  __m256 acc[kRows];
  for (int r = 0; r < kRows; ++r) acc[r] = _mm256_loadu_ps(c + r * n + j0);
  for (int64_t kk = k0; kk < k1; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(b + kk * n + j0);
    for (int r = 0; r < kRows; ++r) {
      const float av = alpha * a[r * k + kk];
      if (av == 0.0f) continue;
      acc[r] = MulAdd<kFma>(_mm256_set1_ps(av), b0, acc[r]);
    }
  }
  for (int r = 0; r < kRows; ++r) _mm256_storeu_ps(c + r * n + j0, acc[r]);
}

template <bool kFma>
void GemmNnAvx2(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
                const float* b, float* c) {
  for (int64_t k0 = 0; k0 < k; k0 += kGemmBlockK) {
    const int64_t k1 = std::min(k, k0 + kGemmBlockK);
    int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      int64_t i = 0;
      for (; i + 4 <= m; i += 4) {
        NnMicro16<4, kFma>(k0, k1, k, n, alpha, a + i * k, b, c + i * n, j0);
      }
      for (; i < m; ++i) {
        NnMicro16<1, kFma>(k0, k1, k, n, alpha, a + i * k, b, c + i * n, j0);
      }
    }
    if (j0 + 8 <= n) {
      int64_t i = 0;
      for (; i + 4 <= m; i += 4) {
        NnMicro8<4, kFma>(k0, k1, k, n, alpha, a + i * k, b, c + i * n, j0);
      }
      for (; i < m; ++i) {
        NnMicro8<1, kFma>(k0, k1, k, n, alpha, a + i * k, b, c + i * n, j0);
      }
      j0 += 8;
    }
    if (j0 < n) {
      // Scalar column tail: the reference loop verbatim over [j0, n).
      for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = alpha * arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b + kk * n;
          for (int64_t j = j0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// GEMM NT: C[m,n] (+)= A[m,k] * B[n,k]^T.
//
// A kNtBlockL x kNtBlockJ tile of B is transpose-packed (pure copy) so
// the j axis becomes contiguous; each lane then accumulates its own
// C element over the *same* [l0, l1) depth blocks as the scalar kernel
// (acc = 0, ascending l, then c += acc), making the kFma=false variant
// bitwise exact.

template <bool kFma>
void GemmNtAvx2(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c, bool accumulate) {
  if (!accumulate) {
    for (int64_t i = 0; i < m; ++i) std::fill(c + i * n, c + i * n + n, 0.0f);
  }
  alignas(32) static thread_local float bt[kNtBlockL * kNtBlockJ];
  for (int64_t l0 = 0; l0 < k; l0 += kNtBlockL) {
    const int64_t l1 = std::min(k, l0 + kNtBlockL);
    const int64_t lw = l1 - l0;
    for (int64_t j0 = 0; j0 < n; j0 += kNtBlockJ) {
      const int64_t j1 = std::min(n, j0 + kNtBlockJ);
      const int64_t jw = j1 - j0;
      const int64_t jv = jw - jw % 8;  // vectorized columns of this tile
      for (int64_t jj = 0; jj < jv; ++jj) {
        const float* brow = b + (j0 + jj) * k + l0;
        for (int64_t l = 0; l < lw; ++l) bt[l * jv + jj] = brow[l];
      }
      int64_t i = 0;
      for (; i + 4 <= m; i += 4) {
        for (int64_t jj = 0; jj + 8 <= jv; jj += 8) {
          __m256 acc0 = _mm256_setzero_ps();
          __m256 acc1 = _mm256_setzero_ps();
          __m256 acc2 = _mm256_setzero_ps();
          __m256 acc3 = _mm256_setzero_ps();
          const float* a0 = a + i * k + l0;
          const float* a1 = a0 + k;
          const float* a2 = a1 + k;
          const float* a3 = a2 + k;
          for (int64_t l = 0; l < lw; ++l) {
            const __m256 bv = _mm256_load_ps(bt + l * jv + jj);
            acc0 = MulAdd<kFma>(_mm256_set1_ps(a0[l]), bv, acc0);
            acc1 = MulAdd<kFma>(_mm256_set1_ps(a1[l]), bv, acc1);
            acc2 = MulAdd<kFma>(_mm256_set1_ps(a2[l]), bv, acc2);
            acc3 = MulAdd<kFma>(_mm256_set1_ps(a3[l]), bv, acc3);
          }
          float* crow = c + i * n + j0 + jj;
          _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc0));
          crow += n;
          _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc1));
          crow += n;
          _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc2));
          crow += n;
          _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc3));
        }
      }
      for (; i < m; ++i) {
        for (int64_t jj = 0; jj + 8 <= jv; jj += 8) {
          __m256 acc = _mm256_setzero_ps();
          const float* arow = a + i * k + l0;
          for (int64_t l = 0; l < lw; ++l) {
            acc = MulAdd<kFma>(_mm256_set1_ps(arow[l]),
                               _mm256_load_ps(bt + l * jv + jj), acc);
          }
          float* crow = c + i * n + j0 + jj;
          _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc));
        }
      }
      if (jv < jw) {
        // Scalar column tail straight off B (reference loop verbatim).
        for (int64_t ii = 0; ii < m; ++ii) {
          const float* arow = a + ii * k;
          float* crow = c + ii * n;
          for (int64_t j = j0 + jv; j < j1; ++j) {
            const float* brow = b + j * k;
            float acc = 0.0f;
            for (int64_t l = l0; l < l1; ++l) acc += arow[l] * brow[l];
            crow[j] += acc;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// GEMM TN: rows [r0, r1) of C[m,n] += A[k,m]^T * B[k,n].
//
// C columns are vectorized; each element accumulates ascending l in a
// register (the scalar kernel round-trips C through memory, which does
// not round), with the a==0 skip applied per (l, row) as in scalar.

template <int kRows, bool kFma>
void TnMicro16(int64_t i, int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, int64_t j0) {
  __m256 acc[kRows][2];
  for (int r = 0; r < kRows; ++r) {
    acc[r][0] = _mm256_loadu_ps(c + (i + r) * n + j0);
    acc[r][1] = _mm256_loadu_ps(c + (i + r) * n + j0 + 8);
  }
  for (int64_t l = 0; l < k; ++l) {
    const __m256 b0 = _mm256_loadu_ps(b + l * n + j0);
    const __m256 b1 = _mm256_loadu_ps(b + l * n + j0 + 8);
    const float* arow = a + l * m + i;
    for (int r = 0; r < kRows; ++r) {
      const float av = arow[r];
      if (av == 0.0f) continue;
      const __m256 avv = _mm256_set1_ps(av);
      acc[r][0] = MulAdd<kFma>(avv, b0, acc[r][0]);
      acc[r][1] = MulAdd<kFma>(avv, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < kRows; ++r) {
    _mm256_storeu_ps(c + (i + r) * n + j0, acc[r][0]);
    _mm256_storeu_ps(c + (i + r) * n + j0 + 8, acc[r][1]);
  }
}

template <bool kFma>
void GemmTnAvx2(int64_t r0, int64_t r1, int64_t m, int64_t n, int64_t k,
                const float* a, const float* b, float* c) {
  int64_t j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    int64_t i = r0;
    for (; i + 4 <= r1; i += 4) TnMicro16<4, kFma>(i, m, n, k, a, b, c, j0);
    for (; i < r1; ++i) TnMicro16<1, kFma>(i, m, n, k, a, b, c, j0);
  }
  if (j0 < n) {
    // Scalar column tail: reference loop order over [j0, n).
    for (int64_t l = 0; l < k; ++l) {
      const float* arow = a + l * m;
      const float* brow = b + l * n;
      for (int64_t i = r0; i < r1; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (int64_t j = j0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// ---------------------------------------------------------------------
// im2col / col2im: pure data movement (plus one add per target cell for
// col2im), so any implementation is bitwise exact. The hot stride-1 rows
// become memcpy / vector adds; other strides use strided scalar loops
// over the precomputed valid x range.

// Valid output-x range [x_lo, x_hi) for which ix = x*stride + off lies
// in [0, in_w).
inline void ValidXRange(int64_t off, int64_t stride, int64_t in_w, int64_t ow,
                        int64_t* x_lo, int64_t* x_hi) {
  *x_lo = off >= 0 ? 0 : std::min(ow, (-off + stride - 1) / stride);
  const int64_t t = in_w - 1 - off;
  *x_hi = t < 0 ? *x_lo : std::min(ow, t / stride + 1);
  if (*x_hi < *x_lo) *x_hi = *x_lo;
}

void Im2ColAvx2(const ops::Conv2dGeometry& g, const float* img, float* cols) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t out_spatial = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const float* channel = img + c * g.in_h * g.in_w;
    for (int64_t ky = 0; ky < g.kernel; ++ky) {
      for (int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out_row = cols + row * out_spatial;
        const int64_t off = kx - g.padding;
        int64_t x_lo, x_hi;
        ValidXRange(off, g.stride, g.in_w, ow, &x_lo, &x_hi);
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + ky - g.padding;
          float* dst = out_row + y * ow;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(dst, 0, static_cast<size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src = channel + iy * g.in_w + off;
          if (x_lo > 0) {
            std::memset(dst, 0, static_cast<size_t>(x_lo) * sizeof(float));
          }
          if (g.stride == 1) {
            std::memcpy(dst + x_lo, src + x_lo,
                        static_cast<size_t>(x_hi - x_lo) * sizeof(float));
          } else {
            for (int64_t x = x_lo; x < x_hi; ++x) dst[x] = src[x * g.stride];
          }
          if (x_hi < ow) {
            std::memset(dst + x_hi, 0,
                        static_cast<size_t>(ow - x_hi) * sizeof(float));
          }
        }
      }
    }
  }
}

void Col2ImAvx2(const ops::Conv2dGeometry& g, const float* cols, float* img) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t out_spatial = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    float* channel = img + c * g.in_h * g.in_w;
    for (int64_t ky = 0; ky < g.kernel; ++ky) {
      for (int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row = cols + row * out_spatial;
        const int64_t off = kx - g.padding;
        int64_t x_lo, x_hi;
        ValidXRange(off, g.stride, g.in_w, ow, &x_lo, &x_hi);
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + ky - g.padding;
          if (iy < 0 || iy >= g.in_h) continue;
          const float* src = in_row + y * ow;
          float* dst = channel + iy * g.in_w + off;
          if (g.stride == 1) {
            int64_t x = x_lo;
            for (; x + 8 <= x_hi; x += 8) {
              _mm256_storeu_ps(dst + x,
                               _mm256_add_ps(_mm256_loadu_ps(dst + x),
                                             _mm256_loadu_ps(src + x)));
            }
            for (; x < x_hi; ++x) dst[x] += src[x];
          } else {
            for (int64_t x = x_lo; x < x_hi; ++x) {
              dst[x * g.stride] += src[x];
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// BatchNorm. NF tensors (spatial == 1) vectorize across channels, which
// keeps every per-channel accumulation in scalar order (exact). NCHW
// reductions split the spatial axis over 8 lanes folded in lane order —
// deterministic per-ISA, ULP-level different from scalar.

template <bool kFma>
void BnMomentsAvx2(int64_t rows, int64_t channels, int64_t spatial,
                   const float* x, float* mean, float* var) {
  const float m = static_cast<float>(rows * spatial);
  std::fill(mean, mean + channels, 0.0f);
  std::fill(var, var + channels, 0.0f);
  if (spatial == 1) {
    for (int64_t r = 0; r < rows; ++r) {
      const float* px = x + r * channels;
      int64_t c = 0;
      for (; c + 8 <= channels; c += 8) {
        _mm256_storeu_ps(mean + c, _mm256_add_ps(_mm256_loadu_ps(mean + c),
                                                 _mm256_loadu_ps(px + c)));
      }
      for (; c < channels; ++c) mean[c] += px[c];
    }
    for (int64_t c = 0; c < channels; ++c) mean[c] /= m;
    for (int64_t r = 0; r < rows; ++r) {
      const float* px = x + r * channels;
      int64_t c = 0;
      for (; c + 8 <= channels; c += 8) {
        const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(px + c),
                                       _mm256_loadu_ps(mean + c));
        _mm256_storeu_ps(var + c,
                         MulAdd<kFma>(d, d, _mm256_loadu_ps(var + c)));
      }
      for (; c < channels; ++c) {
        const float d = px[c] - mean[c];
        var[c] += d * d;
      }
    }
    for (int64_t c = 0; c < channels; ++c) var[c] /= m;
    return;
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* px = x + (r * channels + c) * spatial;
      __m256 acc = _mm256_setzero_ps();
      int64_t s = 0;
      for (; s + 8 <= spatial; s += 8) {
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(px + s));
      }
      float partial = LaneSum(acc);
      for (; s < spatial; ++s) partial += px[s];
      mean[c] += partial;
    }
  }
  for (int64_t c = 0; c < channels; ++c) mean[c] /= m;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* px = x + (r * channels + c) * spatial;
      const __m256 mv = _mm256_set1_ps(mean[c]);
      __m256 acc = _mm256_setzero_ps();
      int64_t s = 0;
      for (; s + 8 <= spatial; s += 8) {
        const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(px + s), mv);
        acc = MulAdd<kFma>(d, d, acc);
      }
      float partial = LaneSum(acc);
      for (; s < spatial; ++s) {
        const float d = px[s] - mean[c];
        partial += d * d;
      }
      var[c] += partial;
    }
  }
  for (int64_t c = 0; c < channels; ++c) var[c] /= m;
}

template <bool kFma>
void BnNormalizeAvx2(int64_t rows, int64_t channels, int64_t spatial,
                     const float* x, const float* mean, const float* inv_std,
                     const float* gamma, const float* beta, float* xhat,
                     float* y) {
  if (spatial == 1) {
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t base = r * channels;
      int64_t c = 0;
      for (; c + 8 <= channels; c += 8) {
        const __m256 xh = _mm256_mul_ps(
            _mm256_sub_ps(_mm256_loadu_ps(x + base + c),
                          _mm256_loadu_ps(mean + c)),
            _mm256_loadu_ps(inv_std + c));
        if (xhat != nullptr) _mm256_storeu_ps(xhat + base + c, xh);
        _mm256_storeu_ps(y + base + c,
                         MulAdd<kFma>(_mm256_loadu_ps(gamma + c), xh,
                                      _mm256_loadu_ps(beta + c)));
      }
      for (; c < channels; ++c) {
        const float xh = (x[base + c] - mean[c]) * inv_std[c];
        if (xhat != nullptr) xhat[base + c] = xh;
        y[base + c] = gamma[c] * xh + beta[c];
      }
    }
    return;
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const int64_t base = (r * channels + c) * spatial;
      const __m256 mv = _mm256_set1_ps(mean[c]);
      const __m256 sv = _mm256_set1_ps(inv_std[c]);
      const __m256 gv = _mm256_set1_ps(gamma[c]);
      const __m256 bv = _mm256_set1_ps(beta[c]);
      int64_t s = 0;
      for (; s + 8 <= spatial; s += 8) {
        const __m256 xh = _mm256_mul_ps(
            _mm256_sub_ps(_mm256_loadu_ps(x + base + s), mv), sv);
        if (xhat != nullptr) _mm256_storeu_ps(xhat + base + s, xh);
        _mm256_storeu_ps(y + base + s, MulAdd<kFma>(gv, xh, bv));
      }
      for (; s < spatial; ++s) {
        const float xh = (x[base + s] - mean[c]) * inv_std[c];
        if (xhat != nullptr) xhat[base + s] = xh;
        y[base + s] = gamma[c] * xh + beta[c];
      }
    }
  }
}

template <bool kFma>
void BnBackwardReduceAvx2(int64_t rows, int64_t channels, int64_t spatial,
                          const float* dy, const float* xhat, float* sum_dy,
                          float* sum_dy_xhat) {
  if (spatial == 1) {
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t base = r * channels;
      int64_t c = 0;
      for (; c + 8 <= channels; c += 8) {
        const __m256 dyv = _mm256_loadu_ps(dy + base + c);
        _mm256_storeu_ps(sum_dy + c,
                         _mm256_add_ps(_mm256_loadu_ps(sum_dy + c), dyv));
        _mm256_storeu_ps(sum_dy_xhat + c,
                         MulAdd<kFma>(dyv, _mm256_loadu_ps(xhat + base + c),
                                      _mm256_loadu_ps(sum_dy_xhat + c)));
      }
      for (; c < channels; ++c) {
        sum_dy[c] += dy[base + c];
        sum_dy_xhat[c] += dy[base + c] * xhat[base + c];
      }
    }
    return;
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const int64_t base = (r * channels + c) * spatial;
      __m256 acc_dy = _mm256_setzero_ps();
      __m256 acc_dyx = _mm256_setzero_ps();
      int64_t s = 0;
      for (; s + 8 <= spatial; s += 8) {
        const __m256 dyv = _mm256_loadu_ps(dy + base + s);
        acc_dy = _mm256_add_ps(acc_dy, dyv);
        acc_dyx = MulAdd<kFma>(dyv, _mm256_loadu_ps(xhat + base + s),
                               acc_dyx);
      }
      float p_dy = LaneSum(acc_dy);
      float p_dyx = LaneSum(acc_dyx);
      for (; s < spatial; ++s) {
        p_dy += dy[base + s];
        p_dyx += dy[base + s] * xhat[base + s];
      }
      sum_dy[c] += p_dy;
      sum_dy_xhat[c] += p_dyx;
    }
  }
}

void BnBackwardInputAvx2(int64_t rows, int64_t channels, int64_t spatial,
                         const float* dy, const float* xhat,
                         const float* gamma, const float* inv_std,
                         const float* sum_dy, const float* sum_dy_xhat,
                         float inv_m, float* dx) {
  // Scalar association order: (gamma*inv_std) * ((dy - sum_dy*inv_m) -
  // (xhat*sum_dy_xhat)*inv_m); the per-channel products are hoisted
  // (same value every element), the xhat product is not.
  const __m256 invm = _mm256_set1_ps(inv_m);
  if (spatial == 1) {
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t base = r * channels;
      int64_t c = 0;
      for (; c + 8 <= channels; c += 8) {
        const __m256 gi = _mm256_mul_ps(_mm256_loadu_ps(gamma + c),
                                        _mm256_loadu_ps(inv_std + c));
        const __m256 t1 = _mm256_mul_ps(_mm256_loadu_ps(sum_dy + c), invm);
        const __m256 sdx = _mm256_loadu_ps(sum_dy_xhat + c);
        const __m256 v = _mm256_mul_ps(
            _mm256_mul_ps(_mm256_loadu_ps(xhat + base + c), sdx), invm);
        const __m256 w = _mm256_sub_ps(
            _mm256_sub_ps(_mm256_loadu_ps(dy + base + c), t1), v);
        _mm256_storeu_ps(dx + base + c, _mm256_mul_ps(gi, w));
      }
      for (; c < channels; ++c) {
        dx[base + c] = gamma[c] * inv_std[c] *
                       (dy[base + c] - sum_dy[c] * inv_m -
                        xhat[base + c] * sum_dy_xhat[c] * inv_m);
      }
    }
    return;
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const int64_t base = (r * channels + c) * spatial;
      const __m256 gi = _mm256_set1_ps(gamma[c] * inv_std[c]);
      const __m256 t1 = _mm256_set1_ps(sum_dy[c] * inv_m);
      const __m256 sdx = _mm256_set1_ps(sum_dy_xhat[c]);
      int64_t s = 0;
      for (; s + 8 <= spatial; s += 8) {
        const __m256 v = _mm256_mul_ps(
            _mm256_mul_ps(_mm256_loadu_ps(xhat + base + s), sdx), invm);
        const __m256 w = _mm256_sub_ps(
            _mm256_sub_ps(_mm256_loadu_ps(dy + base + s), t1), v);
        _mm256_storeu_ps(dx + base + s, _mm256_mul_ps(gi, w));
      }
      for (; s < spatial; ++s) {
        dx[base + s] = gamma[c] * inv_std[c] *
                       (dy[base + s] - sum_dy[c] * inv_m -
                        xhat[base + s] * sum_dy_xhat[c] * inv_m);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Elementwise activations. Comparisons use ordered-quiet predicates so
// NaN falls through to the identity branch exactly as `x < 0` does in
// scalar; -0.0f compares equal to 0.0f in both, so sign handling also
// matches.

void ReluAvx2(int64_t n, const float* x, float* y) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 neg = _mm256_cmp_ps(xv, zero, _CMP_LT_OQ);
    _mm256_storeu_ps(y + i, _mm256_andnot_ps(neg, xv));
  }
  for (; i < n; ++i) y[i] = x[i] < 0.0f ? 0.0f : x[i];
}

void ReluBwdAvx2(int64_t n, const float* x, const float* dy, float* dx) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 off = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero,
                                     _CMP_LE_OQ);
    _mm256_storeu_ps(dx + i, _mm256_andnot_ps(off, _mm256_loadu_ps(dy + i)));
  }
  for (; i < n; ++i) dx[i] = x[i] <= 0.0f ? 0.0f : dy[i];
}

void LeakyReluAvx2(int64_t n, float slope, const float* x, float* y) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 sv = _mm256_set1_ps(slope);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 neg = _mm256_cmp_ps(xv, zero, _CMP_LT_OQ);
    _mm256_storeu_ps(y + i,
                     _mm256_blendv_ps(xv, _mm256_mul_ps(xv, sv), neg));
  }
  for (; i < n; ++i) y[i] = x[i] < 0.0f ? x[i] * slope : x[i];
}

void LeakyReluBwdAvx2(int64_t n, float slope, const float* x, const float* dy,
                      float* dx) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 sv = _mm256_set1_ps(slope);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 off = _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero,
                                     _CMP_LE_OQ);
    const __m256 dyv = _mm256_loadu_ps(dy + i);
    _mm256_storeu_ps(dx + i,
                     _mm256_blendv_ps(dyv, _mm256_mul_ps(dyv, sv), off));
  }
  for (; i < n; ++i) dx[i] = x[i] <= 0.0f ? dy[i] * slope : dy[i];
}

template <bool kFma>
void TanhBwdAvx2(int64_t n, const float* y, const float* dy, float* dx) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 yv = _mm256_loadu_ps(y + i);
    __m256 t;
    if constexpr (kFma) {
      t = _mm256_fnmadd_ps(yv, yv, one);
    } else {
      t = _mm256_sub_ps(one, _mm256_mul_ps(yv, yv));
    }
    _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(dy + i), t));
  }
  for (; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void SigmoidBwdAvx2(int64_t n, const float* y, const float* dy, float* dx) {
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 yv = _mm256_loadu_ps(y + i);
    const __m256 t = _mm256_mul_ps(yv, _mm256_sub_ps(one, yv));
    _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(dy + i), t));
  }
  for (; i < n; ++i) dx[i] = dy[i] * (y[i] * (1.0f - y[i]));
}

template <bool kFma>
Backend MakeAvx2Backend(const char* name) {
  return Backend{
      name,
      kFma,
      GemmNnAvx2<kFma>,
      GemmNtAvx2<kFma>,
      GemmTnAvx2<kFma>,
      Im2ColAvx2,
      Col2ImAvx2,
      BnMomentsAvx2<kFma>,
      BnNormalizeAvx2<kFma>,
      BnBackwardReduceAvx2<kFma>,
      BnBackwardInputAvx2,
      ReluAvx2,
      ReluBwdAvx2,
      LeakyReluAvx2,
      LeakyReluBwdAvx2,
      TanhFwdLibm,
      TanhBwdAvx2<kFma>,
      SigmoidFwdLibm,
      SigmoidBwdAvx2,
  };
}

}  // namespace

const Backend* Avx2CompiledBackend(bool fma) {
  static const Backend no_fma = MakeAvx2Backend<false>("avx2");
  static const Backend with_fma = MakeAvx2Backend<true>("avx2fma");
  return fma ? &with_fma : &no_fma;
}

}  // namespace kernels
}  // namespace tablegan

#else  // !(__AVX2__ && __FMA__)

namespace tablegan {
namespace kernels {

const Backend* Avx2CompiledBackend(bool /*fma*/) { return nullptr; }

}  // namespace kernels
}  // namespace tablegan

#endif
