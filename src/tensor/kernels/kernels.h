#ifndef TABLEGAN_TENSOR_KERNELS_KERNELS_H_
#define TABLEGAN_TENSOR_KERNELS_KERNELS_H_

#include <cstdint>

#include "tensor/im2col.h"

namespace tablegan {
namespace kernels {

/// A backend is a table of the serial math kernels the NN stack spends
/// its FLOPs in. Threading stays *above* this layer (matmul.cc /
/// batch-parallel conv chunks call a backend kernel per row block), so a
/// backend only ever sees serial work and per-ISA bitwise determinism at
/// any thread count follows from the existing row-partition argument.
///
/// Determinism contract (DESIGN.md §12):
///  - "scalar" is the golden reference: the pre-dispatch kernel source,
///    compiled with the project's default flags. Those flags let the
///    compiler contract mul+add chains into FMAs, so its exact bits are
///    a property of (source, compiler, flags) — pinned end-to-end by the
///    KernelGoldenTest CRCs — not of portable float semantics.
///  - "avx2" (TABLEGAN_FMA unset) is written with explicit intrinsics
///    and compiled with -ffp-contract=off, vectorizing across
///    *independent outputs* (GEMM output columns, elementwise lanes) in
///    the scalar per-element accumulation order. Its contract is
///    portable strict IEEE semantics: bitwise identical to the
///    reference loops compiled without contraction (one rounding per
///    multiply and per add), which the parity suite checks against its
///    own -ffp-contract=off copy of the reference kernels. The one
///    reassociating exception is the NCHW BatchNorm reductions (moments
///    and backward sums), which use a fixed 8-lane split of the spatial
///    axis folded in lane order — deterministic per-ISA, but a
///    different rounding order.
///  - "scalar" vs "avx2" therefore differ only by FP contraction and
///    lane folds: each output is within a small accumulation-scaled
///    multiple of FLT_EPSILON of the exact (double) result in both.
///    Where no contraction is possible — data movement (im2col/col2im),
///    comparisons (relu/leaky_relu), libm forwards, sigmoid_bwd — they
///    are bitwise identical.
///  - "avx2fma" (TABLEGAN_FMA=1) additionally fuses multiply-adds via
///    explicit FMA intrinsics (one rounding instead of two); it holds
///    the same double-precision bound and is gated off by default.
///  - Every backend is individually deterministic: same input, same
///    backend, any thread count => bitwise identical results.
struct Backend {
  const char* name;  // "scalar", "avx2", "avx2fma"
  bool fma;

  /// C[m,n] += alpha * A[m,k] * B[k,n] (row-major, serial block kernel).
  /// Terms with alpha * a[i,kk] == 0 are skipped, exactly as the scalar
  /// reference does (the skip is observable with inf/NaN/-0 operands).
  void (*gemm_nn)(int64_t m, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c);
  /// C[m,n] (+)= A[m,k] * B[n,k]^T. Overwrites C unless `accumulate`.
  void (*gemm_nt)(int64_t m, int64_t n, int64_t k, const float* a,
                  const float* b, float* c, bool accumulate);
  /// Rows [r0, r1) of C[m,n] += A[k,m]^T * B[k,n].
  void (*gemm_tn)(int64_t r0, int64_t r1, int64_t m, int64_t n, int64_t k,
                  const float* a, const float* b, float* c);

  /// Patch unfold / fold-accumulate for one [C,H,W] image (pure data
  /// movement + one add per target cell; bitwise-exact in any backend).
  void (*im2col)(const ops::Conv2dGeometry& g, const float* img,
                 float* cols);
  void (*col2im)(const ops::Conv2dGeometry& g, const float* cols,
                 float* img);

  /// BatchNorm batch moments over a [rows, channels, spatial] view (an
  /// NF tensor is spatial == 1). Writes per-channel mean and biased
  /// variance, both already divided by rows * spatial.
  void (*bn_moments)(int64_t rows, int64_t channels, int64_t spatial,
                     const float* x, float* mean, float* var);
  /// xhat = (x - mean[c]) * inv_std[c]; y = gamma[c] * xhat + beta[c].
  /// `xhat` may be null (inference path does not cache it).
  void (*bn_normalize)(int64_t rows, int64_t channels, int64_t spatial,
                       const float* x, const float* mean,
                       const float* inv_std, const float* gamma,
                       const float* beta, float* xhat, float* y);
  /// sum_dy[c] += dy; sum_dy_xhat[c] += dy * xhat (caller zeroes sums).
  void (*bn_backward_reduce)(int64_t rows, int64_t channels, int64_t spatial,
                             const float* dy, const float* xhat,
                             float* sum_dy, float* sum_dy_xhat);
  /// dx = gamma[c]*inv_std[c] * (dy - sum_dy[c]*inv_m - xhat*sum_dy_xhat[c]
  /// *inv_m), with the scalar reference's association order.
  void (*bn_backward_input)(int64_t rows, int64_t channels, int64_t spatial,
                            const float* dy, const float* xhat,
                            const float* gamma, const float* inv_std,
                            const float* sum_dy, const float* sum_dy_xhat,
                            float inv_m, float* dx);

  /// Elementwise activations; `y`/`dx` may alias `x`/`dy`.
  void (*relu)(int64_t n, const float* x, float* y);
  void (*relu_bwd)(int64_t n, const float* x, const float* dy, float* dx);
  void (*leaky_relu)(int64_t n, float slope, const float* x, float* y);
  void (*leaky_relu_bwd)(int64_t n, float slope, const float* x,
                         const float* dy, float* dx);
  /// tanh/sigmoid forward call libm per element in every backend (there
  /// is no bit-identical vector libm), so they are exact by construction;
  /// their polynomial backwards are vectorized.
  void (*tanh_fwd)(int64_t n, const float* x, float* y);
  void (*tanh_bwd)(int64_t n, const float* y, const float* dy, float* dx);
  void (*sigmoid_fwd)(int64_t n, const float* x, float* y);
  void (*sigmoid_bwd)(int64_t n, const float* y, const float* dy, float* dx);
};

/// The backend every dispatching call site uses. Selected once, on first
/// use: TABLEGAN_ISA=scalar|avx2 overrides; unset/"auto" picks the best
/// ISA the CPU supports (CPUID) among those compiled in. TABLEGAN_FMA=1
/// additionally enables FMA contraction in the avx2 backend. A forced
/// TABLEGAN_ISA=avx2 on hardware without AVX2+FMA aborts with a clear
/// message rather than executing illegal instructions.
const Backend& Active();

/// The scalar reference backend (always available).
const Backend& Scalar();

/// The AVX2 backend (with or without FMA contraction), or nullptr when
/// it was not compiled in or the CPU lacks AVX2/FMA. Used by the parity
/// tests and benches to compare backends explicitly.
const Backend* Avx2(bool fma);

/// True when this process may execute the AVX2 backend.
bool Avx2Available();

/// Test/bench hook: force `backend` to be returned by Active() from now
/// on (pass nullptr to restore environment-based selection). Not for
/// production use — call only while no kernels are running.
void OverrideBackend(const Backend* backend);

}  // namespace kernels
}  // namespace tablegan

#endif  // TABLEGAN_TENSOR_KERNELS_KERNELS_H_
