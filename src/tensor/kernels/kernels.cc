// Backend selection: once per process, from TABLEGAN_ISA / TABLEGAN_FMA
// and CPUID. All call sites go through Active(), whose selected pointer
// is immutable after first use, so dispatch costs one atomic load.

#include "tensor/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"

namespace tablegan {
namespace kernels {

// Defined in kernels_avx2.cc; returns nullptr when the backend was not
// compiled in (compiler without AVX2/FMA support).
const Backend* Avx2CompiledBackend(bool fma);

namespace {

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

const Backend* SelectFromEnv() {
  const bool want_fma = EnvFlagSet("TABLEGAN_FMA");
  const char* isa = std::getenv("TABLEGAN_ISA");
  const std::string choice = isa == nullptr ? "auto" : isa;
  if (choice == "scalar") return &Scalar();
  if (choice == "avx2") {
    const Backend* b = Avx2(want_fma);
    TABLEGAN_CHECK(b != nullptr)
        << "TABLEGAN_ISA=avx2 requested but AVX2+FMA is "
        << (Avx2CompiledBackend(false) == nullptr ? "not compiled in"
                                                  : "not supported by this CPU");
    return b;
  }
  TABLEGAN_CHECK(choice == "auto" || choice.empty())
      << "unknown TABLEGAN_ISA value '" << choice
      << "' (expected scalar, avx2 or auto)";
  const Backend* b = Avx2(want_fma);
  return b != nullptr ? b : &Scalar();
}

std::atomic<const Backend*> g_override{nullptr};

}  // namespace

const Backend& Active() {
  const Backend* forced = g_override.load(std::memory_order_acquire);
  if (forced != nullptr) return *forced;
  static const Backend* selected = SelectFromEnv();
  return *selected;
}

const Backend* Avx2(bool fma) {
  return CpuSupportsAvx2Fma() ? Avx2CompiledBackend(fma) : nullptr;
}

bool Avx2Available() { return Avx2(false) != nullptr; }

void OverrideBackend(const Backend* backend) {
  g_override.store(backend, std::memory_order_release);
}

}  // namespace kernels
}  // namespace tablegan
