// The scalar reference backend. The GEMM and im2col/col2im bodies are
// the pre-dispatch kernels from tensor/matmul.cc and tensor/im2col.cc,
// and the BatchNorm/activation loops reproduce the per-element float
// expressions from nn/batch_norm.cc and nn/activations.cc — moved, not
// rewritten, so the scalar backend is bit-for-bit the code every golden
// checkpoint and determinism test was recorded against.

#include <algorithm>
#include <cmath>

#include "tensor/kernels/blocking.h"
#include "tensor/kernels/kernels.h"

namespace tablegan {
namespace kernels {
namespace {

// Inner kernel: row-major C[m,n] += alpha * A[m,k] * B[k,n], cache-
// blocked over k and n. The j-loop is a contiguous fused multiply-add
// that the compiler auto-vectorizes.
void GemmNn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            const float* b, float* c) {
  for (int64_t k0 = 0; k0 < k; k0 += kGemmBlockK) {
    const int64_t k1 = std::min(k, k0 + kGemmBlockK);
    for (int64_t n0 = 0; n0 < n; n0 += kGemmBlockN) {
      const int64_t n1 = std::min(n, n0 + kGemmBlockN);
      for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float av = alpha * arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b + kk * n;
          for (int64_t j = n0; j < n1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

// C[m,n] += A[m,k] * B[n,k]^T, cache-blocked over the B rows (j) and the
// shared depth (l) so a kNtBlockJ x kNtBlockL tile of B stays hot across
// all rows of A. Per element the l0 tiles accumulate in ascending order,
// which is independent of how the i range is partitioned across threads.
void GemmNt(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
            float* c, bool accumulate) {
  if (!accumulate) {
    for (int64_t i = 0; i < m; ++i) std::fill(c + i * n, c + i * n + n, 0.0f);
  }
  for (int64_t l0 = 0; l0 < k; l0 += kNtBlockL) {
    const int64_t l1 = std::min(k, l0 + kNtBlockL);
    for (int64_t j0 = 0; j0 < n; j0 += kNtBlockJ) {
      const int64_t j1 = std::min(n, j0 + kNtBlockJ);
      for (int64_t i = 0; i < m; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (int64_t j = j0; j < j1; ++j) {
          const float* brow = b + j * k;
          float acc = 0.0f;
          for (int64_t l = l0; l < l1; ++l) acc += arow[l] * brow[l];
          crow[j] += acc;
        }
      }
    }
  }
}

// C rows [r0, r1) of C[m,n] += A[k,m]^T * B[k,n]. The l loop stays
// outermost exactly as in the serial kernel, so each element accumulates
// its k terms in ascending order regardless of the row partition.
void GemmTn(int64_t r0, int64_t r1, int64_t m, int64_t n, int64_t k,
            const float* a, const float* b, float* c) {
  for (int64_t l = 0; l < k; ++l) {
    const float* arow = a + l * m;
    const float* brow = b + l * n;
    for (int64_t i = r0; i < r1; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void Im2ColScalar(const ops::Conv2dGeometry& g, const float* img,
                  float* cols) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t out_spatial = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const float* channel = img + c * g.in_h * g.in_w;
    for (int64_t ky = 0; ky < g.kernel; ++ky) {
      for (int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out_row = cols + row * out_spatial;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + ky - g.padding;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ix = x * g.stride + kx - g.padding;
            const bool inside =
                iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
            out_row[y * ow + x] = inside ? channel[iy * g.in_w + ix] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2ImScalar(const ops::Conv2dGeometry& g, const float* cols,
                  float* img) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t out_spatial = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    float* channel = img + c * g.in_h * g.in_w;
    for (int64_t ky = 0; ky < g.kernel; ++ky) {
      for (int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row = cols + row * out_spatial;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + ky - g.padding;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ix = x * g.stride + kx - g.padding;
            if (ix < 0 || ix >= g.in_w) continue;
            channel[iy * g.in_w + ix] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

// Per-channel accumulation in (row, channel, spatial) element order —
// the order nn::BatchNorm's ForEachByChannel visits elements in.
void BnMoments(int64_t rows, int64_t channels, int64_t spatial,
               const float* x, float* mean, float* var) {
  const float m = static_cast<float>(rows * spatial);
  std::fill(mean, mean + channels, 0.0f);
  std::fill(var, var + channels, 0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* px = x + (r * channels + c) * spatial;
      for (int64_t s = 0; s < spatial; ++s) mean[c] += px[s];
    }
  }
  for (int64_t c = 0; c < channels; ++c) mean[c] /= m;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* px = x + (r * channels + c) * spatial;
      for (int64_t s = 0; s < spatial; ++s) {
        const float d = px[s] - mean[c];
        var[c] += d * d;
      }
    }
  }
  for (int64_t c = 0; c < channels; ++c) var[c] /= m;
}

void BnNormalize(int64_t rows, int64_t channels, int64_t spatial,
                 const float* x, const float* mean, const float* inv_std,
                 const float* gamma, const float* beta, float* xhat,
                 float* y) {
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const int64_t base = (r * channels + c) * spatial;
      for (int64_t s = 0; s < spatial; ++s) {
        const float xh = (x[base + s] - mean[c]) * inv_std[c];
        if (xhat != nullptr) xhat[base + s] = xh;
        y[base + s] = gamma[c] * xh + beta[c];
      }
    }
  }
}

void BnBackwardReduce(int64_t rows, int64_t channels, int64_t spatial,
                      const float* dy, const float* xhat, float* sum_dy,
                      float* sum_dy_xhat) {
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const int64_t base = (r * channels + c) * spatial;
      for (int64_t s = 0; s < spatial; ++s) {
        sum_dy[c] += dy[base + s];
        sum_dy_xhat[c] += dy[base + s] * xhat[base + s];
      }
    }
  }
}

void BnBackwardInput(int64_t rows, int64_t channels, int64_t spatial,
                     const float* dy, const float* xhat, const float* gamma,
                     const float* inv_std, const float* sum_dy,
                     const float* sum_dy_xhat, float inv_m, float* dx) {
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < channels; ++c) {
      const int64_t base = (r * channels + c) * spatial;
      for (int64_t s = 0; s < spatial; ++s) {
        dx[base + s] = gamma[c] * inv_std[c] *
                       (dy[base + s] - sum_dy[c] * inv_m -
                        xhat[base + s] * sum_dy_xhat[c] * inv_m);
      }
    }
  }
}

void Relu(int64_t n, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] < 0.0f ? 0.0f : x[i];
}

void ReluBwd(int64_t n, const float* x, const float* dy, float* dx) {
  for (int64_t i = 0; i < n; ++i) dx[i] = x[i] <= 0.0f ? 0.0f : dy[i];
}

void LeakyRelu(int64_t n, float slope, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] < 0.0f ? x[i] * slope : x[i];
}

void LeakyReluBwd(int64_t n, float slope, const float* x, const float* dy,
                  float* dx) {
  for (int64_t i = 0; i < n; ++i) {
    dx[i] = x[i] <= 0.0f ? dy[i] * slope : dy[i];
  }
}

void TanhBwd(int64_t n, const float* y, const float* dy, float* dx) {
  for (int64_t i = 0; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void SigmoidBwd(int64_t n, const float* y, const float* dy, float* dx) {
  for (int64_t i = 0; i < n; ++i) dx[i] = dy[i] * (y[i] * (1.0f - y[i]));
}

}  // namespace

// libm forwards, shared with the avx2 backend (see kernels.h: there is
// no bit-identical vector tanh/exp, so every backend calls libm).
void TanhFwdLibm(int64_t n, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void SigmoidFwdLibm(int64_t n, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

const Backend& Scalar() {
  static const Backend backend = {
      "scalar",
      /*fma=*/false,
      GemmNn,
      GemmNt,
      GemmTn,
      Im2ColScalar,
      Col2ImScalar,
      BnMoments,
      BnNormalize,
      BnBackwardReduce,
      BnBackwardInput,
      Relu,
      ReluBwd,
      LeakyRelu,
      LeakyReluBwd,
      TanhFwdLibm,
      TanhBwd,
      SigmoidFwdLibm,
      SigmoidBwd,
  };
  return backend;
}

}  // namespace kernels
}  // namespace tablegan
