#ifndef TABLEGAN_TENSOR_WORKSPACE_H_
#define TABLEGAN_TENSOR_WORKSPACE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace tablegan {

/// Buffer pool behind the allocation-free steady-state training step
/// (DESIGN.md "Memory model"). Take() hands out a Tensor whose storage is
/// drawn from a free list keyed by element count; when that Tensor is
/// destroyed (or move-assigned over), its storage returns to the pool
/// automatically. After a warmup pass has populated the free lists, a
/// training step performs zero heap allocations for activations,
/// gradients and scratch.
///
/// Contract:
///  - Take() returns UNINITIALIZED storage (possibly stale data from a
///    previous user). Callers must either fully overwrite every element
///    or use TakeZeroed() when the consumer accumulates into the buffer
///    (e.g. Col2Im targets).
///  - Single-threaded: Take/recycle must happen on one thread at a time.
///    Parallel kernels may *fill* a taken buffer from many threads, but
///    the pool itself is only touched between kernels.
///  - The Workspace must outlive every Tensor it issued (tensors hold a
///    raw back-pointer for the recycle hook).
class Workspace {
 public:
  Workspace() = default;
  ~Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// A tensor of `shape` with uninitialized (possibly stale) contents.
  Tensor Take(const std::vector<int64_t>& shape);

  /// A tensor of `shape` with every element zeroed — for buffers the
  /// consumer accumulates into instead of overwriting.
  Tensor TakeZeroed(const std::vector<int64_t>& shape);

  /// Drops every pooled buffer (checked-out tensors are unaffected; they
  /// will repopulate the pool as they die).
  void Clear();

  /// --- Telemetry ----------------------------------------------------
  /// Total Take()/TakeZeroed() calls served.
  uint64_t takes() const { return takes_; }
  /// Takes that had to allocate fresh storage (free list empty). In the
  /// steady state this stops growing — asserted by tests and surfaced as
  /// TrainingMetrics.workspace_allocs.
  uint64_t misses() const { return misses_; }
  /// Bytes of float storage ever allocated through this pool (resident
  /// footprint: recycled storage is kept, never freed until Clear()).
  uint64_t allocated_bytes() const { return allocated_bytes_; }

 private:
  friend class Tensor;

  /// Recycle hook called by ~Tensor / Tensor move-assignment.
  void Recycle(std::vector<int64_t>&& shape, Tensor::Storage&& storage);

  struct Entry {
    std::vector<int64_t> shape;  // pooled to also reuse the shape vector
    Tensor::Storage storage;
  };
  std::unordered_map<int64_t, std::vector<Entry>> free_;
  uint64_t takes_ = 0;
  uint64_t misses_ = 0;
  uint64_t allocated_bytes_ = 0;
};

}  // namespace tablegan

#endif  // TABLEGAN_TENSOR_WORKSPACE_H_
