#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "tensor/workspace.h"

namespace tablegan {

int64_t ShapeSize(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TABLEGAN_CHECK(d >= 0) << "negative dimension in " << ShapeToString(shape);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(ShapeSize(shape_)), 0.0f) {}

void Tensor::MaybeRecycle() {
  if (pool_ != nullptr) {
    Workspace* pool = pool_;
    pool_ = nullptr;
    pool->Recycle(std::move(shape_), std::move(data_));
    shape_.clear();
    data_.clear();
  }
}

Tensor Tensor::Uninitialized(std::vector<int64_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_.resize(static_cast<size_t>(ShapeSize(t.shape_)));
  return t;
}

void Tensor::ResizeUninitialized(const std::vector<int64_t>& shape) {
  shape_ = shape;  // copy-assign reuses the shape vector's capacity
  data_.resize(static_cast<size_t>(ShapeSize(shape_)));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values) {
  TABLEGAN_CHECK(ShapeSize(shape) == static_cast<int64_t>(values.size()))
      << "shape " << ShapeToString(shape) << " does not match "
      << values.size() << " values";
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_.assign(values.begin(), values.end());
  return t;
}

Tensor Tensor::Uniform(std::vector<int64_t> shape, float lo, float hi,
                       Rng* rng) {
  Tensor t(std::move(shape));
  t.FillUniform(lo, hi, rng);
  return t;
}

Tensor Tensor::Normal(std::vector<int64_t> shape, float mean, float stddev,
                      Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  TABLEGAN_CHECK(ShapeSize(new_shape) == size())
      << "cannot reshape " << ShapeToString(shape_) << " to "
      << ShapeToString(new_shape);
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::FillUniform(float lo, float hi, Rng* rng) {
  for (int64_t i = 0; i < size(); ++i) {
    data_[static_cast<size_t>(i)] =
        static_cast<float>(rng->Uniform(lo, hi));
  }
}

std::string Tensor::DebugString() const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  int64_t n = std::min<int64_t>(size(), 8);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (size() > n) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace tablegan
