#include "tensor/workspace.h"

#include <utility>

namespace tablegan {

Tensor Workspace::Take(const std::vector<int64_t>& shape) {
  ++takes_;
  const int64_t count = ShapeSize(shape);
  auto it = free_.find(count);
  if (it != free_.end() && !it->second.empty()) {
    Entry entry = std::move(it->second.back());
    it->second.pop_back();
    entry.shape = shape;  // reuses the pooled shape vector's capacity
    return Tensor(std::move(entry.shape), std::move(entry.storage), this);
  }
  ++misses_;
  allocated_bytes_ += static_cast<uint64_t>(count) * sizeof(float);
  Tensor::Storage storage;
  storage.resize(static_cast<size_t>(count));  // default-init: no zero fill
  return Tensor(shape, std::move(storage), this);
}

Tensor Workspace::TakeZeroed(const std::vector<int64_t>& shape) {
  Tensor t = Take(shape);
  t.SetZero();
  return t;
}

void Workspace::Clear() { free_.clear(); }

void Workspace::Recycle(std::vector<int64_t>&& shape,
                        Tensor::Storage&& storage) {
  const int64_t count = static_cast<int64_t>(storage.size());
  free_[count].push_back(Entry{std::move(shape), std::move(storage)});
}

}  // namespace tablegan
