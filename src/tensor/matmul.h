#ifndef TABLEGAN_TENSOR_MATMUL_H_
#define TABLEGAN_TENSOR_MATMUL_H_

#include "tensor/tensor.h"

namespace tablegan {

class Workspace;

namespace ops {

/// C = alpha * op(A) * op(B) + beta * C for row-major rank-2 tensors,
/// where op(.) optionally transposes. This is the single GEMM the whole
/// NN stack funnels through (dense layers and im2col convolutions), so
/// it is cache-blocked and written to auto-vectorize.
///
/// Shapes: op(A) is [m, k], op(B) is [k, n], C is [m, n]. C must be
/// pre-sized; with beta == 0 its prior contents are ignored.
///
/// A transposed operand is materialized contiguously before the kernel
/// runs; passing a Workspace draws that scratch from the pool instead of
/// allocating (results are identical either way).
void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c, Workspace* ws = nullptr);

/// Convenience: returns A * B (no transposes, alpha=1, beta=0).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Raw pointer GEMM kernels over packed row-major buffers, used by the
/// convolution layers to multiply directly into tensor slices without
/// intermediate copies. All accumulate into C when `accumulate` is true,
/// otherwise overwrite.
///
/// NN: C[m,n] (+)= A[m,k] * B[k,n]
/// NT: C[m,n] (+)= A[m,k] * B[n,k]^T
/// TN: C[m,n] (+)= A[k,m]^T * B[k,n]
void RawGemmNN(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate);
void RawGemmNT(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate);
void RawGemmTN(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c, bool accumulate);

}  // namespace ops
}  // namespace tablegan

#endif  // TABLEGAN_TENSOR_MATMUL_H_
