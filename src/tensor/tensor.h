#ifndef TABLEGAN_TENSOR_TENSOR_H_
#define TABLEGAN_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace tablegan {

/// Dense float32 N-dimensional array with row-major contiguous storage
/// and value semantics (copy = deep copy).
///
/// This is the numeric substrate the neural-network framework is built
/// on; it intentionally supports only what the library needs: shape
/// manipulation, fills, random init, and raw data access. Heavier
/// numeric kernels live in tensor_ops.h / matmul.h / im2col.h.
class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-filled tensor of the given shape. All dims must be >= 0.
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  /// Factory helpers -------------------------------------------------
  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);
  /// I.i.d. U[lo, hi).
  static Tensor Uniform(std::vector<int64_t> shape, float lo, float hi,
                        Rng* rng);
  /// I.i.d. N(mean, stddev^2).
  static Tensor Normal(std::vector<int64_t> shape, float mean, float stddev,
                       Rng* rng);

  /// Shape ------------------------------------------------------------
  const std::vector<int64_t>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const { return shape_[static_cast<size_t>(i)]; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Returns a tensor with the same data and a new shape of equal size.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  /// Element access ----------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// 2-D indexed access (rank must be 2).
  float& at2(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at2(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  /// 4-D indexed access (rank must be 4, NCHW).
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w) {
    return data_[static_cast<size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return data_[static_cast<size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Mutators ----------------------------------------------------------
  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  /// True iff shapes are identical (not broadcast-compatible).
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Debug string like "Tensor[2, 3] {...}" (first few elements).
  std::string DebugString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by `shape`; checks non-negative dims.
int64_t ShapeSize(const std::vector<int64_t>& shape);

/// "[d0, d1, ...]"
std::string ShapeToString(const std::vector<int64_t>& shape);

}  // namespace tablegan

#endif  // TABLEGAN_TENSOR_TENSOR_H_
