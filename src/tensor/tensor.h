#ifndef TABLEGAN_TENSOR_TENSOR_H_
#define TABLEGAN_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace tablegan {

class Workspace;

/// Allocator identical to std::allocator<T> except that value-less
/// construct() default-initializes, so vector::resize leaves new floats
/// uninitialized instead of zero-filling. This is the uninitialized-alloc
/// path for buffers that are fully overwritten before being read.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };
  using std::allocator<T>::allocator;

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      ::new (static_cast<void*>(p)) U;
    } else {
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
  }
};

/// Dense float32 N-dimensional array with row-major contiguous storage
/// and value semantics (copy = deep copy).
///
/// This is the numeric substrate the neural-network framework is built
/// on; it intentionally supports only what the library needs: shape
/// manipulation, fills, random init, and raw data access. Heavier
/// numeric kernels live in tensor_ops.h / matmul.h / im2col.h.
///
/// A Tensor may be bound to a Workspace buffer pool (see workspace.h):
/// pool-issued tensors return their storage to the pool on destruction
/// and on move-assignment-over, which is what makes the steady-state
/// training step allocation-free. Copies of a pooled tensor are plain
/// (unpooled) tensors; copy-assignment *into* any tensor keeps the
/// destination's binding and reuses its capacity.
class Tensor {
 public:
  /// Backing storage. The default-init allocator makes resize() skip
  /// zero-filling; Tensor's public constructors still zero-fill to keep
  /// the historical "tensors start at zero" semantics — only
  /// Uninitialized()/ResizeUninitialized()/Workspace::Take skip it.
  using Storage = std::vector<float, DefaultInitAllocator<float>>;

  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-filled tensor of the given shape. All dims must be >= 0.
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  Tensor(const Tensor& other)
      : shape_(other.shape_), data_(other.data_), pool_(nullptr) {}
  Tensor& operator=(const Tensor& other) {
    // Keeps this tensor's pool binding; vector assignment reuses the
    // existing capacity, so steady-state copies do not allocate.
    if (this != &other) {
      shape_ = other.shape_;
      data_ = other.data_;
    }
    return *this;
  }
  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)),
        data_(std::move(other.data_)),
        pool_(other.pool_) {
    other.shape_.clear();
    other.data_.clear();
    other.pool_ = nullptr;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      MaybeRecycle();
      shape_ = std::move(other.shape_);
      data_ = std::move(other.data_);
      pool_ = other.pool_;
      other.shape_.clear();
      other.data_.clear();
      other.pool_ = nullptr;
    }
    return *this;
  }
  ~Tensor() { MaybeRecycle(); }

  /// Factory helpers -------------------------------------------------
  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }
  /// Uninitialized contents — for buffers that are fully overwritten.
  static Tensor Uninitialized(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);
  /// I.i.d. U[lo, hi).
  static Tensor Uniform(std::vector<int64_t> shape, float lo, float hi,
                        Rng* rng);
  /// I.i.d. N(mean, stddev^2).
  static Tensor Normal(std::vector<int64_t> shape, float mean, float stddev,
                       Rng* rng);

  /// Shape ------------------------------------------------------------
  const std::vector<int64_t>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const { return shape_[static_cast<size_t>(i)]; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Returns a tensor with the same data and a new shape of equal size.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  /// Reshapes in place to `shape`, leaving any *new* elements
  /// uninitialized (existing elements up to min(old, new) size are
  /// preserved by vector::resize, but callers must not rely on that —
  /// treat the whole tensor as scratch to overwrite). Reuses the current
  /// capacity, so repeated calls with steady shapes never allocate.
  void ResizeUninitialized(const std::vector<int64_t>& shape);

  /// Element access ----------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// 2-D indexed access (rank must be 2).
  float& at2(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at2(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  /// 4-D indexed access (rank must be 4, NCHW).
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w) {
    return data_[static_cast<size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    return data_[static_cast<size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Mutators ----------------------------------------------------------
  void Fill(float value);
  void SetZero() { Fill(0.0f); }
  /// In-place i.i.d. U[lo, hi) fill — same draw sequence as Uniform().
  void FillUniform(float lo, float hi, Rng* rng);

  /// True iff shapes are identical (not broadcast-compatible).
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Debug string like "Tensor[2, 3] {...}" (first few elements).
  std::string DebugString() const;

 private:
  friend class Workspace;

  /// Pool-issued tensor (Workspace::Take).
  Tensor(std::vector<int64_t> shape, Storage storage, Workspace* pool)
      : shape_(std::move(shape)), data_(std::move(storage)), pool_(pool) {}

  void MaybeRecycle();

  std::vector<int64_t> shape_;
  Storage data_;
  /// Non-owning back-pointer of a pool-issued tensor; the pool must
  /// outlive the tensor. Null for ordinary tensors.
  Workspace* pool_ = nullptr;
};

/// Number of elements implied by `shape`; checks non-negative dims.
int64_t ShapeSize(const std::vector<int64_t>& shape);

/// "[d0, d1, ...]"
std::string ShapeToString(const std::vector<int64_t>& shape);

}  // namespace tablegan

#endif  // TABLEGAN_TENSOR_TENSOR_H_
