#include "tensor/im2col.h"

namespace tablegan {
namespace ops {

void Im2Col(const Conv2dGeometry& g, const float* img, float* cols) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t out_spatial = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const float* channel = img + c * g.in_h * g.in_w;
    for (int64_t ky = 0; ky < g.kernel; ++ky) {
      for (int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out_row = cols + row * out_spatial;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + ky - g.padding;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ix = x * g.stride + kx - g.padding;
            const bool inside =
                iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
            out_row[y * ow + x] = inside ? channel[iy * g.in_w + ix] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const Conv2dGeometry& g, const float* cols, float* img) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t out_spatial = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    float* channel = img + c * g.in_h * g.in_w;
    for (int64_t ky = 0; ky < g.kernel; ++ky) {
      for (int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row = cols + row * out_spatial;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + ky - g.padding;
          if (iy < 0 || iy >= g.in_h) continue;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ix = x * g.stride + kx - g.padding;
            if (ix < 0 || ix >= g.in_w) continue;
            channel[iy * g.in_w + ix] += in_row[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace ops
}  // namespace tablegan
