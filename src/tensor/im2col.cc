#include "tensor/im2col.h"

#include "tensor/kernels/kernels.h"

namespace tablegan {
namespace ops {

// Both transforms are pure data movement (plus one add per target cell
// for Col2Im), so every backend is bitwise exact; the SIMD backends turn
// the hot stride-1 rows into memcpy / vector adds. See
// tensor/kernels/kernels_scalar.cc for the reference loops.

void Im2Col(const Conv2dGeometry& g, const float* img, float* cols) {
  kernels::Active().im2col(g, img, cols);
}

void Col2Im(const Conv2dGeometry& g, const float* cols, float* img) {
  kernels::Active().col2im(g, cols, img);
}

}  // namespace ops
}  // namespace tablegan
