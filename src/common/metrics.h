#ifndef TABLEGAN_COMMON_METRICS_H_
#define TABLEGAN_COMMON_METRICS_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tablegan {

/// One machine-readable record per training epoch: the loss terms of
/// Algorithm 2 (the trajectories behind the paper's Fig. 4-6 runs),
/// per-phase wall time, and throughput. Loss fields mirror
/// core::EpochStats; timing fields come from Stopwatch around the three
/// optimizer phases of the training loop.
struct TrainingMetrics {
  int64_t epoch = 0;         // 1-based index of the completed epoch
  int64_t total_epochs = 0;  // configured target
  double d_loss = 0.0;       // discriminator BCE (real + fake halves)
  double g_loss = 0.0;       // generator adversarial loss
  double info_loss = 0.0;    // hinge information loss (Eq. 4)
  double class_loss = 0.0;   // classifier discrepancy (Eq. 5)
  double l_mean = 0.0;       // relative first-order statistics gap
  double l_sd = 0.0;         // relative second-order statistics gap
  double d_seconds = 0.0;    // wall time in discriminator updates
  double c_seconds = 0.0;    // wall time in classifier updates
  double g_seconds = 0.0;    // wall time in generator updates
  double epoch_seconds = 0.0;
  int64_t examples = 0;      // training examples consumed this epoch
  double examples_per_sec = 0.0;
  // Workspace accounting for the epoch (zeros when buffer reuse is off).
  // After the first (warmup) epoch the steady-state contract is
  // workspace_allocs == 0: every training-step buffer is served from the
  // pool.
  int64_t workspace_allocs = 0;   // pool misses (fresh backing arrays)
  int64_t workspace_reuses = 0;   // pool hits (recycled backing arrays)
  int64_t workspace_bytes = 0;    // cumulative bytes owned by the pool
  // Divergence-guardrail observability (DESIGN.md §15): the loss-EWMA
  // the guard tracks, and a human-readable anomaly description when
  // this epoch tripped it (empty = healthy). Non-finite losses are
  // serialized as JSON null, so `anomaly` is also what tells a
  // downstream parser *why* a null appeared.
  double loss_ewma = 0.0;
  std::string anomaly;
};

/// A discrete training event (as opposed to the per-epoch metrics
/// stream): currently `diverged`, emitted when the guardrail fires.
struct TrainingEvent {
  std::string event;            // e.g. "diverged"
  int64_t epoch = 0;            // epoch the event fired on (1-based)
  std::string detail;           // anomaly description
  std::string checkpoint_path;  // last-good auto-checkpoint, if written
};

/// Pluggable per-epoch telemetry consumer. The training loop calls
/// Record once per completed epoch; a non-OK return aborts training with
/// that status (telemetry the caller asked for must not be lost
/// silently — mid-run state is recoverable via checkpoints).
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual Status Record(const TrainingMetrics& metrics) = 0;
  /// Discrete events (guardrail triggers). Default: ignored, so existing
  /// sinks keep compiling; JsonlMetricsSink writes an event record.
  virtual Status RecordEvent(const TrainingEvent& event) {
    (void)event;
    return Status::OK();
  }
};

/// Streams each record as one JSON object per line (JSONL), flushed per
/// record so a killed run keeps every completed epoch on disk. The
/// schema is documented in DESIGN.md §9.
class JsonlMetricsSink : public MetricsSink {
 public:
  /// Opens `path` for writing; `append` keeps existing records (used
  /// when resuming a checkpointed run).
  JsonlMetricsSink(const std::string& path, bool append = false);

  /// Non-OK if the file could not be opened.
  const Status& status() const { return status_; }

  Status Record(const TrainingMetrics& metrics) override;
  Status RecordEvent(const TrainingEvent& event) override;

 private:
  std::string path_;
  std::ofstream out_;
  Status status_;
};

/// Per-epoch loss watchdog behind the training-stability guardrail
/// (DESIGN.md §15). Observe() folds the epoch's loss terms into an EWMA
/// of their total magnitude and reports an anomaly when
///  - any observed loss is non-finite (always armed), or
///  - the EWMA exceeds `runaway_factor` times the baseline established
///    over the first `warmup_epochs` healthy epochs.
///
/// The guard only *reads* losses — arming it never changes the training
/// arithmetic. State is tiny (two doubles + two counters) and is
/// serialized in checkpoint format v5 so a resumed run replays the same
/// guard decisions.
class DivergenceGuard {
 public:
  DivergenceGuard(double ewma_weight, double runaway_factor,
                  int warmup_epochs);

  /// Folds one epoch's named loss values into the EWMA. Returns an
  /// empty string when healthy, else a description of the anomaly
  /// ("non-finite d_loss", "runaway loss EWMA ..."). A non-finite or
  /// runaway epoch does NOT update the EWMA (the poisoned value would
  /// stick in the statistics).
  std::string Observe(
      const std::vector<std::pair<const char*, double>>& losses);

  double ewma() const { return ewma_; }
  double baseline() const { return baseline_; }

  /// --- Checkpoint state (v5 training section) -----------------------
  int64_t observed_epochs() const { return observed_; }
  void Restore(double ewma, double baseline, int64_t observed) {
    ewma_ = ewma;
    baseline_ = baseline;
    observed_ = observed;
  }

 private:
  double w_, factor_;
  int warmup_;
  double ewma_ = 0.0;
  double baseline_ = 0.0;
  int64_t observed_ = 0;  // healthy epochs folded into the EWMA
};

}  // namespace tablegan

#endif  // TABLEGAN_COMMON_METRICS_H_
