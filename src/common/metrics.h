#ifndef TABLEGAN_COMMON_METRICS_H_
#define TABLEGAN_COMMON_METRICS_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "common/status.h"

namespace tablegan {

/// One machine-readable record per training epoch: the loss terms of
/// Algorithm 2 (the trajectories behind the paper's Fig. 4-6 runs),
/// per-phase wall time, and throughput. Loss fields mirror
/// core::EpochStats; timing fields come from Stopwatch around the three
/// optimizer phases of the training loop.
struct TrainingMetrics {
  int64_t epoch = 0;         // 1-based index of the completed epoch
  int64_t total_epochs = 0;  // configured target
  double d_loss = 0.0;       // discriminator BCE (real + fake halves)
  double g_loss = 0.0;       // generator adversarial loss
  double info_loss = 0.0;    // hinge information loss (Eq. 4)
  double class_loss = 0.0;   // classifier discrepancy (Eq. 5)
  double l_mean = 0.0;       // relative first-order statistics gap
  double l_sd = 0.0;         // relative second-order statistics gap
  double d_seconds = 0.0;    // wall time in discriminator updates
  double c_seconds = 0.0;    // wall time in classifier updates
  double g_seconds = 0.0;    // wall time in generator updates
  double epoch_seconds = 0.0;
  int64_t examples = 0;      // training examples consumed this epoch
  double examples_per_sec = 0.0;
  // Workspace accounting for the epoch (zeros when buffer reuse is off).
  // After the first (warmup) epoch the steady-state contract is
  // workspace_allocs == 0: every training-step buffer is served from the
  // pool.
  int64_t workspace_allocs = 0;   // pool misses (fresh backing arrays)
  int64_t workspace_reuses = 0;   // pool hits (recycled backing arrays)
  int64_t workspace_bytes = 0;    // cumulative bytes owned by the pool
};

/// Pluggable per-epoch telemetry consumer. The training loop calls
/// Record once per completed epoch; a non-OK return aborts training with
/// that status (telemetry the caller asked for must not be lost
/// silently — mid-run state is recoverable via checkpoints).
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual Status Record(const TrainingMetrics& metrics) = 0;
};

/// Streams each record as one JSON object per line (JSONL), flushed per
/// record so a killed run keeps every completed epoch on disk. The
/// schema is documented in DESIGN.md §9.
class JsonlMetricsSink : public MetricsSink {
 public:
  /// Opens `path` for writing; `append` keeps existing records (used
  /// when resuming a checkpointed run).
  JsonlMetricsSink(const std::string& path, bool append = false);

  /// Non-OK if the file could not be opened.
  const Status& status() const { return status_; }

  Status Record(const TrainingMetrics& metrics) override;

 private:
  std::string path_;
  std::ofstream out_;
  Status status_;
};

}  // namespace tablegan

#endif  // TABLEGAN_COMMON_METRICS_H_
