#include "common/io_retry.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace tablegan {
namespace io {

Result<size_t> ReadFull(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    if (TABLEGAN_FAILPOINT("io.read_eintr")) {
      errno = EINTR;
      continue;  // the retry the helper exists to provide
    }
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read failed: ") +
                             std::strerror(errno));
    }
    if (r == 0) break;  // EOF
    got += static_cast<size_t>(r);
  }
  return got;
}

Status WriteFull(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t put = 0;
  while (put < n) {
    if (TABLEGAN_FAILPOINT("io.write_eintr")) {
      errno = EINTR;
      continue;
    }
    const ssize_t w = ::write(fd, p + put, n - put);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    put += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::string out;
  struct stat st;
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }
  char buf[1 << 16];
  for (;;) {
    Result<size_t> got = ReadFull(fd, buf, sizeof(buf));
    if (!got.ok()) {
      ::close(fd);
      return Status::IOError(got.status().message() + ": " + path);
    }
    out.append(buf, *got);
    if (*got < sizeof(buf)) break;  // EOF
  }
  ::close(fd);
  return out;
}

}  // namespace io
}  // namespace tablegan
