#include "common/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.h"

namespace tablegan {
namespace failpoint {
namespace {

enum class Mode {
  kDisabled,  // counters only (site was evaluated or explicitly disarmed)
  kAlways,
  kOnce,
  kAfter,
  kEvery,
  kProb,
};

struct Site {
  Mode mode = Mode::kDisabled;
  int64_t n = 0;           // parameter of after(n) / every(n)
  double p = 0.0;          // parameter of prob(p)
  uint64_t prob_state = 0; // private splitmix64 stream for prob
  int64_t evaluations = 0;
  int64_t triggers = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t HashName(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (unsigned char ch : s) h = (h ^ ch) * 0x100000001B3ULL;
  return h;
}

// Parses "name" or "name(arg[,arg2])" trigger text into `*site`.
Status ParseTrigger(const std::string& site_name, const std::string& trigger,
                    Site* site) {
  const auto bad = [&]() {
    return Status::InvalidArgument("failpoint " + site_name +
                                   ": malformed trigger '" + trigger +
                                   "' (expected always, once, after(n), "
                                   "every(n) or prob(p[,seed]))");
  };
  if (trigger == "always") {
    site->mode = Mode::kAlways;
    return Status::OK();
  }
  if (trigger == "once") {
    site->mode = Mode::kOnce;
    return Status::OK();
  }
  const size_t open = trigger.find('(');
  if (open == std::string::npos || trigger.back() != ')') return bad();
  const std::string name = trigger.substr(0, open);
  const std::string args =
      trigger.substr(open + 1, trigger.size() - open - 2);
  try {
    if (name == "after" || name == "every") {
      size_t used = 0;
      const long long n = std::stoll(args, &used);
      if (used != args.size() || n < 1) return bad();
      site->mode = name == "after" ? Mode::kAfter : Mode::kEvery;
      site->n = n;
      return Status::OK();
    }
    if (name == "prob") {
      const size_t comma = args.find(',');
      size_t used = 0;
      const std::string p_text = args.substr(0, comma);
      const double p = std::stod(p_text, &used);
      if (used != p_text.size() || p < 0.0 || p > 1.0) return bad();
      uint64_t seed = HashName(site_name);
      if (comma != std::string::npos) {
        const std::string s_text = args.substr(comma + 1);
        const unsigned long long s = std::stoull(s_text, &used);
        if (used != s_text.size()) return bad();
        seed = s;
      }
      site->mode = Mode::kProb;
      site->p = p;
      site->prob_state = seed;
      return Status::OK();
    }
  } catch (...) {
    return bad();
  }
  return bad();
}

// One-time parse of the TABLEGAN_FAILPOINTS environment variable, so
// env-configured sites fire without any programmatic setup.
const bool g_env_configured = [] {
  const char* spec = std::getenv("TABLEGAN_FAILPOINTS");
  if (spec != nullptr && *spec != '\0') {
    Status st = ConfigureFromSpec(spec);
    if (!st.ok()) {
      TABLEGAN_LOG(Error) << "TABLEGAN_FAILPOINTS: " << st.ToString();
    }
  }
  return true;
}();

}  // namespace

namespace internal {

std::atomic<int> g_enabled_count{0};

bool ShouldFailSlow(const char* site_name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  Site& site = r.sites[site_name];
  ++site.evaluations;
  bool fire = false;
  switch (site.mode) {
    case Mode::kDisabled:
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kOnce:
      fire = site.evaluations == 1;
      break;
    case Mode::kAfter:
      fire = site.evaluations > site.n;
      break;
    case Mode::kEvery:
      fire = site.evaluations % site.n == 0;
      break;
    case Mode::kProb: {
      const uint64_t draw = SplitMix64(&site.prob_state);
      // 53-bit mantissa draw in [0, 1), the usual uniform construction.
      const double u =
          static_cast<double>(draw >> 11) * 0x1.0p-53;
      fire = u < site.p;
      break;
    }
  }
  if (fire) ++site.triggers;
  return fire;
}

}  // namespace internal

Status Enable(const std::string& site_name, const std::string& trigger) {
  Site parsed;
  TABLEGAN_RETURN_NOT_OK(ParseTrigger(site_name, trigger, &parsed));
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  Site& site = r.sites[site_name];
  if (site.mode == Mode::kDisabled) {
    internal::g_enabled_count.fetch_add(1, std::memory_order_relaxed);
  }
  site.mode = parsed.mode;
  site.n = parsed.n;
  site.p = parsed.p;
  site.prob_state = parsed.prob_state;
  site.evaluations = 0;
  site.triggers = 0;
  return Status::OK();
}

void Disable(const std::string& site_name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site_name);
  if (it == r.sites.end() || it->second.mode == Mode::kDisabled) return;
  it->second.mode = Mode::kDisabled;
  internal::g_enabled_count.fetch_sub(1, std::memory_order_relaxed);
}

void Reset() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, site] : r.sites) {
    if (site.mode != Mode::kDisabled) {
      internal::g_enabled_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  r.sites.clear();
}

Status ConfigureFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t end = std::min(spec.find(';', pos), spec.size());
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          "failpoint spec clause '" + clause +
          "' is not of the form site=trigger");
    }
    TABLEGAN_RETURN_NOT_OK(
        Enable(clause.substr(0, eq), clause.substr(eq + 1)));
  }
  return Status::OK();
}

int64_t EvaluationCount(const std::string& site_name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site_name);
  return it == r.sites.end() ? 0 : it->second.evaluations;
}

int64_t TriggerCount(const std::string& site_name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site_name);
  return it == r.sites.end() ? 0 : it->second.triggers;
}

std::vector<std::string> EnabledSites() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  for (const auto& [name, site] : r.sites) {
    if (site.mode != Mode::kDisabled) out.push_back(name);
  }
  return out;
}

Scoped::Scoped(const std::string& site, const std::string& trigger)
    : site_(site) {
  const Status st = Enable(site, trigger);
  TABLEGAN_CHECK(st.ok()) << st.ToString();
}

Scoped::~Scoped() { Disable(site_); }

}  // namespace failpoint
}  // namespace tablegan
