#ifndef TABLEGAN_COMMON_IO_RETRY_H_
#define TABLEGAN_COMMON_IO_RETRY_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace tablegan {
namespace io {

/// EINTR-safe full-buffer I/O over raw file descriptors.
///
/// A process that handles SIGTERM/SIGINT (the serving daemon, a
/// checkpointing trainer under a supervisor) sees routine syscall
/// interruptions: read()/write() return -1/EINTR, or transfer fewer
/// bytes than asked. Treating either as a hard failure turns an
/// ordinary signal into a spurious I/O error, so every raw read/write
/// loop in the library goes through these helpers instead.
///
/// Failpoint sites (tests force each path): io.read_eintr and
/// io.write_eintr simulate an interrupted syscall before the real one —
/// the helpers must retry and still transfer every byte.

/// Reads exactly `n` bytes into `buf` unless end-of-file intervenes.
/// Returns the number of bytes read: n on success, < n iff EOF was
/// reached first. EINTR and short reads are retried; real errors come
/// back as an IOError status.
Result<size_t> ReadFull(int fd, void* buf, size_t n);

/// Writes all `n` bytes of `buf`, retrying EINTR and short writes.
Status WriteFull(int fd, const void* buf, size_t n);

/// Reads a whole file into a string with the EINTR-safe loop.
/// IOError("cannot open for read: <path>") when the file cannot be
/// opened, matching the library's historical message shape.
Result<std::string> ReadWholeFile(const std::string& path);

}  // namespace io
}  // namespace tablegan

#endif  // TABLEGAN_COMMON_IO_RETRY_H_
