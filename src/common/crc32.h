#ifndef TABLEGAN_COMMON_CRC32_H_
#define TABLEGAN_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tablegan {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant). Used as the
/// integrity footer of checkpoint files so Load can reject truncated or
/// bit-flipped files instead of reading undefined data.
///
/// `seed` allows incremental computation: pass a previous return value
/// to continue a running checksum over a new chunk.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace tablegan

#endif  // TABLEGAN_COMMON_CRC32_H_
