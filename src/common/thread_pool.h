#ifndef TABLEGAN_COMMON_THREAD_POOL_H_
#define TABLEGAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tablegan {

/// Fixed-size worker pool used for the multi-chunk training mode (§4.4 of
/// the paper) and for coarse-grained data-parallel loops.
///
/// Submitted tasks run in FIFO order across workers. WaitIdle() blocks
/// until every submitted task has finished. A task that throws is
/// swallowed (with an error log) rather than terminating the process;
/// use ParallelFor when failures must reach the caller.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// The calling thread participates in the work, so re-entrant calls
  /// from inside a worker cannot deadlock even when every worker is
  /// busy. The first exception thrown by fn is rethrown on the calling
  /// thread once every index has been accounted for; indices not yet
  /// claimed at that point are cancelled.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals WaitIdle
  int in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace tablegan

#endif  // TABLEGAN_COMMON_THREAD_POOL_H_
