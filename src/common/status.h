#ifndef TABLEGAN_COMMON_STATUS_H_
#define TABLEGAN_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace tablegan {

/// Error categories used across the library. Public APIs never throw;
/// recoverable failures are reported through Status / Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/error carrier in the RocksDB/Arrow style.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Status is cheap to copy (small string optimization covers the
/// common short messages).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status, in the Arrow style.
///
/// Use `TABLEGAN_ASSIGN_OR_RETURN` / `TABLEGAN_RETURN_NOT_OK` to propagate
/// errors without boilerplate.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites readable (`return value;` / `return Status::...;`).
  Result(T value) : data_(std::move(value)) {}        // NOLINT
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  /// Requires ok(). Accessing the value of an error Result aborts.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace tablegan

/// Propagates a non-OK Status from the current function.
#define TABLEGAN_RETURN_NOT_OK(expr)                   \
  do {                                                 \
    ::tablegan::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                         \
  } while (0)

#define TABLEGAN_CONCAT_IMPL(x, y) x##y
#define TABLEGAN_CONCAT(x, y) TABLEGAN_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, on
/// success assigns the value to `lhs`.
#define TABLEGAN_ASSIGN_OR_RETURN(lhs, expr)                        \
  TABLEGAN_ASSIGN_OR_RETURN_IMPL(                                   \
      TABLEGAN_CONCAT(_tablegan_result_, __LINE__), lhs, expr)

#define TABLEGAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#endif  // TABLEGAN_COMMON_STATUS_H_
