#include "common/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace tablegan {
namespace {

// JSON numbers must stay finite; losses can diverge to inf/NaN, which
// the schema maps to null so downstream parsers keep working.
void AppendNumber(std::ostringstream* os, const char* key, double v) {
  *os << '"' << key << "\":";
  if (std::isfinite(v)) {
    *os << v;
  } else {
    *os << "null";
  }
}

}  // namespace

JsonlMetricsSink::JsonlMetricsSink(const std::string& path, bool append)
    : path_(path),
      out_(path, append ? (std::ios::out | std::ios::app) : std::ios::out) {
  if (!out_) status_ = Status::IOError("cannot open metrics file: " + path);
}

Status JsonlMetricsSink::Record(const TrainingMetrics& m) {
  if (!status_.ok()) return status_;
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"epoch\":" << m.epoch << ",\"total_epochs\":" << m.total_epochs
     << ',';
  AppendNumber(&os, "d_loss", m.d_loss);
  os << ',';
  AppendNumber(&os, "g_loss", m.g_loss);
  os << ',';
  AppendNumber(&os, "info_loss", m.info_loss);
  os << ',';
  AppendNumber(&os, "class_loss", m.class_loss);
  os << ',';
  AppendNumber(&os, "l_mean", m.l_mean);
  os << ',';
  AppendNumber(&os, "l_sd", m.l_sd);
  os << ',';
  AppendNumber(&os, "d_seconds", m.d_seconds);
  os << ',';
  AppendNumber(&os, "c_seconds", m.c_seconds);
  os << ',';
  AppendNumber(&os, "g_seconds", m.g_seconds);
  os << ',';
  AppendNumber(&os, "epoch_seconds", m.epoch_seconds);
  os << ",\"examples\":" << m.examples << ',';
  AppendNumber(&os, "examples_per_sec", m.examples_per_sec);
  os << ",\"workspace_allocs\":" << m.workspace_allocs
     << ",\"workspace_reuses\":" << m.workspace_reuses
     << ",\"workspace_bytes\":" << m.workspace_bytes;
  os << "}\n";
  out_ << os.str();
  out_.flush();
  if (!out_) return Status::IOError("metrics write failed: " + path_);
  return Status::OK();
}

}  // namespace tablegan
