#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace tablegan {
namespace {

// JSON numbers must stay finite; losses can diverge to inf/NaN, which
// the schema maps to null so downstream parsers keep working (a bare
// `nan` token is not JSON and broke strict readers — locked by the
// MetricsJson tests).
void AppendNumber(std::ostringstream* os, const char* key, double v) {
  *os << '"' << key << "\":";
  if (std::isfinite(v)) {
    *os << v;
  } else {
    *os << "null";
  }
}

// Minimal JSON string escaping (quote, backslash, control characters).
// Anomaly/event strings are library-generated, but a checkpoint path
// can contain anything the user named their directories.
void AppendStringValue(std::ostringstream* os, const std::string& s) {
  *os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      case '\r':
        *os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
  *os << '"';
}

void AppendString(std::ostringstream* os, const char* key,
                  const std::string& s) {
  *os << '"' << key << "\":";
  AppendStringValue(os, s);
}

}  // namespace

JsonlMetricsSink::JsonlMetricsSink(const std::string& path, bool append)
    : path_(path),
      out_(path, append ? (std::ios::out | std::ios::app) : std::ios::out) {
  if (!out_) status_ = Status::IOError("cannot open metrics file: " + path);
}

Status JsonlMetricsSink::Record(const TrainingMetrics& m) {
  if (!status_.ok()) return status_;
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"epoch\":" << m.epoch << ",\"total_epochs\":" << m.total_epochs
     << ',';
  AppendNumber(&os, "d_loss", m.d_loss);
  os << ',';
  AppendNumber(&os, "g_loss", m.g_loss);
  os << ',';
  AppendNumber(&os, "info_loss", m.info_loss);
  os << ',';
  AppendNumber(&os, "class_loss", m.class_loss);
  os << ',';
  AppendNumber(&os, "l_mean", m.l_mean);
  os << ',';
  AppendNumber(&os, "l_sd", m.l_sd);
  os << ',';
  AppendNumber(&os, "d_seconds", m.d_seconds);
  os << ',';
  AppendNumber(&os, "c_seconds", m.c_seconds);
  os << ',';
  AppendNumber(&os, "g_seconds", m.g_seconds);
  os << ',';
  AppendNumber(&os, "epoch_seconds", m.epoch_seconds);
  os << ",\"examples\":" << m.examples << ',';
  AppendNumber(&os, "examples_per_sec", m.examples_per_sec);
  os << ",\"workspace_allocs\":" << m.workspace_allocs
     << ",\"workspace_reuses\":" << m.workspace_reuses
     << ",\"workspace_bytes\":" << m.workspace_bytes << ',';
  AppendNumber(&os, "loss_ewma", m.loss_ewma);
  os << ",\"anomaly\":";
  if (m.anomaly.empty()) {
    os << "null";
  } else {
    AppendStringValue(&os, m.anomaly);
  }
  os << "}\n";
  out_ << os.str();
  out_.flush();
  if (!out_) return Status::IOError("metrics write failed: " + path_);
  return Status::OK();
}

Status JsonlMetricsSink::RecordEvent(const TrainingEvent& e) {
  if (!status_.ok()) return status_;
  std::ostringstream line;
  line << '{';
  AppendString(&line, "event", e.event);
  line << ",\"epoch\":" << e.epoch << ',';
  AppendString(&line, "detail", e.detail);
  line << ',';
  AppendString(&line, "checkpoint", e.checkpoint_path);
  line << "}\n";
  out_ << line.str();
  out_.flush();
  if (!out_) return Status::IOError("metrics write failed: " + path_);
  return Status::OK();
}

DivergenceGuard::DivergenceGuard(double ewma_weight, double runaway_factor,
                                 int warmup_epochs)
    : w_(ewma_weight), factor_(runaway_factor), warmup_(warmup_epochs) {}

std::string DivergenceGuard::Observe(
    const std::vector<std::pair<const char*, double>>& losses) {
  double magnitude = 0.0;
  for (const auto& [name, value] : losses) {
    if (!std::isfinite(value)) {
      return std::string("non-finite ") + name;
    }
    magnitude += std::fabs(value);
  }
  const double next =
      observed_ == 0 ? magnitude : w_ * ewma_ + (1.0 - w_) * magnitude;
  if (observed_ >= warmup_ && factor_ > 0.0 &&
      next > factor_ * std::max(baseline_, 1e-6)) {
    // Do not fold the runaway value in: a halted-then-resumed or
    // rolled-back run should keep judging against healthy statistics.
    std::ostringstream os;
    os.precision(6);
    os << "runaway loss EWMA " << next << " > " << factor_
       << " x baseline " << baseline_;
    return os.str();
  }
  ewma_ = next;
  ++observed_;
  if (observed_ <= warmup_) baseline_ = std::max(baseline_, ewma_);
  return "";
}

}  // namespace tablegan
