#ifndef TABLEGAN_COMMON_RANDOM_H_
#define TABLEGAN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tablegan {

/// Deterministically combines two 64-bit values into a well-mixed seed
/// (asymmetric combine + splitmix64 finalizer). Used to derive
/// counter-indexed RNG substreams — e.g. one independent stream per
/// sampled row — whose draws do not depend on how work is batched or
/// partitioned across threads.
uint64_t MixSeeds(uint64_t a, uint64_t b);

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Used everywhere in the library instead of std:: engines so that
/// experiments are reproducible across platforms and standard library
/// versions. Not thread-safe; use one Rng per thread (Split()).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Normal with given mean / stddev.
  double Gaussian(double mean, double stddev);

  /// Bernoulli(p).
  bool NextBool(double p = 0.5);

  /// Samples an index from unnormalized non-negative weights.
  /// Requires at least one strictly positive weight.
  int NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// A permutation of 0..n-1.
  std::vector<int> Permutation(int n);

  /// Derives an independent child generator (e.g. one per thread/chunk).
  Rng Split();

  /// Complete generator state, exposed so checkpoints can restore the
  /// exact stream position (resume-from-checkpoint must replay the same
  /// draws an uninterrupted run would make).
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, has_cached_gaussian_,
                 cached_gaussian_};
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_cached_gaussian_ = st.has_cached_gaussian;
    cached_gaussian_ = st.cached_gaussian;
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tablegan

#endif  // TABLEGAN_COMMON_RANDOM_H_
