#ifndef TABLEGAN_COMMON_STOPWATCH_H_
#define TABLEGAN_COMMON_STOPWATCH_H_

#include <chrono>

namespace tablegan {

/// Wall-clock stopwatch used by the training-time experiment (paper
/// Table 4) and the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tablegan

#endif  // TABLEGAN_COMMON_STOPWATCH_H_
