#include "common/thread_pool.h"

#include <atomic>

namespace tablegan {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  std::atomic<int> next{0};
  int shards = std::min<int>(num_threads(), n);
  for (int s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      for (;;) {
        int i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tablegan
