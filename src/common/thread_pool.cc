#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>

#include "common/failpoint.h"
#include "common/logging.h"

namespace tablegan {
namespace {

/// Shared state of one ParallelFor call. Helper tasks hold it by
/// shared_ptr: a helper that only gets scheduled after the caller has
/// already drained every index finds an exhausted counter instead of
/// dangling references, so the caller never has to wait for helpers that
/// were queued but never started — that is what makes re-entrant calls
/// deadlock-free.
struct ForState {
  ForState(int n, std::function<void(int)> fn) : n(n), fn(std::move(fn)) {}

  const int n;
  const std::function<void(int)> fn;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::atomic<bool> cancelled{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure; guarded by mu
};

void DrainFor(const std::shared_ptr<ForState>& st) {
  for (;;) {
    const int i = st->next.fetch_add(1);
    if (i >= st->n) return;
    if (!st->cancelled.load(std::memory_order_relaxed)) {
      try {
        // Simulates a task body failing on dispatch; ParallelFor's
        // contract (first exception rethrown on the caller, remaining
        // indices cancelled, pool reusable) is what tests assert.
        if (TABLEGAN_FAILPOINT("threadpool.parallel_for")) {
          throw std::runtime_error("injected failure: threadpool.parallel_for");
        }
        st->fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st->mu);
        if (!st->error) st->error = std::current_exception();
        st->cancelled.store(true, std::memory_order_relaxed);
      }
    }
    if (st->done.fetch_add(1) + 1 == st->n) {
      std::lock_guard<std::mutex> lock(st->mu);
      st->cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  auto st = std::make_shared<ForState>(n, fn);
  const int helpers = std::min(num_threads(), n - 1);
  for (int h = 0; h < helpers; ++h) {
    Submit([st] { DrainFor(st); });
  }
  DrainFor(st);
  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock, [&] { return st->done.load() == st->n; });
  if (st->error) std::rethrow_exception(st->error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      // A Submit()ed task that dies is swallowed with an error log (the
      // documented contract); the failpoint lets tests prove WaitIdle
      // still unblocks and the worker survives.
      if (TABLEGAN_FAILPOINT("threadpool.task")) {
        throw std::runtime_error("injected failure: threadpool.task");
      }
      task();
    } catch (const std::exception& e) {
      TABLEGAN_LOG(Error) << "uncaught exception in pool task: " << e.what();
    } catch (...) {
      TABLEGAN_LOG(Error) << "uncaught non-std exception in pool task";
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tablegan
