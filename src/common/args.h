#ifndef TABLEGAN_COMMON_ARGS_H_
#define TABLEGAN_COMMON_ARGS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace tablegan {
namespace args {

/// Strict integer parsing for command-line flags and wire fields.
///
/// Unlike std::atoi/atoll — which silently return 0 for garbage and stop
/// at the first non-digit, so "--epochs 1e3" trains 1 epoch and
/// "--threads x" becomes 0 — these reject empty input, trailing
/// characters, and values outside [min_value, max_value] with an
/// InvalidArgument status naming the offending text.

/// Parses a base-10 integer. Leading whitespace, a leading '+'/'-', and
/// nothing else around the digits are accepted.
Result<int64_t> ParseInt(const std::string& text,
                         int64_t min_value = INT64_MIN,
                         int64_t max_value = INT64_MAX);

/// Parses a finite double; rejects empty input, trailing garbage and
/// overflow (underflow to subnormals/zero is accepted, matching ReadCsv).
Result<double> ParseDouble(const std::string& text);

}  // namespace args
}  // namespace tablegan

#endif  // TABLEGAN_COMMON_ARGS_H_
