#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace tablegan {
namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeeds(uint64_t a, uint64_t b) {
  // Asymmetric combine (so MixSeeds(a, b) != MixSeeds(b, a)) followed by
  // the splitmix64 finalizer to decorrelate adjacent counters.
  uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  TABLEGAN_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TABLEGAN_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

int Rng::NextCategorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    TABLEGAN_CHECK(w >= 0.0);
    total += w;
  }
  TABLEGAN_CHECK(total > 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> p(n);
  for (int i = 0; i < n; ++i) p[i] = i;
  Shuffle(&p);
  return p;
}

Rng Rng::Split() { return Rng(NextUint64() ^ 0xA5A5A5A5A5A5A5A5ULL); }

}  // namespace tablegan
