#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "common/thread_pool.h"

namespace tablegan {
namespace {

constexpr int kMaxAutoThreads = 16;

std::atomic<int> g_override{0};

std::mutex g_pool_mu;
// Shared by every ParallelFor call; shared_ptr so a concurrent resize
// (SetNumThreads between calls) never destroys a pool that another
// thread's call is still draining.
std::shared_ptr<ThreadPool> g_pool;  // NOLINT: intentional process lifetime
int g_pool_workers = 0;

thread_local int tl_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++tl_region_depth; }
  ~RegionGuard() { --tl_region_depth; }
};

int EnvThreads() {
  const char* s = std::getenv("TABLEGAN_NUM_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  return std::atoi(s);
}

/// State of one ParallelFor call, shared with helper tasks so a helper
/// that only starts after the caller has already drained every chunk
/// finds an exhausted counter instead of dangling references.
struct LoopState {
  LoopState(int64_t n, int64_t grain, int64_t num_chunks,
            std::function<void(int64_t, int64_t)> body)
      : n(n), grain(grain), num_chunks(num_chunks), body(std::move(body)) {}

  const int64_t n;
  const int64_t grain;
  const int64_t num_chunks;
  const std::function<void(int64_t, int64_t)> body;

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::atomic<bool> cancelled{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure; guarded by mu
};

void DrainChunks(const std::shared_ptr<LoopState>& st) {
  RegionGuard region;
  for (;;) {
    const int64_t c = st->next.fetch_add(1);
    if (c >= st->num_chunks) return;
    if (!st->cancelled.load(std::memory_order_relaxed)) {
      const int64_t begin = c * st->grain;
      const int64_t end = std::min(st->n, begin + st->grain);
      try {
        st->body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st->mu);
        if (!st->error) st->error = std::current_exception();
        st->cancelled.store(true, std::memory_order_relaxed);
      }
    }
    if (st->done.fetch_add(1) + 1 == st->num_chunks) {
      std::lock_guard<std::mutex> lock(st->mu);
      st->cv.notify_all();
    }
  }
}

std::shared_ptr<ThreadPool> SharedPool(int workers) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool_workers != workers) {
    g_pool = std::make_shared<ThreadPool>(workers);
    g_pool_workers = workers;
  }
  return g_pool;
}

}  // namespace

int GetNumThreads() {
  const int override_value = g_override.load(std::memory_order_relaxed);
  if (override_value > 0) return override_value;
  const int env = EnvThreads();
  if (env > 0) return env;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, kMaxAutoThreads);
}

void SetNumThreads(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int GetNumThreadsOverride() {
  return g_override.load(std::memory_order_relaxed);
}

bool InParallelRegion() { return tl_region_depth > 0; }

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (n + grain - 1) / grain;
  const int threads = GetNumThreads();
  if (threads <= 1 || num_chunks <= 1 || InParallelRegion()) {
    RegionGuard region;
    body(0, n);
    return;
  }
  auto st = std::make_shared<LoopState>(n, grain, num_chunks, body);
  auto pool = SharedPool(threads - 1);
  const int helpers = static_cast<int>(std::min<int64_t>(
      pool->num_threads(), num_chunks - 1));
  for (int h = 0; h < helpers; ++h) {
    pool->Submit([st] { DrainChunks(st); });
  }
  DrainChunks(st);
  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock, [&] { return st->done.load() == st->num_chunks; });
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace tablegan
