#ifndef TABLEGAN_COMMON_NEIGHBORS_H_
#define TABLEGAN_COMMON_NEIGHBORS_H_

#include <cstdint>
#include <functional>

namespace tablegan {

/// Blocked, thread-parallel brute-force nearest-neighbor scan shared by
/// the privacy evaluation paths (DCR, risk sweeps) and any other O(n*m)
/// distance workload. For each of the `num_queries` row-major queries of
/// dimension `dim`, writes the squared Euclidean distance to its nearest
/// of the `num_corpus` corpus rows into `out[q]`.
///
/// Determinism: queries are partitioned into disjoint output slices
/// (chunk boundaries a pure function of the problem shape), each query's
/// scan visits the corpus in the same blocked order at any thread count,
/// and min is order-insensitive — so the result is bitwise identical to
/// the serial scan at any parallelism level.
void NearestSquaredDistances(const float* queries, int64_t num_queries,
                             const float* corpus, int64_t num_corpus,
                             int64_t dim, float* out);

/// Streaming mean/variance accumulator (Welford), mergeable in fixed
/// order via Chan et al.'s pairwise update. Replaces E[x^2] - mean^2
/// formulas, which cancel catastrophically for tight distributions.
struct Moments {
  int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations from the running mean

  void Push(double x) {
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }

  void Merge(const Moments& o) {
    if (o.count == 0) return;
    if (count == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean - mean;
    const int64_t total = count + o.count;
    mean += delta * static_cast<double>(o.count) / static_cast<double>(total);
    m2 += o.m2 + delta * delta * static_cast<double>(count) *
                     static_cast<double>(o.count) / static_cast<double>(total);
    count = total;
  }

  double Variance() const {
    return count > 0 ? m2 / static_cast<double>(count) : 0.0;
  }
  double StdDev() const;
};

/// Parallel Welford moments of value(i) over i in [0, n): per-chunk
/// partials over a FixedChunks partition (boundaries a pure function of
/// n), merged serially in chunk order — bitwise reproducible at any
/// thread count, including 1.
Moments ComputeMoments(int64_t n,
                       const std::function<double(int64_t)>& value);

}  // namespace tablegan

#endif  // TABLEGAN_COMMON_NEIGHBORS_H_
