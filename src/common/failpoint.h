#ifndef TABLEGAN_COMMON_FAILPOINT_H_
#define TABLEGAN_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tablegan {
namespace failpoint {

/// Deterministic fault-injection registry (see DESIGN.md §11).
///
/// Error-prone seams (checkpoint I/O, CSV parsing, dataset loading,
/// thread-pool dispatch) are instrumented with named sites:
///
///   if (TABLEGAN_FAILPOINT("checkpoint.rename")) { /* simulate failure */ }
///
/// A site is inert until enabled, either programmatically
/// (`failpoint::Enable("checkpoint.rename", "once")`, or the RAII
/// `failpoint::Scoped` in tests) or through the TABLEGAN_FAILPOINTS
/// environment variable, a semicolon-separated list of `site=trigger`
/// clauses parsed once at process start:
///
///   TABLEGAN_FAILPOINTS="csv.read_record=after(10);checkpoint.rename=once"
///
/// Trigger grammar (evaluations of a site are counted from 1):
///   always        fires on every evaluation
///   once          fires on the first evaluation only
///   after(n)      first n evaluations pass, every later one fires
///   every(n)      fires on evaluations n, 2n, 3n, ...
///   prob(p[,s])   each evaluation fires independently with probability
///                 p, drawn from a private splitmix64 stream seeded with
///                 s (default: a hash of the site name) — the fire/pass
///                 sequence is a pure function of (site, p, s).
///
/// Cost when nothing is enabled: the TABLEGAN_FAILPOINT macro is a
/// single relaxed atomic load (the global enabled-site count) and a
/// never-taken branch; the registry mutex is only touched while at
/// least one site is enabled. Sites fire deterministically: evaluation
/// counters are per-site and every trigger mode is a pure function of
/// the evaluation index (and, for prob, its own seeded stream).

namespace internal {

/// Number of currently enabled sites. The fast path reads only this.
extern std::atomic<int> g_enabled_count;

/// Slow path: consults the registry under its mutex. Records the
/// evaluation (for EvaluationCount) and returns whether the site fires.
bool ShouldFailSlow(const char* site);

}  // namespace internal

/// Arms `site` with a trigger (grammar above), resetting its counters.
/// InvalidArgument on a malformed trigger.
Status Enable(const std::string& site, const std::string& trigger);

/// Disarms `site` (keeps its evaluation counters readable). No-op if
/// the site was not enabled.
void Disable(const std::string& site);

/// Disarms every site and clears all counters.
void Reset();

/// Parses a TABLEGAN_FAILPOINTS-style spec ("a=once;b=after(3)") and
/// enables each clause. Empty clauses are ignored.
Status ConfigureFromSpec(const std::string& spec);

/// Times `site` was reached while any failpoint was enabled. Counts
/// accumulate for unknown (never-enabled) sites too, so tests can
/// assert a seam was actually exercised.
int64_t EvaluationCount(const std::string& site);

/// Times `site` actually fired.
int64_t TriggerCount(const std::string& site);

/// Currently armed sites, sorted.
std::vector<std::string> EnabledSites();

/// RAII arm/disarm for tests. Aborts (CHECK) on a malformed trigger so
/// a typo cannot silently turn a fault-injection test into a no-op.
class Scoped {
 public:
  Scoped(const std::string& site, const std::string& trigger);
  ~Scoped();

  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string site_;
};

}  // namespace failpoint
}  // namespace tablegan

/// True when the named failpoint site fires. Compiles to one relaxed
/// atomic load + never-taken branch while no site is enabled.
#define TABLEGAN_FAILPOINT(site)                         \
  (::tablegan::failpoint::internal::g_enabled_count.load( \
       std::memory_order_relaxed) != 0 &&                 \
   ::tablegan::failpoint::internal::ShouldFailSlow(site))

#endif  // TABLEGAN_COMMON_FAILPOINT_H_
