#ifndef TABLEGAN_COMMON_LOGGING_H_
#define TABLEGAN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tablegan {
namespace internal_logging {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum level that is actually emitted. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Stream-style log sink; emits on destruction. `fatal` aborts the
/// process after emitting (used by CHECK failures — programming errors,
/// not recoverable conditions, which use Status instead).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tablegan

#define TABLEGAN_LOG(level)                                         \
  ::tablegan::internal_logging::LogMessage(                         \
      ::tablegan::internal_logging::LogLevel::k##level, __FILE__, __LINE__)

/// CHECK-style invariant macros: violations are bugs and abort.
#define TABLEGAN_CHECK(cond)                                              \
  if (!(cond))                                                            \
  ::tablegan::internal_logging::LogMessage(                               \
      ::tablegan::internal_logging::LogLevel::kError, __FILE__, __LINE__, \
      /*fatal=*/true)                                                     \
      << "Check failed: " #cond " "

#define TABLEGAN_CHECK_OK(expr)                                           \
  do {                                                                    \
    ::tablegan::Status _st = (expr);                                      \
    TABLEGAN_CHECK(_st.ok()) << _st.ToString();                           \
  } while (0)

#define TABLEGAN_DCHECK(cond) TABLEGAN_CHECK(cond)

#endif  // TABLEGAN_COMMON_LOGGING_H_
