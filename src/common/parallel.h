#ifndef TABLEGAN_COMMON_PARALLEL_H_
#define TABLEGAN_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace tablegan {

/// Process-wide parallelism context for the hot numeric kernels (GEMM and
/// the im2col convolutions). A single shared worker pool is constructed
/// lazily on first parallel call; its size comes from, in priority order,
///   1. SetNumThreads(n) with n >= 1 (programmatic override),
///   2. the TABLEGAN_NUM_THREADS environment variable,
///   3. std::thread::hardware_concurrency(), capped at 16.
///
/// Determinism contract: every parallel construct in the library is
/// *thread-count invariant* — running with 1 thread and with N threads
/// produces bitwise-identical results. ParallelFor guarantees its chunk
/// boundaries are a pure function of (n, grain); callers guarantee either
/// that chunks write disjoint outputs with chunk-independent arithmetic
/// (GEMM row partitions) or that reductions over chunk partials are
/// combined serially in chunk order (conv weight gradients).

/// Effective thread count (always >= 1).
int GetNumThreads();

/// Overrides the thread count; n <= 0 clears the override and returns to
/// the environment/hardware default. The shared pool is resized lazily on
/// the next ParallelFor call.
void SetNumThreads(int n);

/// Current programmatic override as set by SetNumThreads (0 when none).
/// Unlike GetNumThreads() this does not fall back to the environment or
/// hardware default; it exists so scoped overrides can restore the exact
/// prior state.
int GetNumThreadsOverride();

/// RAII scope for a thread-count override. Applies `n` (when n >= 1) on
/// construction and restores the previous override — including "no
/// override" — on destruction, so a per-model `num_threads` option never
/// leaks into unrelated work on the same process.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : saved_(GetNumThreadsOverride()) {
    if (n > 0) SetNumThreads(n);
  }
  ~ScopedNumThreads() { SetNumThreads(saved_); }

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
};

/// True while the calling thread is executing a ParallelFor body. Nested
/// ParallelFor calls run inline (serially) instead of re-entering the
/// pool, which keeps re-entrant kernels deadlock-free.
bool InParallelRegion();

/// Runs body(begin, end) over a partition of [0, n) into contiguous
/// chunks of size `grain` (the last chunk may be short). Chunk boundaries
/// depend only on (n, grain), never on the thread count. The calling
/// thread participates in the work, so the call makes progress even when
/// every pool worker is busy. The first exception thrown by a body is
/// rethrown on the calling thread after all chunks have been accounted
/// for; remaining chunks are cancelled.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

/// Deterministic partition of [0, n) into min(n, max_chunks) nearly equal
/// contiguous chunks. Boundaries depend only on (n, max_chunks) — never
/// on the thread count — so per-chunk partial reductions combined in
/// chunk order are bitwise reproducible at any parallelism level.
struct FixedChunks {
  FixedChunks(int64_t n, int64_t max_chunks)
      : n(n), count(n < max_chunks ? (n > 0 ? n : 1) : max_chunks) {}
  int64_t begin(int64_t c) const { return n * c / count; }
  int64_t end(int64_t c) const { return n * (c + 1) / count; }

  int64_t n;
  int64_t count;
};

/// Default chunk cap for batch-parallel loops whose gradients are reduced
/// over chunk partials (bounds partial-buffer memory to this many copies).
inline constexpr int64_t kDefaultBatchChunks = 16;

}  // namespace tablegan

#endif  // TABLEGAN_COMMON_PARALLEL_H_
