#include "common/neighbors.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/parallel.h"

namespace tablegan {
namespace {

// Corpus rows held hot in cache while a strip of queries scans them.
constexpr int64_t kCorpusBlock = 256;
// Per-chunk work floor for the query partition, in multiply-adds.
constexpr int64_t kQueryGrainFlops = int64_t{1} << 15;

// Number of Welford partials; bounds partial-buffer memory while leaving
// enough chunks for every pool worker.
constexpr int64_t kMomentChunks = 64;

}  // namespace

void NearestSquaredDistances(const float* queries, int64_t num_queries,
                             const float* corpus, int64_t num_corpus,
                             int64_t dim, float* out) {
  if (num_queries <= 0) return;
  if (num_corpus <= 0) {
    std::fill(out, out + num_queries,
              std::numeric_limits<float>::infinity());
    return;
  }
  const int64_t grain = std::max<int64_t>(
      1, kQueryGrainFlops / std::max<int64_t>(1, num_corpus * dim));
  ParallelFor(num_queries, grain, [=](int64_t q0, int64_t q1) {
    std::fill(out + q0, out + q1, std::numeric_limits<float>::max());
    for (int64_t s0 = 0; s0 < num_corpus; s0 += kCorpusBlock) {
      const int64_t s1 = std::min(num_corpus, s0 + kCorpusBlock);
      for (int64_t q = q0; q < q1; ++q) {
        const float* a = queries + q * dim;
        float best = out[q];
        for (int64_t s = s0; s < s1; ++s) {
          const float* b = corpus + s * dim;
          float d = 0.0f;
          for (int64_t j = 0; j < dim; ++j) {
            const float diff = a[j] - b[j];
            d += diff * diff;
          }
          best = std::min(best, d);
        }
        out[q] = best;
      }
    }
  });
}

double Moments::StdDev() const { return std::sqrt(Variance()); }

Moments ComputeMoments(int64_t n,
                       const std::function<double(int64_t)>& value) {
  Moments total;
  if (n <= 0) return total;
  const FixedChunks chunks(n, kMomentChunks);
  std::vector<Moments> partials(static_cast<size_t>(chunks.count));
  ParallelFor(chunks.count, 1, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      Moments m;
      for (int64_t i = chunks.begin(c); i < chunks.end(c); ++i) {
        m.Push(value(i));
      }
      partials[static_cast<size_t>(c)] = m;
    }
  });
  for (int64_t c = 0; c < chunks.count; ++c) {
    total.Merge(partials[static_cast<size_t>(c)]);
  }
  return total;
}

}  // namespace tablegan
