#include "common/args.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace tablegan {
namespace args {

Result<int64_t> ParseInt(const std::string& text, int64_t min_value,
                         int64_t max_value) {
  if (text.empty()) {
    return Status::InvalidArgument("empty integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str()) {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  if (*end != '\0') {
    return Status::InvalidArgument("trailing characters in integer: '" +
                                   text + "'");
  }
  if (errno == ERANGE || v < min_value || v > max_value) {
    return Status::InvalidArgument(
        "integer out of range [" + std::to_string(min_value) + ", " +
        std::to_string(max_value) + "]: '" + text + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  if (*end != '\0') {
    return Status::InvalidArgument("trailing characters in number: '" +
                                   text + "'");
  }
  // ERANGE underflow returns the nearest (sub)normal, which is the right
  // value; overflow to +/-HUGE_VAL is an error.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return Status::InvalidArgument("number out of range: '" + text + "'");
  }
  return v;
}

}  // namespace args
}  // namespace tablegan
