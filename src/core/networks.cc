#include "core/networks.h"

#include "common/logging.h"
#include "nn/activations.h"
#include "nn/batch_norm.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/reshape.h"

namespace tablegan {
namespace core {

std::vector<Tensor*> TwoPartNet::Parameters() {
  std::vector<Tensor*> out = features->Parameters();
  for (Tensor* p : head->Parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> TwoPartNet::Gradients() {
  std::vector<Tensor*> out = features->Gradients();
  for (Tensor* g : head->Gradients()) out.push_back(g);
  return out;
}

int NumStages(int side) {
  TABLEGAN_CHECK(side >= 4 && (side & (side - 1)) == 0)
      << "side must be a power of two >= 4, got " << side;
  int stages = 0;
  for (int s = side; s > 2; s /= 2) ++stages;
  return stages;
}

TwoPartNet BuildDiscriminator(int side, int base_channels, Rng* rng,
                              int head_outputs) {
  const int stages = NumStages(side);
  TwoPartNet net;
  net.features = std::make_unique<nn::Sequential>();
  int in_ch = 1;
  int out_ch = base_channels;
  for (int s = 0; s < stages; ++s) {
    // No bias before BatchNorm; first conv has no BatchNorm (DCGAN).
    const bool has_bn = s > 0;
    net.features->Emplace<nn::Conv2d>(in_ch, out_ch, /*kernel=*/4,
                                      /*stride=*/2, /*padding=*/1,
                                      /*bias=*/!has_bn);
    if (has_bn) net.features->Emplace<nn::BatchNorm>(out_ch);
    net.features->Emplace<nn::LeakyReLU>(0.2f);
    in_ch = out_ch;
    out_ch *= 2;
  }
  net.features->Emplace<nn::Flatten>();
  net.feature_dim = static_cast<int64_t>(in_ch) * 2 * 2;
  net.head = std::make_unique<nn::Sequential>();
  net.head->Emplace<nn::Dense>(net.feature_dim, head_outputs);
  nn::DcganInitialize(net.features.get(), rng);
  nn::DcganInitialize(net.head.get(), rng);
  return net;
}

std::unique_ptr<nn::Sequential> BuildGenerator(int side, int latent_dim,
                                               int base_channels, Rng* rng) {
  const int stages = NumStages(side);
  auto net = std::make_unique<nn::Sequential>();
  const int deep_ch = base_channels << (stages - 1);
  net->Emplace<nn::Dense>(latent_dim, deep_ch * 2 * 2, /*bias=*/false);
  net->Emplace<nn::Reshape>(
      std::vector<int64_t>{deep_ch, 2, 2});
  net->Emplace<nn::BatchNorm>(deep_ch);
  net->Emplace<nn::ReLU>();
  int in_ch = deep_ch;
  for (int s = stages - 1; s >= 1; --s) {
    const int out_ch = base_channels << (s - 1);
    net->Emplace<nn::ConvTranspose2d>(in_ch, out_ch, /*kernel=*/4,
                                      /*stride=*/2, /*padding=*/1,
                                      /*bias=*/false);
    net->Emplace<nn::BatchNorm>(out_ch);
    net->Emplace<nn::ReLU>();
    in_ch = out_ch;
  }
  net->Emplace<nn::ConvTranspose2d>(in_ch, 1, /*kernel=*/4, /*stride=*/2,
                                    /*padding=*/1, /*bias=*/true);
  net->Emplace<nn::Tanh>();
  nn::DcganInitialize(net.get(), rng);
  return net;
}

}  // namespace core
}  // namespace tablegan
