#ifndef TABLEGAN_CORE_NETWORKS_H_
#define TABLEGAN_CORE_NETWORKS_H_

#include <memory>

#include "common/random.h"
#include "nn/sequential.h"

namespace tablegan {
namespace core {

/// Discriminator / classifier network split into a convolutional feature
/// stack and a logits head (paper Fig. 2): the flattened activations
/// between them are the "extracted features" f that the information loss
/// compares (Eq. 2-3). The classifier shares this architecture (§4.1.3).
struct TwoPartNet {
  std::unique_ptr<nn::Sequential> features;  // convs ... Flatten
  std::unique_ptr<nn::Sequential> head;      // Dense(feature_dim, 1) logits
  int64_t feature_dim = 0;

  /// Convenience: full forward to logits.
  Tensor ForwardLogits(const Tensor& input, bool training) {
    return head->Forward(features->Forward(input, training), training);
  }

  /// Stateless inference to logits (see nn::Layer::Infer): const and
  /// cache-free, safe to call concurrently over disjoint row shards.
  Tensor InferLogits(const Tensor& input) const {
    return head->Infer(features->Infer(input));
  }

  void ZeroGrad() {
    features->ZeroGrad();
    head->ZeroGrad();
  }

  std::vector<Tensor*> Parameters();
  std::vector<Tensor*> Gradients();
};

/// DCGAN discriminator for a side x side single-channel record matrix:
/// stride-2 4x4 convs doubling channels each stage down to 2x2 spatial,
/// LeakyReLU everywhere, BatchNorm on all but the first conv, then
/// Flatten + Dense sigmoid head (trained on logits). `head_outputs` > 1
/// builds the multi-task classifier head of paper §4.2.3 (one sigmoid
/// per label over the shared trunk).
TwoPartNet BuildDiscriminator(int side, int base_channels, Rng* rng,
                              int head_outputs = 1);

/// DCGAN generator: Dense projection of the latent vector to a
/// 2x2x(base_channels * 2^(stages-1)) tensor, BatchNorm + ReLU, then
/// stride-2 4x4 transposed convs halving channels up to side x side,
/// tanh output matching the [-1, 1] record encoding.
std::unique_ptr<nn::Sequential> BuildGenerator(int side, int latent_dim,
                                               int base_channels, Rng* rng);

/// Number of stride-2 stages for a given side (side must be a power of
/// two >= 4): log2(side) - 1, so the deepest tensor is 2x2.
int NumStages(int side);

}  // namespace core
}  // namespace tablegan

#endif  // TABLEGAN_CORE_NETWORKS_H_
