#ifndef TABLEGAN_CORE_MEMBERSHIP_ATTACK_H_
#define TABLEGAN_CORE_MEMBERSHIP_ATTACK_H_

#include <cstdint>

#include "common/status.h"
#include "core/table_gan.h"

namespace tablegan {
namespace core {

/// Customized membership-inference attack against table-GAN (paper §4.5,
/// adapting Shokri et al. [33]). The attacker has black-box access to
/// the *generator* of the trained target and knows its architecture:
///
///   1. obtain synthetic "shadow training tables" from the target,
///   2. train shadow table-GANs on them,
///   3. build attack tuples (class of r, D_shadow(r), in/out) from each
///      shadow's training records (in) and held-out real records (out),
///   4. train one attack classifier per class (best of the MLP / tree /
///      AdaBoost / forest / SVM family by validation F-1),
///   5. evaluate on a balanced 50/50 set of real training ("in") and
///      reserved testing ("out") records, scoring F-1 and AUCROC
///      (paper Table 6).
struct MembershipAttackOptions {
  int num_shadow_gans = 2;
  /// Rows of each shadow training table drawn from the target generator.
  int64_t shadow_table_rows = 0;  // 0 = same as target training size
  /// Shadow GANs replicate the target's architecture; the attacker knows
  /// it (paper assumption). Epochs may be reduced for speed.
  TableGanOptions shadow_options;
  /// Records per side (in/out) of the balanced evaluation set.
  int64_t eval_records_per_side = 500;
  uint64_t seed = 53;
};

struct MembershipAttackResult {
  double f1 = 0.0;       // averaged over the two per-class attack models
  double auc_roc = 0.0;  // ditto
};

/// Runs the attack against `target` (already fitted). `train_table` are
/// the target's real training records (ground-truth "in"); `test_table`
/// are real records never seen by the target ("out"), split internally
/// into shadow-attack training and final evaluation halves.
Result<MembershipAttackResult> RunMembershipAttack(
    TableGan* target, const data::Table& train_table,
    const data::Table& test_table, int label_col,
    const MembershipAttackOptions& options);

}  // namespace core
}  // namespace tablegan

#endif  // TABLEGAN_CORE_MEMBERSHIP_ATTACK_H_
