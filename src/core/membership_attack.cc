#include "core/membership_attack.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "ml/metrics.h"
#include "ml/model_zoo.h"

namespace tablegan {
namespace core {
namespace {

// Per-class attack training pool: 1-D feature (the shadow discriminator
// score) plus membership target.
struct AttackPool {
  ml::MlData data[2];  // indexed by class label 0/1

  void Add(int label, double score, int membership) {
    ml::MlData& d = data[label != 0 ? 1 : 0];
    d.x.push_back({score});
    d.y.push_back(static_cast<double>(membership));
  }
};

// Picks the best attack classifier family by validation F-1 and refits
// it on the full pool (stand-in for the paper's grid search + 10-fold
// cross-validation, §5.3.2).
Result<std::unique_ptr<ml::Classifier>> TrainAttackModel(
    const ml::MlData& pool, Rng* rng) {
  if (pool.num_rows() < 10) {
    return Status::FailedPrecondition("attack pool too small");
  }
  const int64_t n = pool.num_rows();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), int64_t{0});
  rng->Shuffle(&order);
  const int64_t val_n = std::max<int64_t>(1, n / 4);
  ml::MlData train, val;
  for (int64_t i = 0; i < n; ++i) {
    ml::MlData& dst = i < val_n ? val : train;
    dst.x.push_back(pool.x[static_cast<size_t>(order[static_cast<size_t>(i)])]);
    dst.y.push_back(pool.y[static_cast<size_t>(order[static_cast<size_t>(i)])]);
  }
  std::vector<int> val_true;
  val_true.reserve(val.y.size());
  for (double y : val.y) val_true.push_back(y > 0.5 ? 1 : 0);

  double best_f1 = -1.0;
  std::string best_name;
  for (const auto& spec : ml::MembershipAttackClassifiers()) {
    std::unique_ptr<ml::Classifier> model = spec.make();
    if (!model->Fit(train).ok()) continue;
    const double f1 = ml::F1Score(val_true, model->PredictAll(val));
    if (f1 > best_f1) {
      best_f1 = f1;
      best_name = spec.name;
    }
  }
  if (best_f1 < 0.0) return Status::Internal("no attack model trained");
  for (const auto& spec : ml::MembershipAttackClassifiers()) {
    if (spec.name == best_name) {
      std::unique_ptr<ml::Classifier> model = spec.make();
      TABLEGAN_RETURN_NOT_OK(model->Fit(pool));
      return model;
    }
  }
  return Status::Internal("attack model lookup failed");
}

std::vector<int64_t> SampleRows(int64_t available, int64_t want, Rng* rng) {
  std::vector<int64_t> idx(static_cast<size_t>(available));
  std::iota(idx.begin(), idx.end(), int64_t{0});
  rng->Shuffle(&idx);
  idx.resize(static_cast<size_t>(std::min(available, want)));
  return idx;
}

}  // namespace

Result<MembershipAttackResult> RunMembershipAttack(
    TableGan* target, const data::Table& train_table,
    const data::Table& test_table, int label_col,
    const MembershipAttackOptions& options) {
  if (!target->fitted()) {
    return Status::FailedPrecondition("target table-GAN is not fitted");
  }
  if (test_table.num_rows() < 20) {
    return Status::InvalidArgument("test table too small for the attack");
  }
  Rng rng(options.seed);

  // Reserve disjoint halves of the unseen records: one for shadow "out"
  // samples, one for the final evaluation.
  std::vector<int64_t> test_idx(static_cast<size_t>(test_table.num_rows()));
  std::iota(test_idx.begin(), test_idx.end(), int64_t{0});
  rng.Shuffle(&test_idx);
  const int64_t half = test_table.num_rows() / 2;
  const data::Table shadow_out_pool = test_table.SelectRows(
      {test_idx.begin(), test_idx.begin() + half});
  const data::Table eval_out_pool = test_table.SelectRows(
      {test_idx.begin() + half, test_idx.end()});

  const int64_t shadow_rows = options.shadow_table_rows > 0
                                  ? options.shadow_table_rows
                                  : train_table.num_rows();

  AttackPool pool;
  std::vector<std::unique_ptr<TableGan>> shadows;
  for (int s = 0; s < options.num_shadow_gans; ++s) {
    // Step 2: shadow training table from the target's generator.
    TABLEGAN_ASSIGN_OR_RETURN(data::Table shadow_train,
                              target->Sample(shadow_rows));
    // Step 3: shadow table-GAN replicating the target's architecture.
    TableGanOptions shadow_opts = options.shadow_options;
    shadow_opts.seed = options.seed + 101 * static_cast<uint64_t>(s + 1);
    auto shadow = std::make_unique<TableGan>(shadow_opts);
    TABLEGAN_RETURN_NOT_OK(shadow->Fit(shadow_train, label_col));

    // Step 4a: "in" tuples from the shadow's own training records.
    TABLEGAN_ASSIGN_OR_RETURN(std::vector<double> in_scores,
                              shadow->DiscriminatorScores(shadow_train));
    const int64_t in_take =
        std::min<int64_t>(shadow_train.num_rows(),
                          shadow_out_pool.num_rows());
    for (int64_t r : SampleRows(shadow_train.num_rows(), in_take, &rng)) {
      const int label =
          shadow_train.Get(r, label_col) > 0.5 ? 1 : 0;
      pool.Add(label, in_scores[static_cast<size_t>(r)], 1);
    }
    // Step 4b: "out" tuples from real records the shadow never saw.
    TABLEGAN_ASSIGN_OR_RETURN(std::vector<double> out_scores,
                              shadow->DiscriminatorScores(shadow_out_pool));
    for (int64_t r :
         SampleRows(shadow_out_pool.num_rows(), in_take, &rng)) {
      const int label = shadow_out_pool.Get(r, label_col) > 0.5 ? 1 : 0;
      pool.Add(label, out_scores[static_cast<size_t>(r)], 0);
    }
    shadows.push_back(std::move(shadow));
  }

  // Step 6: one attack model per class.
  std::unique_ptr<ml::Classifier> attack_models[2];
  for (int c = 0; c < 2; ++c) {
    TABLEGAN_ASSIGN_OR_RETURN(attack_models[c],
                              TrainAttackModel(pool.data[c], &rng));
  }

  // Final evaluation on a balanced in/out set. The attack feature for a
  // candidate record is its mean score across shadow discriminators.
  const int64_t per_side = std::min<int64_t>(
      options.eval_records_per_side,
      std::min(train_table.num_rows(), eval_out_pool.num_rows()));
  const data::Table eval_in = train_table.SelectRows(
      SampleRows(train_table.num_rows(), per_side, &rng));
  const data::Table eval_out = eval_out_pool.SelectRows(
      SampleRows(eval_out_pool.num_rows(), per_side, &rng));

  auto mean_scores =
      [&](const data::Table& t) -> Result<std::vector<double>> {
    std::vector<double> acc(static_cast<size_t>(t.num_rows()), 0.0);
    for (auto& shadow : shadows) {
      TABLEGAN_ASSIGN_OR_RETURN(std::vector<double> s,
                                shadow->DiscriminatorScores(t));
      for (size_t i = 0; i < acc.size(); ++i) acc[i] += s[i];
    }
    for (double& v : acc) v /= static_cast<double>(shadows.size());
    return acc;
  };
  TABLEGAN_ASSIGN_OR_RETURN(std::vector<double> in_scores,
                            mean_scores(eval_in));
  TABLEGAN_ASSIGN_OR_RETURN(std::vector<double> out_scores,
                            mean_scores(eval_out));

  MembershipAttackResult result;
  int classes_scored = 0;
  for (int c = 0; c < 2; ++c) {
    std::vector<int> y_true;
    std::vector<int> y_pred;
    std::vector<double> y_score;
    auto add = [&](const data::Table& t, const std::vector<double>& scores,
                   int membership) {
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        const int label = t.Get(r, label_col) > 0.5 ? 1 : 0;
        if (label != c) continue;
        const std::vector<double> x{scores[static_cast<size_t>(r)]};
        y_true.push_back(membership);
        y_pred.push_back(attack_models[c]->Predict(x));
        y_score.push_back(attack_models[c]->PredictProba(x));
      }
    };
    add(eval_in, in_scores, 1);
    add(eval_out, out_scores, 0);
    if (y_true.size() < 4) continue;
    result.f1 += ml::F1Score(y_true, y_pred);
    result.auc_roc += ml::AucRoc(y_true, y_score);
    ++classes_scored;
  }
  if (classes_scored == 0) {
    return Status::Internal("evaluation set had no usable class");
  }
  result.f1 /= classes_scored;
  result.auc_roc /= classes_scored;
  return result;
}

}  // namespace core
}  // namespace tablegan
