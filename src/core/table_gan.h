#ifndef TABLEGAN_CORE_TABLE_GAN_H_
#define TABLEGAN_CORE_TABLE_GAN_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/networks.h"
#include "core/table_gan_options.h"
#include "data/gmm_normalizer.h"
#include "data/record_matrix.h"
#include "data/table.h"
#include "data/table_view.h"
#include "tensor/workspace.h"

namespace tablegan {
namespace nn {
class Adam;
class SpectralNormRegularizer;
}  // namespace nn
namespace core {

class InfoLossState;

/// Per-epoch training telemetry.
struct EpochStats {
  float d_loss = 0.0f;      // discriminator BCE (real + fake halves)
  float g_orig_loss = 0.0f; // generator adversarial loss
  float info_loss = 0.0f;   // hinge information loss (Eq. 4)
  float class_loss = 0.0f;  // classifier discrepancy (Eq. 5)
  float l_mean = 0.0f;      // relative first-order statistics gap
  float l_sd = 0.0f;        // relative second-order statistics gap
};

/// table-GAN (paper §4): a DCGAN-based generator/discriminator pair plus
/// a classifier network, trained with the original GAN loss, the hinge
/// information loss and the classification loss per Algorithm 2, over
/// records encoded as zero-padded square matrices in [-1, 1].
///
/// Typical use:
///   TableGan gan(TableGanOptions::LowPrivacy());
///   gan.Fit(train_table, label_col);
///   data::Table synthetic = *gan.Sample(train_table.num_rows());
///
/// Setting options.use_info_loss = options.use_classifier = false yields
/// the DCGAN baseline of §5.1.3.
class TableGan {
 public:
  explicit TableGan(TableGanOptions options);

  TableGan(const TableGan&) = delete;
  TableGan& operator=(const TableGan&) = delete;
  TableGan(TableGan&&) = default;

  /// Trains on `table`; `label_col` is the ground-truth label attribute
  /// the classifier network learns (paper §4.1.3). The whole table —
  /// label included — is synthesized.
  ///
  /// Takes any TableView: training reads rows through the view's column
  /// pointers one mini-batch at a time (never materializing the encoded
  /// table), so an mmap-backed ColumnarReader trains out-of-core with
  /// memory proportional to the batch size — and, because every batch
  /// cell is computed with the identical per-cell expression, produces
  /// checkpoints and samples bitwise identical to fitting the same rows
  /// from an in-RAM Table at any thread count (DESIGN.md §14).
  Status Fit(const data::TableView& table, int label_col);

  /// Multi-label variant (paper §4.2.3): the classifier becomes a
  /// multi-task network with one sigmoid head per label sharing the
  /// convolutional trunk; the classification loss averages the per-label
  /// discrepancies.
  Status FitMultiLabel(const data::TableView& table,
                       std::vector<int> label_cols);

  bool fitted() const { return fitted_; }

  /// Generates `n` synthetic records and decodes them to a table with
  /// the training schema.
  ///
  /// Determinism contract: the latent vector of output row i is drawn
  /// from its own counter-derived RNG substream, indexed by the number of
  /// rows emitted by earlier Sample calls plus i. The output is therefore
  /// a pure function of (options.seed, rows emitted so far, n) — bitwise
  /// identical across batch sizes and thread counts, while successive
  /// calls still produce fresh rows. Row blocks are generated in
  /// parallel across disjoint output slices when threads are available.
  ///
  /// n <= 0 returns an empty table with the training schema without
  /// advancing the persisted rows-emitted position (and without touching
  /// the workspace pool), so a zero-row request — e.g. relayed from a
  /// remote client — cannot perturb subsequent deterministic output.
  Result<data::Table> Sample(int64_t n);

  /// Stateless range sampling for the serving path: rows
  /// [row_begin, row_end) of the logical sample table that a fresh model
  /// with options.seed == `seed` would emit through Sample. Pure
  /// function of (seed, row_begin, row_end) — it neither reads nor
  /// advances the model's own sampling-stream position, so any worker
  /// holding this model can serve any slice of the logical table,
  /// bitwise identical to every other worker at any thread count.
  /// Const and safe to call concurrently (the inference path is
  /// cache-free; see nn::Layer::Infer).
  Result<data::Table> SampleRange(uint64_t seed, int64_t row_begin,
                                  int64_t row_end) const;

  /// Condition-by-label range sampling: rows [row_begin, row_end) of the
  /// per-label logical sample table for `label`, which must exactly
  /// match one of the primary label column's training levels (otherwise
  /// NotFound — the serve layer maps that onto its unknown-label wire
  /// status). Requires a model fitted with options.conditional
  /// (FailedPrecondition otherwise).
  ///
  /// Same determinism contract as SampleRange — a pure function of
  /// (seed, label, row index) at any batch size, thread count or
  /// chunking — and each label's stream is keyed by a label-tagged
  /// substream, so per-label streams are mutually disjoint and disjoint
  /// from the unconditional stream of the same seed.
  Result<data::Table> SampleConditional(uint64_t seed, int64_t row_begin,
                                        int64_t row_end, double label) const;

  /// Discriminator probability D(r) of being real, per record of
  /// `records` (normalized with the training normalizer). Used by the
  /// customized membership attack (§4.5), which trains shadow table-GANs
  /// and reads their discriminators.
  Result<std::vector<double>> DiscriminatorScores(const data::Table& records);

  /// Per-epoch losses recorded during Fit.
  const std::vector<EpochStats>& history() const { return history_; }

  /// Persists the fitted model (schema, normalizer, all three networks
  /// with their BatchNorm running statistics) to a binary file, so a
  /// trained generator can be shared and reloaded (the paper's release
  /// workflow gives partners generator access only). The write is
  /// atomic (temp file + rename) and the file carries a CRC-32 footer.
  Status Save(const std::string& path) const;

  /// Save() with an explicit on-disk format version. Supported versions:
  /// 6 (current; equivalent to Save), 5 (omits the conditional /
  /// GMM-normalizer section), 4 (additionally omits the loss-mode and
  /// guardrail fields) and 3 (legacy: additionally omits the sampling
  /// stream counters and Adam bias-correction powers). A conditional or
  /// GMM-normalized model cannot be expressed below version 6 and is
  /// rejected with InvalidArgument. Used by tests to exercise the older
  /// compatibility paths of Load.
  Status SaveCompat(const std::string& path, int version) const;

  /// Restores a model saved by Save() or a mid-training checkpoint.
  /// Truncated, bit-flipped or wrong-version files are rejected with a
  /// non-OK Status (the CRC footer is verified before any field is
  /// parsed). The returned model samples with a fresh RNG seeded from
  /// its stored options.
  static Result<TableGan> Load(const std::string& path);

  const TableGanOptions& options() const { return options_; }
  int side() const { return side_; }
  /// First (primary) label column.
  int label_col() const { return label_cols_.empty() ? -1 : label_cols_[0]; }
  const std::vector<int>& label_cols() const { return label_cols_; }

 private:
  /// Borrowed views of the mutable mid-training state a checkpoint must
  /// capture beyond the model itself (see DESIGN.md §9 for the format).
  struct TrainingState {
    int epochs_completed = 0;
    nn::Adam* adam_g = nullptr;
    nn::Adam* adam_d = nullptr;
    nn::Adam* adam_c = nullptr;
    InfoLossState* info = nullptr;
    /// v5 additions; null / zero with pre-v5 files or when the feature
    /// is off (guard always exists during Fit, sn only in kSpectralNorm
    /// mode).
    DivergenceGuard* guard = nullptr;
    nn::SpectralNormRegularizer* sn = nullptr;
    int64_t rollbacks_used = 0;
  };

  /// Serializes the model — plus the training section when `train` is
  /// non-null — to `path` atomically with a CRC-32 footer, in the given
  /// on-disk format version (3, 4 or 5; see SaveCompat).
  Status SaveImpl(const std::string& path, const TrainingState* train,
                  int version) const;

  /// Restores the training section of a checkpoint into this partially
  /// initialized model (networks and optimizers already built by Fit).
  /// Rejects checkpoints whose options, schema or normalizer bounds do
  /// not match the current run.
  Status RestoreTrainingState(const std::string& path, TrainingState* train);

  /// Zeroes every label cell of every record matrix — remove(.) in Eq. 5.
  /// Writes the masked copy into `*out` (resized as needed).
  void RemoveLabelInto(const Tensor& matrices, Tensor* out) const;

  /// Shared core of Sample, SampleRange and SampleConditional: decodes
  /// rows [first, first + n) of the latent stream keyed by `stream_seed`
  /// (already domain-tagged) into a table. Requires n >= 1. On a
  /// conditional model the generator input of each row is its latent
  /// vector plus one conditioning cell per label column; `fixed_label`,
  /// when non-null, pins the primary label to that (canonicalized)
  /// level, while remaining labels draw from their training frequencies
  /// on the row's own substream.
  Result<data::Table> GenerateRows(uint64_t stream_seed, uint64_t first,
                                   int64_t n,
                                   const double* fixed_label = nullptr) const;

  /// Width of the conditioning vector appended to the latent input: one
  /// cell per label column when options.conditional, else 0.
  int cond_dim() const {
    return options_.conditional ? static_cast<int>(label_cols_.size()) : 0;
  }

  /// Encoded-record cell index of label column j (== the column itself
  /// when every column is min-max).
  int64_t label_cell(int j) const {
    return normalizer_.column_offset(label_cols_[static_cast<size_t>(j)]);
  }

  TableGanOptions options_;
  bool fitted_ = false;
  int side_ = 0;
  std::vector<int> label_cols_;

  /// Shape-keyed buffer pool for the training step (null when
  /// options.reuse_workspace is false). Declared before the networks so
  /// it is destroyed after them: layers may hold pooled tensors, and a
  /// pooled tensor must not outlive its pool.
  std::unique_ptr<Workspace> ws_;

  data::Schema schema_;
  data::RecordNormalizer normalizer_;
  std::unique_ptr<data::RecordMatrixCodec> codec_;

  /// Conditional-model label vocabulary, one entry per label column:
  /// sorted distinct training values and their empirical frequencies.
  /// SampleConditional validates requested labels against the primary
  /// column's levels; unpinned label columns draw levels from these
  /// frequencies. Serialized since format v6. Empty when
  /// !options.conditional.
  std::vector<std::vector<double>> label_levels_;
  std::vector<std::vector<double>> label_level_freqs_;

  std::unique_ptr<nn::Sequential> generator_;
  TwoPartNet discriminator_;
  TwoPartNet classifier_;
  Rng rng_{47};

  /// Stream seed for Sample's per-row latent substreams, derived from
  /// options.seed; row i of a call draws from
  /// Rng(MixSeeds(sample_stream_seed_, sample_rows_emitted_ + i)).
  uint64_t sample_stream_seed_ = 0;
  /// Rows emitted by prior Sample calls. Serialized (with the stream
  /// seed) since format v4, so a saved-and-reloaded model continues the
  /// sampling stream exactly where it left off instead of replaying rows.
  /// Version-3 files default both fields from options.seed / 0.
  uint64_t sample_rows_emitted_ = 0;

  std::vector<EpochStats> history_;
};

}  // namespace core
}  // namespace tablegan

#endif  // TABLEGAN_CORE_TABLE_GAN_H_
