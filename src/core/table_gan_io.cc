// Binary persistence for trained table-GAN models (TableGan::Save /
// TableGan::Load) and mid-training checkpoints (see DESIGN.md §9).
//
// Format v5: magic "TGAN0005", then the model section (options — since
// v5 including the loss mode, penalty weights and guardrail settings —
// schema, normalizer bounds, the sampling-stream counters, the
// parameter and buffer tensors of the generator, discriminator and
// classifier in construction order), then an optional training section
// (epoch counter, RNG stream, Adam moments + bias-correction powers,
// info-loss EWMA statistics, since v5 the divergence-guard EWMA state,
// rollback counter and spectral-norm power-iteration vectors, loss
// history), then a CRC-32 footer over everything before it. Files are
// written to a temp name and renamed into place so a crash mid-write
// never leaves a half-written file at the target path, and Load
// verifies the CRC before parsing a single field.
//
// Format v6 appends the record-encoding and conditioning section to the
// model header: the conditional flag, the GMM column selection with
// every fitted mixture's components, and — for conditional models — the
// per-label-column level vocabulary with empirical frequencies
// (DESIGN.md §16). Models using only the defaults carry an all-min-max
// spec table and load bitwise identical to their v5 selves.
//
// Version-5 files (no encoding/conditioning section: min-max everywhere,
// unconditional), version-4 files (additionally no loss-mode/guardrail
// fields: the loaded model runs the default DCGAN loss with a fresh
// guard) and version-3 files (additionally no sampling-stream counters
// and no Adam powers) are still read. SaveCompat(path, 3|4|5) writes the
// legacy layouts for round-trip tests; a model that actually uses GMM
// columns or conditioning cannot be downgraded and SaveCompat rejects
// the attempt.

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/io_retry.h"
#include "core/info_loss.h"
#include "core/table_gan.h"
#include "nn/optimizer.h"
#include "nn/spectral_norm.h"

namespace tablegan {
namespace core {
namespace {

constexpr char kMagicPrefix[4] = {'T', 'G', 'A', 'N'};
constexpr char kMagicV3[8] = {'T', 'G', 'A', 'N', '0', '0', '0', '3'};
constexpr char kMagicV4[8] = {'T', 'G', 'A', 'N', '0', '0', '0', '4'};
constexpr char kMagicV5[8] = {'T', 'G', 'A', 'N', '0', '0', '0', '5'};
constexpr char kMagicV6[8] = {'T', 'G', 'A', 'N', '0', '0', '0', '6'};
constexpr size_t kMagicSize = sizeof(kMagicV4);
constexpr size_t kFooterSize = sizeof(uint32_t);

// --- primitive writers/readers (little-endian host assumed; the format
// is a cache, not an interchange format).

void WriteI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteI64(out, static_cast<int64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteTensor(std::ostream& out, const Tensor& t) {
  WriteI64(out, t.rank());
  for (int64_t d : t.shape()) WriteI64(out, d);
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
}

bool ReadI64(std::istream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadF32(std::istream& in, float* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadF64(std::istream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadString(std::istream& in, std::string* s) {
  int64_t n = 0;
  if (!ReadI64(in, &n) || n < 0 || n > (1 << 20)) return false;
  s->resize(static_cast<size_t>(n));
  in.read(s->data(), n);
  return static_cast<bool>(in);
}

// Reads a tensor into `*t`, which must already have the expected shape
// (the architecture is rebuilt from options before loading weights).
bool ReadTensorInto(std::istream& in, Tensor* t) {
  int64_t rank = 0;
  if (!ReadI64(in, &rank) || rank != t->rank()) return false;
  for (int i = 0; i < t->rank(); ++i) {
    int64_t d = 0;
    if (!ReadI64(in, &d) || d != t->dim(i)) return false;
  }
  in.read(reinterpret_cast<char*>(t->data()),
          static_cast<std::streamsize>(t->size() * sizeof(float)));
  return static_cast<bool>(in);
}

std::vector<Tensor*> AllState(nn::Sequential* net) {
  std::vector<Tensor*> out = net->Parameters();
  for (Tensor* b : net->Buffers()) out.push_back(b);
  return out;
}

bool ReadNet(std::istream& in, nn::Sequential* net) {
  for (Tensor* t : AllState(net)) {
    if (!ReadTensorInto(in, t)) return false;
  }
  return true;
}

// Writes `payload` (which must already end with its CRC footer) to a
// temp file next to `path`, then renames it into place.
//
// Failpoint sites (tests force each failure shape and assert the
// target file is never torn): checkpoint.open_write, one bit flipped
// mid-payload (checkpoint.corrupt_byte — the readers' CRC must catch
// it), a short write (checkpoint.short_write), and a failed rename
// (checkpoint.rename).
Status AtomicWriteFile(const std::string& path, std::string payload) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0 || TABLEGAN_FAILPOINT("checkpoint.open_write")) {
    // The open may have created an empty temp file before failing;
    // never leave it behind.
    if (fd >= 0) ::close(fd);
    std::remove(tmp.c_str());
    return Status::IOError("cannot open for write: " + tmp);
  }
  if (TABLEGAN_FAILPOINT("checkpoint.corrupt_byte")) {
    payload[payload.size() / 2] ^= 0x40;
  }
  size_t len = payload.size();
  const bool short_write = TABLEGAN_FAILPOINT("checkpoint.short_write");
  if (short_write) len /= 2;  // half the payload actually reaches disk
  // io::WriteFull retries EINTR and short write() returns — a SIGTERM
  // arriving mid-checkpoint (the daemon's shutdown path) must not tear
  // the file.
  const Status written = io::WriteFull(fd, payload.data(), len);
  ::close(fd);
  if (!written.ok() || short_write) {
    std::remove(tmp.c_str());
    return Status::IOError("write failed: " + tmp);
  }
  if (TABLEGAN_FAILPOINT("checkpoint.rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

// Reads the whole file, checks magic, version and the CRC-32 footer.
// On success `*contents` holds the full file, `*version` the on-disk
// format version (3, 4 or 5), and `*in` is positioned just past the
// magic.
Status ReadVerifiedFile(const std::string& path, std::string* contents,
                        std::istringstream* in, int* version) {
  if (TABLEGAN_FAILPOINT("checkpoint.open_read")) {
    return Status::IOError("cannot open for read: " + path);
  }
  // EINTR-safe whole-file read: an interrupted read() resumes instead
  // of reporting a spurious corrupt checkpoint.
  TABLEGAN_ASSIGN_OR_RETURN(*contents, io::ReadWholeFile(path));
  if (TABLEGAN_FAILPOINT("checkpoint.truncate_read")) {
    // Simulates a partial read / concurrently truncated file; the magic
    // and CRC checks below must reject whatever half survives.
    contents->resize(contents->size() / 2);
  }
  if (contents->size() < kMagicSize + kFooterSize ||
      std::memcmp(contents->data(), kMagicPrefix, sizeof(kMagicPrefix)) !=
          0) {
    return Status::InvalidArgument("not a table-GAN model file: " + path);
  }
  if (std::memcmp(contents->data(), kMagicV6, kMagicSize) == 0) {
    *version = 6;
  } else if (std::memcmp(contents->data(), kMagicV5, kMagicSize) == 0) {
    *version = 5;
  } else if (std::memcmp(contents->data(), kMagicV4, kMagicSize) == 0) {
    *version = 4;
  } else if (std::memcmp(contents->data(), kMagicV3, kMagicSize) == 0) {
    *version = 3;
  } else {
    return Status::InvalidArgument(
        "unsupported model file version '" +
        contents->substr(sizeof(kMagicPrefix),
                         kMagicSize - sizeof(kMagicPrefix)) +
        "' (this build reads versions 0003-0006): " + path);
  }
  const size_t body = contents->size() - kFooterSize;
  uint32_t stored = 0;
  std::memcpy(&stored, contents->data() + body, kFooterSize);
  if (Crc32(contents->data(), body) != stored) {
    return Status::IOError("corrupt model file (CRC mismatch): " + path);
  }
  in->str(contents->substr(0, body));
  in->seekg(kMagicSize);
  return Status::OK();
}

// The model-section header: everything before the network tensors.
struct Header {
  TableGanOptions options;
  int side = 0;
  std::vector<int> label_cols;
  data::Schema schema;
  std::vector<double> mins, maxs;
  std::vector<data::ColumnType> types;
  // Sampling-stream counters (v4+); v3 files leave has_stream false and
  // the loaded model starts a fresh stream from its options seed.
  bool has_stream = false;
  uint64_t sample_stream_seed = 0;
  uint64_t sample_rows_emitted = 0;
  // Record-encoding and conditioning section (v6+); pre-v6 files leave
  // the defaults: all-min-max specs, no mixtures, no label vocabulary.
  std::vector<data::ColumnNormalizerSpec> specs;
  std::vector<std::unique_ptr<data::GmmColumnNormalizer>> gmms;
  std::vector<std::vector<double>> label_levels;
  std::vector<std::vector<double>> label_level_freqs;
};

bool ReadHeader(std::istream& in, int version, Header* h) {
  int64_t v = 0;
  float f = 0.0f;
  TableGanOptions& o = h->options;
  if (!ReadI64(in, &v)) return false;
  o.side = static_cast<int>(v);
  if (!ReadI64(in, &v)) return false;
  o.latent_dim = static_cast<int>(v);
  if (!ReadI64(in, &v)) return false;
  o.base_channels = static_cast<int>(v);
  if (!ReadI64(in, &v)) return false;
  o.batch_size = static_cast<int>(v);
  if (!ReadF32(in, &f)) return false;
  o.delta_mean = f;
  if (!ReadF32(in, &f)) return false;
  o.delta_sd = f;
  if (!ReadI64(in, &v)) return false;
  o.seed = static_cast<uint64_t>(v);
  if (!ReadF32(in, &o.learning_rate)) return false;
  if (!ReadF32(in, &o.adam_beta1)) return false;
  if (!ReadF32(in, &o.adam_beta2)) return false;
  if (!ReadF32(in, &o.ewma_weight)) return false;
  if (!ReadF32(in, &o.info_loss_weight)) return false;
  if (!ReadI64(in, &v)) return false;
  o.use_info_loss = v != 0;
  if (!ReadI64(in, &v)) return false;
  o.use_classifier = v != 0;

  if (!ReadI64(in, &v)) return false;
  h->side = static_cast<int>(v);
  int64_t num_labels = 0;
  if (!ReadI64(in, &num_labels) || num_labels < 1 || num_labels > 4096) {
    return false;
  }
  for (int64_t j = 0; j < num_labels; ++j) {
    if (!ReadI64(in, &v)) return false;
    h->label_cols.push_back(static_cast<int>(v));
  }

  int64_t num_cols = 0;
  if (!ReadI64(in, &num_cols) || num_cols <= 0 || num_cols > 65536) {
    return false;
  }
  for (int64_t c = 0; c < num_cols; ++c) {
    data::ColumnSpec spec;
    if (!ReadString(in, &spec.name)) return false;
    if (!ReadI64(in, &v)) return false;
    spec.type = static_cast<data::ColumnType>(v);
    if (!ReadI64(in, &v)) return false;
    spec.role = static_cast<data::ColumnRole>(v);
    int64_t num_cats = 0;
    if (!ReadI64(in, &num_cats) || num_cats < 0 || num_cats > 65536) {
      return false;
    }
    for (int64_t k = 0; k < num_cats; ++k) {
      std::string cat;
      if (!ReadString(in, &cat)) return false;
      spec.categories.push_back(std::move(cat));
    }
    h->types.push_back(spec.type);
    h->schema.AddColumn(std::move(spec));
  }

  h->mins.resize(static_cast<size_t>(num_cols));
  h->maxs.resize(static_cast<size_t>(num_cols));
  for (int64_t c = 0; c < num_cols; ++c) {
    if (!ReadF64(in, &h->mins[static_cast<size_t>(c)])) return false;
    if (!ReadF64(in, &h->maxs[static_cast<size_t>(c)])) return false;
  }
  if (version >= 4) {
    if (!ReadU64(in, &h->sample_stream_seed)) return false;
    if (!ReadU64(in, &h->sample_rows_emitted)) return false;
    h->has_stream = true;
  }
  if (version >= 5) {
    // Loss-mode and guardrail options. Pre-v5 files leave the defaults
    // set by TableGanOptions: DCGAN loss, fresh guard.
    if (!ReadI64(in, &v) || v < 0 || v > 2) return false;
    o.loss_mode = static_cast<LossMode>(v);
    if (!ReadF32(in, &o.gp_weight)) return false;
    if (!ReadF32(in, &o.sn_weight)) return false;
    if (!ReadI64(in, &v) || v < 1) return false;
    o.sn_power_iters = static_cast<int>(v);
    if (!ReadI64(in, &v) || v < 0 || v > 2) return false;
    o.divergence_action = static_cast<DivergenceAction>(v);
    if (!ReadF32(in, &o.guard_ewma_weight)) return false;
    if (!ReadF32(in, &o.guard_factor)) return false;
    if (!ReadI64(in, &v) || v < 0) return false;
    o.guard_warmup_epochs = static_cast<int>(v);
    if (!ReadI64(in, &v) || v < 0) return false;
    o.guard_max_rollbacks = static_cast<int>(v);
  }
  if (version >= 6) {
    // Record-encoding and conditioning section (DESIGN.md §16).
    if (!ReadI64(in, &v) || v < 0 || v > 1) return false;
    o.conditional = v != 0;
    if (!ReadI64(in, &v) || v < 1 || v > 64) return false;
    o.gmm_components = static_cast<int>(v);
    int64_t num_gmm = 0;
    if (!ReadI64(in, &num_gmm) || num_gmm < 0 || num_gmm > num_cols) {
      return false;
    }
    for (int64_t i = 0; i < num_gmm; ++i) {
      if (!ReadI64(in, &v) || v < 0 || v >= num_cols) return false;
      o.gmm_columns.push_back(static_cast<int>(v));
    }
    h->specs.resize(static_cast<size_t>(num_cols));
    h->gmms.resize(static_cast<size_t>(num_cols));
    for (int64_t c = 0; c < num_cols; ++c) {
      if (!ReadI64(in, &v) || v < 0 || v > 1) return false;
      data::ColumnNormalizerSpec& spec = h->specs[static_cast<size_t>(c)];
      spec.kind = static_cast<data::NormalizerKind>(v);
      if (spec.kind != data::NormalizerKind::kGmm) continue;
      if (!ReadI64(in, &v) || v < 1 || v > 64) return false;
      spec.components = static_cast<int>(v);
      double lo = 0.0, hi = 0.0;
      if (!ReadF64(in, &lo) || !ReadF64(in, &hi)) return false;
      int64_t num_comps = 0;
      if (!ReadI64(in, &num_comps) || num_comps < 1 || num_comps > 64) {
        return false;
      }
      std::vector<data::GmmComponent> comps(
          static_cast<size_t>(num_comps));
      for (data::GmmComponent& comp : comps) {
        if (!ReadF64(in, &comp.weight) || !ReadF64(in, &comp.mean) ||
            !ReadF64(in, &comp.sigma) || !ReadF64(in, &comp.halfwidth)) {
          return false;
        }
      }
      auto g = std::make_unique<data::GmmColumnNormalizer>();
      g->Restore(lo, hi, std::move(comps));
      h->gmms[static_cast<size_t>(c)] = std::move(g);
    }
    if (o.conditional) {
      for (int64_t j = 0; j < num_labels; ++j) {
        int64_t num_levels = 0;
        if (!ReadI64(in, &num_levels) || num_levels < 1 ||
            num_levels > 4096) {
          return false;
        }
        std::vector<double> levels(static_cast<size_t>(num_levels));
        std::vector<double> freqs(static_cast<size_t>(num_levels));
        for (int64_t t = 0; t < num_levels; ++t) {
          if (!ReadF64(in, &levels[static_cast<size_t>(t)]) ||
              !ReadF64(in, &freqs[static_cast<size_t>(t)])) {
            return false;
          }
        }
        h->label_levels.push_back(std::move(levels));
        h->label_level_freqs.push_back(std::move(freqs));
      }
    }
  }
  return true;
}

// Float-option equality for resume validation. Bit equality first so an
// unset NaN sentinel matches itself; the numeric fallback lets +0 and
// -0 compare equal. Comparing through an explicit f32 round-trip (the
// serialized precision) keeps a value like 0.995 — not representable in
// binary floating point — from failing the check should a field ever
// widen to double on the struct while staying f32 on disk.
bool SameF32(double a, double b) {
  const float fa = static_cast<float>(a);
  const float fb = static_cast<float>(b);
  uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &fa, sizeof(ua));
  std::memcpy(&ub, &fb, sizeof(ub));
  return ua == ub || fa == fb;
}

bool ReadAdam(std::istream& in, int version, nn::Adam* adam) {
  int64_t t = 0;
  if (!ReadI64(in, &t) || t < 0) return false;
  // Recomputes the bias-correction powers from t; v4 then overwrites
  // them with the exact running products the writer carried.
  adam->set_step_count(t);
  if (version >= 4) {
    double p1 = 0.0, p2 = 0.0;
    if (!ReadF64(in, &p1) || !ReadF64(in, &p2)) return false;
    adam->set_bias_correction_powers(p1, p2);
  }
  for (Tensor* m : adam->MomentTensors()) {
    if (!ReadTensorInto(in, m)) return false;
  }
  return true;
}

void WriteAdam(std::ostream& out, int version, nn::Adam* adam) {
  WriteI64(out, adam->step_count());
  if (version >= 4) {
    WriteF64(out, adam->beta1_power());
    WriteF64(out, adam->beta2_power());
  }
  for (Tensor* m : adam->MomentTensors()) WriteTensor(out, *m);
}

}  // namespace

Status TableGan::SaveImpl(const std::string& path, const TrainingState* train,
                          int version) const {
  if (version < 3 || version > 6) {
    return Status::InvalidArgument("unsupported save version " +
                                   std::to_string(version));
  }
  if (version < 6 && (options_.conditional || !normalizer_.all_minmax())) {
    // Pre-v6 layouts have nowhere to carry the mixtures or the label
    // vocabulary; silently dropping them would save a model that decodes
    // differently than it samples.
    return Status::InvalidArgument(
        "cannot save a conditional or GMM-normalized model in format "
        "version " +
        std::to_string(version) + " (requires version 6)");
  }
  std::ostringstream out;
  out.write(version >= 6
                ? kMagicV6
                : (version >= 5 ? kMagicV5
                                : (version >= 4 ? kMagicV4 : kMagicV3)),
            kMagicSize);

  // Options: the fields that shape the architecture, sampling and the
  // training trajectory (resume validates all of them).
  WriteI64(out, options_.side);
  WriteI64(out, options_.latent_dim);
  WriteI64(out, options_.base_channels);
  WriteI64(out, options_.batch_size);
  WriteF32(out, options_.delta_mean);
  WriteF32(out, options_.delta_sd);
  WriteI64(out, static_cast<int64_t>(options_.seed));
  WriteF32(out, options_.learning_rate);
  WriteF32(out, options_.adam_beta1);
  WriteF32(out, options_.adam_beta2);
  WriteF32(out, options_.ewma_weight);
  WriteF32(out, options_.info_loss_weight);
  WriteI64(out, options_.use_info_loss ? 1 : 0);
  WriteI64(out, options_.use_classifier ? 1 : 0);
  WriteI64(out, side_);
  WriteI64(out, static_cast<int64_t>(label_cols_.size()));
  for (int col : label_cols_) WriteI64(out, col);

  // Schema.
  WriteI64(out, schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    const data::ColumnSpec& spec = schema_.column(c);
    WriteString(out, spec.name);
    WriteI64(out, static_cast<int64_t>(spec.type));
    WriteI64(out, static_cast<int64_t>(spec.role));
    WriteI64(out, spec.num_categories());
    for (const std::string& cat : spec.categories) WriteString(out, cat);
  }

  // Normalizer bounds.
  for (int c = 0; c < schema_.num_columns(); ++c) {
    WriteF64(out, normalizer_.minmax().mins()[static_cast<size_t>(c)]);
    WriteF64(out, normalizer_.minmax().maxs()[static_cast<size_t>(c)]);
  }

  // Sampling-stream counters (v4+): a reloaded model continues Sample's
  // counter-derived substreams where this one left off.
  if (version >= 4) {
    WriteU64(out, sample_stream_seed_);
    WriteU64(out, sample_rows_emitted_);
  }

  // Loss-mode and guardrail options (v5+).
  if (version >= 5) {
    WriteI64(out, static_cast<int64_t>(options_.loss_mode));
    WriteF32(out, options_.gp_weight);
    WriteF32(out, options_.sn_weight);
    WriteI64(out, options_.sn_power_iters);
    WriteI64(out, static_cast<int64_t>(options_.divergence_action));
    WriteF32(out, options_.guard_ewma_weight);
    WriteF32(out, options_.guard_factor);
    WriteI64(out, options_.guard_warmup_epochs);
    WriteI64(out, options_.guard_max_rollbacks);
  }

  // Record-encoding and conditioning section (v6+).
  if (version >= 6) {
    WriteI64(out, options_.conditional ? 1 : 0);
    WriteI64(out, options_.gmm_components);
    WriteI64(out, static_cast<int64_t>(options_.gmm_columns.size()));
    for (int c : options_.gmm_columns) WriteI64(out, c);
    const std::vector<data::ColumnNormalizerSpec>& specs =
        normalizer_.specs();
    for (int c = 0; c < schema_.num_columns(); ++c) {
      const data::NormalizerKind kind =
          specs.empty() ? data::NormalizerKind::kMinMax
                        : specs[static_cast<size_t>(c)].kind;
      WriteI64(out, static_cast<int64_t>(kind));
      if (kind != data::NormalizerKind::kGmm) continue;
      const data::GmmColumnNormalizer* g = normalizer_.gmm(c);
      WriteI64(out, specs[static_cast<size_t>(c)].components);
      WriteF64(out, g->lo());
      WriteF64(out, g->hi());
      WriteI64(out, g->num_components());
      for (const data::GmmComponent& comp : g->components()) {
        WriteF64(out, comp.weight);
        WriteF64(out, comp.mean);
        WriteF64(out, comp.sigma);
        WriteF64(out, comp.halfwidth);
      }
    }
    if (options_.conditional) {
      for (size_t j = 0; j < label_cols_.size(); ++j) {
        const std::vector<double>& levels = label_levels_[j];
        const std::vector<double>& freqs = label_level_freqs_[j];
        WriteI64(out, static_cast<int64_t>(levels.size()));
        for (size_t t = 0; t < levels.size(); ++t) {
          WriteF64(out, levels[t]);
          WriteF64(out, freqs[t]);
        }
      }
    }
  }

  // Network state.
  auto write_net = [&out](nn::Sequential* net) {
    for (Tensor* t : AllState(net)) WriteTensor(out, *t);
  };
  write_net(generator_.get());
  write_net(discriminator_.features.get());
  write_net(discriminator_.head.get());
  write_net(classifier_.features.get());
  write_net(classifier_.head.get());

  // Training section (mid-training checkpoints only).
  WriteI64(out, train != nullptr ? 1 : 0);
  if (train != nullptr) {
    WriteI64(out, train->epochs_completed);
    const Rng::State rs = rng_.state();
    for (uint64_t s : rs.s) WriteU64(out, s);
    WriteI64(out, rs.has_cached_gaussian ? 1 : 0);
    WriteF64(out, rs.cached_gaussian);
    WriteAdam(out, version, train->adam_g);
    WriteAdam(out, version, train->adam_d);
    WriteAdam(out, version, train->adam_c);
    WriteI64(out, train->info->initialized() ? 1 : 0);
    for (Tensor* t : train->info->EwmaTensors()) WriteTensor(out, *t);
    if (version >= 5) {
      // Divergence-guard state, rollback budget spent, and the
      // spectral-norm power-iteration vectors (u then v per bound
      // weight, binding order).
      WriteF64(out, train->guard != nullptr ? train->guard->ewma() : 0.0);
      WriteF64(out,
               train->guard != nullptr ? train->guard->baseline() : 0.0);
      WriteI64(out, train->guard != nullptr
                        ? train->guard->observed_epochs()
                        : 0);
      WriteI64(out, train->rollbacks_used);
      std::vector<Tensor*> sn_state;
      if (train->sn != nullptr) sn_state = train->sn->StateTensors();
      WriteI64(out, static_cast<int64_t>(sn_state.size()));
      for (Tensor* t : sn_state) WriteTensor(out, *t);
    }
    WriteI64(out, static_cast<int64_t>(history_.size()));
    for (const EpochStats& s : history_) {
      WriteF32(out, s.d_loss);
      WriteF32(out, s.g_orig_loss);
      WriteF32(out, s.info_loss);
      WriteF32(out, s.class_loss);
      WriteF32(out, s.l_mean);
      WriteF32(out, s.l_sd);
    }
  }

  std::string payload = std::move(out).str();
  const uint32_t crc = Crc32(payload.data(), payload.size());
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return AtomicWriteFile(path, std::move(payload));
}

Status TableGan::Save(const std::string& path) const {
  if (!fitted_) return Status::FailedPrecondition("Save before Fit");
  return SaveImpl(path, nullptr, 6);
}

Status TableGan::SaveCompat(const std::string& path, int version) const {
  if (!fitted_) return Status::FailedPrecondition("Save before Fit");
  return SaveImpl(path, nullptr, version);
}

Result<TableGan> TableGan::Load(const std::string& path) {
  std::string contents;
  std::istringstream in;
  int version = 0;
  TABLEGAN_RETURN_NOT_OK(ReadVerifiedFile(path, &contents, &in, &version));
  const auto corrupt = [&path]() {
    return Status::IOError("corrupt model file: " + path);
  };

  Header h;
  if (!ReadHeader(in, version, &h)) return corrupt();

  TableGan gan(h.options);
  gan.side_ = h.side;
  gan.label_cols_ = h.label_cols;
  gan.schema_ = h.schema;
  gan.normalizer_.Restore(std::move(h.mins), std::move(h.maxs),
                          std::move(h.types), std::move(h.specs),
                          std::move(h.gmms));
  gan.label_levels_ = std::move(h.label_levels);
  gan.label_level_freqs_ = std::move(h.label_level_freqs);
  // The codec spans the encoded record, which GMM columns widen beyond
  // the schema width (pre-v6 files: encoded_width == num_columns).
  gan.codec_ = std::make_unique<data::RecordMatrixCodec>(
      gan.normalizer_.encoded_width(), gan.side_);
  if (h.has_stream) {
    // Continue the saved sampling stream instead of replaying it (v3
    // files fall back to a fresh stream seeded from the options).
    gan.sample_stream_seed_ = h.sample_stream_seed;
    gan.sample_rows_emitted_ = h.sample_rows_emitted;
  }

  // Rebuild the architecture, then overwrite its state. (The training
  // section, if present, is ignored here: a checkpoint is a superset of
  // a model file and loads as one.)
  Rng init_rng(h.options.seed);
  gan.generator_ =
      BuildGenerator(gan.side_, h.options.latent_dim + gan.cond_dim(),
                     h.options.base_channels, &init_rng);
  gan.discriminator_ =
      BuildDiscriminator(gan.side_, h.options.base_channels, &init_rng);
  gan.classifier_ =
      BuildDiscriminator(gan.side_, h.options.base_channels, &init_rng,
                         static_cast<int>(gan.label_cols_.size()));
  if (!ReadNet(in, gan.generator_.get()) ||
      !ReadNet(in, gan.discriminator_.features.get()) ||
      !ReadNet(in, gan.discriminator_.head.get()) ||
      !ReadNet(in, gan.classifier_.features.get()) ||
      !ReadNet(in, gan.classifier_.head.get())) {
    return corrupt();
  }
  int64_t has_training = 0;
  if (!ReadI64(in, &has_training)) return corrupt();
  gan.fitted_ = true;
  return gan;
}

Status TableGan::RestoreTrainingState(const std::string& path,
                                      TrainingState* train) {
  std::string contents;
  std::istringstream in;
  int version = 0;
  TABLEGAN_RETURN_NOT_OK(ReadVerifiedFile(path, &contents, &in, &version));
  const auto corrupt = [&path]() {
    return Status::IOError("corrupt checkpoint file: " + path);
  };
  const auto mismatch = [&path](const std::string& what) {
    return Status::InvalidArgument("cannot resume from " + path +
                                   ": checkpoint " + what +
                                   " does not match the current run");
  };

  Header h;
  if (!ReadHeader(in, version, &h)) return corrupt();

  // Resuming replays the exact stream an uninterrupted run would take,
  // so every numerics-affecting option must match.
  const TableGanOptions& o = h.options;
  if (o.side != options_.side || o.latent_dim != options_.latent_dim ||
      o.base_channels != options_.base_channels ||
      o.batch_size != options_.batch_size || o.seed != options_.seed) {
    return mismatch("architecture options");
  }
  // Float options are compared through SameF32, never raw `==`/`!=`:
  // the on-disk representation is f32, and the comparison must be
  // against what survives that round trip (and an unset NaN must match
  // itself).
  if (!SameF32(o.learning_rate, options_.learning_rate) ||
      !SameF32(o.adam_beta1, options_.adam_beta1) ||
      !SameF32(o.adam_beta2, options_.adam_beta2) ||
      !SameF32(o.ewma_weight, options_.ewma_weight) ||
      !SameF32(o.info_loss_weight, options_.info_loss_weight) ||
      !SameF32(o.delta_mean, options_.delta_mean) ||
      !SameF32(o.delta_sd, options_.delta_sd) ||
      o.use_info_loss != options_.use_info_loss ||
      o.use_classifier != options_.use_classifier) {
    return mismatch("training options");
  }
  // v4 checkpoints carry no stability section; resuming them under a
  // non-default loss mode would silently switch objectives mid-run, so
  // the defaults ReadHeader leaves in place must match too.
  if (o.loss_mode != options_.loss_mode ||
      !SameF32(o.gp_weight, options_.gp_weight) ||
      !SameF32(o.sn_weight, options_.sn_weight) ||
      o.sn_power_iters != options_.sn_power_iters ||
      o.divergence_action != options_.divergence_action ||
      !SameF32(o.guard_ewma_weight, options_.guard_ewma_weight) ||
      !SameF32(o.guard_factor, options_.guard_factor) ||
      o.guard_warmup_epochs != options_.guard_warmup_epochs ||
      o.guard_max_rollbacks != options_.guard_max_rollbacks) {
    return mismatch("training-stability options");
  }
  // The record encoding and conditioning setup shape the generator
  // input and the codec width; resuming across a change would replay a
  // different architecture.
  if (o.conditional != options_.conditional ||
      o.gmm_components != options_.gmm_components ||
      o.gmm_columns != options_.gmm_columns) {
    return mismatch("conditional/GMM options");
  }
  if (h.side != side_) return mismatch("matrix side");
  if (h.label_cols != label_cols_) return mismatch("label columns");
  if (!h.schema.Equals(schema_)) return mismatch("schema");
  if (h.mins != normalizer_.minmax().mins() ||
      h.maxs != normalizer_.minmax().maxs()) {
    return mismatch("normalizer bounds (different training table?)");
  }
  if (version >= 6) {
    // The fitted mixtures are a deterministic function of the training
    // table and options, so any drift means a different table.
    for (int c = 0; c < schema_.num_columns(); ++c) {
      const data::GmmColumnNormalizer* mine = normalizer_.gmm(c);
      const data::GmmColumnNormalizer* theirs =
          h.gmms.empty() ? nullptr : h.gmms[static_cast<size_t>(c)].get();
      if ((mine == nullptr) != (theirs == nullptr)) {
        return mismatch("GMM column selection");
      }
      if (mine == nullptr) continue;
      bool equal = mine->lo() == theirs->lo() &&
                   mine->hi() == theirs->hi() &&
                   mine->num_components() == theirs->num_components();
      for (int m = 0; equal && m < mine->num_components(); ++m) {
        const data::GmmComponent& a =
            mine->components()[static_cast<size_t>(m)];
        const data::GmmComponent& b =
            theirs->components()[static_cast<size_t>(m)];
        equal = a.weight == b.weight && a.mean == b.mean &&
                a.sigma == b.sigma && a.halfwidth == b.halfwidth;
      }
      if (!equal) {
        return mismatch("GMM parameters (different training table?)");
      }
    }
    if (options_.conditional && (h.label_levels != label_levels_ ||
                                 h.label_level_freqs != label_level_freqs_)) {
      return mismatch("label vocabulary (different training table?)");
    }
  }
  if (h.has_stream) {
    sample_stream_seed_ = h.sample_stream_seed;
    sample_rows_emitted_ = h.sample_rows_emitted;
  }

  if (!ReadNet(in, generator_.get()) ||
      !ReadNet(in, discriminator_.features.get()) ||
      !ReadNet(in, discriminator_.head.get()) ||
      !ReadNet(in, classifier_.features.get()) ||
      !ReadNet(in, classifier_.head.get())) {
    return corrupt();
  }

  int64_t has_training = 0;
  if (!ReadI64(in, &has_training)) return corrupt();
  if (has_training != 1) {
    return Status::InvalidArgument(
        "cannot resume from " + path +
        ": file is a final model without a training section");
  }
  int64_t v = 0;
  if (!ReadI64(in, &v) || v < 0) return corrupt();
  train->epochs_completed = static_cast<int>(v);
  Rng::State rs;
  for (uint64_t& s : rs.s) {
    if (!ReadU64(in, &s)) return corrupt();
  }
  if (!ReadI64(in, &v)) return corrupt();
  rs.has_cached_gaussian = v != 0;
  if (!ReadF64(in, &rs.cached_gaussian)) return corrupt();
  rng_.set_state(rs);
  if (!ReadAdam(in, version, train->adam_g) ||
      !ReadAdam(in, version, train->adam_d) ||
      !ReadAdam(in, version, train->adam_c)) {
    return corrupt();
  }
  if (!ReadI64(in, &v)) return corrupt();
  train->info->set_initialized(v != 0);
  for (Tensor* t : train->info->EwmaTensors()) {
    if (!ReadTensorInto(in, t)) return corrupt();
  }
  if (version >= 5) {
    double ewma = 0.0, baseline = 0.0;
    int64_t observed = 0;
    if (!ReadF64(in, &ewma) || !ReadF64(in, &baseline) ||
        !ReadI64(in, &observed) || observed < 0) {
      return corrupt();
    }
    if (train->guard != nullptr) {
      train->guard->Restore(ewma, baseline, observed);
    }
    if (!ReadI64(in, &train->rollbacks_used) || train->rollbacks_used < 0) {
      return corrupt();
    }
    std::vector<Tensor*> sn_state;
    if (train->sn != nullptr) sn_state = train->sn->StateTensors();
    if (!ReadI64(in, &v) || v != static_cast<int64_t>(sn_state.size())) {
      // loss_mode was validated equal above, so a count mismatch means
      // a corrupt file, not a mode change.
      return corrupt();
    }
    for (Tensor* t : sn_state) {
      if (!ReadTensorInto(in, t)) return corrupt();
    }
  }
  int64_t num_epochs = 0;
  if (!ReadI64(in, &num_epochs) || num_epochs < 0 ||
      num_epochs < train->epochs_completed || num_epochs > (1 << 24)) {
    return corrupt();
  }
  history_.clear();
  history_.reserve(static_cast<size_t>(num_epochs));
  for (int64_t i = 0; i < num_epochs; ++i) {
    EpochStats s;
    if (!ReadF32(in, &s.d_loss) || !ReadF32(in, &s.g_orig_loss) ||
        !ReadF32(in, &s.info_loss) || !ReadF32(in, &s.class_loss) ||
        !ReadF32(in, &s.l_mean) || !ReadF32(in, &s.l_sd)) {
      return corrupt();
    }
    history_.push_back(s);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace tablegan
