// Binary persistence for trained table-GAN models (TableGan::Save /
// TableGan::Load). Format: magic + version, options, schema, normalizer
// bounds, then the parameter and buffer tensors of the generator,
// discriminator and classifier in construction order.

#include <cstdint>
#include <fstream>

#include "core/table_gan.h"

namespace tablegan {
namespace core {
namespace {

constexpr char kMagic[8] = {'T', 'G', 'A', 'N', '0', '0', '0', '2'};

// --- primitive writers/readers (little-endian host assumed; the format
// is a cache, not an interchange format).

void WriteI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteI64(out, static_cast<int64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteTensor(std::ostream& out, const Tensor& t) {
  WriteI64(out, t.rank());
  for (int64_t d : t.shape()) WriteI64(out, d);
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
}

bool ReadI64(std::istream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadF32(std::istream& in, float* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadF64(std::istream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool ReadString(std::istream& in, std::string* s) {
  int64_t n = 0;
  if (!ReadI64(in, &n) || n < 0 || n > (1 << 20)) return false;
  s->resize(static_cast<size_t>(n));
  in.read(s->data(), n);
  return static_cast<bool>(in);
}

// Reads a tensor into `*t`, which must already have the expected shape
// (the architecture is rebuilt from options before loading weights).
bool ReadTensorInto(std::istream& in, Tensor* t) {
  int64_t rank = 0;
  if (!ReadI64(in, &rank) || rank != t->rank()) return false;
  for (int i = 0; i < t->rank(); ++i) {
    int64_t d = 0;
    if (!ReadI64(in, &d) || d != t->dim(i)) return false;
  }
  in.read(reinterpret_cast<char*>(t->data()),
          static_cast<std::streamsize>(t->size() * sizeof(float)));
  return static_cast<bool>(in);
}

std::vector<Tensor*> AllState(nn::Sequential* net) {
  std::vector<Tensor*> out = net->Parameters();
  for (Tensor* b : net->Buffers()) out.push_back(b);
  return out;
}

}  // namespace

Status TableGan::Save(const std::string& path) const {
  if (!fitted_) return Status::FailedPrecondition("Save before Fit");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));

  // Options (only the fields that shape the architecture + sampling).
  WriteI64(out, options_.side);
  WriteI64(out, options_.latent_dim);
  WriteI64(out, options_.base_channels);
  WriteI64(out, options_.batch_size);
  WriteF32(out, options_.delta_mean);
  WriteF32(out, options_.delta_sd);
  WriteI64(out, static_cast<int64_t>(options_.seed));
  WriteI64(out, side_);
  WriteI64(out, static_cast<int64_t>(label_cols_.size()));
  for (int col : label_cols_) WriteI64(out, col);

  // Schema.
  WriteI64(out, schema_.num_columns());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    const data::ColumnSpec& spec = schema_.column(c);
    WriteString(out, spec.name);
    WriteI64(out, static_cast<int64_t>(spec.type));
    WriteI64(out, static_cast<int64_t>(spec.role));
    WriteI64(out, spec.num_categories());
    for (const std::string& cat : spec.categories) WriteString(out, cat);
  }

  // Normalizer bounds.
  for (int c = 0; c < schema_.num_columns(); ++c) {
    WriteF64(out, normalizer_.mins()[static_cast<size_t>(c)]);
    WriteF64(out, normalizer_.maxs()[static_cast<size_t>(c)]);
  }

  // Network state.
  auto write_net = [&out](nn::Sequential* net) {
    for (Tensor* t : AllState(net)) WriteTensor(out, *t);
  };
  write_net(generator_.get());
  write_net(discriminator_.features.get());
  write_net(discriminator_.head.get());
  write_net(classifier_.features.get());
  write_net(classifier_.head.get());

  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<TableGan> TableGan::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 8) != std::string(kMagic, 8)) {
    return Status::InvalidArgument("not a table-GAN model file: " + path);
  }
  const auto corrupt = [&path]() {
    return Status::IOError("corrupt model file: " + path);
  };

  TableGanOptions options;
  int64_t v = 0;
  float f = 0.0f;
  if (!ReadI64(in, &v)) return corrupt();
  options.side = static_cast<int>(v);
  if (!ReadI64(in, &v)) return corrupt();
  options.latent_dim = static_cast<int>(v);
  if (!ReadI64(in, &v)) return corrupt();
  options.base_channels = static_cast<int>(v);
  if (!ReadI64(in, &v)) return corrupt();
  options.batch_size = static_cast<int>(v);
  if (!ReadF32(in, &f)) return corrupt();
  options.delta_mean = f;
  if (!ReadF32(in, &f)) return corrupt();
  options.delta_sd = f;
  if (!ReadI64(in, &v)) return corrupt();
  options.seed = static_cast<uint64_t>(v);

  TableGan gan(options);
  if (!ReadI64(in, &v)) return corrupt();
  gan.side_ = static_cast<int>(v);
  int64_t num_labels = 0;
  if (!ReadI64(in, &num_labels) || num_labels < 1 || num_labels > 4096) {
    return corrupt();
  }
  for (int64_t j = 0; j < num_labels; ++j) {
    if (!ReadI64(in, &v)) return corrupt();
    gan.label_cols_.push_back(static_cast<int>(v));
  }

  int64_t num_cols = 0;
  if (!ReadI64(in, &num_cols) || num_cols <= 0 || num_cols > 65536) {
    return corrupt();
  }
  data::Schema schema;
  std::vector<data::ColumnType> types;
  for (int64_t c = 0; c < num_cols; ++c) {
    data::ColumnSpec spec;
    if (!ReadString(in, &spec.name)) return corrupt();
    if (!ReadI64(in, &v)) return corrupt();
    spec.type = static_cast<data::ColumnType>(v);
    if (!ReadI64(in, &v)) return corrupt();
    spec.role = static_cast<data::ColumnRole>(v);
    int64_t num_cats = 0;
    if (!ReadI64(in, &num_cats) || num_cats < 0 || num_cats > 65536) {
      return corrupt();
    }
    for (int64_t k = 0; k < num_cats; ++k) {
      std::string cat;
      if (!ReadString(in, &cat)) return corrupt();
      spec.categories.push_back(std::move(cat));
    }
    types.push_back(spec.type);
    schema.AddColumn(std::move(spec));
  }
  gan.schema_ = schema;

  std::vector<double> mins(static_cast<size_t>(num_cols));
  std::vector<double> maxs(static_cast<size_t>(num_cols));
  for (int64_t c = 0; c < num_cols; ++c) {
    if (!ReadF64(in, &mins[static_cast<size_t>(c)])) return corrupt();
    if (!ReadF64(in, &maxs[static_cast<size_t>(c)])) return corrupt();
  }
  gan.normalizer_.Restore(std::move(mins), std::move(maxs),
                          std::move(types));
  gan.codec_ = std::make_unique<data::RecordMatrixCodec>(
      static_cast<int>(num_cols), gan.side_);

  // Rebuild the architecture, then overwrite its state.
  Rng init_rng(options.seed);
  gan.generator_ = BuildGenerator(gan.side_, options.latent_dim,
                                  options.base_channels, &init_rng);
  gan.discriminator_ =
      BuildDiscriminator(gan.side_, options.base_channels, &init_rng);
  gan.classifier_ =
      BuildDiscriminator(gan.side_, options.base_channels, &init_rng,
                         static_cast<int>(gan.label_cols_.size()));
  auto read_net = [&in](nn::Sequential* net) {
    for (Tensor* t : AllState(net)) {
      if (!ReadTensorInto(in, t)) return false;
    }
    return true;
  };
  if (!read_net(gan.generator_.get()) ||
      !read_net(gan.discriminator_.features.get()) ||
      !read_net(gan.discriminator_.head.get()) ||
      !read_net(gan.classifier_.features.get()) ||
      !read_net(gan.classifier_.head.get())) {
    return corrupt();
  }
  gan.fitted_ = true;
  return gan;
}

}  // namespace core
}  // namespace tablegan
