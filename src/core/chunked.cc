#include "core/chunked.h"

#include <exception>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/table_gan.h"
#include "data/split.h"

namespace tablegan {
namespace core {
namespace {

// Domain tag separating chunk-seed derivation from every other MixSeeds
// use (e.g. the sampling substream tag), so a chunk seed can never
// collide with a sampling stream of the same base seed. ASCII "Chunk".
constexpr uint64_t kChunkStreamTag = 0x4368756E6BULL;

}  // namespace

uint64_t ChunkSeed(uint64_t base_seed, int chunk_index) {
  return MixSeeds(MixSeeds(base_seed, kChunkStreamTag),
                  static_cast<uint64_t>(chunk_index));
}

Result<data::Table> ChunkedTrainAndSynthesize(
    const data::TableView& table, int label_col, int64_t num_samples,
    const ChunkedSynthesisOptions& options) {
  if (options.num_chunks < 1) {
    return Status::InvalidArgument("num_chunks must be >= 1");
  }
  std::vector<data::TableRangeView> chunks =
      data::SplitChunkViews(table, options.num_chunks);
  const int k = static_cast<int>(chunks.size());

  // Every status starts as a sentinel error, not OK: when ParallelFor
  // cancels unclaimed chunks after a failure (or a worker dies before
  // writing its slot), the unrun chunks must not read as successes —
  // a default-OK vector silently returned partial results.
  std::vector<Status> statuses(
      static_cast<size_t>(k),
      Status::Internal("chunk not run (cancelled or never scheduled)"));
  std::vector<data::Table> outputs(static_cast<size_t>(k));
  ThreadPool pool(options.num_threads);
  try {
    pool.ParallelFor(k, [&](int i) {
      TableGanOptions gan_options = options.gan;
      gan_options.seed = ChunkSeed(options.gan.seed, i);
      TableGan gan(gan_options);
      Status st = gan.Fit(chunks[static_cast<size_t>(i)], label_col);
      if (!st.ok()) {
        statuses[static_cast<size_t>(i)] = st;
        return;
      }
      const int64_t share =
          num_samples * (i + 1) / k - num_samples * i / k;
      if (share > 0) {
        // Conditional runs read the stateless per-label stream keyed by
        // the chunk's own derived seed; unconditional runs keep the
        // stateful Sample path (same stream, same bytes as before).
        Result<data::Table> sampled =
            options.where_label.has_value()
                ? gan.SampleConditional(gan_options.seed, 0, share,
                                        *options.where_label)
                : gan.Sample(share);
        if (!sampled.ok()) {
          statuses[static_cast<size_t>(i)] = sampled.status();
          return;
        }
        outputs[static_cast<size_t>(i)] = std::move(sampled).value();
      } else {
        outputs[static_cast<size_t>(i)] = data::Table(table.schema());
      }
      statuses[static_cast<size_t>(i)] = Status::OK();
    });
  } catch (const std::exception& e) {
    return Status::Internal(std::string("chunk worker threw: ") + e.what());
  }
  for (const Status& st : statuses) {
    TABLEGAN_RETURN_NOT_OK(st);
  }
  return data::Table::ConcatRows(outputs);
}

}  // namespace core
}  // namespace tablegan
