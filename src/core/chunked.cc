#include "core/chunked.h"

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/table_gan.h"
#include "data/split.h"

namespace tablegan {
namespace core {

Result<data::Table> ChunkedTrainAndSynthesize(
    const data::Table& table, int label_col, int64_t num_samples,
    const ChunkedSynthesisOptions& options) {
  if (options.num_chunks < 1) {
    return Status::InvalidArgument("num_chunks must be >= 1");
  }
  std::vector<data::Table> chunks =
      data::SplitChunks(table, options.num_chunks);
  const int k = static_cast<int>(chunks.size());

  std::vector<Status> statuses(static_cast<size_t>(k));
  std::vector<data::Table> outputs(static_cast<size_t>(k));
  ThreadPool pool(options.num_threads);
  pool.ParallelFor(k, [&](int i) {
    TableGanOptions gan_options = options.gan;
    gan_options.seed = options.gan.seed + static_cast<uint64_t>(i) * 7919;
    TableGan gan(gan_options);
    Status st = gan.Fit(chunks[static_cast<size_t>(i)], label_col);
    if (!st.ok()) {
      statuses[static_cast<size_t>(i)] = st;
      return;
    }
    const int64_t share =
        num_samples * (i + 1) / k - num_samples * i / k;
    if (share > 0) {
      Result<data::Table> sampled = gan.Sample(share);
      if (!sampled.ok()) {
        statuses[static_cast<size_t>(i)] = sampled.status();
        return;
      }
      outputs[static_cast<size_t>(i)] = std::move(sampled).value();
    } else {
      outputs[static_cast<size_t>(i)] = data::Table(table.schema());
    }
    statuses[static_cast<size_t>(i)] = Status::OK();
  });
  for (const Status& st : statuses) {
    TABLEGAN_RETURN_NOT_OK(st);
  }
  return data::Table::ConcatRows(outputs);
}

}  // namespace core
}  // namespace tablegan
