#ifndef TABLEGAN_CORE_TABLE_GAN_OPTIONS_H_
#define TABLEGAN_CORE_TABLE_GAN_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/metrics.h"

namespace tablegan {
namespace core {

/// Hyper-parameters of table-GAN (paper §4, §5.1.5). Defaults follow the
/// paper's DCGAN-default setup: Adam(2e-4, beta1 0.5), 25 epochs,
/// mini-batch 64, latent z uniform on the 100-dim unit hypercube.
struct TableGanOptions {
  /// Side of the record square matrix; 0 = smallest power of two whose
  /// square holds all attributes (paper §3.2 pads with zeros).
  int side = 0;
  int latent_dim = 100;
  /// Channels of the first discriminator conv; doubles per stage.
  int base_channels = 32;
  int epochs = 25;
  int batch_size = 64;

  float learning_rate = 2e-4f;
  float adam_beta1 = 0.5f;
  float adam_beta2 = 0.999f;

  /// Privacy margins of the hinge information loss (Eq. 4). Our margins
  /// threshold the *relative* feature-statistics gap (see
  /// core/info_loss.h), whose trained floor is ~0.3 and unmatched
  /// ceiling ~0.5 at CPU scale; the named presets below map the paper's
  /// raw-norm settings {0, 0.1, 0.2} onto that range: low = 0,
  /// mid = 0.35, high = 0.5.
  float delta_mean = 0.0f;
  float delta_sd = 0.0f;

  /// Weight of the moving-average feature statistics (Alg. 2, w = 0.99).
  float ewma_weight = 0.99f;

  /// Multiplier of L_info in the generator objective. The paper sums the
  /// three losses unweighted on GPU-scale training; at our reduced CPU
  /// training budget the adversarial game keeps the feature-statistics
  /// gap above the delta margins unless the matching term is emphasized,
  /// so the default upweights it (see DESIGN.md adaptation notes).
  float info_loss_weight = 5.0f;

  /// Ablation/baseline switches: disabling both reduces table-GAN to the
  /// plain DCGAN baseline of §5.1.3.
  bool use_info_loss = true;
  bool use_classifier = true;

  /// Worker threads for the tensor substrate (GEMM and im2col conv
  /// kernels). 0 defers to the TABLEGAN_NUM_THREADS environment variable,
  /// then to the hardware concurrency. Every parallel kernel is bitwise
  /// deterministic: any thread count reproduces the 1-thread results.
  int num_threads = 0;

  /// Reuse training-step buffers (activations, gradients, im2col
  /// scratch, batch assembly) across iterations via a shape-keyed
  /// workspace pool, making the steady-state step allocation-free.
  /// Results are bitwise identical either way; the flag exists so tests
  /// and benchmarks can compare the pooled and allocating paths. Not
  /// serialized in checkpoints and not validated on resume — it is a
  /// memory-management choice, not a model hyper-parameter.
  bool reuse_workspace = true;

  uint64_t seed = 47;
  bool verbose = false;

  /// --- Training telemetry ------------------------------------------
  /// Per-epoch metrics consumer (non-owning; must outlive Fit). A
  /// JsonlMetricsSink streams the records to disk; a non-OK Record
  /// aborts training with that status.
  MetricsSink* metrics_sink = nullptr;
  /// In-process per-epoch hook, called after metrics_sink. Useful for
  /// live progress UIs and tests; exceptions are not caught.
  std::function<void(const TrainingMetrics&)> metrics_callback;

  /// --- Checkpointing / resume --------------------------------------
  /// Write a full training checkpoint (weights, optimizer moments, RNG
  /// stream, EWMA statistics, loss history) into `checkpoint_dir` every
  /// this many epochs (and at the final epoch). 0 disables. Files are
  /// written atomically (temp file + rename) with a CRC-32 footer as
  /// `ckpt-epoch-NNNN.tgan`, plus a `latest.tgan` alias.
  int checkpoint_every = 0;
  std::string checkpoint_dir;
  /// Path of a checkpoint to resume Fit from. Training continues at the
  /// saved epoch and is bitwise identical to an uninterrupted run; the
  /// checkpoint must have been written with the same options and
  /// training table (epochs may be raised to extend a finished run).
  std::string resume_from;

  /// The paper's three named privacy settings (Tables 5-6), calibrated
  /// to the relative-gap scale (see delta_mean above).
  static TableGanOptions LowPrivacy() { return TableGanOptions(); }
  static TableGanOptions MidPrivacy() {
    TableGanOptions o;
    o.delta_mean = 0.35f;
    o.delta_sd = 0.35f;
    return o;
  }
  static TableGanOptions HighPrivacy() {
    TableGanOptions o;
    o.delta_mean = 0.5f;
    o.delta_sd = 0.5f;
    return o;
  }
  /// The DCGAN baseline: original loss only.
  static TableGanOptions DcganBaseline() {
    TableGanOptions o;
    o.use_info_loss = false;
    o.use_classifier = false;
    return o;
  }
};

}  // namespace core
}  // namespace tablegan

#endif  // TABLEGAN_CORE_TABLE_GAN_OPTIONS_H_
