#ifndef TABLEGAN_CORE_TABLE_GAN_OPTIONS_H_
#define TABLEGAN_CORE_TABLE_GAN_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace tablegan {
namespace core {

/// Adversarial objective of the discriminator/generator game
/// (DESIGN.md §15). The numeric values are the on-disk encoding of
/// checkpoint format v5 — do not renumber.
enum class LossMode : int {
  /// The paper's DCGAN BCE loss (Alg. 2). Default; bitwise identical to
  /// every pre-loss-mode build.
  kDcgan = 0,
  /// Wasserstein critic with a gradient penalty on interpolated
  /// real/synthetic batches (Gulrajani et al.); `gp_weight` scales the
  /// penalty. The standard remedy when the BCE game destabilizes on
  /// large/wide tables (RCC-GAN, 2205.11693).
  kWganGp = 1,
  /// DCGAN BCE loss plus a spectral-norm-style penalty on every rank-2
  /// discriminator weight (Dense / Conv2d), estimated by power
  /// iteration; `sn_weight` scales the penalty.
  kSpectralNorm = 2,
};

/// What Fit does when the divergence guardrail fires (loss went
/// non-finite or the loss EWMA ran away, DESIGN.md §15). Numeric values
/// are the checkpoint v5 encoding.
enum class DivergenceAction : int {
  /// Guardrail disabled: diverging runs keep training (pre-v5 behavior).
  kOff = 0,
  /// Auto-checkpoint the last-good state, restore it into the model and
  /// abort Fit with a non-OK Status.
  kHalt = 1,
  /// Auto-checkpoint and restore the last-good state, then retry the
  /// epoch with fresh randomness (the RNG stream is deliberately NOT
  /// rolled back — replaying identical draws would diverge identically).
  /// After `guard_max_rollbacks` retries the run halts.
  kRollback = 2,
};

/// Hyper-parameters of table-GAN (paper §4, §5.1.5). Defaults follow the
/// paper's DCGAN-default setup: Adam(2e-4, beta1 0.5), 25 epochs,
/// mini-batch 64, latent z uniform on the 100-dim unit hypercube.
struct TableGanOptions {
  /// Side of the record square matrix; 0 = smallest power of two whose
  /// square holds all attributes (paper §3.2 pads with zeros).
  int side = 0;
  int latent_dim = 100;
  /// Channels of the first discriminator conv; doubles per stage.
  int base_channels = 32;
  int epochs = 25;
  int batch_size = 64;

  float learning_rate = 2e-4f;
  float adam_beta1 = 0.5f;
  float adam_beta2 = 0.999f;

  /// Privacy margins of the hinge information loss (Eq. 4). Our margins
  /// threshold the *relative* feature-statistics gap (see
  /// core/info_loss.h), whose trained floor is ~0.3 and unmatched
  /// ceiling ~0.5 at CPU scale; the named presets below map the paper's
  /// raw-norm settings {0, 0.1, 0.2} onto that range: low = 0,
  /// mid = 0.35, high = 0.5.
  float delta_mean = 0.0f;
  float delta_sd = 0.0f;

  /// Weight of the moving-average feature statistics (Alg. 2, w = 0.99).
  float ewma_weight = 0.99f;

  /// Multiplier of L_info in the generator objective. The paper sums the
  /// three losses unweighted on GPU-scale training; at our reduced CPU
  /// training budget the adversarial game keeps the feature-statistics
  /// gap above the delta margins unless the matching term is emphasized,
  /// so the default upweights it (see DESIGN.md adaptation notes).
  float info_loss_weight = 5.0f;

  /// Ablation/baseline switches: disabling both reduces table-GAN to the
  /// plain DCGAN baseline of §5.1.3.
  bool use_info_loss = true;
  bool use_classifier = true;

  /// --- Training stability (DESIGN.md §15) ---------------------------
  /// Adversarial objective. kDcgan reproduces the paper bit for bit;
  /// the other modes trade exact reproduction for stability on
  /// larger/wider tables. Serialized since checkpoint format v5 and
  /// validated on resume.
  LossMode loss_mode = LossMode::kDcgan;
  /// WGAN-GP penalty weight (lambda; Gulrajani et al. use 10).
  float gp_weight = 10.0f;
  /// Spectral-norm penalty weight on rank-2 discriminator weights.
  float sn_weight = 0.05f;
  /// Power iterations per optimizer step for the spectral estimate. One
  /// suffices in steady state (u/v warm-start from the previous step).
  int sn_power_iters = 1;

  /// Divergence guardrail: per-epoch loss-EWMA watchdog that fires on a
  /// non-finite loss or on an EWMA exceeding `guard_factor` times the
  /// post-warmup baseline. Detection never changes the training
  /// arithmetic; only what happens after a trigger depends on the
  /// action. Default kHalt: a diverging run stops with a non-OK Status
  /// and its last-good state instead of silently training to garbage.
  DivergenceAction divergence_action = DivergenceAction::kHalt;
  /// EWMA weight of the guarded loss magnitude (higher = slower).
  float guard_ewma_weight = 0.9f;
  /// Runaway threshold: fires when ewma > guard_factor * baseline.
  float guard_factor = 50.0f;
  /// Epochs used to establish the baseline before the runaway check
  /// arms (non-finite detection is always armed).
  int guard_warmup_epochs = 3;
  /// Retry budget for kRollback before the run halts anyway.
  int guard_max_rollbacks = 3;

  /// --- Conditional generation / record encoding (DESIGN.md §16) -----
  /// Condition the generator on the label: the encoded label cells of
  /// each real batch are concatenated onto its latent vectors during
  /// training, and SampleConditional synthesizes rows of one requested
  /// label. Off by default — an unconditional model's generator input,
  /// draw sequence and checkpoints are bitwise identical to pre-v6
  /// builds. Serialized since checkpoint format v6.
  bool conditional = false;
  /// Columns (indices into the training schema) encoded with the
  /// mode-specific GMM normalizer instead of min-max (TGAN-style,
  /// 1811.11264 §4.2). Continuous non-label columns only. Empty = all
  /// min-max, the bitwise-stable default. Serialized since v6.
  std::vector<int> gmm_columns;
  /// EM component budget per GMM column (modes may be pruned), in
  /// [1, 64].
  int gmm_components = 4;

  /// Worker threads for the tensor substrate (GEMM and im2col conv
  /// kernels). 0 defers to the TABLEGAN_NUM_THREADS environment variable,
  /// then to the hardware concurrency. Every parallel kernel is bitwise
  /// deterministic: any thread count reproduces the 1-thread results.
  int num_threads = 0;

  /// Reuse training-step buffers (activations, gradients, im2col
  /// scratch, batch assembly) across iterations via a shape-keyed
  /// workspace pool, making the steady-state step allocation-free.
  /// Results are bitwise identical either way; the flag exists so tests
  /// and benchmarks can compare the pooled and allocating paths. Not
  /// serialized in checkpoints and not validated on resume — it is a
  /// memory-management choice, not a model hyper-parameter.
  bool reuse_workspace = true;

  uint64_t seed = 47;
  bool verbose = false;

  /// --- Training telemetry ------------------------------------------
  /// Per-epoch metrics consumer (non-owning; must outlive Fit). A
  /// JsonlMetricsSink streams the records to disk; a non-OK Record
  /// aborts training with that status.
  MetricsSink* metrics_sink = nullptr;
  /// In-process per-epoch hook, called after metrics_sink. Useful for
  /// live progress UIs and tests; exceptions are not caught.
  std::function<void(const TrainingMetrics&)> metrics_callback;

  /// --- Checkpointing / resume --------------------------------------
  /// Write a full training checkpoint (weights, optimizer moments, RNG
  /// stream, EWMA statistics, loss history) into `checkpoint_dir` every
  /// this many epochs (and at the final epoch). 0 disables. Files are
  /// written atomically (temp file + rename) with a CRC-32 footer as
  /// `ckpt-epoch-NNNN.tgan`, plus a `latest.tgan` alias.
  int checkpoint_every = 0;
  std::string checkpoint_dir;
  /// Path of a checkpoint to resume Fit from. Training continues at the
  /// saved epoch and is bitwise identical to an uninterrupted run; the
  /// checkpoint must have been written with the same options and
  /// training table (epochs may be raised to extend a finished run).
  std::string resume_from;

  /// The paper's three named privacy settings (Tables 5-6), calibrated
  /// to the relative-gap scale (see delta_mean above).
  static TableGanOptions LowPrivacy() { return TableGanOptions(); }
  static TableGanOptions MidPrivacy() {
    TableGanOptions o;
    o.delta_mean = 0.35f;
    o.delta_sd = 0.35f;
    return o;
  }
  static TableGanOptions HighPrivacy() {
    TableGanOptions o;
    o.delta_mean = 0.5f;
    o.delta_sd = 0.5f;
    return o;
  }
  /// The DCGAN baseline: original loss only.
  static TableGanOptions DcganBaseline() {
    TableGanOptions o;
    o.use_info_loss = false;
    o.use_classifier = false;
    return o;
  }
};

}  // namespace core
}  // namespace tablegan

#endif  // TABLEGAN_CORE_TABLE_GAN_OPTIONS_H_
