#include "core/table_gan.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/info_loss.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/spectral_norm.h"
#include "tensor/tensor_ops.h"

namespace tablegan {
namespace core {
namespace {

// Writes sigmoid(logits) into *out (capacity-reusing); same per-element
// expression as the old copy-then-mutate helper, so results are bitwise
// identical.
void SigmoidInto(const Tensor& logits, Tensor* out) {
  out->ResizeUninitialized(logits.shape());
  for (int64_t i = 0; i < logits.size(); ++i) {
    (*out)[i] = 1.0f / (1.0f + std::exp(-logits[i]));
  }
}

std::string CheckpointPath(const std::string& dir, int epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-epoch-%04d.tgan", epoch);
  return dir + "/" + name;
}

// Rows per generator/discriminator inference block. A fixed constant —
// never the training batch size — so the block decomposition, and with
// it every row's latent draw and forward pass, is identical no matter
// what batch_size the model was configured with.
constexpr int64_t kInferBlockRows = 64;

// Domain tag separating Sample's latent stream from every other use of
// options.seed (weight init, shuffling).
constexpr uint64_t kSampleStreamTag = 0x53616d706c65ULL;  // "Sample"

// Domain tag for the spectral-norm power-iteration init vectors.
constexpr uint64_t kSpectralStreamTag = 0x53706563ULL;  // "Spec"

// Extra domain tag layered onto the sample stream for conditional
// sampling; the requested label's bits are mixed in after it, so every
// label's row stream is disjoint from every other label's and from the
// unconditional stream of the same seed.
constexpr uint64_t kCondStreamTag = 0x436F6E64ULL;  // "Cond"

// Step size of the central-difference Hessian-vector product that turns
// the WGAN gradient penalty into parameter gradients (DESIGN.md §15).
// The record space is [-1, 1] and the perturbation direction is a unit
// vector, so 1e-2 sits well inside the smooth regime of the LeakyReLU
// critic while staying far above float cancellation noise.
constexpr float kGpFdEpsilon = 1e-2f;

}  // namespace

TableGan::TableGan(TableGanOptions options)
    : options_(options),
      rng_(options.seed),
      sample_stream_seed_(
          MixSeeds(static_cast<uint64_t>(options.seed), kSampleStreamTag)) {}

void TableGan::RemoveLabelInto(const Tensor& matrices, Tensor* out) const {
  *out = matrices;  // copy-assign reuses the destination's capacity
  const int64_t cells = static_cast<int64_t>(side_) * side_;
  const int64_t n = out->dim(0);
  for (int64_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < label_cols_.size(); ++j) {
      (*out)[i * cells + label_cell(static_cast<int>(j))] = 0.0f;
    }
  }
}

Status TableGan::Fit(const data::TableView& table, int label_col) {
  return FitMultiLabel(table, {label_col});
}

Status TableGan::FitMultiLabel(const data::TableView& table,
                               std::vector<int> label_cols) {
  if (table.num_rows() < 4) {
    return Status::InvalidArgument("need at least 4 training rows");
  }
  if (label_cols.empty()) {
    return Status::InvalidArgument("at least one label column required");
  }
  for (size_t i = 0; i < label_cols.size(); ++i) {
    const int label_col = label_cols[i];
    if (label_col < 0 || label_col >= table.num_columns()) {
      return Status::InvalidArgument(
          "label column index " + std::to_string(label_col) +
          " out of range [0, " + std::to_string(table.num_columns()) + ")");
    }
    for (size_t j = 0; j < i; ++j) {
      if (label_cols[j] == label_col) {
        return Status::InvalidArgument("duplicate label column index " +
                                       std::to_string(label_col));
      }
    }
  }
  if (options_.checkpoint_every < 0) {
    return Status::InvalidArgument("checkpoint_every must be >= 0");
  }
  if (options_.checkpoint_every > 0 && options_.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every requires a checkpoint_dir");
  }
  // Scoped so a per-model num_threads never leaks into other models or
  // evaluation code sharing the process-wide pool.
  ScopedNumThreads scoped_threads(options_.num_threads);
  schema_ = table.schema();
  label_cols_ = std::move(label_cols);
  const auto k = static_cast<int64_t>(label_cols_.size());

  // Per-column normalizer selection (DESIGN.md §16): min-max everywhere
  // unless a column opted into the GMM encoding. Label columns stay
  // min-max so their encoded cell is the single scalar the classifier
  // and the conditioning vector read.
  if (options_.gmm_components < 1 || options_.gmm_components > 64) {
    return Status::InvalidArgument("gmm_components must be in [1, 64], got " +
                                   std::to_string(options_.gmm_components));
  }
  std::vector<data::ColumnNormalizerSpec> specs;
  if (!options_.gmm_columns.empty()) {
    specs.resize(static_cast<size_t>(table.num_columns()));
    for (int c : options_.gmm_columns) {
      if (c < 0 || c >= table.num_columns()) {
        return Status::InvalidArgument(
            "GMM column index " + std::to_string(c) + " out of range [0, " +
            std::to_string(table.num_columns()) + ")");
      }
      if (std::find(label_cols_.begin(), label_cols_.end(), c) !=
          label_cols_.end()) {
        return Status::InvalidArgument(
            "GMM column index " + std::to_string(c) + " is a label column");
      }
      specs[static_cast<size_t>(c)].kind = data::NormalizerKind::kGmm;
      specs[static_cast<size_t>(c)].components = options_.gmm_components;
    }
  }
  // One fitting pass over the view; no encoded copy of the table is ever
  // built. Mini-batches below are encoded on the fly straight from the
  // view's column pointers, so training an mmap'd columnar file touches
  // each page as its rows come up in the shuffle and peak memory is
  // O(batch), not O(table).
  TABLEGAN_RETURN_NOT_OK(normalizer_.Fit(table, specs));

  // The record matrix holds the encoded row, which GMM columns widen
  // beyond the attribute count (1 + modes cells each).
  const int width = normalizer_.encoded_width();
  side_ = options_.side > 0 ? options_.side
                            : data::RecordMatrixCodec::ChooseSide(width);
  if (side_ * side_ < width) {
    return Status::InvalidArgument("side too small for encoded record width");
  }
  codec_ = std::make_unique<data::RecordMatrixCodec>(width, side_);

  // Conditional models need the label vocabulary: SampleConditional
  // validates requested levels against it, and unpinned label columns
  // draw from the empirical frequencies at synthesis time.
  label_levels_.clear();
  label_level_freqs_.clear();
  if (options_.conditional) {
    for (int col : label_cols_) {
      const double* colp = table.column_data(col);
      std::vector<double> vals(colp, colp + table.num_rows());
      std::sort(vals.begin(), vals.end());
      std::vector<double> levels;
      std::vector<double> freqs;
      for (size_t i = 0; i < vals.size(); ++i) {
        if (levels.empty() || vals[i] != levels.back()) {
          levels.push_back(vals[i]);
          freqs.push_back(0.0);
        }
        freqs.back() += 1.0;
      }
      if (levels.size() > 64) {
        return Status::InvalidArgument(
            "conditional training supports at most 64 distinct label "
            "values, but column " +
            std::to_string(col) + " has " + std::to_string(levels.size()));
      }
      for (double& f : freqs) f /= static_cast<double>(table.num_rows());
      label_levels_.push_back(std::move(levels));
      label_level_freqs_.push_back(std::move(freqs));
    }
  }

  generator_ = BuildGenerator(side_, options_.latent_dim + cond_dim(),
                              options_.base_channels, &rng_);
  discriminator_ = BuildDiscriminator(side_, options_.base_channels, &rng_);
  classifier_ = BuildDiscriminator(side_, options_.base_channels, &rng_,
                                   static_cast<int>(k));

  nn::Adam adam_g(generator_->Parameters(), generator_->Gradients(),
                  options_.learning_rate, options_.adam_beta1,
                  options_.adam_beta2);
  nn::Adam adam_d(discriminator_.Parameters(), discriminator_.Gradients(),
                  options_.learning_rate, options_.adam_beta1,
                  options_.adam_beta2);
  nn::Adam adam_c(classifier_.Parameters(), classifier_.Gradients(),
                  options_.learning_rate, options_.adam_beta1,
                  options_.adam_beta2);

  InfoLossState info(discriminator_.feature_dim, options_.ewma_weight,
                     options_.delta_mean, options_.delta_sd);

  // Bind the shared buffer pool to every network and the info-loss state
  // so each training-step tensor is recycled instead of reallocated. The
  // pool changes where buffers live, never their contents (DESIGN.md
  // memory model), so training is bitwise identical with the flag off.
  // The old pool (if any) is replaced only after the networks holding
  // tensors from it have been rebuilt above.
  if (options_.reuse_workspace) {
    ws_ = std::make_unique<Workspace>();
    generator_->SetWorkspace(ws_.get());
    discriminator_.features->SetWorkspace(ws_.get());
    discriminator_.head->SetWorkspace(ws_.get());
    classifier_.features->SetWorkspace(ws_.get());
    classifier_.head->SetWorkspace(ws_.get());
    info.BindWorkspace(ws_.get());
  } else {
    ws_.reset();
  }

  // --- Training-stability machinery (DESIGN.md §15) ------------------
  if (options_.sn_power_iters < 1) {
    return Status::InvalidArgument("sn_power_iters must be >= 1");
  }
  if (options_.guard_warmup_epochs < 0 || options_.guard_max_rollbacks < 0) {
    return Status::InvalidArgument(
        "guard_warmup_epochs and guard_max_rollbacks must be >= 0");
  }
  const bool wgan = options_.loss_mode == LossMode::kWganGp;
  std::unique_ptr<nn::SpectralNormRegularizer> sn;
  if (options_.loss_mode == LossMode::kSpectralNorm) {
    sn = std::make_unique<nn::SpectralNormRegularizer>(
        discriminator_.Parameters(), discriminator_.Gradients(),
        options_.sn_weight, options_.sn_power_iters,
        MixSeeds(static_cast<uint64_t>(options_.seed), kSpectralStreamTag));
    if (ws_ != nullptr) sn->BindWorkspace(ws_.get());
  }
  DivergenceGuard guard(options_.guard_ewma_weight, options_.guard_factor,
                        options_.guard_warmup_epochs);
  int64_t rollbacks_used = 0;

  const int64_t n = table.num_rows();
  const int64_t batch =
      std::max<int64_t>(2, std::min<int64_t>(options_.batch_size, n));
  const int64_t cells = static_cast<int64_t>(side_) * side_;
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;

  history_.clear();
  int start_epoch = 0;
  if (!options_.resume_from.empty()) {
    // Continue a checkpointed run: restores weights, optimizer moments,
    // the RNG stream, EWMA statistics and history, so the remaining
    // epochs replay exactly what an uninterrupted run would compute.
    TrainingState state{0,     &adam_g, &adam_d, &adam_c,
                        &info, &guard,  sn.get()};
    TABLEGAN_RETURN_NOT_OK(
        RestoreTrainingState(options_.resume_from, &state));
    start_epoch = state.epochs_completed;
    rollbacks_used = state.rollbacks_used;
    if (options_.verbose) {
      TABLEGAN_LOG(Info) << "resumed from " << options_.resume_from
                         << " at epoch " << start_epoch;
    }
  }
  if (options_.checkpoint_every > 0) {
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      return Status::IOError("cannot create checkpoint_dir " +
                             options_.checkpoint_dir + ": " + ec.message());
    }
  }

  // Last-good snapshot for the divergence guardrail: copies of every
  // mutable training tensor (network weights and BatchNorm running
  // statistics, Adam moments, info-loss EWMAs, spectral-norm vectors)
  // plus the scalar optimizer/guard state, refreshed after each healthy
  // epoch. Restoring it rewinds training — except the RNG stream, which
  // deliberately keeps advancing: replaying the identical draws would
  // diverge identically.
  const bool guard_active =
      options_.divergence_action != DivergenceAction::kOff;
  std::vector<Tensor*> live;
  std::vector<Tensor> snap;
  int snap_epoch = start_epoch;
  size_t snap_history = history_.size();
  int64_t snap_steps[3] = {0, 0, 0};
  double snap_pows[6] = {0, 0, 0, 0, 0, 0};
  bool snap_info_init = false;
  double snap_guard_ewma = 0.0, snap_guard_base = 0.0;
  int64_t snap_guard_obs = 0;
  nn::Adam* adams[3] = {&adam_g, &adam_d, &adam_c};
  if (guard_active) {
    auto add_net = [&live](nn::Sequential* net) {
      for (Tensor* t : net->Parameters()) live.push_back(t);
      for (Tensor* t : net->Buffers()) live.push_back(t);
    };
    add_net(generator_.get());
    add_net(discriminator_.features.get());
    add_net(discriminator_.head.get());
    add_net(classifier_.features.get());
    add_net(classifier_.head.get());
    for (nn::Adam* a : adams) {
      for (Tensor* t : a->MomentTensors()) live.push_back(t);
    }
    for (Tensor* t : info.EwmaTensors()) live.push_back(t);
    if (sn != nullptr) {
      for (Tensor* t : sn->StateTensors()) live.push_back(t);
    }
    snap.resize(live.size());
  }
  auto take_snapshot = [&](int epochs_done) {
    for (size_t i = 0; i < live.size(); ++i) snap[i] = *live[i];
    snap_epoch = epochs_done;
    snap_history = history_.size();
    for (int i = 0; i < 3; ++i) {
      snap_steps[i] = adams[i]->step_count();
      snap_pows[2 * i] = adams[i]->beta1_power();
      snap_pows[2 * i + 1] = adams[i]->beta2_power();
    }
    snap_info_init = info.initialized();
    snap_guard_ewma = guard.ewma();
    snap_guard_base = guard.baseline();
    snap_guard_obs = guard.observed_epochs();
  };
  auto restore_snapshot = [&]() {
    for (size_t i = 0; i < live.size(); ++i) *live[i] = snap[i];
    for (int i = 0; i < 3; ++i) {
      adams[i]->set_step_count(snap_steps[i]);
      adams[i]->set_bias_correction_powers(snap_pows[2 * i],
                                           snap_pows[2 * i + 1]);
    }
    info.set_initialized(snap_info_init);
    guard.Restore(snap_guard_ewma, snap_guard_base, snap_guard_obs);
    history_.resize(snap_history);
  };
  if (guard_active) take_snapshot(start_epoch);

  // Batch-assembly and loss-gradient buffers, hoisted out of the loops
  // so the steady-state step allocates nothing: ResizeUninitialized
  // reuses each tensor's capacity once the first (largest) batch has
  // sized it. The tail batch is smaller than `batch`, so its resize
  // never grows the buffers.
  Tensor x, labels, ones, zeros, z1, z2;
  Tensor bce_grad, cgrad, cin, pred, grad_logit;
  // WGAN-GP scratch (kWganGp mode only): the interpolated batch, its
  // per-sample critic input gradients (normalized in place), the
  // perturbed batch of the finite-difference passes and the per-sample
  // output seeds.
  Tensor xhat, vhat, pert, gp_seed;
  std::vector<float> gp_coefs;

  for (int epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    // Re-derive the permutation from identity each epoch: an in-place
    // shuffle of the previous epoch's order would make the batch
    // sequence depend on history a checkpoint does not carry, breaking
    // bitwise resume.
    for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    rng_.Shuffle(&order);
    EpochStats stats;
    int num_batches = 0;
    int64_t epoch_examples = 0;
    const uint64_t ws_takes0 = ws_ != nullptr ? ws_->takes() : 0;
    const uint64_t ws_misses0 = ws_ != nullptr ? ws_->misses() : 0;
    Stopwatch epoch_watch;
    Stopwatch phase_watch;
    double d_seconds = 0.0, c_seconds = 0.0, g_seconds = 0.0;
    // Every row is visited: the final short batch of `n mod batch` rows
    // trains too (the old loop condition silently dropped it). The one
    // exception is a 1-row tail, which is skipped because BatchNorm's
    // batch variance is identically zero on a single sample.
    for (int64_t start = 0; start < n; start += batch) {
      const int64_t bsize = std::min<int64_t>(batch, n - start);
      if (bsize < 2) break;
      // --- Assemble the real mini-batch (Alg. 2 line 6): zero the pad
      // cells (exactly what the codec writes there), then encode the
      // batch's rows directly from the view. Bitwise identical to
      // gathering rows of the old precomputed Transform+ToMatrices
      // tensor (see MinMaxNormalizer::EncodeRowsInto).
      x.ResizeUninitialized({bsize, 1, side_, side_});
      x.SetZero();
      normalizer_.EncodeRowsInto(table, order.data() + start, bsize,
                                 x.data(), cells);
      // Ground-truth labels l(x) in {0,1}: decode the label cells from
      // the [-1,1] encoding.
      labels.ResizeUninitialized({bsize, k});
      for (int64_t b = 0; b < bsize; ++b) {
        for (int64_t j = 0; j < k; ++j) {
          labels.at2(b, j) =
              0.5f * (x[b * cells + label_cell(static_cast<int>(j))] + 1.0f);
        }
      }
      ones.ResizeUninitialized({bsize, 1});
      ones.Fill(1.0f);
      zeros.ResizeUninitialized({bsize, 1});
      zeros.SetZero();

      // --- Discriminator update (Alg. 2 line 8): L_orig^D for kDcgan
      // and kSpectralNorm (the latter adds the weight penalty below), a
      // Wasserstein critic with gradient penalty for kWganGp.
      phase_watch.Restart();
      // Conditional models append the real batch's encoded label cells
      // to the latent input (cGAN-style): the generator learns its
      // conditioning from pairs whose condition matches a real record.
      const int64_t zdim = options_.latent_dim + cond_dim();
      z1.ResizeUninitialized({bsize, zdim});
      z1.FillUniform(-1.0f, 1.0f, &rng_);
      for (int64_t j = options_.latent_dim; j < zdim; ++j) {
        const int64_t cell = label_cell(static_cast<int>(j - options_.latent_dim));
        for (int64_t b = 0; b < bsize; ++b) {
          z1.at2(b, j) = x[b * cells + cell];
        }
      }
      Tensor fake_for_d = generator_->Forward(z1, /*training=*/true);
      if (!wgan) {
        adam_d.ZeroGrad();
        {
          Tensor feat = discriminator_.features->Forward(x, true);
          Tensor logits = discriminator_.head->Forward(feat, true);
          stats.d_loss += nn::SigmoidBceWithLogits(logits, ones, &bce_grad);
          discriminator_.features->Backward(
              discriminator_.head->Backward(bce_grad));
        }
        {
          Tensor feat = discriminator_.features->Forward(fake_for_d, true);
          Tensor logits = discriminator_.head->Forward(feat, true);
          stats.d_loss += nn::SigmoidBceWithLogits(logits, zeros, &bce_grad);
          discriminator_.features->Backward(
              discriminator_.head->Backward(bce_grad));
        }
        if (sn != nullptr) stats.d_loss += sn->Apply();
      } else {
        const float inv_b = 1.0f / static_cast<float>(bsize);
        // x̂ = a·x + (1-a)·G(z1), per-sample a ~ U[0,1) (Gulrajani et
        // al., Algorithm 1).
        xhat.ResizeUninitialized(x.shape());
        for (int64_t b = 0; b < bsize; ++b) {
          const float a = static_cast<float>(rng_.Uniform(0.0f, 1.0f));
          const float* xr = x.data() + b * cells;
          const float* fr = fake_for_d.data() + b * cells;
          float* hr = xhat.data() + b * cells;
          for (int64_t c = 0; c < cells; ++c) {
            hr[c] = a * xr[c] + (1.0f - a) * fr[c];
          }
        }
        // Per-sample critic input gradient g_i = ∇_x D(x̂_i): one
        // backward pass seeded with ones. The pass also pollutes the
        // parameter gradients; the ZeroGrad below discards that.
        gp_seed.ResizeUninitialized({bsize, 1});
        gp_seed.Fill(1.0f);
        {
          Tensor feat = discriminator_.features->Forward(xhat, true);
          (void)discriminator_.head->Forward(feat, true);
        }
        Tensor gin = discriminator_.features->Backward(
            discriminator_.head->Backward(gp_seed));
        // GP = (1/b) Σ (‖g_i‖-1)².  vhat keeps the unit directions ĝ_i,
        // gp_coefs the per-sample chain factor (‖g_i‖-1); a zero-grad
        // sample contributes its penalty value but no HVP direction.
        vhat = gin;
        gp_coefs.resize(static_cast<size_t>(bsize));
        double gp = 0.0;
        for (int64_t b = 0; b < bsize; ++b) {
          float* gr = vhat.data() + b * cells;
          double sum = 0.0;
          for (int64_t c = 0; c < cells; ++c) {
            sum += static_cast<double>(gr[c]) * gr[c];
          }
          const float norm = static_cast<float>(std::sqrt(sum));
          gp += static_cast<double>(norm - 1.0f) * (norm - 1.0f);
          const float inv = norm > 1e-12f ? 1.0f / norm : 0.0f;
          for (int64_t c = 0; c < cells; ++c) gr[c] *= inv;
          gp_coefs[static_cast<size_t>(b)] = inv > 0.0f ? norm - 1.0f : 0.0f;
        }
        gp /= static_cast<double>(bsize);
        adam_d.ZeroGrad();
        // Critic loss mean D(fake) - mean D(real): the backward seeds
        // are constant ±1/b rows.
        double mean_real = 0.0, mean_fake = 0.0;
        {
          Tensor feat = discriminator_.features->Forward(x, true);
          Tensor logits = discriminator_.head->Forward(feat, true);
          for (int64_t b = 0; b < bsize; ++b) mean_real += logits[b];
          bce_grad.ResizeUninitialized({bsize, 1});
          bce_grad.Fill(-inv_b);
          discriminator_.features->Backward(
              discriminator_.head->Backward(bce_grad));
        }
        {
          Tensor feat = discriminator_.features->Forward(fake_for_d, true);
          Tensor logits = discriminator_.head->Forward(feat, true);
          for (int64_t b = 0; b < bsize; ++b) mean_fake += logits[b];
          bce_grad.Fill(inv_b);
          discriminator_.features->Backward(
              discriminator_.head->Backward(bce_grad));
        }
        mean_real *= inv_b;
        mean_fake *= inv_b;
        // Parameter gradient of the penalty without double backprop: a
        // central-difference Hessian-vector product,
        //   ∇_θ(v̂_iᵀ ∇_x D(x̂_i)) ≈ [∇_θ D(x̂+εv̂) - ∇_θ D(x̂-εv̂)] / 2ε,
        // one forward/backward per sign with the chain factor
        // λ·(‖g_i‖-1)/(b·ε) folded into seed row i. Parameter gradients
        // accumulate across Backward calls (nn::Layer contract), so the
        // two passes add straight onto the critic gradients above.
        for (const float sign : {1.0f, -1.0f}) {
          pert = xhat;
          ops::AxpyInPlace(vhat, sign * kGpFdEpsilon, &pert);
          Tensor feat = discriminator_.features->Forward(pert, true);
          (void)discriminator_.head->Forward(feat, true);
          for (int64_t b = 0; b < bsize; ++b) {
            gp_seed[b] = sign * options_.gp_weight *
                         gp_coefs[static_cast<size_t>(b)] * inv_b /
                         kGpFdEpsilon;
          }
          discriminator_.features->Backward(
              discriminator_.head->Backward(gp_seed));
        }
        stats.d_loss += static_cast<float>(
            mean_fake - mean_real + options_.gp_weight * gp);
      }
      adam_d.Step();
      d_seconds += phase_watch.ElapsedSeconds();

      // --- Classifier update with L_class^C (Alg. 2 line 9).
      phase_watch.Restart();
      if (options_.use_classifier) {
        adam_c.ZeroGrad();
        RemoveLabelInto(x, &cin);
        Tensor feat = classifier_.features->Forward(cin, true);
        Tensor logits = classifier_.head->Forward(feat, true);
        SigmoidInto(logits, &pred);
        cgrad.ResizeUninitialized({bsize, k});
        float loss = 0.0f;
        const float inv_bk = 1.0f / static_cast<float>(bsize * k);
        for (int64_t i = 0; i < bsize * k; ++i) {
          const float diff = pred[i] - labels[i];
          loss += std::fabs(diff);
          const float sign = diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f);
          cgrad[i] = sign * pred[i] * (1.0f - pred[i]) * inv_bk;
        }
        stats.class_loss += loss * inv_bk;
        classifier_.features->Backward(classifier_.head->Backward(cgrad));
        adam_c.Step();
      }
      c_seconds += phase_watch.ElapsedSeconds();

      // --- Generator update with L_orig^G + L_info^G + L_class^G
      //     (Alg. 2 lines 10-14).
      phase_watch.Restart();
      adam_g.ZeroGrad();
      z2.ResizeUninitialized({bsize, zdim});
      z2.FillUniform(-1.0f, 1.0f, &rng_);
      for (int64_t j = options_.latent_dim; j < zdim; ++j) {
        const int64_t cell = label_cell(static_cast<int>(j - options_.latent_dim));
        for (int64_t b = 0; b < bsize; ++b) {
          z2.at2(b, j) = x[b * cells + cell];
        }
      }
      Tensor fake = generator_->Forward(z2, /*training=*/true);

      // Real features for the EWMA statistics. (Forward only; the
      // subsequent fake forward re-caches the stack for backward.)
      Tensor feat_real;
      if (options_.use_info_loss) {
        feat_real = discriminator_.features->Forward(x, true);
      }
      Tensor feat_fake = discriminator_.features->Forward(fake, true);
      Tensor logits_g = discriminator_.head->Forward(feat_fake, true);
      Tensor grad_feat;
      if (!wgan) {
        stats.g_orig_loss +=
            nn::SigmoidBceWithLogits(logits_g, ones, &bce_grad);
        grad_feat = discriminator_.head->Backward(bce_grad);
      } else {
        // L_orig^G = -mean D(G(z)): constant -1/b seed rows.
        const float inv_b = 1.0f / static_cast<float>(bsize);
        double mean_g = 0.0;
        for (int64_t b = 0; b < bsize; ++b) mean_g += logits_g[b];
        stats.g_orig_loss += static_cast<float>(-mean_g * inv_b);
        bce_grad.ResizeUninitialized({bsize, 1});
        bce_grad.Fill(-inv_b);
        grad_feat = discriminator_.head->Backward(bce_grad);
      }
      if (options_.use_info_loss) {
        info.UpdateStatistics(feat_real, feat_fake);
        stats.info_loss += info.Loss();
        stats.l_mean += info.l_mean();
        stats.l_sd += info.l_sd();
        Tensor info_grad = info.GradFakeFeatures();
        ops::AxpyInPlace(info_grad, options_.info_loss_weight, &grad_feat);
      }
      Tensor grad_fake = discriminator_.features->Backward(grad_feat);

      if (options_.use_classifier) {
        RemoveLabelInto(fake, &cin);
        Tensor feat = classifier_.features->Forward(cin, true);
        Tensor logits = classifier_.head->Forward(feat, true);
        SigmoidInto(logits, &pred);
        grad_logit.ResizeUninitialized({bsize, k});
        float loss = 0.0f;
        const float inv_bk = 1.0f / static_cast<float>(bsize * k);
        for (int64_t b = 0; b < bsize; ++b) {
          for (int64_t j = 0; j < k; ++j) {
            const int64_t col = label_cell(static_cast<int>(j));
            const float ell = 0.5f * (fake[b * cells + col] + 1.0f);
            const float p = pred.at2(b, j);
            const float diff = ell - p;
            loss += std::fabs(diff);
            const float sign =
                diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f);
            // d|ell - pred| / d logit = -sign * pred * (1 - pred).
            grad_logit.at2(b, j) = -sign * p * (1.0f - p) * inv_bk;
            // d|ell - pred| / d label_cell = sign * 0.5.
            grad_fake[b * cells + col] += 0.5f * sign * inv_bk;
          }
        }
        stats.class_loss += loss * inv_bk;
        Tensor grad_cin = classifier_.features->Backward(
            classifier_.head->Backward(grad_logit));
        // remove(.) blocks the gradient of the zeroed label cells.
        for (int64_t b = 0; b < bsize; ++b) {
          for (size_t j = 0; j < label_cols_.size(); ++j) {
            grad_cin[b * cells + label_cell(static_cast<int>(j))] = 0.0f;
          }
        }
        ops::AxpyInPlace(grad_cin, 1.0f, &grad_fake);
      }
      generator_->Backward(grad_fake);
      adam_g.Step();
      g_seconds += phase_watch.ElapsedSeconds();
      ++num_batches;
      epoch_examples += bsize;
    }
    if (num_batches > 0) {
      const float inv = 1.0f / static_cast<float>(num_batches);
      stats.d_loss *= inv;
      stats.g_orig_loss *= inv;
      stats.info_loss *= inv;
      stats.class_loss *= inv;
      stats.l_mean *= inv;
      stats.l_sd *= inv;
    }
    if (TABLEGAN_FAILPOINT("train.loss_nan")) {
      // Deterministic divergence injection for the guardrail tests.
      stats.d_loss = std::numeric_limits<float>::quiet_NaN();
    }
    const std::string anomaly =
        guard.Observe({{"d_loss", stats.d_loss},
                       {"g_loss", stats.g_orig_loss},
                       {"info_loss", stats.info_loss},
                       {"class_loss", stats.class_loss}});
    const bool diverged = guard_active && !anomaly.empty();
    // A poisoned epoch never enters the history: on rollback it is
    // retried, on halt the model is rewound to the last-good state the
    // history must keep matching.
    if (!diverged) history_.push_back(stats);
    if (options_.verbose) {
      TABLEGAN_LOG(Info) << "epoch " << epoch + 1 << "/" << options_.epochs
                         << " d=" << stats.d_loss
                         << " g=" << stats.g_orig_loss
                         << " info=" << stats.info_loss
                         << " class=" << stats.class_loss
                         << (anomaly.empty() ? "" : " ANOMALY: " + anomaly);
    }

    if (options_.metrics_sink != nullptr || options_.metrics_callback) {
      TrainingMetrics m;
      m.epoch = epoch + 1;
      m.total_epochs = options_.epochs;
      m.d_loss = stats.d_loss;
      m.g_loss = stats.g_orig_loss;
      m.info_loss = stats.info_loss;
      m.class_loss = stats.class_loss;
      m.l_mean = stats.l_mean;
      m.l_sd = stats.l_sd;
      m.d_seconds = d_seconds;
      m.c_seconds = c_seconds;
      m.g_seconds = g_seconds;
      m.epoch_seconds = epoch_watch.ElapsedSeconds();
      // True rows consumed (the old num_batches * batch both overcounted
      // the tail and undercounted the dropped rows).
      m.examples = epoch_examples;
      m.examples_per_sec =
          m.epoch_seconds > 0.0
              ? static_cast<double>(m.examples) / m.epoch_seconds
              : 0.0;
      if (ws_ != nullptr) {
        const uint64_t takes = ws_->takes() - ws_takes0;
        const uint64_t misses = ws_->misses() - ws_misses0;
        m.workspace_allocs = static_cast<int64_t>(misses);
        m.workspace_reuses = static_cast<int64_t>(takes - misses);
        m.workspace_bytes = static_cast<int64_t>(ws_->allocated_bytes());
      }
      m.loss_ewma = guard.ewma();
      m.anomaly = anomaly;
      if (options_.metrics_sink != nullptr) {
        TABLEGAN_RETURN_NOT_OK(options_.metrics_sink->Record(m));
      }
      if (options_.metrics_callback) options_.metrics_callback(m);
    }

    if (diverged) {
      // Rewind to the last-good snapshot — weights, moments, EWMA
      // statistics, guard — but NOT the RNG stream: a rollback retries
      // the epoch with fresh randomness instead of replaying the exact
      // draws that just diverged.
      restore_snapshot();
      std::string auto_path;
      if (!options_.checkpoint_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.checkpoint_dir, ec);
        if (ec) {
          return Status::IOError("cannot create checkpoint_dir " +
                                 options_.checkpoint_dir + ": " +
                                 ec.message());
        }
        auto_path = options_.checkpoint_dir + "/diverged-last-good.tgan";
        TrainingState state{snap_epoch,  &adam_g, &adam_d,
                            &adam_c,     &info,   &guard,
                            sn.get(),    rollbacks_used};
        TABLEGAN_RETURN_NOT_OK(SaveImpl(auto_path, &state, /*version=*/6));
      }
      if (options_.metrics_sink != nullptr) {
        TrainingEvent ev;
        ev.event = "diverged";
        ev.epoch = epoch + 1;
        ev.detail = anomaly;
        ev.checkpoint_path = auto_path;
        TABLEGAN_RETURN_NOT_OK(options_.metrics_sink->RecordEvent(ev));
      }
      if (options_.divergence_action == DivergenceAction::kRollback &&
          rollbacks_used < options_.guard_max_rollbacks) {
        ++rollbacks_used;
        epoch = snap_epoch - 1;  // the loop increment retries snap_epoch
        continue;
      }
      return Status::Internal(
          "training diverged at epoch " + std::to_string(epoch + 1) + ": " +
          anomaly +
          (auto_path.empty()
               ? " (model holds the last-good state)"
               : "; last-good state checkpointed to " + auto_path));
    }
    if (guard_active) take_snapshot(epoch + 1);

    if (options_.checkpoint_every > 0 &&
        ((epoch + 1) % options_.checkpoint_every == 0 ||
         epoch + 1 == options_.epochs)) {
      TrainingState state{epoch + 1, &adam_g, &adam_d,
                          &adam_c,   &info,   &guard,
                          sn.get(),  rollbacks_used};
      TABLEGAN_RETURN_NOT_OK(
          SaveImpl(CheckpointPath(options_.checkpoint_dir, epoch + 1),
                   &state, /*version=*/6));
      // Stable alias for "resume from wherever the run died".
      TABLEGAN_RETURN_NOT_OK(SaveImpl(
          options_.checkpoint_dir + "/latest.tgan", &state, /*version=*/6));
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<data::Table> TableGan::Sample(int64_t n) {
  if (!fitted_) return Status::FailedPrecondition("Sample before Fit");
  // A zero- (or negative-) row request is a no-op: the persisted
  // rows-emitted position must not move and the workspace pool must not
  // be touched, so interleaving empty requests — routine for a serving
  // frontend — leaves the deterministic stream bit-for-bit unchanged.
  if (n <= 0) return data::Table(schema_);
  ScopedNumThreads scoped_threads(options_.num_threads);
  TABLEGAN_ASSIGN_OR_RETURN(
      data::Table out, GenerateRows(sample_stream_seed_,
                                    sample_rows_emitted_, n));
  sample_rows_emitted_ += static_cast<uint64_t>(n);
  return out;
}

Result<data::Table> TableGan::SampleRange(uint64_t seed, int64_t row_begin,
                                          int64_t row_end) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SampleRange before Fit");
  }
  if (row_begin < 0 || row_end < row_begin) {
    return Status::InvalidArgument(
        "invalid row range [" + std::to_string(row_begin) + ", " +
        std::to_string(row_end) + ")");
  }
  if (row_end == row_begin) return data::Table(schema_);
  // Same domain tag as the constructor, so seed == options.seed
  // reproduces this model's own Sample stream from row 0.
  return GenerateRows(MixSeeds(seed, kSampleStreamTag),
                      static_cast<uint64_t>(row_begin),
                      row_end - row_begin);
}

Result<data::Table> TableGan::SampleConditional(uint64_t seed,
                                                int64_t row_begin,
                                                int64_t row_end,
                                                double label) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SampleConditional before Fit");
  }
  if (!options_.conditional) {
    return Status::FailedPrecondition(
        "model was not trained with options.conditional");
  }
  if (row_begin < 0 || row_end < row_begin) {
    return Status::InvalidArgument(
        "invalid row range [" + std::to_string(row_begin) + ", " +
        std::to_string(row_end) + ")");
  }
  // The request must name an exact training level of the primary label
  // column; the serve layer maps the NotFound onto kUnknownLabel.
  const std::vector<double>& levels = label_levels_[0];
  const auto it = std::lower_bound(levels.begin(), levels.end(), label);
  if (it == levels.end() || !(*it == label)) {
    return Status::NotFound("unknown label " + std::to_string(label) +
                            " for conditional sampling");
  }
  // Canonicalize (e.g. -0.0 vs 0.0) so the stream key is the stored
  // level's bit pattern, never the request's spelling of it.
  const double canonical = *it;
  if (row_end == row_begin) return data::Table(schema_);
  const uint64_t stream =
      MixSeeds(MixSeeds(MixSeeds(seed, kSampleStreamTag), kCondStreamTag),
               std::bit_cast<uint64_t>(canonical));
  return GenerateRows(stream, static_cast<uint64_t>(row_begin),
                      row_end - row_begin, &canonical);
}

Result<data::Table> TableGan::GenerateRows(uint64_t stream_seed,
                                           uint64_t first, int64_t n,
                                           const double* fixed_label) const {
  const int64_t cells = static_cast<int64_t>(side_) * side_;
  const int64_t latent = options_.latent_dim;
  const int64_t cond = cond_dim();
  const int64_t zdim = latent + cond;
  Tensor all({n, cells});
  // The level each conditioning cell carried, per row: the decode step
  // below writes it back into the label columns so a conditional sample
  // honors its condition exactly.
  std::vector<double> cond_levels(
      static_cast<size_t>(cond > 0 ? n * cond : 0));

  // Row blocks of a fixed size, each generated independently: row i's
  // latent comes from its own counter-derived substream, and the
  // generator runs cache-free (Infer), so blocks can be produced on any
  // thread in any order and still write the exact bits a serial pass
  // would. Exactly n rows are generated — the old code drew and ran the
  // generator on a full batch even for a short tail, then discarded the
  // excess while still consuming its latent draws.
  const int64_t num_blocks = (n + kInferBlockRows - 1) / kInferBlockRows;
  auto run_block = [&](int64_t b) {
    const int64_t row0 = b * kInferBlockRows;
    const int64_t take = std::min<int64_t>(kInferBlockRows, n - row0);
    Tensor z({take, zdim});
    for (int64_t r = 0; r < take; ++r) {
      Rng row_rng(MixSeeds(stream_seed,
                           first + static_cast<uint64_t>(row0 + r)));
      float* zr = z.data() + r * zdim;
      // Same draw sequence as Tensor::Uniform.
      for (int64_t j = 0; j < latent; ++j) {
        zr[j] = static_cast<float>(row_rng.Uniform(-1.0f, 1.0f));
      }
      // Conditioning cells: the primary label pins to `fixed_label` when
      // given; every unpinned label column draws a level from its
      // training frequencies on this row's own substream, keeping the
      // whole row a pure function of (stream_seed, row index).
      for (int64_t j = 0; j < cond; ++j) {
        const int col = label_cols_[static_cast<size_t>(j)];
        double level;
        if (fixed_label != nullptr && j == 0) {
          level = *fixed_label;
        } else {
          const double p = row_rng.NextDouble();
          const std::vector<double>& freqs =
              label_level_freqs_[static_cast<size_t>(j)];
          size_t idx = freqs.size() - 1;
          double cum = 0.0;
          for (size_t t = 0; t < freqs.size(); ++t) {
            cum += freqs[t];
            if (p < cum) {
              idx = t;
              break;
            }
          }
          level = label_levels_[static_cast<size_t>(j)][idx];
        }
        cond_levels[static_cast<size_t>((row0 + r) * cond + j)] = level;
        const double lo = normalizer_.column_min(col);
        const double hi = normalizer_.column_max(col);
        const double span = hi - lo;
        zr[latent + j] =
            span > 0.0
                ? static_cast<float>(data::EncodeUnit(level, lo, hi, span))
                : 0.0f;
      }
    }
    Tensor fake = generator_->Infer(z);
    std::copy(fake.data(), fake.data() + take * cells,
              all.data() + row0 * cells);
  };
  if (num_blocks > 1 && GetNumThreads() > 1) {
    ParallelFor(num_blocks, 1, [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) run_block(b);
    });
  } else {
    // Single block or single thread: run on the caller so the generator's
    // inner kernels can still use the pool.
    for (int64_t b = 0; b < num_blocks; ++b) run_block(b);
  }

  Tensor matrices = all.Reshaped({n, 1, side_, side_});
  TABLEGAN_ASSIGN_OR_RETURN(Tensor records, codec_->FromMatrices(matrices));
  TABLEGAN_ASSIGN_OR_RETURN(data::Table out,
                            normalizer_.InverseTransform(records, schema_));
  // A conditional model's label columns report the levels the rows were
  // conditioned on — the condition is a contract, not a suggestion the
  // generator may drift from.
  for (int64_t j = 0; j < cond; ++j) {
    const int col = label_cols_[static_cast<size_t>(j)];
    for (int64_t r = 0; r < n; ++r) {
      out.Set(r, col, cond_levels[static_cast<size_t>(r * cond + j)]);
    }
  }
  return out;
}

Result<std::vector<double>> TableGan::DiscriminatorScores(
    const data::Table& records) {
  if (!fitted_) {
    return Status::FailedPrecondition("DiscriminatorScores before Fit");
  }
  if (!records.schema().Equals(schema_)) {
    return Status::InvalidArgument("schema mismatch");
  }
  TABLEGAN_ASSIGN_OR_RETURN(Tensor encoded, normalizer_.Transform(records));
  // Clamp to the training range so unseen extremes stay in [-1, 1].
  for (int64_t i = 0; i < encoded.size(); ++i) {
    encoded[i] = std::clamp(encoded[i], -1.0f, 1.0f);
  }
  TABLEGAN_ASSIGN_OR_RETURN(Tensor matrices, codec_->ToMatrices(encoded));
  // Row-sharded scoring mirrors Sample: fixed-size blocks through the
  // cache-free inference path, each writing a disjoint slice of `out`.
  ScopedNumThreads scoped_threads(options_.num_threads);
  const int64_t n = matrices.dim(0);
  const int64_t cells = static_cast<int64_t>(side_) * side_;
  std::vector<double> out(static_cast<size_t>(n));
  const int64_t num_blocks = (n + kInferBlockRows - 1) / kInferBlockRows;
  auto score_block = [&](int64_t b) {
    const int64_t row0 = b * kInferBlockRows;
    const int64_t take = std::min<int64_t>(kInferBlockRows, n - row0);
    Tensor block({take, 1, side_, side_});
    std::copy(matrices.data() + row0 * cells,
              matrices.data() + (row0 + take) * cells, block.data());
    Tensor logits = discriminator_.InferLogits(block);
    TABLEGAN_CHECK(logits.size() == take);
    for (int64_t i = 0; i < take; ++i) {
      out[static_cast<size_t>(row0 + i)] =
          1.0 / (1.0 + std::exp(-static_cast<double>(logits[i])));
    }
  };
  if (num_blocks > 1 && GetNumThreads() > 1) {
    ParallelFor(num_blocks, 1, [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) score_block(b);
    });
  } else {
    for (int64_t b = 0; b < num_blocks; ++b) score_block(b);
  }
  return out;
}

}  // namespace core
}  // namespace tablegan
