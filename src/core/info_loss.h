#ifndef TABLEGAN_CORE_INFO_LOSS_H_
#define TABLEGAN_CORE_INFO_LOSS_H_

#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace tablegan {
namespace core {

/// The information loss of paper §4.2.2 / Algorithm 2 lines 10-13: the
/// hinge-thresholded discrepancy between moving-average first- and
/// second-order statistics of discriminator features on real vs.
/// synthetic records,
///
///   L_info^G = max(0, L_mean - delta_mean) + max(0, L_sd - delta_sd).
///
/// delta_mean / delta_sd are the privacy knobs: larger margins stop the
/// generator from matching the original statistics too closely.
///
/// Adaptation (documented in DESIGN.md): the discrepancies are
/// *relative* L2 distances, ||f^X - f^Z|| / ||f^X||, rather than the raw
/// norms of Eq. 2-3. The raw norm scales with the feature dimension and
/// activation magnitude (it sits at 4-8 for our CPU-sized networks), so
/// the paper's margins 0.1 / 0.2 would never engage; the relative form
/// is scale-free and spans (0, ~1], restoring the intended semantics of
/// those margin values.
class InfoLossState {
 public:
  InfoLossState(int64_t feature_dim, float ewma_weight, float delta_mean,
                float delta_sd);

  /// Updates the four EWMA statistics from this batch's real/synthetic
  /// feature matrices ([n, feature_dim] each).
  void UpdateStatistics(const Tensor& real_features,
                        const Tensor& fake_features);

  /// Current loss value (after UpdateStatistics for this batch).
  float Loss() const;

  /// Gradient of L_info w.r.t. the *synthetic* feature matrix used in
  /// the most recent UpdateStatistics call. The gradient flows through
  /// this batch's contribution (weight 1-w) to the synthetic EWMA mean
  /// and standard deviation.
  Tensor GradFakeFeatures() const;

  float l_mean() const;  // ||f_mean^X - f_mean^Z|| / ||f_mean^X||
  float l_sd() const;    // ||f_sd^X - f_sd^Z|| / ||f_sd^X||

  /// EWMA state for checkpointing: x_mean, x_sd, z_mean, z_sd. The
  /// batch-local gradient cache is intentionally excluded — it is
  /// rebuilt by the first UpdateStatistics call after resume, before
  /// any Loss()/GradFakeFeatures() use.
  std::vector<Tensor*> EwmaTensors() {
    return {&x_mean_, &x_sd_, &z_mean_, &z_sd_};
  }
  bool initialized() const { return initialized_; }
  void set_initialized(bool v) { initialized_ = v; }

  /// Binds the workspace GradFakeFeatures() draws its result buffer from
  /// (null = allocate fresh tensors). The workspace must outlive every
  /// gradient tensor handed out.
  void BindWorkspace(Workspace* ws) { ws_ = ws; }

 private:
  int64_t feature_dim_;
  float w_, delta_mean_, delta_sd_;
  bool initialized_ = false;
  float last_batch_weight_ = 1.0f;  // 1-w applied to the latest batch
  Tensor x_mean_, x_sd_, z_mean_, z_sd_;  // EWMA statistics (Alg. 2)
  // Batch-dependent cache for the gradient.
  Tensor batch_fake_features_;
  Tensor batch_fake_mean_, batch_fake_sd_;
  // Reusable per-batch scratch (fully overwritten on every use);
  // diff_scratch_ is mutable because the const l_mean()/l_sd() accessors
  // stage their subtraction in it.
  Tensor rx_mean_, rx_sd_, col_mean_scratch_;
  mutable Tensor diff_scratch_;
  Workspace* ws_ = nullptr;
};

}  // namespace core
}  // namespace tablegan

#endif  // TABLEGAN_CORE_INFO_LOSS_H_
