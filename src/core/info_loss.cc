#include "core/info_loss.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace tablegan {
namespace core {

InfoLossState::InfoLossState(int64_t feature_dim, float ewma_weight,
                             float delta_mean, float delta_sd)
    : feature_dim_(feature_dim),
      w_(ewma_weight),
      delta_mean_(delta_mean),
      delta_sd_(delta_sd),
      x_mean_({feature_dim}),
      x_sd_({feature_dim}),
      z_mean_({feature_dim}),
      z_sd_({feature_dim}) {}

void InfoLossState::UpdateStatistics(const Tensor& real_features,
                                     const Tensor& fake_features) {
  TABLEGAN_CHECK(real_features.rank() == 2 &&
                 real_features.dim(1) == feature_dim_);
  TABLEGAN_CHECK(fake_features.rank() == 2 &&
                 fake_features.dim(1) == feature_dim_);
  // Member scratch + Into-variants keep this allocation-free after the
  // first batch while reproducing the allocating forms bit for bit.
  ops::ColumnMeanInto(real_features, &rx_mean_);
  ops::ColumnStdInto(real_features, &rx_sd_, &col_mean_scratch_);
  const Tensor& rx_mean = rx_mean_;
  const Tensor& rx_sd = rx_sd_;
  ops::ColumnMeanInto(fake_features, &batch_fake_mean_);
  ops::ColumnStdInto(fake_features, &batch_fake_sd_, &col_mean_scratch_);
  batch_fake_features_ = fake_features;

  // First batch seeds the moving averages directly (Algorithm 2
  // initializes them to zero; seeding avoids a long zero-bias warmup).
  const float w = initialized_ ? w_ : 0.0f;
  last_batch_weight_ = 1.0f - w;
  initialized_ = true;
  for (int64_t j = 0; j < feature_dim_; ++j) {
    x_mean_[j] = w * x_mean_[j] + (1.0f - w) * rx_mean[j];
    x_sd_[j] = w * x_sd_[j] + (1.0f - w) * rx_sd[j];
    z_mean_[j] = w * z_mean_[j] + (1.0f - w) * batch_fake_mean_[j];
    z_sd_[j] = w * z_sd_[j] + (1.0f - w) * batch_fake_sd_[j];
  }
}

namespace {
constexpr float kNormEps = 1e-6f;
}  // namespace

float InfoLossState::l_mean() const {
  ops::SubInto(x_mean_, z_mean_, &diff_scratch_);
  return ops::Norm2(diff_scratch_) / (ops::Norm2(x_mean_) + kNormEps);
}

float InfoLossState::l_sd() const {
  ops::SubInto(x_sd_, z_sd_, &diff_scratch_);
  return ops::Norm2(diff_scratch_) / (ops::Norm2(x_sd_) + kNormEps);
}

float InfoLossState::Loss() const {
  return std::max(0.0f, l_mean() - delta_mean_) +
         std::max(0.0f, l_sd() - delta_sd_);
}

Tensor InfoLossState::GradFakeFeatures() const {
  TABLEGAN_CHECK(!batch_fake_features_.empty())
      << "GradFakeFeatures before UpdateStatistics";
  const int64_t n = batch_fake_features_.dim(0);

  // d max(0, ||x_mean - z_mean||/||x_mean|| - delta) / d z_mean
  //   = -(x_mean - z_mean) / (||x_mean - z_mean|| * ||x_mean||)
  // when the hinge is active (||x_mean|| is constant w.r.t. z).
  const float lm = l_mean();
  const float ls = l_sd();
  const float x_mean_norm = ops::Norm2(x_mean_) + kNormEps;
  const float x_sd_norm = ops::Norm2(x_sd_) + kNormEps;
  const float mean_gap = lm * x_mean_norm;  // raw ||x_mean - z_mean||
  const float sd_gap = ls * x_sd_norm;
  const bool mean_active = lm > delta_mean_ && mean_gap > 1e-12f;
  const bool sd_active = ls > delta_sd_ && sd_gap > 1e-12f;
  // Inactive hinges return an (explicitly zeroed) zero gradient; the
  // active path overwrites every element, so uninitialized pool memory
  // is safe there.
  if (!mean_active && !sd_active) {
    return ws_ != nullptr ? ws_->TakeZeroed({n, feature_dim_})
                          : Tensor({n, feature_dim_});
  }
  Tensor grad = ws_ != nullptr ? ws_->Take({n, feature_dim_})
                               : Tensor({n, feature_dim_});

  // The gradient flows through this batch's statistics at full weight:
  // the EWMA (Alg. 2 lines 10-13) smooths the *value* of the global
  // statistics, but attenuating the gradient by (1-w) = 0.01 would make
  // the information loss ~100x weaker than the other generator losses
  // and the hinge margins would never engage. We therefore differentiate
  // as if z_mean/z_sd were the batch statistics (their EWMA update
  // direction), which is what the reference TensorFlow implementation's
  // autodiff does through the current mini-batch.
  const float batch_w = 1.0f;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t j = 0; j < feature_dim_; ++j) {
    float g_mean = 0.0f, g_sd = 0.0f;
    if (mean_active) {
      g_mean = -(x_mean_[j] - z_mean_[j]) / (mean_gap * x_mean_norm) *
               batch_w * inv_n;
    }
    if (sd_active && batch_fake_sd_[j] > 1e-8f) {
      g_sd = -(x_sd_[j] - z_sd_[j]) / (sd_gap * x_sd_norm) * batch_w;
    }
    for (int64_t i = 0; i < n; ++i) {
      float g = g_mean;
      if (g_sd != 0.0f) {
        // d sd_j / d f_ij = (f_ij - mean_j) / (n * sd_j)
        g += g_sd * (batch_fake_features_.at2(i, j) - batch_fake_mean_[j]) *
             inv_n / batch_fake_sd_[j];
      }
      grad.at2(i, j) = g;
    }
  }
  return grad;
}

}  // namespace core
}  // namespace tablegan
