#ifndef TABLEGAN_CORE_CHUNKED_H_
#define TABLEGAN_CORE_CHUNKED_H_

#include <cstdint>
#include <optional>

#include "common/status.h"
#include "core/table_gan_options.h"
#include "data/table.h"
#include "data/table_view.h"

namespace tablegan {
namespace core {

/// Multi-chunk scalable synthesis (paper §4.4): splits the table into
/// `num_chunks` pieces, trains an independent table-GAN per chunk (in
/// parallel on `num_threads` workers), synthesizes each chunk's share of
/// the requested rows, and merges the results. The paper uses this mode
/// for the one-million-row Airline table.
struct ChunkedSynthesisOptions {
  TableGanOptions gan;
  int num_chunks = 4;
  int num_threads = 2;
  /// When set (requires gan.conditional), every chunk synthesizes its
  /// share from the per-label stream of this label instead of the
  /// unconditional stream. A chunk whose slice of the table lacks the
  /// label fails that chunk (NotFound), failing the run — a silent
  /// partial answer would break the "rows match the condition" contract.
  std::optional<double> where_label;
};

/// Seed for chunk `chunk_index`'s GAN, derived from the run's base seed
/// with MixSeeds under a chunk-domain tag — the same substream scheme
/// sampling uses. The earlier additive derivation (base + i * 7919)
/// made distinct (base, chunk) pairs collide: run seed 7919 chunk 0 and
/// run seed 0 chunk 1 trained byte-identical models. Exposed so tests
/// can compose a chunked run manually and assert bitwise determinism.
uint64_t ChunkSeed(uint64_t base_seed, int chunk_index);

/// Accepts any TableView, so a chunked run can train straight over an
/// mmap'd columnar file: chunks are zero-copy row-range views, never
/// materialized tables.
Result<data::Table> ChunkedTrainAndSynthesize(
    const data::TableView& table, int label_col, int64_t num_samples,
    const ChunkedSynthesisOptions& options);

}  // namespace core
}  // namespace tablegan

#endif  // TABLEGAN_CORE_CHUNKED_H_
