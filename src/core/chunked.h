#ifndef TABLEGAN_CORE_CHUNKED_H_
#define TABLEGAN_CORE_CHUNKED_H_

#include "common/status.h"
#include "core/table_gan_options.h"
#include "data/table.h"

namespace tablegan {
namespace core {

/// Multi-chunk scalable synthesis (paper §4.4): splits the table into
/// `num_chunks` pieces, trains an independent table-GAN per chunk (in
/// parallel on `num_threads` workers), synthesizes each chunk's share of
/// the requested rows, and merges the results. The paper uses this mode
/// for the one-million-row Airline table.
struct ChunkedSynthesisOptions {
  TableGanOptions gan;
  int num_chunks = 4;
  int num_threads = 2;
};

Result<data::Table> ChunkedTrainAndSynthesize(
    const data::Table& table, int label_col, int64_t num_samples,
    const ChunkedSynthesisOptions& options);

}  // namespace core
}  // namespace tablegan

#endif  // TABLEGAN_CORE_CHUNKED_H_
