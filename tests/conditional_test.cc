// Cross-subsystem conditional-determinism suite (ISSUE tentpole lock):
// TableGan::SampleConditional must be a pure function of
// (seed, label, row index) — bitwise invariant to batch size, thread
// count, chunking, and to whether the rows are produced locally or
// fetched through the serving daemon. Per-label streams are disjoint
// from each other and from the unconditional stream, unknown labels
// map onto NotFound locally and UNKNOWN_LABEL on the wire, and the
// conditional + GMM state survives a checkpoint round trip (and is
// rejected by the pre-v6 compatibility writer).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "core/chunked.h"
#include "core/networks.h"
#include "core/table_gan.h"
#include "data/csv.h"
#include "data/table.h"
#include "serve/client.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "test_util.h"

namespace tablegan {
namespace {

std::string CompareTablesBitwise(const data::Table& a, const data::Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return "shape mismatch";
  }
  for (int c = 0; c < a.num_columns(); ++c) {
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      const double x = a.Get(r, c), y = b.Get(r, c);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) {
        std::ostringstream os;
        os.precision(17);
        os << "cell (" << r << ", " << c << "): " << x << " vs " << y;
        return os.str();
      }
    }
  }
  return "";
}

// A table whose continuous column is bimodal keyed by the binary label
// — the shape conditional generation is for.
data::Table ConditionalFixtureTable(int64_t rows = 24) {
  data::Schema schema;
  data::ColumnSpec x;
  x.name = "x";
  x.type = data::ColumnType::kContinuous;
  schema.AddColumn(x);
  data::ColumnSpec label;
  label.name = "label";
  label.type = data::ColumnType::kDiscrete;
  label.role = data::ColumnRole::kLabel;
  schema.AddColumn(label);
  data::Table t(schema);
  Rng rng(0xC01D);
  for (int64_t r = 0; r < rows; ++r) {
    const double y = static_cast<double>(r % 2);
    t.AppendRow({y == 0.0 ? rng.Gaussian(-10.0, 0.5)
                          : rng.Gaussian(25.0, 1.0),
                 y});
  }
  return t;
}

core::TableGanOptions TinyConditionalOptions(bool with_gmm = false) {
  core::TableGanOptions opt;
  opt.latent_dim = 4;
  opt.base_channels = 4;
  opt.epochs = 1;
  opt.batch_size = 4;
  opt.num_threads = 1;
  opt.seed = 20260808;
  opt.conditional = true;
  if (with_gmm) {
    opt.gmm_columns = {0};
    opt.gmm_components = 3;
  }
  return opt;
}

core::TableGan FitConditionalGan(bool with_gmm = false) {
  core::TableGan gan(TinyConditionalOptions(with_gmm));
  TABLEGAN_CHECK_OK(gan.Fit(ConditionalFixtureTable(), 1));
  return gan;
}

TEST(ConditionalTest, RequiresAConditionalModel) {
  core::TableGanOptions opt = TinyConditionalOptions();
  opt.conditional = false;
  core::TableGan gan(opt);
  ASSERT_TRUE(gan.Fit(ConditionalFixtureTable(), 1).ok());
  const auto r = gan.SampleConditional(1, 0, 4, 1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ConditionalTest, UnknownLabelIsNotFound) {
  core::TableGan gan = FitConditionalGan();
  const auto r = gan.SampleConditional(1, 0, 4, 3.5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("3.5"), std::string::npos);
  // Exact training levels are accepted, including after canonicalizing
  // the request's -0.0 spelling of level 0.0.
  EXPECT_TRUE(gan.SampleConditional(1, 0, 2, 1.0).ok());
  const auto pos = gan.SampleConditional(1, 0, 2, 0.0);
  const auto neg = gan.SampleConditional(1, 0, 2, -0.0);
  ASSERT_TRUE(pos.ok() && neg.ok());
  EXPECT_EQ(CompareTablesBitwise(*pos, *neg), "");
}

TEST(ConditionalTest, BitwiseInvariantToBatchThreadsAndChunking) {
  core::TableGan gan = FitConditionalGan(/*with_gmm=*/true);
  constexpr int64_t kRows = 90;  // > one 64-row inference block
  constexpr uint64_t kSeed = 77;

  Result<data::Table> whole = gan.SampleConditional(kSeed, 0, kRows, 1.0);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  ASSERT_EQ(whole->num_rows(), kRows);

  Rng rng(0x51ABULL);
  for (int threads : {1, 3, 7}) {
    ScopedNumThreads scope(threads);
    // Random chunking of [0, kRows) reassembles the identical bytes.
    std::vector<data::Table> parts;
    int64_t at = 0;
    while (at < kRows) {
      const int64_t take = rng.UniformInt(1, kRows - at);
      Result<data::Table> part =
          gan.SampleConditional(kSeed, at, at + take, 1.0);
      ASSERT_TRUE(part.ok()) << part.status().ToString();
      parts.push_back(std::move(*part));
      at += take;
    }
    Result<data::Table> glued = data::Table::ConcatRows(parts);
    ASSERT_TRUE(glued.ok());
    EXPECT_EQ(CompareTablesBitwise(*whole, *glued), "")
        << "at " << threads << " threads";
  }

  // A second identically-configured fit (trained under a different
  // thread count) serves the same conditional bytes.
  {
    ScopedNumThreads scope(4);
    core::TableGan twin(TinyConditionalOptions(/*with_gmm=*/true));
    ASSERT_TRUE(twin.Fit(ConditionalFixtureTable(), 1).ok());
    Result<data::Table> again = twin.SampleConditional(kSeed, 0, kRows, 1.0);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(CompareTablesBitwise(*whole, *again), "");
  }
}

TEST(ConditionalTest, PerLabelStreamsAreDisjointAndHonorTheLabel) {
  core::TableGan gan = FitConditionalGan();
  constexpr int64_t kRows = 32;
  constexpr uint64_t kSeed = 5;
  Result<data::Table> zero = gan.SampleConditional(kSeed, 0, kRows, 0.0);
  Result<data::Table> one = gan.SampleConditional(kSeed, 0, kRows, 1.0);
  Result<data::Table> uncond = gan.SampleRange(kSeed, 0, kRows);
  ASSERT_TRUE(zero.ok() && one.ok() && uncond.ok());

  // The condition is a contract: every returned row carries the label.
  for (int64_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(zero->Get(r, 1), 0.0);
    EXPECT_EQ(one->Get(r, 1), 1.0);
  }

  // The three streams draw from disjoint substreams: their continuous
  // cells differ (count, not assert-per-cell — a chance collision of a
  // single float is possible, 32 at once is not).
  auto differing = [](const data::Table& a, const data::Table& b) {
    int n = 0;
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      if (a.Get(r, 0) != b.Get(r, 0)) ++n;
    }
    return n;
  };
  EXPECT_GT(differing(*zero, *one), 16);
  EXPECT_GT(differing(*zero, *uncond), 16);
  EXPECT_GT(differing(*one, *uncond), 16);

  // And conditional sampling never perturbs the unconditional stream.
  Result<data::Table> uncond2 = gan.SampleRange(kSeed, 0, kRows);
  ASSERT_TRUE(uncond2.ok());
  EXPECT_EQ(CompareTablesBitwise(*uncond, *uncond2), "");
}

TEST(ConditionalTest, LocalAndRemoteConditionalBytesAgree) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Add("cond", FitConditionalGan()).ok());
  core::TableGan local = FitConditionalGan();

  constexpr int64_t kRows = 19;
  constexpr uint64_t kSeed = 11;
  Result<data::Table> rows = local.SampleConditional(kSeed, 0, kRows, 1.0);
  ASSERT_TRUE(rows.ok());
  Result<std::string> local_csv = data::WriteCsvToString(*rows);
  ASSERT_TRUE(local_csv.ok());

  serve::Server server(&registry, serve::ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  serve::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Result<std::string> remote = client.SampleRange(
      "cond", kSeed, 0, kRows, serve::Format::kCsv, 1.0);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(*remote, *local_csv);

  // Sharded conditional fetches concatenate into the same bytes.
  Result<std::string> shard0 = client.SampleRange(
      "cond", kSeed, 0, 6, serve::Format::kCsv, 1.0);
  Result<std::string> shard1 = client.SampleRange(
      "cond", kSeed, 6, kRows, serve::Format::kCsvNoHeader, 1.0);
  ASSERT_TRUE(shard0.ok() && shard1.ok());
  EXPECT_EQ(*shard0 + *shard1, *local_csv);

  // An untrained label answers UNKNOWN_LABEL, and the connection stays
  // usable afterwards.
  serve::SampleRequest req;
  req.model_id = "cond";
  req.seed = kSeed;
  req.row_end = 4;
  req.where_label = 9.0;
  Result<serve::SampleResponse> resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, serve::WireStatus::kUnknownLabel);
  req.where_label = 1.0;
  resp = client.Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, serve::WireStatus::kOk);
  server.Shutdown();
}

TEST(ConditionalTest, ConditionalRequestAgainstPlainModelIsBadRequest) {
  core::TableGanOptions opt = TinyConditionalOptions();
  opt.conditional = false;
  core::TableGan plain(opt);
  ASSERT_TRUE(plain.Fit(ConditionalFixtureTable(), 1).ok());
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Add("plain", std::move(plain)).ok());
  serve::Server server(&registry, serve::ServerOptions());
  ASSERT_TRUE(server.Start().ok());
  serve::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  serve::SampleRequest req;
  req.model_id = "plain";
  req.row_end = 2;
  req.where_label = 1.0;
  Result<serve::SampleResponse> resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, serve::WireStatus::kBadRequest);
  server.Shutdown();
}

// ISSUE satellite: an out-of-range label column index must name the
// offending index, and duplicates are rejected rather than silently
// double-counted.
TEST(ConditionalTest, LabelColumnErrorsNameTheOffendingIndex) {
  data::Table t = ConditionalFixtureTable();
  {
    core::TableGan gan(TinyConditionalOptions());
    const Status st = gan.Fit(t, 7);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("label column index 7"), std::string::npos);
    EXPECT_NE(st.message().find("[0, 2)"), std::string::npos);
  }
  {
    core::TableGan gan(TinyConditionalOptions());
    const Status st = gan.Fit(t, -1);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("label column index -1"), std::string::npos);
  }
  {
    core::TableGan gan(TinyConditionalOptions());
    const Status st = gan.FitMultiLabel(t, {1, 1});
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("duplicate label column index 1"),
              std::string::npos);
  }
}

TEST(ConditionalTest, CheckpointRoundTripsAndPreV6WriterRejects) {
  core::TableGan gan = FitConditionalGan(/*with_gmm=*/true);
  const std::string path = "conditional_ckpt.tgan";
  ASSERT_TRUE(gan.Save(path).ok());
  Result<core::TableGan> loaded = core::TableGan::Load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->options().conditional);
  ASSERT_EQ(loaded->options().gmm_columns, (std::vector<int>{0}));

  Result<data::Table> a = gan.SampleConditional(3, 0, 40, 0.0);
  Result<data::Table> b = loaded->SampleConditional(3, 0, 40, 0.0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CompareTablesBitwise(*a, *b), "");

  // The conditional/GMM state cannot be expressed below format v6.
  const Status compat = gan.SaveCompat("conditional_v5.tgan", 5);
  ASSERT_FALSE(compat.ok());
  EXPECT_EQ(compat.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(compat.message().find("requires version 6"), std::string::npos);
}

TEST(ConditionalTest, ChunkedConditionalSynthesisIsDeterministic) {
  data::Table t = ConditionalFixtureTable(32);
  core::ChunkedSynthesisOptions opt;
  opt.gan = TinyConditionalOptions();
  opt.num_chunks = 2;
  opt.num_threads = 1;
  opt.where_label = 1.0;
  Result<data::Table> a = core::ChunkedTrainAndSynthesize(t, 1, 20, opt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_EQ(a->num_rows(), 20);
  for (int64_t r = 0; r < a->num_rows(); ++r) {
    EXPECT_EQ(a->Get(r, 1), 1.0) << "row " << r;
  }
  opt.num_threads = 3;
  Result<data::Table> b = core::ChunkedTrainAndSynthesize(t, 1, 20, opt);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(CompareTablesBitwise(*a, *b), "");
}

// ISSUE tentpole gate: gradients flow correctly through the widened
// generator input (latent + conditioning cells).
TEST(ConditionalGradCheck, GeneratorStackWithConditioningInput) {
  Rng rng(9);
  constexpr int kLatent = 12;
  constexpr int kCond = 2;
  auto g = core::BuildGenerator(/*side=*/8, kLatent + kCond,
                                /*base_channels=*/4, &rng);
  for (Tensor* p : g->Parameters()) {
    for (int64_t i = 0; i < p->size(); ++i) (*p)[i] *= 5.0f;
  }
  testing_util::GradCheckLayerAggregate(
      g.get(), Tensor::Uniform({4, kLatent + kCond}, -1, 1, &rng));
}

}  // namespace
}  // namespace tablegan
