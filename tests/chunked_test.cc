// Tests for multi-chunk training/synthesis (core/chunked.h): bitwise
// determinism across worker thread counts, the chunk-seed substream
// derivation (regression for the old additive collision), share
// clamping, sentinel statuses for never-run chunks, and error
// propagation out of the worker pool. Plus a property fuzz pass for
// the columnar round trip the chunked path rides on out-of-core.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/chunked.h"
#include "core/table_gan.h"
#include "data/columnar.h"
#include "data/split.h"
#include "data/table.h"
#include "proptest.h"

namespace tablegan {
namespace core {
namespace {

data::Table TinyTrainingTable(int64_t rows, uint64_t seed) {
  data::Schema schema({
      {"q", data::ColumnType::kDiscrete,
       data::ColumnRole::kQuasiIdentifier, {}},
      {"a", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"b", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"c", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"d", data::ColumnType::kDiscrete, data::ColumnRole::kSensitive, {}},
      {"y", data::ColumnType::kDiscrete, data::ColumnRole::kLabel, {}},
  });
  data::Table t(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    const bool pos = rng.NextBool(0.5);
    const double center = pos ? 3.0 : -3.0;
    t.AppendRow({static_cast<double>(rng.UniformInt(0, 9)),
                 rng.Gaussian(center, 0.5), rng.Gaussian(center, 0.5),
                 rng.Gaussian(-center, 0.5),
                 static_cast<double>(rng.UniformInt(0, 4)),
                 pos ? 1.0 : 0.0});
  }
  return t;
}

TableGanOptions FastOptions() {
  TableGanOptions o;
  o.base_channels = 8;
  o.epochs = 2;
  o.batch_size = 32;
  o.latent_dim = 16;
  return o;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string CompareTablesBitwise(const data::Table& a, const data::Table& b) {
  if (a.num_rows() != b.num_rows()) return "row count mismatch";
  if (a.num_columns() != b.num_columns()) return "column count mismatch";
  if (!a.schema().Equals(b.schema())) return "schema mismatch";
  for (int c = 0; c < a.num_columns(); ++c) {
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      if (!SameBits(a.Get(r, c), b.Get(r, c))) {
        std::ostringstream os;
        os << "cell (" << r << ", " << c << ") differs";
        return os.str();
      }
    }
  }
  return "";
}

TEST(ChunkSeedTest, NoCollisionsAcrossRunsAndChunks) {
  // Regression: the old derivation (base + i * 7919) made run seed 7919
  // chunk 0 collide with run seed 0 chunk 1.
  EXPECT_NE(ChunkSeed(7919, 0), ChunkSeed(0, 1));
  EXPECT_NE(ChunkSeed(2 * 7919, 0), ChunkSeed(0, 2));
  // And broadly: distinct (base, chunk) pairs give distinct seeds.
  std::set<uint64_t> seen;
  for (uint64_t base : {0u, 1u, 47u, 7919u, 15838u}) {
    for (int chunk = 0; chunk < 16; ++chunk) {
      EXPECT_TRUE(seen.insert(ChunkSeed(base, chunk)).second)
          << "collision at base " << base << " chunk " << chunk;
    }
  }
  // Deterministic: the derivation is a pure function.
  EXPECT_EQ(ChunkSeed(47, 3), ChunkSeed(47, 3));
}

TEST(ChunkedTest, DeterministicAcrossThreadCounts) {
  data::Table t = TinyTrainingTable(160, 21);
  ChunkedSynthesisOptions o;
  o.gan = FastOptions();
  o.num_chunks = 3;

  data::Table reference(t.schema());
  for (int threads : {1, 2, 4}) {
    o.num_threads = threads;
    auto out = ChunkedTrainAndSynthesize(t, 5, 48, o);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->num_rows(), 48);
    if (threads == 1) {
      reference = std::move(*out);
    } else {
      EXPECT_EQ(CompareTablesBitwise(reference, *out), "")
          << "threads=" << threads;
    }
  }
}

TEST(ChunkedTest, MatchesManualPerChunkComposition) {
  // ChunkedTrainAndSynthesize is nothing more than: split, train chunk
  // i with ChunkSeed(seed, i), sample its share, concatenate. Composing
  // that by hand must give byte-identical output.
  data::Table t = TinyTrainingTable(128, 22);
  ChunkedSynthesisOptions o;
  o.gan = FastOptions();
  o.num_chunks = 2;
  o.num_threads = 2;
  const int64_t num_samples = 40;
  auto out = ChunkedTrainAndSynthesize(t, 5, num_samples, o);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  std::vector<data::Table> chunks = data::SplitChunks(t, o.num_chunks);
  std::vector<data::Table> parts;
  for (int i = 0; i < o.num_chunks; ++i) {
    const int64_t share = num_samples * (i + 1) / o.num_chunks -
                          num_samples * i / o.num_chunks;
    TableGanOptions gan = o.gan;
    gan.seed = ChunkSeed(o.gan.seed, i);
    TableGan model(gan);
    ASSERT_TRUE(model.Fit(chunks[static_cast<size_t>(i)], 5).ok());
    auto sampled = model.Sample(share);
    ASSERT_TRUE(sampled.ok());
    parts.push_back(std::move(*sampled));
  }
  auto manual = data::Table::ConcatRows(parts);
  ASSERT_TRUE(manual.ok());
  EXPECT_EQ(CompareTablesBitwise(*manual, *out), "");
}

TEST(ChunkedTest, ClampsChunkCountToRowCount) {
  data::Table t = TinyTrainingTable(5, 23);
  EXPECT_EQ(data::SplitChunkViews(t, 100).size(), 5u);
  EXPECT_EQ(data::SplitChunks(t, 100).size(), 5u);
  // Views tile the table exactly, in order, with no gaps.
  int64_t next = 0;
  for (const data::TableRangeView& v : data::SplitChunkViews(t, 3)) {
    EXPECT_EQ(v.begin(), next);
    next += v.num_rows();
  }
  EXPECT_EQ(next, t.num_rows());
}

TEST(ChunkedTest, ZeroShareChunksContributeNothing) {
  // 3 chunks but only 2 samples: chunk shares are {0, 1, 1}, so chunk
  // 0 trains but contributes no rows and the output still has exactly
  // num_samples rows in chunk order.
  data::Table t = TinyTrainingTable(150, 24);
  ChunkedSynthesisOptions o;
  o.gan = FastOptions();
  o.num_chunks = 3;
  auto out = ChunkedTrainAndSynthesize(t, 5, 2, o);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), 2);
  EXPECT_TRUE(out->schema().Equals(t.schema()));
}

TEST(ChunkedTest, EmptyTableIsAnErrorNotACrash) {
  data::Table t = TinyTrainingTable(0, 25);
  ChunkedSynthesisOptions o;
  o.gan = FastOptions();
  auto out = ChunkedTrainAndSynthesize(t, 5, 8, o);
  EXPECT_FALSE(out.ok());
}

TEST(ChunkedTest, ChunkTrainingFailurePropagates) {
  // 6 rows over 2 chunks leaves 3 rows per chunk — too few for the
  // 6-attribute 4x4 encoding's training loop, so per-chunk Fit fails
  // and the pool must surface a real error (not the sentinel, not a
  // silent partial table).
  data::Table t = TinyTrainingTable(6, 26);
  ChunkedSynthesisOptions o;
  o.gan = FastOptions();
  o.num_chunks = 2;
  o.num_threads = 2;
  auto out = ChunkedTrainAndSynthesize(t, 5, 8, o);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().message().find("chunk not run"), std::string::npos)
      << "sentinel status leaked for a chunk that did run: "
      << out.status().ToString();
}

TEST(ChunkedPropertyTest, ColumnarRoundTripIsBitwiseIdentity) {
  // Property fuzz over random schemas/tables (extreme doubles,
  // denormals, signed zeros): write -> mmap -> materialize is bitwise
  // identity, so out-of-core chunked runs see the same bits the in-RAM
  // path does.
  const std::string path =
      (std::filesystem::temp_directory_path() / "chunked_prop.tgcl")
          .string();
  testing_util::SchemaGenOptions opt;
  opt.gnarly_text = false;  // columnar schema text cannot carry ','
  testing_util::ForAllSeeds(
      "columnar_round_trip", 24, [&](uint64_t seed) -> std::string {
        data::Table t = testing_util::RandomPropertyTable(seed, 48, opt);
        Status written = data::WriteColumnar(t, path);
        if (!written.ok()) return "write failed: " + written.ToString();
        auto reader = data::ColumnarReader::Open(path);
        if (!reader.ok()) return "open failed: " + reader.status().ToString();
        Status crc = reader->VerifyCrc();
        if (!crc.ok()) return "crc failed: " + crc.ToString();
        return CompareTablesBitwise(t, reader->Materialize());
      });
  std::remove(path.c_str());
}

}  // namespace
}  // namespace core
}  // namespace tablegan
