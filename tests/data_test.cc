#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>

#include "data/csv.h"
#include "data/normalizer.h"
#include "data/record_matrix.h"
#include "data/schema.h"
#include "data/split.h"
#include "data/table.h"

namespace tablegan {
namespace data {
namespace {

Schema TinySchema() {
  return Schema({
      {"age", ColumnType::kDiscrete, ColumnRole::kQuasiIdentifier, {}},
      {"color", ColumnType::kCategorical, ColumnRole::kSensitive,
       {"red", "green", "blue"}},
      {"salary", ColumnType::kContinuous, ColumnRole::kSensitive, {}},
      {"label", ColumnType::kDiscrete, ColumnRole::kLabel, {}},
  });
}

Table TinyTable() {
  Table t(TinySchema());
  t.AppendRow({25, 0, 1000.5, 0});
  t.AppendRow({30, 1, 2000.25, 1});
  t.AppendRow({35, 2, 1500.0, 0});
  t.AppendRow({40, 1, 3000.75, 1});
  return t;
}

TEST(SchemaTest, FindColumn) {
  Schema s = TinySchema();
  EXPECT_EQ(*s.FindColumn("salary"), 2);
  EXPECT_FALSE(s.FindColumn("nope").ok());
}

TEST(SchemaTest, ColumnsWithRole) {
  Schema s = TinySchema();
  EXPECT_EQ(s.ColumnsWithRole(ColumnRole::kQuasiIdentifier),
            (std::vector<int>{0}));
  EXPECT_EQ(s.ColumnsWithRole(ColumnRole::kSensitive),
            (std::vector<int>{1, 2}));
  EXPECT_EQ(s.ColumnsWithRole(ColumnRole::kLabel), (std::vector<int>{3}));
}

TEST(SchemaTest, Equals) {
  EXPECT_TRUE(TinySchema().Equals(TinySchema()));
  Schema other = TinySchema();
  other.AddColumn({"x", ColumnType::kDiscrete, ColumnRole::kSensitive, {}});
  EXPECT_FALSE(TinySchema().Equals(other));
}

TEST(TableTest, RowAccessors) {
  Table t = TinyTable();
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.Get(1, 2), 2000.25);
  t.Set(1, 2, 9.0);
  EXPECT_EQ(t.Get(1, 2), 9.0);
  EXPECT_EQ(t.Row(0), (std::vector<double>{25, 0, 1000.5, 0}));
}

TEST(TableTest, SelectRowsAndColumns) {
  Table t = TinyTable();
  Table sub = t.SelectRows({3, 1});
  EXPECT_EQ(sub.num_rows(), 2);
  EXPECT_EQ(sub.Get(0, 0), 40);
  EXPECT_EQ(sub.Get(1, 0), 30);
  auto cols = t.SelectColumns({2, 0});
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->num_columns(), 2);
  EXPECT_EQ(cols->schema().column(0).name, "salary");
  EXPECT_EQ(cols->Get(2, 1), 35);
  EXPECT_FALSE(t.SelectColumns({9}).ok());
}

TEST(TableTest, ConcatRows) {
  Table t = TinyTable();
  auto cat = Table::ConcatRows({t, t});
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat->num_rows(), 8);
  EXPECT_EQ(cat->Get(7, 0), 40);
}

TEST(TableTest, ConcatRowsIsBitwiseBlockCopy) {
  // ConcatRows moves whole column blocks; every cell of the result must
  // be bit-identical to its source, including payloads the arithmetic
  // path would normalize (-0.0, denormals, DBL_MAX).
  Table t(TinySchema());
  t.AppendRow({-0.0, 4.9406564584124654e-324, 1.7976931348623157e308, 1});
  t.AppendRow({1e308, -1e-308, -0.0, 0});
  Table u(TinySchema());
  u.AppendRow({0.0, -4.9406564584124654e-324, 42.5, 1});
  auto cat = Table::ConcatRows({t, u, Table(TinySchema()), t});
  ASSERT_TRUE(cat.ok());
  ASSERT_EQ(cat->num_rows(), 5);
  const Table* sources[] = {&t, &u, &t};
  const int64_t starts[] = {0, 2, 3};
  for (int part = 0; part < 3; ++part) {
    for (int c = 0; c < cat->num_columns(); ++c) {
      for (int64_t r = 0; r < sources[part]->num_rows(); ++r) {
        const double a = sources[part]->Get(r, c);
        const double b = cat->Get(starts[part] + r, c);
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
            << "part " << part << " cell (" << r << ", " << c << ")";
      }
    }
  }
}

TEST(TableTest, ConcatRowsRejectsSchemaMismatch) {
  Table t = TinyTable();
  Schema other({{"x", ColumnType::kDiscrete, ColumnRole::kSensitive, {}}});
  EXPECT_FALSE(Table::ConcatRows({t, Table(other)}).ok());
}

TEST(CsvTest, RoundTrips) {
  const std::string path = ::testing::TempDir() + "/tablegan_csv_test.csv";
  Table t = TinyTable();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(TinySchema(), path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 4);
  for (int64_t r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(back->Get(r, c), t.Get(r, c), 1e-9) << r << "," << c;
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsBadHeader) {
  const std::string path = ::testing::TempDir() + "/tablegan_csv_bad.csv";
  Table t = TinyTable();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  Schema wrong({{"zzz", ColumnType::kDiscrete, ColumnRole::kSensitive, {}}});
  EXPECT_FALSE(ReadCsv(wrong, path).ok());
  std::remove(path.c_str());
}

TEST(NormalizerTest, TransformsToUnitRange) {
  Table t = TinyTable();
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  auto enc = norm.Transform(t);
  ASSERT_TRUE(enc.ok());
  for (int64_t i = 0; i < enc->size(); ++i) {
    EXPECT_GE((*enc)[i], -1.0f);
    EXPECT_LE((*enc)[i], 1.0f);
  }
  // Column extremes map to exactly -1 / +1.
  EXPECT_FLOAT_EQ(enc->at2(0, 0), -1.0f);  // age 25 is the min
  EXPECT_FLOAT_EQ(enc->at2(3, 0), 1.0f);   // age 40 is the max
}

TEST(NormalizerTest, RoundTripsExactlyOnFittedData) {
  Table t = TinyTable();
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  auto enc = norm.Transform(t);
  ASSERT_TRUE(enc.ok());
  auto back = norm.InverseTransform(*enc, t.schema());
  ASSERT_TRUE(back.ok());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < t.num_columns(); ++c) {
      EXPECT_NEAR(back->Get(r, c), t.Get(r, c), 1e-3)
          << "row " << r << " col " << c;
    }
  }
}

TEST(NormalizerTest, InverseRoundsDiscreteAndClamps) {
  Table t = TinyTable();
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  Tensor enc({1, 4});
  enc.at2(0, 0) = 0.8f;    // between discrete levels -> rounded
  enc.at2(0, 1) = 2.0f;    // out of range -> clamped to max level
  enc.at2(0, 2) = -1.5f;   // clamped to min
  enc.at2(0, 3) = -0.9f;
  auto back = norm.InverseTransform(enc, t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Get(0, 0), std::round(25.0 + 0.9 * 15.0 / 1.0));
  EXPECT_EQ(back->Get(0, 1), 2.0);       // max color level
  EXPECT_EQ(back->Get(0, 2), 1000.5);    // min salary
  EXPECT_EQ(back->Get(0, 3), 0.0);
}

TEST(NormalizerTest, ConstantColumnMapsToZero) {
  Schema s({{"c", ColumnType::kContinuous, ColumnRole::kSensitive, {}}});
  Table t(s);
  t.AppendRow({7.0});
  t.AppendRow({7.0});
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  auto enc = norm.Transform(t);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ((*enc)[0], 0.0f);
  auto back = norm.InverseTransform(*enc, s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Get(0, 0), 7.0);
}

TEST(NormalizerTest, NormalizeRowMatchesTransform) {
  Table t = TinyTable();
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  auto enc = norm.Transform(t);
  ASSERT_TRUE(enc.ok());
  const std::vector<double> row = norm.NormalizeRow(t.Row(2));
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(row[static_cast<size_t>(c)], enc->at2(2, c), 1e-6);
  }
}

class CodecTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecTest, RoundTripsThroughMatrices) {
  const int attrs = GetParam();
  const int side = RecordMatrixCodec::ChooseSide(attrs);
  RecordMatrixCodec codec(attrs, side);
  Rng rng(static_cast<uint64_t>(attrs));
  Tensor records = Tensor::Uniform({5, attrs}, -1.0f, 1.0f, &rng);
  auto mats = codec.ToMatrices(records);
  ASSERT_TRUE(mats.ok());
  EXPECT_EQ(mats->shape(),
            (std::vector<int64_t>{5, 1, side, side}));
  // Padding cells are zero.
  for (int64_t i = attrs; i < side * side; ++i) {
    EXPECT_EQ((*mats)[i], 0.0f);
  }
  auto back = codec.FromMatrices(*mats);
  ASSERT_TRUE(back.ok());
  for (int64_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*back)[i], records[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AttributeCounts, CodecTest,
                         ::testing::Values(1, 4, 15, 16, 17, 24, 33, 64,
                                           100, 256));

TEST(CodecTest, ChooseSidePowersOfTwo) {
  EXPECT_EQ(RecordMatrixCodec::ChooseSide(1), 4);
  EXPECT_EQ(RecordMatrixCodec::ChooseSide(16), 4);
  EXPECT_EQ(RecordMatrixCodec::ChooseSide(17), 8);
  EXPECT_EQ(RecordMatrixCodec::ChooseSide(64), 8);
  EXPECT_EQ(RecordMatrixCodec::ChooseSide(65), 16);
  EXPECT_EQ(RecordMatrixCodec::ChooseSide(256), 16);
}

TEST(SplitTest, TrainTestProportions) {
  Table t(TinySchema());
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({static_cast<double>(i), 0, static_cast<double>(i), 0});
  }
  Rng rng(3);
  TrainTestSplit split = SplitTrainTest(t, 0.2, &rng);
  EXPECT_EQ(split.test.num_rows(), 20);
  EXPECT_EQ(split.train.num_rows(), 80);
  // Disjoint and covering.
  std::set<double> seen;
  for (int64_t r = 0; r < split.train.num_rows(); ++r) {
    seen.insert(split.train.Get(r, 0));
  }
  for (int64_t r = 0; r < split.test.num_rows(); ++r) {
    EXPECT_EQ(seen.count(split.test.Get(r, 0)), 0u);
    seen.insert(split.test.Get(r, 0));
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(SplitTest, ChunksCoverTable) {
  Table t(TinySchema());
  for (int i = 0; i < 10; ++i) {
    t.AppendRow({static_cast<double>(i), 0, 0, 0});
  }
  std::vector<Table> chunks = SplitChunks(t, 3);
  ASSERT_EQ(chunks.size(), 3u);
  int64_t total = 0;
  for (const auto& c : chunks) total += c.num_rows();
  EXPECT_EQ(total, 10);
  EXPECT_EQ(chunks[0].Get(0, 0), 0.0);
  EXPECT_EQ(chunks[2].Get(chunks[2].num_rows() - 1, 0), 9.0);
}

TEST(SplitTest, MoreChunksThanRowsClamps) {
  Table t(TinySchema());
  t.AppendRow({1, 0, 0, 0});
  t.AppendRow({2, 0, 0, 0});
  std::vector<Table> chunks = SplitChunks(t, 10);
  EXPECT_EQ(chunks.size(), 2u);
}

// --- Regressions flushed out by the property harness (see
// tests/property_fuzz_test.cc): encode/decode on columns at the edges
// of the double range must stay finite and invertible.

Schema OneContinuousColumn() {
  return Schema({{"x", ColumnType::kContinuous, ColumnRole::kSensitive, {}}});
}

TEST(NormalizerTest, FullDoubleRangeColumnStaysFinite) {
  // hi - lo overflows to inf here; the naive 2*(v-lo)/span - 1 encoding
  // produced inf/inf = NaN for the max row and +/-inf decodes.
  Table t(OneContinuousColumn());
  t.AppendRow({-1.7976931348623157e308});
  t.AppendRow({0.0});
  t.AppendRow({1.7976931348623157e308});
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  auto enc = norm.Transform(t);
  ASSERT_TRUE(enc.ok());
  EXPECT_FLOAT_EQ((*enc)[0], -1.0f);
  EXPECT_FLOAT_EQ((*enc)[1], 0.0f);
  EXPECT_FLOAT_EQ((*enc)[2], 1.0f);
  auto back = norm.InverseTransform(*enc, t.schema());
  ASSERT_TRUE(back.ok());
  for (int64_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(std::isfinite(back->Get(r, 0))) << "row " << r;
  }
  EXPECT_EQ(back->Get(0, 0), -1.7976931348623157e308);
  EXPECT_EQ(back->Get(2, 0), 1.7976931348623157e308);
  EXPECT_NEAR(back->Get(1, 0), 0.0, 2e303);  // ~1e-5 of the span
  // NormalizeRow takes the same overflow-prone path.
  EXPECT_EQ(norm.NormalizeRow({1.7976931348623157e308})[0], 1.0);
}

TEST(NormalizerTest, HalfRangeSpanDoesNotOverflowIntermediates) {
  // span itself is finite (~1.6e308) but 2*(v - lo) overflows: the
  // doubling must happen after the division.
  Table t(OneContinuousColumn());
  t.AppendRow({-8e307});
  t.AppendRow({8e307});
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  auto enc = norm.Transform(t);
  ASSERT_TRUE(enc.ok());
  EXPECT_FLOAT_EQ((*enc)[0], -1.0f);
  EXPECT_FLOAT_EQ((*enc)[1], 1.0f);
  auto back = norm.InverseTransform(*enc, t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Get(0, 0), -8e307);
  EXPECT_EQ(back->Get(1, 0), 8e307);
}

TEST(NormalizerTest, SingleRowTableRoundTripsExactly) {
  // One row means every column is constant (min == max): encodes to 0,
  // decodes to the pinned value bit for bit.
  Table t(TinySchema());
  t.AppendRow({25, 2, -3141.5926, 1});
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  auto enc = norm.Transform(t);
  ASSERT_TRUE(enc.ok());
  for (int64_t i = 0; i < enc->size(); ++i) EXPECT_EQ((*enc)[i], 0.0f);
  auto back = norm.InverseTransform(*enc, t.schema());
  ASSERT_TRUE(back.ok());
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(back->Get(0, c), t.Get(0, c)) << "col " << c;
  }
}

TEST(NormalizerTest, ConstantExtremeColumnRoundTripsExactly) {
  // A constant column pinned at the top of the double range: span is 0,
  // so the value must come back exactly, not as inf or 0.
  Table t(OneContinuousColumn());
  t.AppendRow({1e308});
  t.AppendRow({1e308});
  MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(t).ok());
  auto enc = norm.Transform(t);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ((*enc)[0], 0.0f);
  auto back = norm.InverseTransform(*enc, t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Get(0, 0), 1e308);
  EXPECT_EQ(back->Get(1, 0), 1e308);
  EXPECT_EQ(norm.NormalizeRow({1e308})[0], 0.0);
}

TEST(CsvTest, SubnormalValuesRoundTrip) {
  // std::stod raises out_of_range on strtod's ERANGE underflow, which
  // used to reject subnormals WriteCsv itself had written.
  Table t(OneContinuousColumn());
  t.AppendRow({4.9406564584124654e-324});  // smallest positive double
  t.AppendRow({-1e-310});
  t.AppendRow({0.0});
  ASSERT_TRUE(WriteCsv(t, "subnormal_test.csv").ok());
  auto back = ReadCsv(t.schema(), "subnormal_test.csv");
  std::remove("subnormal_test.csv");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 3);
  EXPECT_EQ(back->Get(0, 0), 4.9406564584124654e-324);
  EXPECT_EQ(back->Get(1, 0), -1e-310);
  EXPECT_EQ(back->Get(2, 0), 0.0);
}

TEST(CsvTest, OverflowingCellIsRejected) {
  Table t(OneContinuousColumn());
  {
    std::ofstream out("overflow_test.csv");
    out << "x\n1e999\n";
  }
  auto back = ReadCsv(t.schema(), "overflow_test.csv");
  std::remove("overflow_test.csv");
  EXPECT_FALSE(back.ok());
}

}  // namespace
}  // namespace data
}  // namespace tablegan
