#include <gtest/gtest.h>

#include "core/membership_attack.h"
#include "core/table_gan.h"
#include "data/datasets.h"
#include "data/split.h"

namespace tablegan {
namespace core {
namespace {

data::Table TwoClusterTable(int64_t rows, uint64_t seed) {
  data::Schema schema({
      {"q", data::ColumnType::kDiscrete,
       data::ColumnRole::kQuasiIdentifier, {}},
      {"a", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"b", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"y", data::ColumnType::kDiscrete, data::ColumnRole::kLabel, {}},
  });
  data::Table t(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    const bool pos = rng.NextBool(0.5);
    const double c = pos ? 2.0 : -2.0;
    t.AppendRow({static_cast<double>(rng.UniformInt(0, 9)),
                 rng.Gaussian(c, 1.0), rng.Gaussian(-c, 1.0),
                 pos ? 1.0 : 0.0});
  }
  return t;
}

TableGanOptions FastOptions() {
  TableGanOptions o;
  o.base_channels = 8;
  o.epochs = 3;
  o.batch_size = 32;
  o.latent_dim = 16;
  return o;
}

TEST(MembershipAttackTest, RejectsUnfittedTargetOrTinyTestSet) {
  TableGan gan(FastOptions());
  data::Table train = TwoClusterTable(64, 1);
  data::Table test = TwoClusterTable(64, 2);
  MembershipAttackOptions options;
  options.shadow_options = FastOptions();
  EXPECT_FALSE(
      RunMembershipAttack(&gan, train, test, 3, options).ok());
  ASSERT_TRUE(gan.Fit(train, 3).ok());
  data::Table tiny = TwoClusterTable(10, 3);
  EXPECT_FALSE(RunMembershipAttack(&gan, train, tiny, 3, options).ok());
}

TEST(MembershipAttackTest, EndToEndProducesValidScores) {
  data::Table train = TwoClusterTable(192, 4);
  data::Table test = TwoClusterTable(128, 5);
  TableGan gan(FastOptions());
  ASSERT_TRUE(gan.Fit(train, 3).ok());

  MembershipAttackOptions options;
  options.num_shadow_gans = 1;
  options.shadow_table_rows = 128;
  options.shadow_options = FastOptions();
  options.eval_records_per_side = 50;
  auto result = RunMembershipAttack(&gan, train, test, 3, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->f1, 0.0);
  EXPECT_LE(result->f1, 1.0);
  EXPECT_GE(result->auc_roc, 0.0);
  EXPECT_LE(result->auc_roc, 1.0);
}

TEST(MembershipAttackTest, DeterministicForFixedSeeds) {
  data::Table train = TwoClusterTable(128, 6);
  data::Table test = TwoClusterTable(96, 7);
  auto run = [&]() {
    TableGan gan(FastOptions());
    EXPECT_TRUE(gan.Fit(train, 3).ok());
    MembershipAttackOptions options;
    options.num_shadow_gans = 1;
    options.shadow_table_rows = 96;
    options.shadow_options = FastOptions();
    options.eval_records_per_side = 40;
    auto result = RunMembershipAttack(&gan, train, test, 3, options);
    EXPECT_TRUE(result.ok());
    return *result;
  };
  const MembershipAttackResult a = run();
  const MembershipAttackResult b = run();
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.auc_roc, b.auc_roc);
}

}  // namespace
}  // namespace core
}  // namespace tablegan
