// Gradient and determinism checks for the exact table-GAN network
// builders (core/networks.h), complementing the per-layer checks in
// nn_gradcheck_test.cc.

#include <gtest/gtest.h>

#include <cmath>

#include "core/info_loss.h"
#include "core/networks.h"
#include "core/table_gan.h"
#include "data/datasets.h"
#include "test_util.h"

namespace tablegan {
namespace core {
namespace {

TEST(CoreGradCheck, DiscriminatorFeatureStack) {
  Rng rng(1);
  TwoPartNet d = BuildDiscriminator(/*side=*/8, /*base_channels=*/4, &rng);
  for (Tensor* p : d.features->Parameters()) {
    for (int64_t i = 0; i < p->size(); ++i) (*p)[i] *= 5.0f;
  }
  testing_util::GradCheckLayerAggregate(
      d.features.get(), Tensor::Uniform({3, 1, 8, 8}, -1, 1, &rng));
}

TEST(CoreGradCheck, GeneratorStack) {
  Rng rng(2);
  auto g = BuildGenerator(/*side=*/8, /*latent_dim=*/12,
                          /*base_channels=*/4, &rng);
  for (Tensor* p : g->Parameters()) {
    for (int64_t i = 0; i < p->size(); ++i) (*p)[i] *= 5.0f;
  }
  testing_util::GradCheckLayerAggregate(
      g.get(), Tensor::Uniform({4, 12}, -1, 1, &rng));
}

TEST(CoreGradCheck, HeadDense) {
  Rng rng(3);
  TwoPartNet d = BuildDiscriminator(/*side=*/4, /*base_channels=*/4, &rng);
  Tensor feat = Tensor::Uniform({5, d.feature_dim}, -1, 1, &rng);
  testing_util::GradCheckLayer(d.head.get(), feat);
}

TEST(CoreDeterminism, SameSeedSameModelSameSamples) {
  Rng data_rng(4);
  data::Table table = data::MakeAdultLike(128, &data_rng);
  const int label = table.schema().ColumnsWithRole(
      data::ColumnRole::kLabel)[0];
  TableGanOptions options;
  options.base_channels = 8;
  options.epochs = 3;
  options.latent_dim = 16;
  options.seed = 777;

  auto run = [&]() {
    TableGan gan(options);
    EXPECT_TRUE(gan.Fit(table, label).ok());
    return *gan.Sample(32);
  };
  data::Table a = run();
  data::Table b = run();
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.Get(r, c), b.Get(r, c)) << r << "," << c;
    }
  }
}

TEST(CoreDeterminism, DifferentSeedsDiffer) {
  Rng data_rng(5);
  data::Table table = data::MakeAdultLike(128, &data_rng);
  const int label = table.schema().ColumnsWithRole(
      data::ColumnRole::kLabel)[0];
  auto sample_with_seed = [&](uint64_t seed) {
    TableGanOptions options;
    options.base_channels = 8;
    options.epochs = 2;
    options.latent_dim = 16;
    options.seed = seed;
    TableGan gan(options);
    EXPECT_TRUE(gan.Fit(table, label).ok());
    return *gan.Sample(32);
  };
  data::Table a = sample_with_seed(1);
  data::Table b = sample_with_seed(2);
  int differing = 0;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      if (a.Get(r, c) != b.Get(r, c)) ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

// --- Hinge information-loss boundary coverage (ISSUE satellite). A
// fresh InfoLossState weights its first batch 1.0, so loss and gradient
// are pure functions of (real, fake) and finite differences on fresh
// states line up with the analytic GradFakeFeatures.

float InfoLossFor(const Tensor& real, const Tensor& fake, float delta_mean,
                  float delta_sd) {
  InfoLossState st(real.dim(1), 0.99f, delta_mean, delta_sd);
  st.UpdateStatistics(real, fake);
  return st.Loss();
}

TEST(InfoLossGradCheck, ActiveHingeMatchesFiniteDifferences) {
  Rng rng(11);
  const Tensor real = Tensor::Uniform({4, 6}, -1, 1, &rng);
  const Tensor fake = Tensor::Uniform({4, 6}, -1, 1, &rng);
  InfoLossState st(6, 0.99f, /*delta_mean=*/0.0f, /*delta_sd=*/0.0f);
  st.UpdateStatistics(real, fake);
  ASSERT_GT(st.Loss(), 0.0f);  // both hinge terms engaged at margin 0
  const Tensor grad = st.GradFakeFeatures();
  const float eps = 1e-2f;
  for (int64_t i = 0; i < fake.size(); ++i) {
    Tensor plus = fake;
    plus[i] += eps;
    Tensor minus = fake;
    minus[i] -= eps;
    const double numeric = (InfoLossFor(real, plus, 0.0f, 0.0f) -
                            InfoLossFor(real, minus, 0.0f, 0.0f)) /
                           (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric,
                std::max(2e-2 * std::abs(numeric), 2e-3))
        << "flat index " << i;
  }
}

TEST(InfoLossGradCheck, MarginExactlyMetIsInactive) {
  Rng rng(12);
  const Tensor real = Tensor::Uniform({4, 6}, -1, 1, &rng);
  const Tensor fake = Tensor::Uniform({4, 6}, -1, 1, &rng);
  // Probe the gaps, then set the margins to exactly those values: the
  // hinge comparison is strict, so L_mean - delta_mean == 0 must yield
  // zero loss and zero gradient (the boundary sits on the plateau).
  InfoLossState probe(6, 0.99f, 0.0f, 0.0f);
  probe.UpdateStatistics(real, fake);
  const float lm = probe.l_mean();
  const float ls = probe.l_sd();
  ASSERT_GT(lm, 0.0f);
  InfoLossState st(6, 0.99f, lm, ls);
  st.UpdateStatistics(real, fake);
  EXPECT_EQ(st.Loss(), 0.0f);
  const Tensor grad = st.GradFakeFeatures();
  for (int64_t i = 0; i < grad.size(); ++i) {
    ASSERT_EQ(grad[i], 0.0f) << "flat index " << i;
  }
}

TEST(InfoLossGradCheck, ViolatedMarginShiftsLossNotGradient) {
  Rng rng(13);
  const Tensor real = Tensor::Uniform({4, 6}, -1, 1, &rng);
  const Tensor fake = Tensor::Uniform({4, 6}, -1, 1, &rng);
  InfoLossState at_zero(6, 0.99f, 0.0f, 0.0f);
  at_zero.UpdateStatistics(real, fake);
  const float lm = at_zero.l_mean();
  const float ls = at_zero.l_sd();
  // Margins strictly inside the gaps: both hinges stay active, the
  // loss drops by exactly the margins, and the gradient (hinge slope 1)
  // is bitwise independent of the margin values.
  InfoLossState violated(6, 0.99f, 0.5f * lm, 0.5f * ls);
  violated.UpdateStatistics(real, fake);
  ASSERT_GT(violated.Loss(), 0.0f);
  EXPECT_NEAR(violated.Loss(), at_zero.Loss() - 0.5f * lm - 0.5f * ls,
              1e-6);
  const Tensor g0 = at_zero.GradFakeFeatures();
  const Tensor gv = violated.GradFakeFeatures();
  ASSERT_EQ(g0.size(), gv.size());
  for (int64_t i = 0; i < g0.size(); ++i) {
    ASSERT_EQ(g0[i], gv[i]) << "flat index " << i;
  }
}

TEST(InfoLossGradCheck, SatisfiedMarginIsAZeroGradientPlateau) {
  Rng rng(14);
  const Tensor real = Tensor::Uniform({4, 6}, -1, 1, &rng);
  const Tensor fake = Tensor::Uniform({4, 6}, -1, 1, &rng);
  InfoLossState probe(6, 0.99f, 0.0f, 0.0f);
  probe.UpdateStatistics(real, fake);
  const float lm = probe.l_mean();
  const float ls = probe.l_sd();
  InfoLossState st(6, 0.99f, lm + 0.1f, ls + 0.1f);
  st.UpdateStatistics(real, fake);
  EXPECT_EQ(st.Loss(), 0.0f);
  const Tensor grad = st.GradFakeFeatures();
  for (int64_t i = 0; i < grad.size(); ++i) {
    ASSERT_EQ(grad[i], 0.0f) << "flat index " << i;
  }
  // It is a plateau, not a knife edge: small feature perturbations in
  // any single coordinate keep the loss at exactly zero.
  for (int64_t i = 0; i < fake.size(); ++i) {
    Tensor nudged = fake;
    nudged[i] += 1e-3f;
    ASSERT_EQ(InfoLossFor(real, nudged, lm + 0.1f, ls + 0.1f), 0.0f)
        << "flat index " << i;
  }
}

TEST(InfoLossGradCheck, IdenticalStatisticsGiveZeroLossAndGradient) {
  Rng rng(15);
  const Tensor real = Tensor::Uniform({4, 6}, -1, 1, &rng);
  // fake == real: the gaps are exactly 0, and even with margin 0 the
  // hinge must stay inactive (no division-by-zero gradient blowup).
  InfoLossState st(6, 0.99f, 0.0f, 0.0f);
  st.UpdateStatistics(real, real);
  EXPECT_EQ(st.Loss(), 0.0f);
  const Tensor grad = st.GradFakeFeatures();
  for (int64_t i = 0; i < grad.size(); ++i) {
    ASSERT_EQ(grad[i], 0.0f) << "flat index " << i;
  }
}

TEST(CoreNetworks, FeatureDimMatchesArchitecture) {
  Rng rng(6);
  // side 8, base 16 -> stages 2 -> deepest channels 32 at 2x2 = 128.
  TwoPartNet d = BuildDiscriminator(8, 16, &rng);
  EXPECT_EQ(d.feature_dim, 128);
  // side 16, base 8 -> stages 3 -> deepest 32 at 2x2 = 128.
  TwoPartNet d16 = BuildDiscriminator(16, 8, &rng);
  EXPECT_EQ(d16.feature_dim, 128);
}

TEST(CoreNetworks, MultiHeadOutputsRequestedLogits) {
  Rng rng(7);
  TwoPartNet c = BuildDiscriminator(4, 8, &rng, /*head_outputs=*/3);
  Tensor x = Tensor::Uniform({2, 1, 4, 4}, -1, 1, &rng);
  Tensor logits = c.ForwardLogits(x, true);
  EXPECT_EQ(logits.shape(), (std::vector<int64_t>{2, 3}));
}

}  // namespace
}  // namespace core
}  // namespace tablegan
