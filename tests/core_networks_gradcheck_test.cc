// Gradient and determinism checks for the exact table-GAN network
// builders (core/networks.h), complementing the per-layer checks in
// nn_gradcheck_test.cc.

#include <gtest/gtest.h>

#include "core/networks.h"
#include "core/table_gan.h"
#include "data/datasets.h"
#include "test_util.h"

namespace tablegan {
namespace core {
namespace {

TEST(CoreGradCheck, DiscriminatorFeatureStack) {
  Rng rng(1);
  TwoPartNet d = BuildDiscriminator(/*side=*/8, /*base_channels=*/4, &rng);
  for (Tensor* p : d.features->Parameters()) {
    for (int64_t i = 0; i < p->size(); ++i) (*p)[i] *= 5.0f;
  }
  testing_util::GradCheckLayerAggregate(
      d.features.get(), Tensor::Uniform({3, 1, 8, 8}, -1, 1, &rng));
}

TEST(CoreGradCheck, GeneratorStack) {
  Rng rng(2);
  auto g = BuildGenerator(/*side=*/8, /*latent_dim=*/12,
                          /*base_channels=*/4, &rng);
  for (Tensor* p : g->Parameters()) {
    for (int64_t i = 0; i < p->size(); ++i) (*p)[i] *= 5.0f;
  }
  testing_util::GradCheckLayerAggregate(
      g.get(), Tensor::Uniform({4, 12}, -1, 1, &rng));
}

TEST(CoreGradCheck, HeadDense) {
  Rng rng(3);
  TwoPartNet d = BuildDiscriminator(/*side=*/4, /*base_channels=*/4, &rng);
  Tensor feat = Tensor::Uniform({5, d.feature_dim}, -1, 1, &rng);
  testing_util::GradCheckLayer(d.head.get(), feat);
}

TEST(CoreDeterminism, SameSeedSameModelSameSamples) {
  Rng data_rng(4);
  data::Table table = data::MakeAdultLike(128, &data_rng);
  const int label = table.schema().ColumnsWithRole(
      data::ColumnRole::kLabel)[0];
  TableGanOptions options;
  options.base_channels = 8;
  options.epochs = 3;
  options.latent_dim = 16;
  options.seed = 777;

  auto run = [&]() {
    TableGan gan(options);
    EXPECT_TRUE(gan.Fit(table, label).ok());
    return *gan.Sample(32);
  };
  data::Table a = run();
  data::Table b = run();
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.Get(r, c), b.Get(r, c)) << r << "," << c;
    }
  }
}

TEST(CoreDeterminism, DifferentSeedsDiffer) {
  Rng data_rng(5);
  data::Table table = data::MakeAdultLike(128, &data_rng);
  const int label = table.schema().ColumnsWithRole(
      data::ColumnRole::kLabel)[0];
  auto sample_with_seed = [&](uint64_t seed) {
    TableGanOptions options;
    options.base_channels = 8;
    options.epochs = 2;
    options.latent_dim = 16;
    options.seed = seed;
    TableGan gan(options);
    EXPECT_TRUE(gan.Fit(table, label).ok());
    return *gan.Sample(32);
  };
  data::Table a = sample_with_seed(1);
  data::Table b = sample_with_seed(2);
  int differing = 0;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      if (a.Get(r, c) != b.Get(r, c)) ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(CoreNetworks, FeatureDimMatchesArchitecture) {
  Rng rng(6);
  // side 8, base 16 -> stages 2 -> deepest channels 32 at 2x2 = 128.
  TwoPartNet d = BuildDiscriminator(8, 16, &rng);
  EXPECT_EQ(d.feature_dim, 128);
  // side 16, base 8 -> stages 3 -> deepest 32 at 2x2 = 128.
  TwoPartNet d16 = BuildDiscriminator(16, 8, &rng);
  EXPECT_EQ(d16.feature_dim, 128);
}

TEST(CoreNetworks, MultiHeadOutputsRequestedLogits) {
  Rng rng(7);
  TwoPartNet c = BuildDiscriminator(4, 8, &rng, /*head_outputs=*/3);
  Tensor x = Tensor::Uniform({2, 1, 4, 4}, -1, 1, &rng);
  Tensor logits = c.ForwardLogits(x, true);
  EXPECT_EQ(logits.shape(), (std::vector<int64_t>{2, 3}));
}

}  // namespace
}  // namespace core
}  // namespace tablegan
