// Loss-mode tests (DESIGN.md §15): BCE stability at saturated logits,
// gradient checks for the spectral-norm penalty and the WGAN-GP
// Hessian-vector-product parameter gradient, and an end-to-end training
// smoke for every loss mode.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "core/networks.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/sequential.h"
#include "core/table_gan.h"
#include "data/datasets.h"
#include "nn/loss.h"
#include "nn/spectral_norm.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace tablegan {
namespace {

constexpr float kNanF = std::numeric_limits<float>::quiet_NaN();
constexpr float kInfF = std::numeric_limits<float>::infinity();

// ------------------------------------------------------------------
// SigmoidBceWithLogits at extreme logits (satellite: the saturated-
// logit NaN regression).

TEST(BceStabilityTest, FiniteSaturatedLogitsStayFinite) {
  // z = ±100 saturates exp(z) well past float range in the naive
  // -t*log(sig) - (1-t)*log(1-sig) form; the log-sum-exp form is exact.
  Tensor logits = Tensor::FromVector({4, 1}, {100.0f, -100.0f, 100.0f,
                                              -100.0f});
  Tensor targets = Tensor::FromVector({4, 1}, {1.0f, 0.0f, 0.0f, 1.0f});
  Tensor grad;
  const float loss = nn::SigmoidBceWithLogits(logits, targets, &grad);
  ASSERT_TRUE(std::isfinite(loss));
  // Per-element: matched saturated logits contribute ~0, mismatched
  // ones |z|; the mean is (0 + 0 + 100 + 100) / 4.
  EXPECT_NEAR(loss, 50.0f, 1e-4f);
  for (int64_t i = 0; i < grad.size(); ++i) {
    EXPECT_TRUE(std::isfinite(grad[i])) << "grad " << i;
  }
  // Gradient is (sigmoid(z) - t) / n, which saturates to 0 or ±1/n.
  EXPECT_NEAR(grad[0], 0.0f, 1e-6f);
  EXPECT_NEAR(grad[1], 0.0f, 1e-6f);
  EXPECT_NEAR(grad[2], 0.25f, 1e-6f);
  EXPECT_NEAR(grad[3], -0.25f, 1e-6f);
}

TEST(BceStabilityTest, MatchesNaiveFormOnModerateLogits) {
  // On non-saturated inputs the stable form must agree with the
  // textbook cross-entropy evaluated in double precision.
  Rng rng(31);
  Tensor logits({16, 1});
  Tensor targets({16, 1});
  for (int64_t i = 0; i < logits.size(); ++i) {
    logits[i] = static_cast<float>(rng.Uniform(-8.0, 8.0));
    targets[i] = static_cast<float>(rng.Uniform(0.0, 1.0));
  }
  Tensor grad;
  const float loss = nn::SigmoidBceWithLogits(logits, targets, &grad);
  double ref = 0.0;
  for (int64_t i = 0; i < logits.size(); ++i) {
    const double z = logits[i];
    const double t = targets[i];
    const double sig = 1.0 / (1.0 + std::exp(-z));
    ref += -t * std::log(sig) - (1.0 - t) * std::log(1.0 - sig);
    const double g = (sig - t) / static_cast<double>(logits.size());
    EXPECT_NEAR(grad[i], g, 1e-6) << "grad " << i;
  }
  EXPECT_NEAR(loss, ref / static_cast<double>(logits.size()), 1e-5);
}

TEST(BceStabilityTest, InfiniteLogitsTakeTheExactLimit) {
  Tensor grad;
  // A +inf logit pointing at target 1 (and -inf at target 0) is the
  // perfectly-confident correct answer: loss 0, gradient 0.
  struct Case {
    float z, t, expected_loss, expected_grad;
  };
  const Case matched[] = {{kInfF, 1.0f, 0.0f, 0.0f},
                          {-kInfF, 0.0f, 0.0f, 0.0f}};
  for (const Case& c : matched) {
    Tensor z = Tensor::Full({1, 1}, c.z);
    Tensor t = Tensor::Full({1, 1}, c.t);
    EXPECT_EQ(nn::SigmoidBceWithLogits(z, t, &grad), c.expected_loss);
    EXPECT_EQ(grad[0], c.expected_grad);
  }
  // Pointing away from the target the loss is the +inf limit — not the
  // NaN that inf - inf in the unguarded closed form produced — and the
  // gradient still saturates finitely.
  const Case wrong[] = {{kInfF, 0.0f, kInfF, 1.0f},
                        {-kInfF, 1.0f, kInfF, -1.0f}};
  for (const Case& c : wrong) {
    Tensor z = Tensor::Full({1, 1}, c.z);
    Tensor t = Tensor::Full({1, 1}, c.t);
    const float loss = nn::SigmoidBceWithLogits(z, t, &grad);
    EXPECT_TRUE(std::isinf(loss) && loss > 0.0f);
    EXPECT_EQ(grad[0], c.expected_grad);
  }
}

TEST(BceStabilityTest, NanLogitsPropagate) {
  Tensor z = Tensor::FromVector({2, 1}, {kNanF, 0.0f});
  Tensor t = Tensor::Full({2, 1}, 1.0f);
  Tensor grad;
  const float loss = nn::SigmoidBceWithLogits(z, t, &grad);
  EXPECT_TRUE(std::isnan(loss));  // the guardrail sees the divergence
  EXPECT_TRUE(std::isnan(grad[0]));
  EXPECT_TRUE(std::isfinite(grad[1]));
}

// ------------------------------------------------------------------
// Spectral-norm penalty gradient check.

TEST(SpectralNormTest, GradientMatchesFiniteDifference) {
  Rng rng(7);
  Tensor w1 = Tensor::Uniform({6, 5}, -1.0f, 1.0f, &rng);
  Tensor w2 = Tensor::Uniform({4, 7}, -1.0f, 1.0f, &rng);
  Tensor bias = Tensor::Uniform({6}, -1.0f, 1.0f, &rng);
  Tensor g1 = Tensor::Zeros({6, 5});
  Tensor g2 = Tensor::Zeros({4, 7});
  Tensor gb = Tensor::Zeros({6});
  const float weight = 0.3f;
  // Rank-1 tensors (biases, BatchNorm scales) must be skipped.
  nn::SpectralNormRegularizer reg({&w1, &bias, &w2}, {&g1, &gb, &g2},
                                  weight, /*power_iters=*/50, 99);
  ASSERT_EQ(reg.num_weights(), 2u);
  const float penalty = reg.Apply();
  EXPECT_GT(penalty, 0.0f);
  EXPECT_GT(reg.sigma(0), 0.0f);
  EXPECT_GT(reg.sigma(1), 0.0f);
  for (int64_t i = 0; i < gb.size(); ++i) EXPECT_EQ(gb[i], 0.0f);

  // Converged reference: (weight/2) * sigma(W)^2 via a fresh estimator
  // with many iterations, differentiated numerically.
  auto penalty_of = [&](Tensor* w) {
    Tensor scratch_grad(w->shape());
    scratch_grad.SetZero();
    nn::SpectralNormRegularizer probe({w}, {&scratch_grad}, weight,
                                      /*power_iters=*/200, 1234);
    return static_cast<double>(probe.Apply());
  };
  const double eps = 1e-3;
  struct Bound {
    Tensor* w;
    Tensor* g;
  };
  for (const Bound& b : {Bound{&w1, &g1}, Bound{&w2, &g2}}) {
    for (int64_t i = 0; i < b.w->size(); ++i) {
      const float orig = (*b.w)[i];
      (*b.w)[i] = orig + static_cast<float>(eps);
      const double lp = penalty_of(b.w);
      (*b.w)[i] = orig - static_cast<float>(eps);
      const double lm = penalty_of(b.w);
      (*b.w)[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR((*b.g)[i], numeric,
                  1e-2 * std::max(0.05, std::fabs(numeric)))
          << "weight " << (b.w == &w1 ? 0 : 1) << " index " << i;
    }
  }

  // The accumulation contract: a second Apply() adds on top of the
  // existing gradients instead of overwriting them.
  Tensor g1_before = g1;
  reg.Apply();
  for (int64_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g1[i], 2.0f * g1_before[i],
                1e-4f * std::max(1.0f, std::fabs(g1[i])));
  }
}

// ------------------------------------------------------------------
// WGAN-GP: the central-difference HVP used for the penalty's parameter
// gradient (see the kWganGp branch of TableGan::Fit) against numeric
// differentiation of the penalty itself.

// GP(theta) = (lambda/b) * sum_i (||grad_x D(xhat_i)|| - 1)^2, with the
// input gradient computed exactly by one backward pass.
double GpValue(core::TwoPartNet* d, const Tensor& xhat, float lambda) {
  const int64_t b = xhat.shape()[0];
  const int64_t cells = xhat.size() / b;
  Tensor seed = Tensor::Full({b, 1}, 1.0f);
  Tensor feat = d->features->Forward(xhat, /*training=*/true);
  (void)d->head->Forward(feat, /*training=*/true);
  Tensor gin = d->features->Backward(d->head->Backward(seed));
  double gp = 0.0;
  for (int64_t i = 0; i < b; ++i) {
    const float* row = gin.data() + i * cells;
    double sum = 0.0;
    for (int64_t c = 0; c < cells; ++c) {
      sum += static_cast<double>(row[c]) * row[c];
    }
    const double norm = std::sqrt(sum);
    gp += (norm - 1.0) * (norm - 1.0);
  }
  return lambda * gp / static_cast<double>(b);
}

TEST(WganGpTest, HvpParameterGradientMatchesFiniteDifference) {
  // A smooth Dense + Tanh critic stands in for the conv discriminator
  // here: the subject under test is the seed/coefficient algebra of the
  // training loop's HVP, and the production net's LeakyReLU makes the
  // numeric reference ill-posed (the penalty jumps discontinuously in
  // theta wherever a parameter perturbation flips an activation).
  Rng rng(4242);
  core::TwoPartNet d;
  d.features = std::make_unique<nn::Sequential>();
  d.features->Emplace<nn::Dense>(16, 8);
  d.features->Emplace<nn::Tanh>();
  d.head = std::make_unique<nn::Sequential>();
  d.head->Emplace<nn::Dense>(8, 1);
  d.feature_dim = 8;
  nn::XavierInitialize(d.features.get(), &rng);
  nn::XavierInitialize(d.head.get(), &rng);
  const int64_t b = 4;
  const float lambda = 10.0f;
  const float fd_eps = 1e-2f;  // kGpFdEpsilon of the training loop
  Tensor xhat = Tensor::Uniform({b, 16}, -0.9f, 0.9f, &rng);

  // --- The production algorithm: input-gradient pass, then two
  // perturbed passes with the chain factors folded into the seeds.
  Tensor seed = Tensor::Full({b, 1}, 1.0f);
  {
    Tensor feat = d.features->Forward(xhat, true);
    (void)d.head->Forward(feat, true);
  }
  Tensor gin = d.features->Backward(d.head->Backward(seed));
  const int64_t cells = gin.size() / b;
  Tensor vhat = gin;
  std::vector<float> coefs(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    float* row = vhat.data() + i * cells;
    double sum = 0.0;
    for (int64_t c = 0; c < cells; ++c) {
      sum += static_cast<double>(row[c]) * row[c];
    }
    const float norm = static_cast<float>(std::sqrt(sum));
    const float inv = norm > 1e-12f ? 1.0f / norm : 0.0f;
    for (int64_t c = 0; c < cells; ++c) row[c] *= inv;
    coefs[static_cast<size_t>(i)] = inv > 0.0f ? norm - 1.0f : 0.0f;
  }
  d.ZeroGrad();
  const float inv_b = 1.0f / static_cast<float>(b);
  Tensor pert;
  for (const float sign : {1.0f, -1.0f}) {
    pert = xhat;
    ops::AxpyInPlace(vhat, sign * fd_eps, &pert);
    Tensor feat = d.features->Forward(pert, true);
    (void)d.head->Forward(feat, true);
    for (int64_t i = 0; i < b; ++i) {
      seed[i] = sign * lambda * coefs[static_cast<size_t>(i)] * inv_b /
                fd_eps;
    }
    d.features->Backward(d.head->Backward(seed));
  }
  std::vector<float> analytic;
  for (Tensor* g : d.Gradients()) {
    for (int64_t i = 0; i < g->size(); ++i) analytic.push_back((*g)[i]);
  }

  // --- Numeric reference: central differences of GP(theta) itself.
  std::vector<Tensor*> params = d.Parameters();
  const double delta = 1e-3;
  std::vector<float> numeric;
  for (Tensor* p : params) {
    for (int64_t i = 0; i < p->size(); ++i) {
      const float orig = (*p)[i];
      (*p)[i] = orig + static_cast<float>(delta);
      const double lp = GpValue(&d, xhat, lambda);
      (*p)[i] = orig - static_cast<float>(delta);
      const double lm = GpValue(&d, xhat, lambda);
      (*p)[i] = orig;
      numeric.push_back(static_cast<float>((lp - lm) / (2.0 * delta)));
    }
  }
  ASSERT_EQ(analytic.size(), numeric.size());

  // The HVP carries its own O(eps^2) truncation error and LeakyReLU
  // kinks add elementwise noise, so compare the gradient *vectors*:
  // high cosine similarity and a bounded relative L2 gap.
  double dot = 0.0, na = 0.0, nn_ = 0.0, diff = 0.0;
  for (size_t i = 0; i < analytic.size(); ++i) {
    dot += static_cast<double>(analytic[i]) * numeric[i];
    na += static_cast<double>(analytic[i]) * analytic[i];
    nn_ += static_cast<double>(numeric[i]) * numeric[i];
    const double e = static_cast<double>(analytic[i]) - numeric[i];
    diff += e * e;
  }
  ASSERT_GT(na, 0.0);
  ASSERT_GT(nn_, 0.0);
  EXPECT_GT(dot / std::sqrt(na * nn_), 0.98);
  EXPECT_LT(std::sqrt(diff / nn_), 0.15);
}

// ------------------------------------------------------------------
// Every loss mode trains the small Adult-like table end to end without
// tripping the guardrail, and the fitted model samples.

TEST(LossModeTrainingTest, AllModesTrainAndSample) {
  Rng rng(11);
  data::Table table = data::MakeAdultLike(64, &rng);
  const int label =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  for (const core::LossMode mode :
       {core::LossMode::kDcgan, core::LossMode::kWganGp,
        core::LossMode::kSpectralNorm}) {
    core::TableGanOptions o;
    o.base_channels = 8;
    o.epochs = 3;
    o.batch_size = 16;
    o.latent_dim = 8;
    o.seed = 77;
    o.num_threads = 1;
    o.loss_mode = mode;
    core::TableGan gan(o);
    const Status fit = gan.Fit(table, label);
    ASSERT_TRUE(fit.ok()) << "mode " << static_cast<int>(mode) << ": "
                          << fit.ToString();
    // The guardrail (kHalt by default) never fired: all epochs are in
    // the history with finite losses.
    ASSERT_EQ(gan.history().size(), 3u);
    for (const auto& e : gan.history()) {
      EXPECT_TRUE(std::isfinite(e.d_loss));
      EXPECT_TRUE(std::isfinite(e.g_orig_loss));
    }
    Result<data::Table> sample = gan.Sample(8);
    ASSERT_TRUE(sample.ok()) << sample.status().ToString();
    EXPECT_EQ(sample->num_rows(), 8);
  }
}

TEST(LossModeTrainingTest, InvalidStabilityOptionsAreRejected) {
  Rng rng(11);
  data::Table table = data::MakeAdultLike(32, &rng);
  const int label =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  core::TableGanOptions o;
  o.base_channels = 8;
  o.epochs = 1;
  o.batch_size = 16;
  o.latent_dim = 8;
  o.loss_mode = core::LossMode::kSpectralNorm;
  o.sn_power_iters = 0;
  {
    core::TableGan gan(o);
    EXPECT_FALSE(gan.Fit(table, label).ok());
  }
  o.sn_power_iters = 1;
  o.guard_warmup_epochs = -1;
  {
    core::TableGan gan(o);
    EXPECT_FALSE(gan.Fit(table, label).ok());
  }
}

}  // namespace
}  // namespace tablegan
