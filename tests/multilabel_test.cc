#include <gtest/gtest.h>

#include "core/table_gan.h"
#include "data/schema.h"

namespace tablegan {
namespace core {
namespace {

// A table with two derived labels (paper §4.2.3 multi-task setting):
// y1 = 1{a > 0}, y2 = 1{b > 0}, independent of each other.
data::Table TwoLabelTable(int64_t rows, uint64_t seed) {
  data::Schema schema({
      {"q", data::ColumnType::kDiscrete,
       data::ColumnRole::kQuasiIdentifier, {}},
      {"a", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"b", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"c", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"y1", data::ColumnType::kDiscrete, data::ColumnRole::kLabel, {}},
      {"y2", data::ColumnType::kDiscrete, data::ColumnRole::kLabel, {}},
  });
  data::Table t(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    const double a = rng.Gaussian(rng.NextBool(0.5) ? 2.0 : -2.0, 0.6);
    const double b = rng.Gaussian(rng.NextBool(0.5) ? 2.0 : -2.0, 0.6);
    t.AppendRow({static_cast<double>(rng.UniformInt(0, 5)), a, b,
                 rng.Uniform(-1, 1), a > 0 ? 1.0 : 0.0,
                 b > 0 ? 1.0 : 0.0});
  }
  return t;
}

TableGanOptions FastOptions() {
  TableGanOptions o;
  o.base_channels = 8;
  o.epochs = 4;
  o.batch_size = 32;
  o.latent_dim = 16;
  return o;
}

TEST(MultiLabelTest, RejectsEmptyOrBadLabelSets) {
  TableGan gan(FastOptions());
  data::Table t = TwoLabelTable(64, 1);
  EXPECT_FALSE(gan.FitMultiLabel(t, {}).ok());
  EXPECT_FALSE(gan.FitMultiLabel(t, {4, 99}).ok());
}

TEST(MultiLabelTest, TrainsWithTwoLabelHeads) {
  data::Table t = TwoLabelTable(192, 2);
  TableGan gan(FastOptions());
  ASSERT_TRUE(gan.FitMultiLabel(t, {4, 5}).ok());
  EXPECT_EQ(gan.label_cols(), (std::vector<int>{4, 5}));
  EXPECT_EQ(gan.label_col(), 4);
  auto sample = gan.Sample(64);
  ASSERT_TRUE(sample.ok());
  for (int64_t r = 0; r < sample->num_rows(); ++r) {
    for (int col : {4, 5}) {
      const double y = sample->Get(r, col);
      EXPECT_TRUE(y == 0.0 || y == 1.0);
    }
  }
}

TEST(MultiLabelTest, SingleLabelFitIsTheSpecialCase) {
  data::Table t = TwoLabelTable(128, 3);
  TableGan a(FastOptions());
  TableGan b(FastOptions());
  ASSERT_TRUE(a.Fit(t, 4).ok());
  ASSERT_TRUE(b.FitMultiLabel(t, {4}).ok());
  // Same seeds, same code path: identical models.
  auto sa = a.DiscriminatorScores(t);
  auto sb = b.DiscriminatorScores(t);
  ASSERT_TRUE(sa.ok() && sb.ok());
  for (size_t i = 0; i < sa->size(); ++i) {
    EXPECT_DOUBLE_EQ((*sa)[i], (*sb)[i]);
  }
}

TEST(MultiLabelTest, LearnsBothLabelCorrelations) {
  data::Table t = TwoLabelTable(512, 4);
  TableGanOptions o = FastOptions();
  o.epochs = 40;
  TableGan gan(o);
  ASSERT_TRUE(gan.FitMultiLabel(t, {4, 5}).ok());
  auto synth = gan.Sample(512);
  ASSERT_TRUE(synth.ok());
  // In the synthetic table, y1 should track sign(a) and y2 sign(b).
  auto agreement = [&](int value_col, int label_col) {
    int64_t agree = 0;
    for (int64_t r = 0; r < synth->num_rows(); ++r) {
      const bool pos = synth->Get(r, value_col) > 0.0;
      const bool lab = synth->Get(r, label_col) > 0.5;
      if (pos == lab) ++agree;
    }
    return static_cast<double>(agree) /
           static_cast<double>(synth->num_rows());
  };
  EXPECT_GT(agreement(1, 4), 0.75);
  EXPECT_GT(agreement(2, 5), 0.75);
}

TEST(MultiLabelTest, SaveLoadPreservesLabelSet) {
  data::Table t = TwoLabelTable(96, 5);
  TableGan gan(FastOptions());
  ASSERT_TRUE(gan.FitMultiLabel(t, {4, 5}).ok());
  const std::string path = ::testing::TempDir() + "/multilabel.tgan";
  ASSERT_TRUE(gan.Save(path).ok());
  auto loaded = TableGan::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->label_cols(), (std::vector<int>{4, 5}));
  auto a = gan.DiscriminatorScores(t);
  auto b = loaded->DiscriminatorScores(t);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i], (*b)[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace core
}  // namespace tablegan
