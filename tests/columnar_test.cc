// Tests for the mmap-backed columnar table format (data/columnar.h)
// and the TableView seam it rides on: round-trip bitwise identity,
// corruption/truncation rejection, failpoint coverage of every write
// and open seam, zero-copy range views, and — the tentpole contract —
// out-of-core training from a ColumnarReader being bitwise identical
// to training from the in-RAM Table at any thread count.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/chunked.h"
#include "core/table_gan.h"
#include "data/columnar.h"
#include "data/csv.h"
#include "data/mmap_file.h"
#include "data/normalizer.h"
#include "data/split.h"
#include "data/table.h"
#include "data/table_view.h"
#include "proptest.h"

namespace tablegan {
namespace data {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string CompareTablesBitwise(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) return "row count mismatch";
  if (a.num_columns() != b.num_columns()) return "column count mismatch";
  if (!a.schema().Equals(b.schema())) return "schema mismatch";
  for (int c = 0; c < a.num_columns(); ++c) {
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      if (!SameBits(a.Get(r, c), b.Get(r, c))) {
        std::ostringstream os;
        os.precision(17);
        os << "cell (" << r << ", " << c << "): " << a.Get(r, c) << " vs "
           << b.Get(r, c);
        return os.str();
      }
    }
  }
  return "";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// 6-attribute trainable table (4x4 record matrices), mirroring the
// core_test fixture so GAN runs stay fast.
Table TrainingTable(int64_t rows, uint64_t seed) {
  Schema schema({
      {"q", ColumnType::kDiscrete, ColumnRole::kQuasiIdentifier, {}},
      {"a", ColumnType::kContinuous, ColumnRole::kSensitive, {}},
      {"b", ColumnType::kContinuous, ColumnRole::kSensitive, {}},
      {"c", ColumnType::kContinuous, ColumnRole::kSensitive, {}},
      {"d", ColumnType::kDiscrete, ColumnRole::kSensitive, {}},
      {"y", ColumnType::kDiscrete, ColumnRole::kLabel, {}},
  });
  Table t(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    const bool pos = rng.NextBool(0.5);
    const double center = pos ? 3.0 : -3.0;
    t.AppendRow({static_cast<double>(rng.UniformInt(0, 9)),
                 rng.Gaussian(center, 0.5), rng.Gaussian(center, 0.5),
                 rng.Gaussian(-center, 0.5),
                 static_cast<double>(rng.UniformInt(0, 4)),
                 pos ? 1.0 : 0.0});
  }
  return t;
}

core::TableGanOptions FastOptions() {
  core::TableGanOptions o;
  o.base_channels = 8;
  o.epochs = 2;
  o.batch_size = 32;
  o.latent_dim = 16;
  return o;
}

TEST(ColumnarTest, RoundTripIsBitwiseIdentity) {
  const std::string path = TempPath("columnar_roundtrip.tgcl");
  Table t = TrainingTable(257, 11);  // odd count exercises padding math
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->VerifyCrc().ok());
  EXPECT_EQ(reader->num_rows(), 257);
  EXPECT_EQ(reader->num_columns(), 6);
  EXPECT_EQ(CompareTablesBitwise(t, reader->Materialize()), "");
  std::remove(path.c_str());
}

TEST(ColumnarTest, ExtremeValuesRoundTrip) {
  // Cells with full-range magnitudes, denormals and signed zeros: the
  // format stores raw doubles, so every payload must survive
  // bit-for-bit.
  const std::string path = TempPath("columnar_gnarly.tgcl");
  testing_util::SchemaGenOptions opt;
  opt.gnarly_text = false;  // schema text cannot carry ','/newlines
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    Schema schema = testing_util::RandomSchema(&rng, opt);
    Table t = testing_util::RandomTableOn(schema, &rng, 64);
    ASSERT_TRUE(WriteColumnar(t, path).ok());
    auto reader = ColumnarReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    ASSERT_TRUE(reader->VerifyCrc().ok());
    EXPECT_EQ(CompareTablesBitwise(t, reader->Materialize()), "")
        << "seed " << seed;
  }
  std::remove(path.c_str());
}

TEST(ColumnarTest, RejectsSchemaTheTextFormatCannotRepresent) {
  // A comma in a column name would be mangled by the embedded schema
  // text; the writer must refuse rather than persist a header that
  // reads back differently.
  const std::string path = TempPath("columnar_badname.tgcl");
  Schema schema({
      {"amount, net", ColumnType::kContinuous, ColumnRole::kSensitive, {}},
      {"y", ColumnType::kDiscrete, ColumnRole::kLabel, {}},
  });
  Table t(schema);
  t.AppendRow({1.0, 0.0});
  Status written = WriteColumnar(t, path);
  EXPECT_FALSE(written.ok());
  EXPECT_EQ(written.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(std::filesystem::exists(path));
  std::remove(path.c_str());
}

TEST(ColumnarTest, ZeroRowTableRoundTrips) {
  const std::string path = TempPath("columnar_zero.tgcl");
  Table t = TrainingTable(0, 1);
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->num_rows(), 0);
  EXPECT_TRUE(reader->VerifyCrc().ok());
  Table back = reader->Materialize();
  EXPECT_EQ(back.num_rows(), 0);
  EXPECT_TRUE(back.schema().Equals(t.schema()));
  std::remove(path.c_str());
}

TEST(ColumnarTest, SniffsFormatAndRejectsForeignFiles) {
  const std::string colpath = TempPath("columnar_sniff.tgcl");
  const std::string csvpath = TempPath("columnar_sniff.csv");
  Table t = TrainingTable(16, 3);
  ASSERT_TRUE(WriteColumnar(t, colpath).ok());
  ASSERT_TRUE(WriteCsv(t, csvpath).ok());
  EXPECT_TRUE(LooksLikeColumnarFile(colpath));
  EXPECT_FALSE(LooksLikeColumnarFile(csvpath));
  EXPECT_FALSE(LooksLikeColumnarFile(TempPath("no_such_file.tgcl")));
  auto opened = ColumnarReader::Open(csvpath);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  std::remove(colpath.c_str());
  std::remove(csvpath.c_str());
}

TEST(ColumnarTest, OpenRejectsTruncatedFile) {
  const std::string path = TempPath("columnar_trunc.tgcl");
  Table t = TrainingTable(64, 5);
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 5);
  auto reader = ColumnarReader::Open(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIOError);
  // A header-only stub (lost its whole body) is rejected too.
  std::filesystem::resize_file(path, 40);
  EXPECT_FALSE(ColumnarReader::Open(path).ok());
  std::remove(path.c_str());
}

TEST(ColumnarTest, VerifyCrcCatchesBitRot) {
  const std::string path = TempPath("columnar_bitrot.tgcl");
  Table t = TrainingTable(64, 6);
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  // Flip one bit in the middle of the column data: Open still succeeds
  // (header and length are intact) — only the CRC pass can tell.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    char b = 0;
    f.seekg(200);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(200);
    f.write(&b, 1);
  }
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader->VerifyCrc().ok());
  std::remove(path.c_str());
}

TEST(ColumnarTest, WriteFailpointsNeverTearTheTarget) {
  const std::string path = TempPath("columnar_failpoints.tgcl");
  Table t = TrainingTable(32, 7);
  for (const char* site : {"columnar.open_write", "columnar.short_write",
                           "columnar.rename"}) {
    std::remove(path.c_str());
    failpoint::Scoped fp(site, "once");
    EXPECT_FALSE(WriteColumnar(t, path).ok()) << site;
    EXPECT_FALSE(std::filesystem::exists(path)) << site;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << site;
  }
  // A corrupted byte on disk passes Open but must fail the CRC pass.
  {
    failpoint::Scoped fp("columnar.corrupt_byte", "once");
    ASSERT_TRUE(WriteColumnar(t, path).ok());
  }
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_FALSE(reader->VerifyCrc().ok());
  std::remove(path.c_str());
}

TEST(ColumnarTest, OpenFailpoints) {
  const std::string path = TempPath("columnar_open_fp.tgcl");
  Table t = TrainingTable(32, 8);
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  {
    failpoint::Scoped fp("mmap.open", "once");
    EXPECT_FALSE(ColumnarReader::Open(path).ok());
  }
  {
    failpoint::Scoped fp("mmap.map", "once");
    EXPECT_FALSE(ColumnarReader::Open(path).ok());
  }
  {
    // An interrupted open() must be retried, not surfaced.
    failpoint::Scoped fp("mmap.open_eintr", "once");
    EXPECT_TRUE(ColumnarReader::Open(path).ok());
  }
  {
    failpoint::Scoped fp("columnar.truncated_footer", "once");
    auto reader = ColumnarReader::Open(path);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::kIOError);
  }
  std::remove(path.c_str());
}

TEST(MmapFileTest, EmptyFileIsValidAndUnmapped) {
  const std::string path = TempPath("mmap_empty.bin");
  { std::ofstream out(path, std::ios::binary); }
  auto map = MmapFile::Open(path);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->size(), 0u);
  EXPECT_FALSE(map->mapped());
  EXPECT_FALSE(MmapFile::Open(TempPath("mmap_no_such_file")).ok());
  std::remove(path.c_str());
}

TEST(TableViewTest, RangeViewsMatchSelectRows) {
  const std::string path = TempPath("columnar_ranges.tgcl");
  Table t = TrainingTable(100, 9);
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok());
  for (auto [begin, rows] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 100}, {0, 1}, {99, 1}, {37, 20}, {50, 0}}) {
    TableRangeView view(*reader, begin, rows);
    std::vector<int64_t> idx;
    for (int64_t r = begin; r < begin + rows; ++r) idx.push_back(r);
    EXPECT_EQ(CompareTablesBitwise(t.SelectRows(idx), view.Materialize()),
              "")
        << "range [" << begin << ", " << begin + rows << ")";
  }
  // Chunk views over the reader materialize to the same tables as the
  // copying splitter over the in-RAM table.
  std::vector<Table> copied = SplitChunks(t, 7);
  std::vector<TableRangeView> views = SplitChunkViews(*reader, 7);
  ASSERT_EQ(copied.size(), views.size());
  for (size_t i = 0; i < copied.size(); ++i) {
    EXPECT_EQ(CompareTablesBitwise(copied[i], views[i].Materialize()), "");
  }
  std::remove(path.c_str());
}

TEST(TableViewTest, NormalizerFitsIdenticallyOnReaderAndTable) {
  const std::string path = TempPath("columnar_norm.tgcl");
  Table t = TrainingTable(128, 10);
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok());
  MinMaxNormalizer on_table, on_reader;
  ASSERT_TRUE(on_table.Fit(t).ok());
  ASSERT_TRUE(on_reader.Fit(*reader).ok());
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_TRUE(SameBits(on_table.column_min(c), on_reader.column_min(c)));
    EXPECT_TRUE(SameBits(on_table.column_max(c), on_reader.column_max(c)));
  }
  std::remove(path.c_str());
}

// The tentpole contract: a model fitted from the mmap'd file saves the
// same bytes and samples the same rows as one fitted from the in-RAM
// table, at every thread count.
TEST(OutOfCoreTest, FitFromColumnarIsBitwiseIdenticalToFitFromTable) {
  const std::string path = TempPath("columnar_oocfit.tgcl");
  Table t = TrainingTable(192, 12);
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok());

  std::string reference_model;
  std::string reference_sample;
  for (int threads : {1, 2, 4}) {
    core::TableGanOptions o = FastOptions();
    o.num_threads = threads;

    core::TableGan from_table(o);
    ASSERT_TRUE(from_table.Fit(t, 5).ok());
    core::TableGan from_file(o);
    ASSERT_TRUE(from_file.Fit(*reader, 5).ok());

    const std::string p1 = TempPath("oocfit_table.tgan");
    const std::string p2 = TempPath("oocfit_file.tgan");
    ASSERT_TRUE(from_table.Save(p1).ok());
    ASSERT_TRUE(from_file.Save(p2).ok());
    const std::string table_bytes = ReadFileBytes(p1);
    EXPECT_EQ(table_bytes, ReadFileBytes(p2)) << "threads=" << threads;
    std::remove(p1.c_str());
    std::remove(p2.c_str());

    auto s1 = from_table.Sample(64);
    auto s2 = from_file.Sample(64);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(CompareTablesBitwise(*s1, *s2), "") << "threads=" << threads;

    // And thread count changes nothing either.
    if (reference_model.empty()) {
      reference_model = table_bytes;
      ASSERT_TRUE(WriteCsv(*s1, TempPath("oocfit_ref.csv")).ok());
      reference_sample = ReadFileBytes(TempPath("oocfit_ref.csv"));
    } else {
      EXPECT_EQ(reference_model, table_bytes) << "threads=" << threads;
      ASSERT_TRUE(WriteCsv(*s1, TempPath("oocfit_cur.csv")).ok());
      EXPECT_EQ(reference_sample, ReadFileBytes(TempPath("oocfit_cur.csv")))
          << "threads=" << threads;
      std::remove(TempPath("oocfit_cur.csv").c_str());
    }
  }
  std::remove(TempPath("oocfit_ref.csv").c_str());
  std::remove(path.c_str());
}

TEST(OutOfCoreTest, ChunkedSynthesisMatchesOverReaderAndTable) {
  const std::string path = TempPath("columnar_oocchunk.tgcl");
  Table t = TrainingTable(160, 13);
  ASSERT_TRUE(WriteColumnar(t, path).ok());
  auto reader = ColumnarReader::Open(path);
  ASSERT_TRUE(reader.ok());
  core::ChunkedSynthesisOptions o;
  o.gan = FastOptions();
  o.num_chunks = 3;
  o.num_threads = 2;
  auto from_table = core::ChunkedTrainAndSynthesize(t, 5, 48, o);
  auto from_file = core::ChunkedTrainAndSynthesize(*reader, 5, 48, o);
  ASSERT_TRUE(from_table.ok()) << from_table.status().ToString();
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  EXPECT_EQ(CompareTablesBitwise(*from_table, *from_file), "");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace tablegan
