// Training-robustness subsystem tests: checkpoint corruption matrix
// (truncated / bit-flipped / bad-magic / future-version files must be
// rejected with a clean Status), kill-and-resume bitwise determinism at
// 1 and 4 threads, and the per-epoch metrics sink/callback telemetry.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/metrics.h"
#include "core/table_gan.h"
#include "data/datasets.h"

namespace tablegan {
namespace core {
namespace {

data::Table SmallTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  return data::MakeAdultLike(rows, &rng);
}

TableGanOptions FastOptions(int num_threads = 1) {
  TableGanOptions o;
  o.base_channels = 8;
  o.epochs = 4;
  o.batch_size = 16;
  o.latent_dim = 8;
  o.seed = 1234;
  o.num_threads = num_threads;
  return o;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ExpectTablesBitwiseEqual(const data::Table& a, const data::Table& b,
                              const char* what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << what;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.Get(r, c), b.Get(r, c))
          << what << " differs at " << r << "," << c;
    }
  }
}

class CheckpointTest : public ::testing::Test {
 protected:
  // One trained model file shared by the corruption tests.
  void SetUp() override {
    table_ = SmallTable(64, 11);
    label_col_ =
        table_.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
    model_path_ = TempPath("corruption_base.tgan");
    TableGan gan(FastOptions());
    ASSERT_TRUE(gan.Fit(table_, label_col_).ok());
    ASSERT_TRUE(gan.Save(model_path_).ok());
    bytes_ = ReadFileBytes(model_path_);
    ASSERT_GT(bytes_.size(), 100u);
  }

  void TearDown() override { std::remove(model_path_.c_str()); }

  data::Table table_{data::Schema()};
  int label_col_ = 0;
  std::string model_path_;
  std::string bytes_;
};

TEST_F(CheckpointTest, LoadRejectsTruncatedFiles) {
  const std::string path = TempPath("truncated.tgan");
  const size_t cuts[] = {0, 3, 7, 8, 20, bytes_.size() / 2,
                         bytes_.size() - 1};
  for (size_t cut : cuts) {
    WriteFileBytes(path, bytes_.substr(0, cut));
    auto loaded = TableGan::Load(path);
    EXPECT_FALSE(loaded.ok()) << "truncated at " << cut;
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LoadRejectsBitFlips) {
  const std::string path = TempPath("bitflip.tgan");
  // Flip one bit at a sweep of offsets across the whole file,
  // including header, tensor data and the CRC footer itself.
  for (size_t offset = 0; offset < bytes_.size();
       offset += 1 + bytes_.size() / 37) {
    std::string mutated = bytes_;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x10);
    WriteFileBytes(path, mutated);
    auto loaded = TableGan::Load(path);
    EXPECT_FALSE(loaded.ok()) << "bit flip at offset " << offset;
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.tgan");
  std::string mutated = bytes_;
  mutated[0] = 'X';
  WriteFileBytes(path, mutated);
  auto loaded = TableGan::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("not a table-GAN"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LoadRejectsFutureVersionCleanly) {
  const std::string path = TempPath("future.tgan");
  std::string mutated = bytes_;
  mutated[4] = '0';
  mutated[5] = '0';
  mutated[6] = '9';
  mutated[7] = '9';
  // Recompute the CRC so the *version check*, not the integrity check,
  // is what rejects the file.
  const uint32_t crc =
      Crc32(mutated.data(), mutated.size() - sizeof(uint32_t));
  mutated.replace(mutated.size() - sizeof(uint32_t), sizeof(uint32_t),
                  reinterpret_cast<const char*>(&crc), sizeof(uint32_t));
  WriteFileBytes(path, mutated);
  auto loaded = TableGan::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("unsupported model file version"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, SaveLeavesNoTempFileBehind) {
  EXPECT_FALSE(std::filesystem::exists(model_path_ + ".tmp"));
}

class ResumeTest : public ::testing::TestWithParam<int> {};

TEST_P(ResumeTest, KilledAndResumedRunIsBitwiseIdentical) {
  const int threads = GetParam();
  data::Table table = SmallTable(64, 21);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  const std::string dir =
      TempPath("resume_ckpt_t" + std::to_string(threads));

  // Uninterrupted reference run: 4 epochs straight through.
  TableGan full(FastOptions(threads));
  ASSERT_TRUE(full.Fit(table, label_col).ok());
  auto full_sample = full.Sample(24);
  ASSERT_TRUE(full_sample.ok());

  // "Killed" run: same options but stopped after 2 epochs, with a
  // checkpoint written at epoch 2.
  TableGanOptions partial_options = FastOptions(threads);
  partial_options.epochs = 2;
  partial_options.checkpoint_every = 2;
  partial_options.checkpoint_dir = dir;
  TableGan partial(partial_options);
  ASSERT_TRUE(partial.Fit(table, label_col).ok());
  ASSERT_TRUE(std::filesystem::exists(dir + "/ckpt-epoch-0002.tgan"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/latest.tgan"));

  // Resumed run: fresh process state, continues epochs 3-4.
  TableGanOptions resume_options = FastOptions(threads);
  resume_options.resume_from = dir + "/latest.tgan";
  TableGan resumed(resume_options);
  ASSERT_TRUE(resumed.Fit(table, label_col).ok());
  ASSERT_EQ(resumed.history().size(), 4u);
  for (size_t e = 0; e < 4; ++e) {
    EXPECT_EQ(resumed.history()[e].d_loss, full.history()[e].d_loss) << e;
    EXPECT_EQ(resumed.history()[e].g_orig_loss,
              full.history()[e].g_orig_loss)
        << e;
    EXPECT_EQ(resumed.history()[e].class_loss, full.history()[e].class_loss)
        << e;
  }
  auto resumed_sample = resumed.Sample(24);
  ASSERT_TRUE(resumed_sample.ok());
  ExpectTablesBitwiseEqual(*full_sample, *resumed_sample,
                           "resumed Sample output");

  // The saved weights are identical too: both models must give the
  // same discriminator scores on a probe.
  data::Table probe = SmallTable(16, 22);
  auto a = full.DiscriminatorScores(probe);
  auto b = resumed.DiscriminatorScores(probe);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "probe record " << i;
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Threads, ResumeTest, ::testing::Values(1, 4));

TEST(ResumeValidationTest, MismatchedOptionsAreRejected) {
  data::Table table = SmallTable(64, 31);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  const std::string dir = TempPath("resume_mismatch");
  TableGanOptions options = FastOptions();
  options.epochs = 2;
  options.checkpoint_every = 2;
  options.checkpoint_dir = dir;
  TableGan gan(options);
  ASSERT_TRUE(gan.Fit(table, label_col).ok());
  const std::string ckpt = dir + "/latest.tgan";

  {
    TableGanOptions bad = FastOptions();
    bad.learning_rate *= 2.0f;
    bad.resume_from = ckpt;
    TableGan g(bad);
    Status status = g.Fit(table, label_col);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
  {
    TableGanOptions bad = FastOptions();
    bad.seed = 999;
    bad.resume_from = ckpt;
    TableGan g(bad);
    EXPECT_FALSE(g.Fit(table, label_col).ok());
  }
  {
    // A different training table changes the normalizer bounds.
    data::Table other = SmallTable(64, 77);
    TableGanOptions o = FastOptions();
    o.resume_from = ckpt;
    TableGan g(o);
    EXPECT_FALSE(g.Fit(other, label_col).ok());
  }
  {
    // A final model file has no training section to resume from.
    const std::string model = TempPath("final_model.tgan");
    ASSERT_TRUE(gan.Save(model).ok());
    TableGanOptions o = FastOptions();
    o.resume_from = model;
    TableGan g(o);
    Status status = g.Fit(table, label_col);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("training section"), std::string::npos);
    std::remove(model.c_str());
  }
  std::filesystem::remove_all(dir);
}

TEST(ResumeValidationTest, NonRepresentableFloatOptionsRoundTrip) {
  // 0.995 has no exact float32 representation; the resume check must
  // compare the *post-round-trip* representations (what the checkpoint
  // stores) rather than source-literal doubles, or every run configured
  // with such a value would refuse to resume from its own checkpoint.
  data::Table table = SmallTable(64, 51);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  const std::string dir = TempPath("resume_nonrep");
  TableGanOptions options = FastOptions();
  options.epochs = 2;
  options.ewma_weight = 0.995f;
  options.guard_ewma_weight = 0.995f;
  options.guard_factor = 49.9f;
  options.delta_mean = 0.1f;
  options.checkpoint_every = 2;
  options.checkpoint_dir = dir;
  {
    TableGan gan(options);
    ASSERT_TRUE(gan.Fit(table, label_col).ok());
  }
  TableGanOptions resume = options;
  resume.epochs = 4;  // extend the finished run
  resume.checkpoint_every = 0;
  resume.checkpoint_dir.clear();
  resume.resume_from = dir + "/latest.tgan";
  TableGan resumed(resume);
  Status status = resumed.Fit(table, label_col);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(resumed.history().size(), 4u);
  std::filesystem::remove_all(dir);
}

TEST(ResumeValidationTest, MismatchedStabilityOptionsAreRejected) {
  // A v5 checkpoint records its loss mode and guardrail settings; a
  // resume must not silently switch the training objective.
  data::Table table = SmallTable(64, 61);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  const std::string dir = TempPath("resume_stability_mismatch");
  TableGanOptions options = FastOptions();
  options.epochs = 2;
  options.loss_mode = LossMode::kSpectralNorm;
  options.checkpoint_every = 2;
  options.checkpoint_dir = dir;
  {
    TableGan gan(options);
    ASSERT_TRUE(gan.Fit(table, label_col).ok());
  }
  const std::string ckpt = dir + "/latest.tgan";
  {
    TableGanOptions bad = options;
    bad.loss_mode = LossMode::kWganGp;
    bad.resume_from = ckpt;
    TableGan g(bad);
    Status status = g.Fit(table, label_col);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
  {
    TableGanOptions bad = options;
    bad.sn_weight *= 2.0f;
    bad.resume_from = ckpt;
    TableGan g(bad);
    EXPECT_FALSE(g.Fit(table, label_col).ok());
  }
  {
    TableGanOptions bad = options;
    bad.guard_factor = 10.0f;
    bad.resume_from = ckpt;
    TableGan g(bad);
    EXPECT_FALSE(g.Fit(table, label_col).ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(ResumeValidationTest, CheckpointLoadsAsAModel) {
  data::Table table = SmallTable(64, 41);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  const std::string dir = TempPath("ckpt_as_model");
  TableGanOptions options = FastOptions();
  options.checkpoint_every = 4;
  options.checkpoint_dir = dir;
  TableGan gan(options);
  ASSERT_TRUE(gan.Fit(table, label_col).ok());

  auto loaded = TableGan::Load(dir + "/latest.tgan");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->fitted());
  auto sample = loaded->Sample(8);
  EXPECT_TRUE(sample.ok());
  std::filesystem::remove_all(dir);
}

// Compares table `part` against rows [offset, offset + part rows) of
// `whole`, cell for cell.
void ExpectRowsEqual(const data::Table& whole, int64_t offset,
                     const data::Table& part, const char* what) {
  ASSERT_LE(offset + part.num_rows(), whole.num_rows()) << what;
  ASSERT_EQ(whole.num_columns(), part.num_columns()) << what;
  for (int64_t r = 0; r < part.num_rows(); ++r) {
    for (int c = 0; c < part.num_columns(); ++c) {
      ASSERT_EQ(whole.Get(offset + r, c), part.Get(r, c))
          << what << " differs at " << r << "," << c;
    }
  }
}

TEST(SampleStreamTest, StreamStateSurvivesSaveLoad) {
  data::Table table = SmallTable(64, 71);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];

  // Reference run draws the first 24 stream rows in one call.
  TableGan ref(FastOptions());
  ASSERT_TRUE(ref.Fit(table, label_col).ok());
  auto all = ref.Sample(24);
  ASSERT_TRUE(all.ok());

  TableGan gan(FastOptions());
  ASSERT_TRUE(gan.Fit(table, label_col).ok());
  auto first = gan.Sample(10);
  ASSERT_TRUE(first.ok());
  ExpectRowsEqual(*all, 0, *first, "first 10 rows");

  // Save mid-stream in both formats, then keep sampling.
  const std::string v4_path = TempPath("stream_v4.tgan");
  const std::string v3_path = TempPath("stream_v3.tgan");
  ASSERT_TRUE(gan.Save(v4_path).ok());
  ASSERT_TRUE(gan.SaveCompat(v3_path, 3).ok());
  auto rest = gan.Sample(14);
  ASSERT_TRUE(rest.ok());
  ExpectRowsEqual(*all, 10, *rest, "rows 10-23 from the original");

  // A v4 reload continues the stream exactly where the save left it.
  auto v4 = TableGan::Load(v4_path);
  ASSERT_TRUE(v4.ok()) << v4.status().ToString();
  auto v4_rest = v4->Sample(14);
  ASSERT_TRUE(v4_rest.ok());
  ExpectRowsEqual(*all, 10, *v4_rest, "rows 10-23 from the v4 reload");

  // A v3 file has no stream counters: the reload starts a fresh stream
  // (the pre-v4 behavior) and replays rows 0-13.
  auto v3 = TableGan::Load(v3_path);
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  auto v3_rest = v3->Sample(14);
  ASSERT_TRUE(v3_rest.ok());
  ExpectRowsEqual(*all, 0, *v3_rest, "rows 0-13 from the v3 reload");

  std::remove(v4_path.c_str());
  std::remove(v3_path.c_str());
}

TEST(SampleStreamTest, VersionedMagicBytes) {
  data::Table table = SmallTable(64, 81);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  TableGan gan(FastOptions());
  ASSERT_TRUE(gan.Fit(table, label_col).ok());
  const std::string v6_path = TempPath("magic_v6.tgan");
  const std::string v5_path = TempPath("magic_v5.tgan");
  const std::string v4_path = TempPath("magic_v4.tgan");
  const std::string v3_path = TempPath("magic_v3.tgan");
  ASSERT_TRUE(gan.Save(v6_path).ok());
  ASSERT_TRUE(gan.SaveCompat(v5_path, 5).ok());
  ASSERT_TRUE(gan.SaveCompat(v4_path, 4).ok());
  ASSERT_TRUE(gan.SaveCompat(v3_path, 3).ok());
  EXPECT_EQ(ReadFileBytes(v6_path).substr(0, 8), "TGAN0006");
  EXPECT_EQ(ReadFileBytes(v5_path).substr(0, 8), "TGAN0005");
  EXPECT_EQ(ReadFileBytes(v4_path).substr(0, 8), "TGAN0004");
  EXPECT_EQ(ReadFileBytes(v3_path).substr(0, 8), "TGAN0003");
  // An unsupported version number is rejected up front.
  EXPECT_FALSE(gan.SaveCompat(TempPath("magic_v2.tgan"), 2).ok());
  std::remove(v6_path.c_str());
  std::remove(v5_path.c_str());
  std::remove(v4_path.c_str());
  std::remove(v3_path.c_str());
}

TEST(MetricsTest, SinkAndCallbackSeeEveryEpoch) {
  data::Table table = SmallTable(64, 51);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  const std::string path = TempPath("metrics.jsonl");

  JsonlMetricsSink sink(path);
  ASSERT_TRUE(sink.status().ok());
  std::vector<TrainingMetrics> seen;
  TableGanOptions options = FastOptions();
  options.metrics_sink = &sink;
  options.metrics_callback = [&seen](const TrainingMetrics& m) {
    seen.push_back(m);
  };
  TableGan gan(options);
  ASSERT_TRUE(gan.Fit(table, label_col).ok());

  ASSERT_EQ(seen.size(), 4u);
  for (size_t e = 0; e < seen.size(); ++e) {
    EXPECT_EQ(seen[e].epoch, static_cast<int64_t>(e) + 1);
    EXPECT_EQ(seen[e].total_epochs, 4);
    // Losses must mirror the in-memory history exactly.
    EXPECT_EQ(seen[e].d_loss, gan.history()[e].d_loss);
    EXPECT_EQ(seen[e].g_loss, gan.history()[e].g_orig_loss);
    EXPECT_GT(seen[e].examples, 0);
    EXPECT_GE(seen[e].epoch_seconds, 0.0);
    EXPECT_GE(seen[e].d_seconds + seen[e].c_seconds + seen[e].g_seconds,
              0.0);
  }

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"epoch\":" + std::to_string(lines)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"d_loss\":"), std::string::npos);
    EXPECT_NE(line.find("\"examples_per_sec\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 4);
  std::remove(path.c_str());
}

TEST(MetricsTest, AppendModeKeepsRecordsAcrossResume) {
  data::Table table = SmallTable(64, 61);
  const int label_col =
      table.schema().ColumnsWithRole(data::ColumnRole::kLabel)[0];
  const std::string dir = TempPath("metrics_resume");
  const std::string path = TempPath("metrics_resume.jsonl");

  {
    JsonlMetricsSink sink(path);
    ASSERT_TRUE(sink.status().ok());
    TableGanOptions options = FastOptions();
    options.epochs = 2;
    options.checkpoint_every = 2;
    options.checkpoint_dir = dir;
    options.metrics_sink = &sink;
    TableGan gan(options);
    ASSERT_TRUE(gan.Fit(table, label_col).ok());
  }
  {
    JsonlMetricsSink sink(path, /*append=*/true);
    ASSERT_TRUE(sink.status().ok());
    TableGanOptions options = FastOptions();
    options.resume_from = dir + "/latest.tgan";
    options.metrics_sink = &sink;
    TableGan gan(options);
    ASSERT_TRUE(gan.Fit(table, label_col).ok());
  }

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  // 2 epochs from the first run + epochs 3-4 from the resumed run.
  EXPECT_EQ(lines, 4);
  std::remove(path.c_str());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace core
}  // namespace tablegan
