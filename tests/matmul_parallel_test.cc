// Parity sweep for the thread-parallel GEMM kernels: every kernel is
// checked against a naive triple-loop reference (numeric tolerance, since
// cache blocking reorders float additions) and, bit for bit, against its
// own 1-thread run (the determinism contract of common/parallel.h).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "tensor/matmul.h"
#include "tensor/tensor.h"

namespace tablegan {
namespace {

// Shapes chosen to hit the degenerate cases (1x1, 1xn, mx1), odd sizes
// that are not multiples of any block size, and sizes large enough to
// cross the parallelization gate and the 64/256/512 cache-block edges.
struct Shape {
  int64_t m, n, k;
};
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 3},    {5, 1, 4},    {3, 3, 3},
    {5, 7, 9},   {33, 17, 65}, {64, 64, 64}, {96, 70, 300},
    {129, 65, 33},
};

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), -1.5f, 1.5f, &rng);
}

// Naive triple-loop reference: C = alpha * op(A) * op(B) + beta * C.
Tensor NaiveGemm(bool ta, bool tb, float alpha, const Tensor& a,
                 const Tensor& b, float beta, const Tensor& c0) {
  const int64_t m = ta ? a.dim(1) : a.dim(0);
  const int64_t k = ta ? a.dim(0) : a.dim(1);
  const int64_t n = tb ? b.dim(0) : b.dim(1);
  Tensor c = c0;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t l = 0; l < k; ++l) {
        const float av = ta ? a.at2(l, i) : a.at2(i, l);
        const float bv = tb ? b.at2(j, l) : b.at2(l, j);
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c.at2(i, j) = alpha * static_cast<float>(acc) + beta * c0.at2(i, j);
    }
  }
  return c;
}

void ExpectNear(const Tensor& got, const Tensor& want, float tol) {
  ASSERT_EQ(got.size(), want.size());
  for (int64_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << "element " << i;
  }
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.size()) * sizeof(float)));
}

TEST(MatmulParallelTest, GemmMatchesNaiveAndIsThreadCountInvariant) {
  for (const Shape& s : kShapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        for (float alpha : {0.0f, 1.0f, 0.5f, -2.0f}) {
          for (float beta : {0.0f, 1.0f, 0.5f, -2.0f}) {
            Tensor a = RandomTensor(
                ta ? std::vector<int64_t>{s.k, s.m}
                   : std::vector<int64_t>{s.m, s.k},
                17 * static_cast<uint64_t>(s.m) + (ta ? 1 : 0));
            Tensor b = RandomTensor(
                tb ? std::vector<int64_t>{s.n, s.k}
                   : std::vector<int64_t>{s.k, s.n},
                31 * static_cast<uint64_t>(s.n) + (tb ? 1 : 0));
            Tensor c0 = RandomTensor({s.m, s.n}, 53);

            SetNumThreads(1);
            Tensor c1 = c0;
            ops::Gemm(ta, tb, alpha, a, b, beta, &c1);
            SetNumThreads(4);
            Tensor c4 = c0;
            ops::Gemm(ta, tb, alpha, a, b, beta, &c4);
            SetNumThreads(0);

            const float tol =
                1e-4f * static_cast<float>(s.k) * std::abs(alpha) + 1e-5f;
            ExpectNear(c1, NaiveGemm(ta, tb, alpha, a, b, beta, c0), tol);
            ExpectBitwiseEqual(c1, c4);
          }
        }
      }
    }
  }
}

enum class RawKind { kNN, kNT, kTN };

void RunRaw(RawKind kind, int64_t m, int64_t n, int64_t k, const Tensor& a,
            const Tensor& b, Tensor* c, bool accumulate) {
  switch (kind) {
    case RawKind::kNN:
      ops::RawGemmNN(m, n, k, a.data(), b.data(), c->data(), accumulate);
      break;
    case RawKind::kNT:
      ops::RawGemmNT(m, n, k, a.data(), b.data(), c->data(), accumulate);
      break;
    case RawKind::kTN:
      ops::RawGemmTN(m, n, k, a.data(), b.data(), c->data(), accumulate);
      break;
  }
}

TEST(MatmulParallelTest, RawGemmsMatchNaiveAndAreThreadCountInvariant) {
  for (const Shape& s : kShapes) {
    for (RawKind kind : {RawKind::kNN, RawKind::kNT, RawKind::kTN}) {
      for (bool accumulate : {false, true}) {
        // Operand layouts: NN a[m,k] b[k,n]; NT a[m,k] b[n,k]; TN a[k,m]
        // b[k,n]. Reuse NaiveGemm via its transpose flags.
        const bool ta = kind == RawKind::kTN;
        const bool tb = kind == RawKind::kNT;
        Tensor a = RandomTensor(ta ? std::vector<int64_t>{s.k, s.m}
                                   : std::vector<int64_t>{s.m, s.k},
                                101 + static_cast<uint64_t>(s.k));
        Tensor b = RandomTensor(tb ? std::vector<int64_t>{s.n, s.k}
                                   : std::vector<int64_t>{s.k, s.n},
                                211 + static_cast<uint64_t>(s.n));
        Tensor c0 = accumulate ? RandomTensor({s.m, s.n}, 307)
                               : Tensor({s.m, s.n});

        SetNumThreads(1);
        Tensor c1 = c0;
        RunRaw(kind, s.m, s.n, s.k, a, b, &c1, accumulate);
        SetNumThreads(4);
        Tensor c4 = c0;
        RunRaw(kind, s.m, s.n, s.k, a, b, &c4, accumulate);
        SetNumThreads(0);

        const float tol = 1e-4f * static_cast<float>(s.k) + 1e-5f;
        ExpectNear(c1,
                   NaiveGemm(ta, tb, 1.0f, a, b, accumulate ? 1.0f : 0.0f,
                             c0),
                   tol);
        ExpectBitwiseEqual(c1, c4);
      }
    }
  }
}

// Exercises the NT cache blocking specifically: depths beyond the 256
// l-block and widths beyond the 64 j-block, including exact multiples.
TEST(MatmulParallelTest, RawGemmNTBlockBoundaries) {
  for (int64_t k : {255, 256, 257, 513}) {
    for (int64_t n : {63, 64, 65, 130}) {
      const int64_t m = 9;
      Tensor a = RandomTensor({m, k}, static_cast<uint64_t>(k));
      Tensor b = RandomTensor({n, k}, static_cast<uint64_t>(n + k));
      Tensor c1({m, n}), c4({m, n});
      SetNumThreads(1);
      ops::RawGemmNT(m, n, k, a.data(), b.data(), c1.data(), false);
      SetNumThreads(4);
      ops::RawGemmNT(m, n, k, a.data(), b.data(), c4.data(), false);
      SetNumThreads(0);
      const float tol = 1e-4f * static_cast<float>(k);
      ExpectNear(c1, NaiveGemm(false, true, 1.0f, a, b, 0.0f, Tensor({m, n})),
                 tol);
      ExpectBitwiseEqual(c1, c4);
    }
  }
}

}  // namespace
}  // namespace tablegan
