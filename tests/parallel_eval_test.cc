// Determinism contract of the parallel evaluation-and-synthesis
// pipeline: TableGan::Sample must be a pure function of (seed, rows
// emitted so far, n) — independent of batch_size and thread count — and
// the parallel DCR / fidelity / discriminator-scoring paths must be
// bitwise identical to their serial counterparts.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/neighbors.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/table_gan.h"
#include "data/datasets.h"
#include "eval/fidelity.h"
#include "privacy/dcr.h"

namespace tablegan {
namespace {

// epochs = 0 skips the training loop entirely, so two models with the
// same seed build identical networks regardless of batch_size — which
// isolates Sample's own batch-size sensitivity.
core::TableGanOptions UntrainedOptions() {
  core::TableGanOptions options;
  options.epochs = 0;
  options.base_channels = 8;
  options.latent_dim = 16;
  options.seed = 99;
  return options;
}

data::Table SmallTable(int64_t rows, uint64_t seed) {
  data::Schema schema({
      {"salary", data::ColumnType::kContinuous,
       data::ColumnRole::kSensitive, {}},
      {"age", data::ColumnType::kDiscrete,
       data::ColumnRole::kQuasiIdentifier, {}},
      {"label", data::ColumnType::kDiscrete, data::ColumnRole::kLabel, {}},
  });
  data::Table t(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    t.AppendRow({rng.Uniform(2000, 12000),
                 static_cast<double>(rng.UniformInt(20, 65)),
                 rng.NextBool(0.5) ? 1.0 : 0.0});
  }
  return t;
}

core::TableGan FittedGan(const data::Table& table,
                         core::TableGanOptions options) {
  core::TableGan gan(std::move(options));
  EXPECT_TRUE(gan.Fit(table, /*label_col=*/2).ok());
  return gan;
}

void ExpectTablesBitwiseEqual(const data::Table& a, const data::Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.Get(r, c), b.Get(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(SampleDeterminismTest, InvariantAcrossBatchSizes) {
  data::Table table = SmallTable(64, 5);
  data::Table reference;
  bool have_reference = false;
  for (int batch_size : {2, 64, 500}) {
    core::TableGanOptions options = UntrainedOptions();
    options.batch_size = batch_size;
    core::TableGan gan = FittedGan(table, options);
    Result<data::Table> samples = gan.Sample(150);
    ASSERT_TRUE(samples.ok());
    if (!have_reference) {
      reference = std::move(samples).value();
      have_reference = true;
    } else {
      ExpectTablesBitwiseEqual(reference, *samples);
    }
  }
}

TEST(SampleDeterminismTest, InvariantAcrossThreadCounts) {
  data::Table table = SmallTable(64, 5);
  data::Table reference;
  bool have_reference = false;
  for (int threads : {1, 4}) {
    core::TableGanOptions options = UntrainedOptions();
    options.num_threads = threads;
    core::TableGan gan = FittedGan(table, options);
    // 150 rows spans multiple inference blocks, so the threaded run
    // actually shards.
    Result<data::Table> samples = gan.Sample(150);
    ASSERT_TRUE(samples.ok());
    if (!have_reference) {
      reference = std::move(samples).value();
      have_reference = true;
    } else {
      ExpectTablesBitwiseEqual(reference, *samples);
    }
  }
  SetNumThreads(0);
}

TEST(SampleDeterminismTest, SuccessiveCallsContinueTheRowStream) {
  data::Table table = SmallTable(64, 5);
  core::TableGan gan_a = FittedGan(table, UntrainedOptions());
  core::TableGan gan_b = FittedGan(table, UntrainedOptions());

  Result<data::Table> first = gan_a.Sample(70);
  Result<data::Table> second = gan_a.Sample(70);
  Result<data::Table> both = gan_b.Sample(140);
  ASSERT_TRUE(first.ok() && second.ok() && both.ok());

  // Successive calls yield fresh rows...
  bool any_diff = false;
  for (int64_t r = 0; r < 70 && !any_diff; ++r) {
    for (int c = 0; c < first->num_columns(); ++c) {
      if (first->Get(r, c) != second->Get(r, c)) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff) << "second Sample repeated the first call's rows";

  // ...and the concatenation matches one big call on an identical model:
  // row i is a pure function of (seed, total rows emitted before it).
  for (int64_t r = 0; r < 140; ++r) {
    const data::Table& part = r < 70 ? *first : *second;
    const int64_t pr = r < 70 ? r : r - 70;
    for (int c = 0; c < both->num_columns(); ++c) {
      ASSERT_EQ(part.Get(pr, c), both->Get(r, c)) << "row " << r;
    }
  }
}

TEST(DiscriminatorScoresTest, InvariantAcrossThreadCounts) {
  data::Table table = SmallTable(80, 5);
  std::vector<double> reference;
  for (int threads : {1, 4}) {
    core::TableGanOptions options = UntrainedOptions();
    options.num_threads = threads;
    core::TableGan gan = FittedGan(table, options);
    Result<std::vector<double>> scores = gan.DiscriminatorScores(table);
    ASSERT_TRUE(scores.ok());
    ASSERT_EQ(scores->size(), 80u);
    if (reference.empty()) {
      reference = *scores;
    } else {
      for (size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(reference[i], (*scores)[i]) << "row " << i;
      }
    }
  }
  SetNumThreads(0);
}

TEST(DcrParallelTest, BitwiseIdenticalToSerial) {
  data::Table original = SmallTable(300, 11);
  data::Table released = SmallTable(200, 12);
  const std::vector<int> columns{0, 1};

  SetNumThreads(1);
  auto serial = privacy::ComputeDcr(original, released, columns);
  SetNumThreads(4);
  auto parallel = privacy::ComputeDcr(original, released, columns);
  SetNumThreads(0);

  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial->mean, parallel->mean);
  EXPECT_EQ(serial->stddev, parallel->stddev);
}

TEST(DcrParallelTest, GoldenHandComputedTable) {
  data::Schema schema({{"v", data::ColumnType::kContinuous,
                        data::ColumnRole::kSensitive, {}}});
  data::Table original(schema), released(schema);
  original.AppendRow({0.0});
  original.AppendRow({10.0});
  released.AppendRow({0.0});
  released.AppendRow({5.0});

  // Normalized on the original's [0, 10] range: original -> {0, 1},
  // released -> {0, 0.5}. Nearest distances {0, 0.5}; every quantity
  // below is exactly representable, so compare with ==.
  auto dcr = privacy::ComputeDcr(original, released, {0});
  ASSERT_TRUE(dcr.ok());
  EXPECT_EQ(dcr->mean, 0.25);
  EXPECT_EQ(dcr->stddev, 0.25);
}

TEST(FidelityParallelTest, BitwiseIdenticalToSerial) {
  data::Table original = SmallTable(400, 21);
  data::Table released = SmallTable(400, 22);

  SetNumThreads(1);
  auto serial = eval::EvaluateFidelity(original, released);
  SetNumThreads(4);
  auto parallel = eval::EvaluateFidelity(original, released);
  SetNumThreads(0);

  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial->mean_ks, parallel->mean_ks);
  EXPECT_EQ(serial->worst_ks, parallel->worst_ks);
  EXPECT_EQ(serial->correlation_difference, parallel->correlation_difference);
  EXPECT_EQ(serial->pmse, parallel->pmse);
  ASSERT_EQ(serial->columns.size(), parallel->columns.size());
  for (size_t c = 0; c < serial->columns.size(); ++c) {
    EXPECT_EQ(serial->columns[c].name, parallel->columns[c].name);
    EXPECT_EQ(serial->columns[c].ks, parallel->columns[c].ks);
    EXPECT_EQ(serial->columns[c].tv, parallel->columns[c].tv);
  }
}

TEST(NeighborsTest, MatchesSerialReferenceScan) {
  Rng rng(31);
  const int64_t n = 123, m = 77, dim = 5;
  std::vector<float> queries(static_cast<size_t>(n * dim));
  std::vector<float> corpus(static_cast<size_t>(m * dim));
  for (float& v : queries) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& v : corpus) v = static_cast<float>(rng.Uniform(-1.0, 1.0));

  std::vector<float> expected(static_cast<size_t>(n));
  for (int64_t q = 0; q < n; ++q) {
    float best = std::numeric_limits<float>::max();
    for (int64_t s = 0; s < m; ++s) {
      float d = 0.0f;
      for (int64_t j = 0; j < dim; ++j) {
        const float diff = queries[static_cast<size_t>(q * dim + j)] -
                           corpus[static_cast<size_t>(s * dim + j)];
        d += diff * diff;
      }
      best = std::min(best, d);
    }
    expected[static_cast<size_t>(q)] = best;
  }

  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    std::vector<float> got(static_cast<size_t>(n));
    NearestSquaredDistances(queries.data(), n, corpus.data(), m, dim,
                            got.data());
    for (int64_t q = 0; q < n; ++q) {
      ASSERT_EQ(expected[static_cast<size_t>(q)],
                got[static_cast<size_t>(q)])
          << "query " << q << " at " << threads << " threads";
    }
  }
  SetNumThreads(0);
}

TEST(NeighborsTest, EmptyCorpusYieldsInfiniteDistances) {
  const float query[2] = {0.0f, 0.0f};
  float out = 0.0f;
  NearestSquaredDistances(query, 1, nullptr, 0, 2, &out);
  EXPECT_TRUE(std::isinf(out));
}

TEST(MomentsTest, WelfordSurvivesLargeOffsets) {
  // E[x^2] - mean^2 on these values loses every significant digit in
  // double; Welford keeps the exact variance 0.25.
  Moments m;
  m.Push(1e9);
  m.Push(1e9 + 1.0);
  EXPECT_EQ(m.mean, 1e9 + 0.5);
  EXPECT_EQ(m.Variance(), 0.25);
}

TEST(MomentsTest, ParallelMomentsMatchSerialPush) {
  Rng rng(77);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.Uniform(5.0, 9.0);

  Moments serial;
  for (double v : values) serial.Push(v);

  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    Moments parallel = ComputeMoments(
        static_cast<int64_t>(values.size()),
        [&](int64_t i) { return values[static_cast<size_t>(i)]; });
    EXPECT_EQ(parallel.count, serial.count);
    EXPECT_NEAR(parallel.mean, serial.mean, 1e-12);
    EXPECT_NEAR(parallel.StdDev(), serial.StdDev(), 1e-12);
  }
  SetNumThreads(0);

  // And the chunked merge itself is thread-count invariant (bitwise).
  SetNumThreads(1);
  Moments a = ComputeMoments(
      static_cast<int64_t>(values.size()),
      [&](int64_t i) { return values[static_cast<size_t>(i)]; });
  SetNumThreads(4);
  Moments b = ComputeMoments(
      static_cast<int64_t>(values.size()),
      [&](int64_t i) { return values[static_cast<size_t>(i)]; });
  SetNumThreads(0);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.m2, b.m2);
}

TEST(ScopedNumThreadsTest, RestoresPriorOverride) {
  SetNumThreads(0);
  ASSERT_EQ(GetNumThreadsOverride(), 0);
  {
    ScopedNumThreads scoped(3);
    EXPECT_EQ(GetNumThreadsOverride(), 3);
    {
      ScopedNumThreads inner(2);
      EXPECT_EQ(GetNumThreadsOverride(), 2);
      // n <= 0 means "no request": the current override stays.
      ScopedNumThreads noop(0);
      EXPECT_EQ(GetNumThreadsOverride(), 2);
    }
    EXPECT_EQ(GetNumThreadsOverride(), 3);
  }
  EXPECT_EQ(GetNumThreadsOverride(), 0);
}

}  // namespace
}  // namespace tablegan
