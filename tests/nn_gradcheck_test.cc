#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batch_norm.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/reshape.h"
#include "nn/sequential.h"
#include "test_util.h"

namespace tablegan {
namespace {

using testing_util::GradCheckLayer;

// Keep activations away from ReLU/LeakyReLU kinks: |x| >= margin.
Tensor KinkFreeInput(std::vector<int64_t> shape, Rng* rng,
                     float margin = 0.15f) {
  Tensor t = Tensor::Uniform(std::move(shape), -1.0f, 1.0f, rng);
  for (int64_t i = 0; i < t.size(); ++i) {
    if (t[i] >= 0.0f && t[i] < margin) t[i] += margin;
    if (t[i] < 0.0f && t[i] > -margin) t[i] -= margin;
  }
  return t;
}

TEST(GradCheck, Dense) {
  Rng rng(1);
  nn::Dense layer(5, 3);
  nn::XavierInitialize(&layer, &rng);
  GradCheckLayer(&layer, Tensor::Uniform({4, 5}, -1.0f, 1.0f, &rng));
}

TEST(GradCheck, DenseWithoutBias) {
  Rng rng(2);
  nn::Dense layer(4, 6, /*bias=*/false);
  nn::XavierInitialize(&layer, &rng);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  GradCheckLayer(&layer, Tensor::Uniform({3, 4}, -1.0f, 1.0f, &rng));
}

TEST(GradCheck, Conv2dStride1) {
  Rng rng(3);
  nn::Conv2d layer(2, 3, /*kernel=*/3, /*stride=*/1, /*padding=*/1);
  nn::DcganInitialize(&layer, &rng);
  // Scale weights up so gradients are not dominated by fp noise.
  for (int64_t i = 0; i < layer.weight().size(); ++i) {
    layer.weight()[i] *= 10.0f;
  }
  GradCheckLayer(&layer, Tensor::Uniform({2, 2, 5, 5}, -1.0f, 1.0f, &rng));
}

TEST(GradCheck, Conv2dStride2Dcgan) {
  Rng rng(4);
  nn::Conv2d layer(1, 4, /*kernel=*/4, /*stride=*/2, /*padding=*/1,
                   /*bias=*/false);
  nn::DcganInitialize(&layer, &rng);
  for (int64_t i = 0; i < layer.weight().size(); ++i) {
    layer.weight()[i] *= 10.0f;
  }
  GradCheckLayer(&layer, Tensor::Uniform({2, 1, 8, 8}, -1.0f, 1.0f, &rng));
}

TEST(GradCheck, ConvTranspose2d) {
  Rng rng(5);
  nn::ConvTranspose2d layer(3, 2, /*kernel=*/4, /*stride=*/2, /*padding=*/1);
  nn::DcganInitialize(&layer, &rng);
  for (int64_t i = 0; i < layer.weight().size(); ++i) {
    layer.weight()[i] *= 10.0f;
  }
  GradCheckLayer(&layer, Tensor::Uniform({2, 3, 4, 4}, -1.0f, 1.0f, &rng));
}

// Random-shape sweeps through the dispatched im2col/col2im path
// (Conv2d backward and ConvTranspose2d forward both fold patches with
// kernels::Active().col2im): finite differences must agree with the
// analytic gradients for whatever backend dispatch selected, across
// kernel/stride/padding combinations that hit the strided scalar path
// as well as the contiguous stride-1 fast path.
TEST(GradCheck, Conv2dRandomShapes) {
  Rng rng(40);
  for (int caseno = 0; caseno < 4; ++caseno) {
    const int in_ch = static_cast<int>(rng.UniformInt(1, 3));
    const int out_ch = static_cast<int>(rng.UniformInt(1, 4));
    const int kernel = static_cast<int>(rng.UniformInt(2, 4));
    const int stride = static_cast<int>(rng.UniformInt(1, 3));
    const int padding = static_cast<int>(rng.UniformInt(0, kernel - 1));
    const int64_t side = rng.UniformInt(kernel, kernel + 4);
    const int64_t batch = rng.UniformInt(1, 3);
    nn::Conv2d layer(in_ch, out_ch, kernel, stride, padding,
                     /*bias=*/caseno % 2 == 0);
    nn::DcganInitialize(&layer, &rng);
    for (int64_t i = 0; i < layer.weight().size(); ++i) {
      layer.weight()[i] *= 10.0f;
    }
    SCOPED_TRACE("conv2d case " + std::to_string(caseno) + " k=" +
                 std::to_string(kernel) + " s=" + std::to_string(stride) +
                 " p=" + std::to_string(padding) + " side=" +
                 std::to_string(side));
    GradCheckLayer(&layer, Tensor::Uniform({batch, in_ch, side, side},
                                           -1.0f, 1.0f, &rng));
  }
}

TEST(GradCheck, ConvTranspose2dRandomShapes) {
  Rng rng(41);
  for (int caseno = 0; caseno < 4; ++caseno) {
    const int in_ch = static_cast<int>(rng.UniformInt(1, 4));
    const int out_ch = static_cast<int>(rng.UniformInt(1, 3));
    const int kernel = static_cast<int>(rng.UniformInt(2, 4));
    const int stride = static_cast<int>(rng.UniformInt(1, 2));
    const int padding = static_cast<int>(rng.UniformInt(0, kernel - 1));
    const int64_t side = rng.UniformInt(2, 5);
    const int64_t batch = rng.UniformInt(1, 3);
    nn::ConvTranspose2d layer(in_ch, out_ch, kernel, stride, padding);
    nn::DcganInitialize(&layer, &rng);
    for (int64_t i = 0; i < layer.weight().size(); ++i) {
      layer.weight()[i] *= 10.0f;
    }
    SCOPED_TRACE("convT case " + std::to_string(caseno) + " k=" +
                 std::to_string(kernel) + " s=" + std::to_string(stride) +
                 " p=" + std::to_string(padding) + " side=" +
                 std::to_string(side));
    GradCheckLayer(&layer, Tensor::Uniform({batch, in_ch, side, side},
                                           -1.0f, 1.0f, &rng));
  }
}

TEST(GradCheck, BatchNorm2d) {
  Rng rng(6);
  nn::BatchNorm layer(3);
  // Non-trivial gamma/beta.
  for (int64_t i = 0; i < 3; ++i) {
    layer.gamma()[i] = 0.5f + 0.3f * static_cast<float>(i);
    layer.beta()[i] = -0.2f * static_cast<float>(i);
  }
  GradCheckLayer(&layer, Tensor::Uniform({4, 3, 3, 3}, -2.0f, 2.0f, &rng),
                 /*eps=*/1e-2, /*tol=*/5e-2);
}

TEST(GradCheck, BatchNorm1d) {
  Rng rng(7);
  nn::BatchNorm layer(5);
  GradCheckLayer(&layer, Tensor::Uniform({6, 5}, -2.0f, 2.0f, &rng),
                 /*eps=*/1e-2, /*tol=*/5e-2);
}

TEST(GradCheck, Activations) {
  Rng rng(8);
  {
    nn::ReLU relu;
    GradCheckLayer(&relu, KinkFreeInput({3, 7}, &rng));
  }
  {
    nn::LeakyReLU leaky(0.2f);
    GradCheckLayer(&leaky, KinkFreeInput({3, 7}, &rng));
  }
  {
    nn::Tanh tanh_layer;
    GradCheckLayer(&tanh_layer, Tensor::Uniform({3, 7}, -1.5f, 1.5f, &rng));
  }
  {
    nn::Sigmoid sigmoid;
    GradCheckLayer(&sigmoid, Tensor::Uniform({3, 7}, -2.0f, 2.0f, &rng));
  }
}

TEST(GradCheck, ReshapeAndFlatten) {
  Rng rng(9);
  nn::Reshape reshape({2, 2, 3});
  GradCheckLayer(&reshape, Tensor::Uniform({3, 12}, -1.0f, 1.0f, &rng));
  nn::Flatten flatten;
  GradCheckLayer(&flatten, Tensor::Uniform({2, 3, 2, 2}, -1.0f, 1.0f, &rng));
}

TEST(GradCheck, SmallDiscriminatorStack) {
  Rng rng(10);
  nn::Sequential net;
  net.Emplace<nn::Conv2d>(1, 4, 4, 2, 1, /*bias=*/true);
  net.Emplace<nn::LeakyReLU>(0.2f);
  net.Emplace<nn::Conv2d>(4, 8, 4, 2, 1, /*bias=*/false);
  net.Emplace<nn::BatchNorm>(8);
  net.Emplace<nn::LeakyReLU>(0.2f);
  net.Emplace<nn::Flatten>();
  net.Emplace<nn::Dense>(8 * 2 * 2, 1);
  nn::DcganInitialize(&net, &rng);
  for (Tensor* p : net.Parameters()) {
    for (int64_t i = 0; i < p->size(); ++i) (*p)[i] *= 5.0f;
  }
  // Deep stacks accumulate activation-kink noise under elementwise
  // finite differences (BatchNorm centers pre-activations on the kink),
  // so compare the gradient vectors in aggregate instead.
  testing_util::GradCheckLayerAggregate(
      &net, Tensor::Uniform({3, 1, 8, 8}, -1.0f, 1.0f, &rng));
}

TEST(GradCheck, SmallGeneratorStack) {
  Rng rng(11);
  nn::Sequential net;
  net.Emplace<nn::Dense>(6, 8 * 2 * 2, /*bias=*/false);
  net.Emplace<nn::Reshape>(std::vector<int64_t>{8, 2, 2});
  net.Emplace<nn::BatchNorm>(8);
  net.Emplace<nn::ReLU>();
  net.Emplace<nn::ConvTranspose2d>(8, 1, 4, 2, 1);
  net.Emplace<nn::Tanh>();
  nn::DcganInitialize(&net, &rng);
  for (Tensor* p : net.Parameters()) {
    for (int64_t i = 0; i < p->size(); ++i) (*p)[i] *= 5.0f;
  }
  testing_util::GradCheckLayerAggregate(
      &net, Tensor::Uniform({4, 6}, -1.0f, 1.0f, &rng));
}

// --- Loss gradient checks (central differences on the inputs).

template <typename LossFn>
void GradCheckLoss(LossFn loss_fn, const Tensor& pred, const Tensor& target,
                   double eps = 1e-3, double tol = 1e-2) {
  Tensor grad;
  loss_fn(pred, target, &grad);
  Tensor p = pred;
  for (int64_t i = 0; i < p.size(); ++i) {
    const float orig = p[i];
    Tensor tmp;
    p[i] = orig + static_cast<float>(eps);
    const double lp = loss_fn(p, target, &tmp);
    p[i] = orig - static_cast<float>(eps);
    const double lm = loss_fn(p, target, &tmp);
    p[i] = orig;
    EXPECT_NEAR(grad[i], (lp - lm) / (2.0 * eps), tol) << "index " << i;
  }
}

TEST(GradCheck, SigmoidBceWithLogits) {
  Rng rng(12);
  Tensor logits = Tensor::Uniform({8, 1}, -2.0f, 2.0f, &rng);
  Tensor targets({8, 1});
  for (int64_t i = 0; i < 8; ++i) targets[i] = i % 2 ? 1.0f : 0.0f;
  GradCheckLoss(nn::SigmoidBceWithLogits, logits, targets);
}

TEST(GradCheck, MseLoss) {
  Rng rng(13);
  Tensor pred = Tensor::Uniform({10}, -1.0f, 1.0f, &rng);
  Tensor target = Tensor::Uniform({10}, -1.0f, 1.0f, &rng);
  GradCheckLoss(nn::MseLoss, pred, target);
}

TEST(GradCheck, L1LossAwayFromKink) {
  Rng rng(14);
  Tensor pred = Tensor::Uniform({10}, 0.5f, 1.0f, &rng);
  Tensor target = Tensor::Uniform({10}, -1.0f, -0.5f, &rng);
  GradCheckLoss(nn::L1Loss, pred, target);
}

TEST(LossTest, BceMatchesClosedForm) {
  // For logit 0, BCE = log 2 regardless of target.
  Tensor logits({2});
  Tensor targets = Tensor::FromVector({2}, {0.0f, 1.0f});
  Tensor grad;
  const float loss = nn::SigmoidBceWithLogits(logits, targets, &grad);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-5f);
  EXPECT_NEAR(grad[0], 0.25f, 1e-5f);   // (0.5 - 0)/2
  EXPECT_NEAR(grad[1], -0.25f, 1e-5f);  // (0.5 - 1)/2
}

TEST(LossTest, BceIsStableForExtremeLogits) {
  Tensor logits = Tensor::FromVector({2}, {80.0f, -80.0f});
  Tensor targets = Tensor::FromVector({2}, {1.0f, 0.0f});
  Tensor grad;
  const float loss = nn::SigmoidBceWithLogits(logits, targets, &grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-5f);
}

}  // namespace
}  // namespace tablegan
