#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/schema_text.h"

namespace tablegan {
namespace data {
namespace {

constexpr char kSample[] = R"(# demo schema
age,discrete,qid
education,categorical,qid,dropout|hs_grad|bachelors

salary,continuous,sensitive
high_salary,discrete,label
)";

TEST(SchemaTextTest, ParsesAllFields) {
  auto schema = ParseSchemaText(kSample);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema->num_columns(), 4);
  EXPECT_EQ(schema->column(0).name, "age");
  EXPECT_EQ(schema->column(0).type, ColumnType::kDiscrete);
  EXPECT_EQ(schema->column(0).role, ColumnRole::kQuasiIdentifier);
  EXPECT_EQ(schema->column(1).categories,
            (std::vector<std::string>{"dropout", "hs_grad", "bachelors"}));
  EXPECT_EQ(schema->column(2).type, ColumnType::kContinuous);
  EXPECT_EQ(schema->column(3).role, ColumnRole::kLabel);
}

TEST(SchemaTextTest, IgnoresCommentsAndBlankLinesAndWhitespace) {
  auto schema = ParseSchemaText("  # only a comment\n a , discrete , qid \n");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 1);
  EXPECT_EQ(schema->column(0).name, "a");
}

TEST(SchemaTextTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseSchemaText("justaname\n").ok());
  EXPECT_FALSE(ParseSchemaText("a,floating,qid\n").ok());          // bad type
  EXPECT_FALSE(ParseSchemaText("a,discrete,owner\n").ok());        // bad role
  EXPECT_FALSE(ParseSchemaText("a,discrete,qid,x|y\n").ok());      // levels on non-cat
  EXPECT_FALSE(ParseSchemaText("a,categorical,qid\n").ok());       // cat w/o levels
  EXPECT_FALSE(ParseSchemaText("a,categorical,qid,x||y\n").ok());  // empty level
  EXPECT_FALSE(ParseSchemaText(",discrete,qid\n").ok());           // empty name
  EXPECT_FALSE(ParseSchemaText("# nothing\n").ok());               // no columns
}

TEST(SchemaTextTest, RoundTripsThroughText) {
  auto schema = ParseSchemaText(kSample);
  ASSERT_TRUE(schema.ok());
  auto again = ParseSchemaText(SchemaToText(*schema));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(schema->Equals(*again));
  // Categories survive too (Equals does not compare them).
  EXPECT_EQ(schema->column(1).categories, again->column(1).categories);
}

class DatasetSchemaTextTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetSchemaTextTest, EveryDatasetSchemaRoundTrips) {
  auto ds = MakeDataset(GetParam(), 0.01, 1);
  ASSERT_TRUE(ds.ok());
  auto again = ParseSchemaText(SchemaToText(ds->train.schema()));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(ds->train.schema().Equals(*again));
}

INSTANTIATE_TEST_SUITE_P(All, DatasetSchemaTextTest,
                         ::testing::Values("lacity", "adult", "health",
                                           "airline"));

TEST(SchemaTextTest, ReadSchemaFileReportsMissingFile) {
  EXPECT_FALSE(ReadSchemaFile("/nonexistent/path.schema").ok());
}

}  // namespace
}  // namespace data
}  // namespace tablegan
