#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/batch_norm.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/reshape.h"
#include "nn/sequential.h"

namespace tablegan {
namespace {

TEST(ShapeTest, Conv2dOutputShape) {
  Rng rng(1);
  nn::Conv2d conv(1, 8, 4, 2, 1);
  Tensor out = conv.Forward(Tensor::Uniform({3, 1, 8, 8}, -1, 1, &rng), true);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{3, 8, 4, 4}));
}

TEST(ShapeTest, ConvTranspose2dOutputShape) {
  Rng rng(2);
  nn::ConvTranspose2d deconv(8, 4, 4, 2, 1);
  Tensor out =
      deconv.Forward(Tensor::Uniform({2, 8, 2, 2}, -1, 1, &rng), true);
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{2, 4, 4, 4}));
}

TEST(ShapeTest, ConvThenDeconvRoundTripsShape) {
  Rng rng(3);
  nn::Conv2d down(1, 4, 4, 2, 1);
  nn::ConvTranspose2d up(4, 1, 4, 2, 1);
  Tensor x = Tensor::Uniform({2, 1, 16, 16}, -1, 1, &rng);
  Tensor out = up.Forward(down.Forward(x, true), true);
  EXPECT_EQ(out.shape(), x.shape());
}

TEST(BatchNormTest, NormalizesBatchInTrainingMode) {
  Rng rng(4);
  nn::BatchNorm bn(3);
  Tensor x = Tensor::Uniform({16, 3, 4, 4}, 3.0f, 9.0f, &rng);
  Tensor y = bn.Forward(x, /*training=*/true);
  // Per-channel mean ~0, var ~1.
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    int64_t count = 0;
    for (int64_t n = 0; n < 16; ++n) {
      for (int64_t s = 0; s < 16; ++s) {
        const float v = y[(n * 3 + c) * 16 + s];
        sum += v;
        sum_sq += static_cast<double>(v) * v;
        ++count;
      }
    }
    const double mean = sum / static_cast<double>(count);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / static_cast<double>(count) - mean * mean, 1.0,
                1e-2);
  }
}

TEST(BatchNormTest, RunningStatsConvergeToDataMoments) {
  Rng rng(5);
  nn::BatchNorm bn(1, 1e-5f, /*momentum=*/0.5f);
  for (int step = 0; step < 50; ++step) {
    Tensor x = Tensor::Normal({64, 1}, 4.0f, 2.0f, &rng);
    bn.Forward(x, /*training=*/true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 4.0f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 0.8f);
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  Rng rng(6);
  nn::BatchNorm bn(1);
  for (int step = 0; step < 30; ++step) {
    bn.Forward(Tensor::Normal({64, 1}, 2.0f, 1.0f, &rng), true);
  }
  // A constant batch in inference mode should map through the running
  // stats, not collapse to zero.
  Tensor x = Tensor::Full({4, 1}, 2.0f);
  Tensor y = bn.Forward(x, /*training=*/false);
  EXPECT_NEAR(y[0], 0.0f, 0.35f);  // (2 - running_mean)/sqrt(var) ~ 0
  Tensor x2 = Tensor::Full({4, 1}, 4.0f);
  Tensor y2 = bn.Forward(x2, /*training=*/false);
  EXPECT_GT(y2[0], y[0] + 0.5f);
}

TEST(ActivationTest, Values) {
  Tensor x = Tensor::FromVector({4}, {-2.0f, -0.5f, 0.5f, 2.0f});
  nn::ReLU relu;
  Tensor yr = relu.Forward(x, true);
  EXPECT_EQ(yr[0], 0.0f);
  EXPECT_EQ(yr[3], 2.0f);
  nn::LeakyReLU leaky(0.2f);
  Tensor yl = leaky.Forward(x, true);
  EXPECT_NEAR(yl[0], -0.4f, 1e-6f);
  EXPECT_EQ(yl[2], 0.5f);
  nn::Tanh tanh_layer;
  Tensor yt = tanh_layer.Forward(x, true);
  EXPECT_NEAR(yt[3], std::tanh(2.0f), 1e-6f);
  nn::Sigmoid sig;
  Tensor ys = sig.Forward(x, true);
  EXPECT_NEAR(ys[1], 1.0f / (1.0f + std::exp(0.5f)), 1e-6f);
}

TEST(SequentialTest, ParametersAggregateAcrossLayers) {
  nn::Sequential net;
  net.Emplace<nn::Dense>(4, 8);
  net.Emplace<nn::ReLU>();
  net.Emplace<nn::Dense>(8, 2);
  EXPECT_EQ(net.Parameters().size(), 4u);  // two weights + two biases
  EXPECT_EQ(net.Gradients().size(), 4u);
  EXPECT_EQ(net.num_layers(), 3);
}

TEST(SequentialTest, ZeroGradClearsAll) {
  Rng rng(7);
  nn::Sequential net;
  net.Emplace<nn::Dense>(3, 2);
  nn::XavierInitialize(&net, &rng);
  Tensor x = Tensor::Uniform({2, 3}, -1, 1, &rng);
  Tensor y = net.Forward(x, true);
  net.Backward(Tensor::Full(y.shape(), 1.0f));
  bool any_nonzero = false;
  for (Tensor* g : net.Gradients()) {
    for (int64_t i = 0; i < g->size(); ++i) {
      if ((*g)[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  net.ZeroGrad();
  for (Tensor* g : net.Gradients()) {
    for (int64_t i = 0; i < g->size(); ++i) EXPECT_EQ((*g)[i], 0.0f);
  }
}

TEST(InitTest, DcganInitStatistics) {
  Rng rng(8);
  nn::Conv2d conv(8, 16, 4, 2, 1);
  nn::DcganInitialize(&conv, &rng);
  double sum = 0.0, sum_sq = 0.0;
  const Tensor& w = conv.weight();
  for (int64_t i = 0; i < w.size(); ++i) {
    sum += w[i];
    sum_sq += static_cast<double>(w[i]) * w[i];
  }
  const double n = static_cast<double>(w.size());
  EXPECT_NEAR(sum / n, 0.0, 0.005);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 0.02, 0.005);
  for (int64_t i = 0; i < conv.bias().size(); ++i) {
    EXPECT_EQ(conv.bias()[i], 0.0f);
  }
}

// --- Optimizer convergence on a convex quadratic: minimize ||w - t||^2.
class OptimizerConvergenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizerConvergenceTest, ReachesTarget) {
  Tensor w({8});
  Tensor grad({8});
  Tensor target = Tensor::FromVector(
      {8}, {1, -2, 3, -0.5f, 0.25f, 2, -1, 0});
  std::unique_ptr<nn::Optimizer> opt;
  const std::string name = GetParam();
  if (name == "sgd") {
    opt = std::make_unique<nn::Sgd>(std::vector<Tensor*>{&w},
                                    std::vector<Tensor*>{&grad}, 0.1f);
  } else if (name == "sgd_momentum") {
    opt = std::make_unique<nn::Sgd>(std::vector<Tensor*>{&w},
                                    std::vector<Tensor*>{&grad}, 0.05f,
                                    0.9f);
  } else {
    opt = std::make_unique<nn::Adam>(std::vector<Tensor*>{&w},
                                     std::vector<Tensor*>{&grad}, 0.1f,
                                     0.9f, 0.999f);
  }
  for (int step = 0; step < 500; ++step) {
    for (int64_t i = 0; i < 8; ++i) grad[i] = 2.0f * (w[i] - target[i]);
    opt->Step();
  }
  for (int64_t i = 0; i < 8; ++i) EXPECT_NEAR(w[i], target[i], 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(All, OptimizerConvergenceTest,
                         ::testing::Values("sgd", "sgd_momentum", "adam"));

TEST(OptimizerTest, AdamDefaultsMatchPaper) {
  // Compile-time check that the table-GAN defaults are expressible:
  Tensor w({2}), g({2});
  nn::Adam adam({&w}, {&g}, 2e-4f, 0.5f, 0.999f);
  g[0] = 1.0f;
  adam.Step();
  EXPECT_LT(w[0], 0.0f);  // moved against the gradient
  EXPECT_EQ(w[1], 0.0f);
}

TEST(OptimizerTest, TrainsXorWithMlp) {
  Rng rng(9);
  nn::Sequential net;
  net.Emplace<nn::Dense>(2, 8);
  net.Emplace<nn::Tanh>();
  net.Emplace<nn::Dense>(8, 1);
  nn::XavierInitialize(&net, &rng);
  nn::Adam adam(net.Parameters(), net.Gradients(), 0.05f, 0.9f, 0.999f);
  Tensor x = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y = Tensor::FromVector({4, 1}, {0, 1, 1, 0});
  float loss = 0.0f;
  for (int step = 0; step < 800; ++step) {
    Tensor logits = net.Forward(x, true);
    Tensor grad;
    loss = nn::SigmoidBceWithLogits(logits, y, &grad);
    net.ZeroGrad();
    net.Backward(grad);
    adam.Step();
  }
  EXPECT_LT(loss, 0.1f);
}

}  // namespace
}  // namespace tablegan
