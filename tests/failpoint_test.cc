// Fault-injection tests (ISSUE tentpole): every registered failpoint
// site is forced to fire at least once, and every failure path must
// come back as a clean non-OK Status — no crash, no partial state, and
// atomic checkpoints must stay atomic. Also covers the registry's
// trigger grammar and its deterministic firing semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/table_gan.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "data/table.h"

namespace tablegan {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  // Leave no site armed behind, whatever a test did.
  void SetUp() override { failpoint::Reset(); }
  void TearDown() override { failpoint::Reset(); }
};

// ------------------------------------------------------------------
// Registry semantics.

std::vector<bool> Evaluate(const char* site, int times) {
  std::vector<bool> fired;
  fired.reserve(static_cast<size_t>(times));
  for (int i = 0; i < times; ++i) fired.push_back(TABLEGAN_FAILPOINT(site));
  return fired;
}

TEST_F(FailpointTest, AlwaysFiresEveryEvaluation) {
  failpoint::Scoped fp("t.always", "always");
  EXPECT_EQ(Evaluate("t.always", 4), (std::vector<bool>{1, 1, 1, 1}));
  EXPECT_EQ(failpoint::EvaluationCount("t.always"), 4);
  EXPECT_EQ(failpoint::TriggerCount("t.always"), 4);
}

TEST_F(FailpointTest, OnceFiresOnlyFirst) {
  failpoint::Scoped fp("t.once", "once");
  EXPECT_EQ(Evaluate("t.once", 4), (std::vector<bool>{1, 0, 0, 0}));
  EXPECT_EQ(failpoint::TriggerCount("t.once"), 1);
}

TEST_F(FailpointTest, AfterPassesNThenFiresForever) {
  failpoint::Scoped fp("t.after", "after(3)");
  EXPECT_EQ(Evaluate("t.after", 6), (std::vector<bool>{0, 0, 0, 1, 1, 1}));
}

TEST_F(FailpointTest, EveryFiresOnMultiples) {
  failpoint::Scoped fp("t.every", "every(3)");
  EXPECT_EQ(Evaluate("t.every", 7),
            (std::vector<bool>{0, 0, 1, 0, 0, 1, 0}));
}

TEST_F(FailpointTest, ProbIsSeededAndReproducible) {
  ASSERT_TRUE(failpoint::Enable("t.prob", "prob(0.5,1234)").ok());
  const std::vector<bool> first = Evaluate("t.prob", 64);
  ASSERT_TRUE(failpoint::Enable("t.prob", "prob(0.5,1234)").ok());
  EXPECT_EQ(Evaluate("t.prob", 64), first);  // same seed, same sequence
  const int64_t fired = failpoint::TriggerCount("t.prob");
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);

  ASSERT_TRUE(failpoint::Enable("t.prob", "prob(1)").ok());
  EXPECT_EQ(Evaluate("t.prob", 8), (std::vector<bool>(8, true)));
  ASSERT_TRUE(failpoint::Enable("t.prob", "prob(0)").ok());
  EXPECT_EQ(Evaluate("t.prob", 8), (std::vector<bool>(8, false)));
}

TEST_F(FailpointTest, MalformedTriggersAreRejected) {
  for (const char* bad : {"", "bogus", "after", "after()", "after(0)",
                          "after(x)", "every(-1)", "prob(1.5)", "prob(x)",
                          "prob(0.5,)", "once(1)"}) {
    EXPECT_FALSE(failpoint::Enable("t.bad", bad).ok()) << "'" << bad << "'";
  }
  // A rejected trigger must not leave the site armed.
  EXPECT_TRUE(failpoint::EnabledSites().empty());
}

TEST_F(FailpointTest, ConfigureFromSpecArmsEachClause) {
  ASSERT_TRUE(
      failpoint::ConfigureFromSpec("t.a=once;;t.b=after(2);").ok());
  EXPECT_EQ(failpoint::EnabledSites(),
            (std::vector<std::string>{"t.a", "t.b"}));
  EXPECT_FALSE(failpoint::ConfigureFromSpec("justaname").ok());
  EXPECT_FALSE(failpoint::ConfigureFromSpec("=once").ok());
  failpoint::Reset();
  EXPECT_TRUE(failpoint::EnabledSites().empty());
}

TEST_F(FailpointTest, DisabledRegistryShortCircuits) {
  // With nothing armed the macro must not even reach the registry: the
  // evaluation counter stays untouched.
  EXPECT_FALSE(TABLEGAN_FAILPOINT("t.cold"));
  EXPECT_EQ(failpoint::EvaluationCount("t.cold"), 0);
  {
    failpoint::Scoped fp("t.other", "once");
    // Unrelated armed site: t.cold is evaluated (counted) but inert.
    EXPECT_FALSE(TABLEGAN_FAILPOINT("t.cold"));
    EXPECT_EQ(failpoint::EvaluationCount("t.cold"), 1);
  }
  EXPECT_FALSE(TABLEGAN_FAILPOINT("t.cold"));
  EXPECT_EQ(failpoint::EvaluationCount("t.cold"), 1);
}

// ------------------------------------------------------------------
// Checkpoint I/O sites. A tiny fitted model shared across tests.

core::TableGan& TinyGan() {
  static core::TableGan* gan = [] {
    data::Schema schema;
    data::ColumnSpec a;
    a.name = "x";
    a.type = data::ColumnType::kContinuous;
    schema.AddColumn(a);
    data::ColumnSpec b;
    b.name = "label";
    b.type = data::ColumnType::kDiscrete;
    b.role = data::ColumnRole::kLabel;
    schema.AddColumn(b);
    data::Table t(schema);
    for (int64_t r = 0; r < 12; ++r) {
      t.AppendRow({static_cast<double>(r) * 0.25,
                   static_cast<double>(r % 2)});
    }
    core::TableGanOptions opt;
    opt.latent_dim = 4;
    opt.base_channels = 4;
    opt.epochs = 1;
    opt.batch_size = 4;
    opt.num_threads = 1;
    auto* g = new core::TableGan(opt);
    TABLEGAN_CHECK(g->Fit(t, 1).ok());
    return g;
  }();
  return *gan;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST_F(FailpointTest, CheckpointOpenWriteFailureLeavesNothingBehind) {
  const std::string path = "fp_open_write.tgan";
  failpoint::Scoped fp("checkpoint.open_write", "once");
  EXPECT_FALSE(TinyGan().Save(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(FailpointTest, CheckpointShortWritePreservesPreviousFile) {
  const std::string path = "fp_short_write.tgan";
  ASSERT_TRUE(TinyGan().Save(path).ok());
  const std::string before = ReadFileBytes(path);
  ASSERT_FALSE(before.empty());
  {
    failpoint::Scoped fp("checkpoint.short_write", "once");
    EXPECT_FALSE(TinyGan().Save(path).ok());
  }
  // Atomicity: the torn temp file is gone and the previous checkpoint
  // is intact, byte for byte.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadFileBytes(path), before);
  EXPECT_TRUE(core::TableGan::Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, CheckpointRenameFailurePreservesPreviousFile) {
  const std::string path = "fp_rename.tgan";
  ASSERT_TRUE(TinyGan().Save(path).ok());
  const std::string before = ReadFileBytes(path);
  {
    failpoint::Scoped fp("checkpoint.rename", "once");
    EXPECT_FALSE(TinyGan().Save(path).ok());
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadFileBytes(path), before);
  std::remove(path.c_str());
}

TEST_F(FailpointTest, CheckpointCorruptByteIsCaughtByCrc) {
  const std::string path = "fp_corrupt.tgan";
  {
    failpoint::Scoped fp("checkpoint.corrupt_byte", "once");
    // The write itself succeeds; the flipped byte is only detectable
    // on read.
    ASSERT_TRUE(TinyGan().Save(path).ok());
  }
  Result<core::TableGan> loaded = core::TableGan::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, CheckpointOpenReadFailureIsClean) {
  const std::string path = "fp_open_read.tgan";
  ASSERT_TRUE(TinyGan().Save(path).ok());
  failpoint::Scoped fp("checkpoint.open_read", "once");
  EXPECT_FALSE(core::TableGan::Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, CheckpointTruncatedReadIsRejected) {
  const std::string path = "fp_truncate.tgan";
  ASSERT_TRUE(TinyGan().Save(path).ok());
  failpoint::Scoped fp("checkpoint.truncate_read", "always");
  EXPECT_FALSE(core::TableGan::Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, MidTrainingCheckpointFailureAbortsFitWithStatus) {
  data::Schema schema;
  data::ColumnSpec a;
  a.name = "x";
  a.type = data::ColumnType::kContinuous;
  schema.AddColumn(a);
  data::ColumnSpec b;
  b.name = "label";
  b.type = data::ColumnType::kDiscrete;
  b.role = data::ColumnRole::kLabel;
  schema.AddColumn(b);
  data::Table t(schema);
  for (int64_t r = 0; r < 12; ++r) {
    t.AppendRow({static_cast<double>(r), static_cast<double>(r % 2)});
  }
  core::TableGanOptions opt;
  opt.latent_dim = 4;
  opt.base_channels = 4;
  opt.epochs = 2;
  opt.batch_size = 4;
  opt.num_threads = 1;
  opt.checkpoint_every = 1;
  opt.checkpoint_dir = ".";
  failpoint::Scoped fp("checkpoint.rename", "once");
  core::TableGan gan(opt);
  // The epoch-1 checkpoint write fails; Fit must propagate the error
  // instead of crashing or training on with a torn checkpoint.
  EXPECT_FALSE(gan.Fit(t, 1).ok());
  std::remove("ckpt-epoch-0001.tgan");
  std::remove("ckpt-epoch-0002.tgan");
  std::remove("latest.tgan");
}

// ------------------------------------------------------------------
// CSV sites.

data::Table SmallCsvTable() {
  data::Schema schema;
  data::ColumnSpec a;
  a.name = "v";
  a.type = data::ColumnType::kContinuous;
  schema.AddColumn(a);
  data::ColumnSpec b;
  b.name = "k";
  b.type = data::ColumnType::kDiscrete;
  schema.AddColumn(b);
  data::Table t(schema);
  for (int64_t r = 0; r < 5; ++r) {
    t.AppendRow({0.5 * static_cast<double>(r), static_cast<double>(r)});
  }
  return t;
}

TEST_F(FailpointTest, CsvOpenWriteFailureIsClean) {
  failpoint::Scoped fp("csv.open_write", "once");
  EXPECT_FALSE(data::WriteCsv(SmallCsvTable(), "fp_csv.tmp").ok());
}

TEST_F(FailpointTest, CsvMidFileWriteFailureIsClean) {
  const std::string path = "fp_csv_row.tmp";
  failpoint::Scoped fp("csv.write_row", "after(2)");
  // Rows 1-2 write; the stream breaks on row 3 and WriteCsv must
  // report it rather than return OK with a truncated file.
  EXPECT_FALSE(data::WriteCsv(SmallCsvTable(), path).ok());
  // after(2): rows 1-2 pass, row 3 breaks the stream (and the trigger
  // keeps firing on the remaining no-op row writes).
  EXPECT_EQ(failpoint::EvaluationCount("csv.write_row"), 5);
  EXPECT_GE(failpoint::TriggerCount("csv.write_row"), 1);
  std::remove(path.c_str());
}

TEST_F(FailpointTest, CsvOpenReadFailureIsClean) {
  const std::string path = "fp_csv_read.tmp";
  data::Table t = SmallCsvTable();
  ASSERT_TRUE(data::WriteCsv(t, path).ok());
  failpoint::Scoped fp("csv.open_read", "once");
  EXPECT_FALSE(data::ReadCsv(t.schema(), path).ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, CsvMidFileReadFailureIsIoErrorNotTruncation) {
  const std::string path = "fp_csv_bad.tmp";
  data::Table t = SmallCsvTable();
  ASSERT_TRUE(data::WriteCsv(t, path).ok());
  failpoint::Scoped fp("csv.read_record", "after(3)");
  // Header + 2 rows read; then the stream goes bad. Silent truncation
  // (an OK 2-row table) would be the dangerous outcome here.
  Result<data::Table> back = data::ReadCsv(t.schema(), path);
  EXPECT_FALSE(back.ok());
  std::remove(path.c_str());
}

// ------------------------------------------------------------------
// Dataset loading site.

TEST_F(FailpointTest, DatasetMakeFailureIsClean) {
  failpoint::Scoped fp("dataset.make", "always");
  EXPECT_FALSE(data::MakeDataset("adult", 0.01, 7).ok());
}

// ------------------------------------------------------------------
// Thread-pool sites.

TEST_F(FailpointTest, ParallelForPropagatesInjectedFailureAndRecovers) {
  ThreadPool pool(3);
  {
    failpoint::Scoped fp("threadpool.parallel_for", "once");
    EXPECT_THROW(pool.ParallelFor(8, [](int) {}), std::runtime_error);
  }
  // The pool stays usable after a failed ParallelFor.
  std::atomic<int> ran{0};
  pool.ParallelFor(8, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST_F(FailpointTest, SubmittedTaskFailureIsSwallowedAndWorkerSurvives) {
  ThreadPool pool(2);
  std::atomic<bool> first{false};
  std::atomic<bool> second{false};
  {
    failpoint::Scoped fp("threadpool.task", "once");
    pool.Submit([&] { first.store(true); });
    pool.WaitIdle();  // must unblock even though the task body was killed
  }
  EXPECT_FALSE(first.load());
  pool.Submit([&] { second.store(true); });
  pool.WaitIdle();
  EXPECT_TRUE(second.load());
}

}  // namespace
}  // namespace tablegan
