#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "eval/fidelity.h"

namespace tablegan {
namespace eval {
namespace {

data::Schema TwoColSchema() {
  return data::Schema({
      {"x", data::ColumnType::kContinuous, data::ColumnRole::kSensitive, {}},
      {"k", data::ColumnType::kDiscrete, data::ColumnRole::kSensitive, {}},
  });
}

data::Table GaussianTable(int64_t rows, double mean, double rho,
                          uint64_t seed) {
  // Column k is positively correlated with x when rho > 0.
  data::Table t(TwoColSchema());
  Rng rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    const double x = rng.Gaussian(mean, 1.0);
    const double noise = rng.Gaussian(0.0, 1.0);
    const double k = std::round(3.0 * (rho * x + (1.0 - rho) * noise));
    t.AppendRow({x, k});
  }
  return t;
}

TEST(KsTest, ZeroForIdenticalColumns) {
  data::Table t = GaussianTable(200, 0.0, 0.5, 1);
  auto ks = ColumnKsDistance(t, t, 0);
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(*ks, 0.0);
}

TEST(KsTest, DetectsMeanShift) {
  data::Table a = GaussianTable(500, 0.0, 0.0, 2);
  data::Table b = GaussianTable(500, 3.0, 0.0, 3);
  auto ks = ColumnKsDistance(a, b, 0);
  ASSERT_TRUE(ks.ok());
  EXPECT_GT(*ks, 0.7);  // 3-sigma shift separates CDFs strongly
}

TEST(KsTest, SmallForSameDistribution) {
  data::Table a = GaussianTable(2000, 0.0, 0.0, 4);
  data::Table b = GaussianTable(2000, 0.0, 0.0, 5);
  auto ks = ColumnKsDistance(a, b, 0);
  ASSERT_TRUE(ks.ok());
  EXPECT_LT(*ks, 0.08);
}

TEST(KsTest, BoundedByOne) {
  data::Table a = GaussianTable(50, -100.0, 0.0, 6);
  data::Table b = GaussianTable(50, 100.0, 0.0, 7);
  auto ks = ColumnKsDistance(a, b, 0);
  ASSERT_TRUE(ks.ok());
  EXPECT_NEAR(*ks, 1.0, 1e-12);
}

TEST(TvTest, ZeroForIdenticalAndOneForDisjoint) {
  data::Table a(TwoColSchema());
  data::Table b(TwoColSchema());
  for (int i = 0; i < 10; ++i) {
    a.AppendRow({0.0, static_cast<double>(i % 3)});
    b.AppendRow({0.0, static_cast<double>(i % 3 + 10)});
  }
  EXPECT_EQ(*ColumnTvDistance(a, a, 1), 0.0);
  EXPECT_NEAR(*ColumnTvDistance(a, b, 1), 1.0, 1e-12);
}

TEST(TvTest, HalfForHalfOverlap) {
  data::Table a(TwoColSchema());
  data::Table b(TwoColSchema());
  for (int i = 0; i < 100; ++i) {
    a.AppendRow({0.0, i < 50 ? 0.0 : 1.0});
    b.AppendRow({0.0, i < 50 ? 0.0 : 2.0});
  }
  EXPECT_NEAR(*ColumnTvDistance(a, b, 1), 0.5, 1e-12);
}

TEST(JsDivergenceTest, ZeroForIdenticalColumns) {
  data::Table t = GaussianTable(300, 0.0, 0.5, 30);
  auto js = ColumnJsDivergence(t, t, 0);
  ASSERT_TRUE(js.ok());
  EXPECT_NEAR(*js, 0.0, 1e-12);
}

TEST(JsDivergenceTest, OneForDisjointSupports) {
  data::Table a = GaussianTable(300, -50.0, 0.0, 31);
  data::Table b = GaussianTable(300, 50.0, 0.0, 32);
  auto js = ColumnJsDivergence(a, b, 0);
  ASSERT_TRUE(js.ok());
  EXPECT_GT(*js, 0.95);
  EXPECT_LE(*js, 1.0 + 1e-9);
}

TEST(JsDivergenceTest, MonotoneInMeanShift) {
  data::Table base = GaussianTable(600, 0.0, 0.0, 33);
  data::Table near = GaussianTable(600, 0.5, 0.0, 34);
  data::Table far = GaussianTable(600, 3.0, 0.0, 35);
  auto js_near = ColumnJsDivergence(base, near, 0);
  auto js_far = ColumnJsDivergence(base, far, 0);
  ASSERT_TRUE(js_near.ok() && js_far.ok());
  EXPECT_LT(*js_near, *js_far);
}

TEST(JsDivergenceTest, RejectsBadBins) {
  data::Table t = GaussianTable(50, 0.0, 0.0, 36);
  EXPECT_FALSE(ColumnJsDivergence(t, t, 0, 1).ok());
}

TEST(CorrelationDifferenceTest, ZeroForSameTable) {
  data::Table t = GaussianTable(300, 0.0, 0.8, 8);
  auto diff = CorrelationDifference(t, t);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 0.0);
}

TEST(CorrelationDifferenceTest, DetectsBrokenCorrelation) {
  data::Table correlated = GaussianTable(1000, 0.0, 0.9, 9);
  data::Table independent = GaussianTable(1000, 0.0, 0.0, 10);
  auto diff = CorrelationDifference(correlated, independent);
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(*diff, 0.4);
}

TEST(CorrelationDifferenceTest, ConstantColumnsContributeZero) {
  data::Table a(TwoColSchema());
  data::Table b(TwoColSchema());
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    a.AppendRow({rng.Gaussian(0, 1), 7.0});
    b.AppendRow({rng.Gaussian(0, 1), 7.0});
  }
  auto diff = CorrelationDifference(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 0.0);
}

TEST(PmseTest, NearZeroForSameDistribution) {
  data::Table a = GaussianTable(400, 0.0, 0.5, 12);
  data::Table b = GaussianTable(400, 0.0, 0.5, 13);
  auto pmse = PropensityMse(a, b);
  ASSERT_TRUE(pmse.ok());
  EXPECT_LT(*pmse, 0.02);
}

TEST(PmseTest, LargeForSeparableTables) {
  data::Table a = GaussianTable(400, -4.0, 0.0, 14);
  data::Table b = GaussianTable(400, 4.0, 0.0, 15);
  auto pmse = PropensityMse(a, b);
  ASSERT_TRUE(pmse.ok());
  EXPECT_GT(*pmse, 0.2);  // near the 0.25 ceiling
}

TEST(PmseTest, RejectsSchemaMismatch) {
  data::Table a = GaussianTable(20, 0.0, 0.0, 16);
  data::Schema other({{"z", data::ColumnType::kContinuous,
                       data::ColumnRole::kSensitive, {}}});
  data::Table b(other);
  b.AppendRow({0.0});
  EXPECT_FALSE(PropensityMse(a, b).ok());
}

TEST(FidelityReportTest, AggregatesAllMetrics) {
  data::Table a = GaussianTable(300, 0.0, 0.6, 17);
  data::Table b = GaussianTable(300, 0.5, 0.6, 18);
  auto report = EvaluateFidelity(a, b);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->columns.size(), 2u);
  EXPECT_EQ(report->columns[0].name, "x");
  EXPECT_GT(report->columns[0].ks, 0.0);
  EXPECT_EQ(report->columns[0].tv, 0.0);   // continuous: TV not computed
  EXPECT_GT(report->columns[1].tv, 0.0);   // discrete column has TV
  EXPECT_GE(report->worst_ks, report->mean_ks);
  EXPECT_GE(report->pmse, 0.0);
  EXPECT_LE(report->pmse, 0.25 + 1e-9);
}

TEST(FidelityReportTest, IdenticalTablesScoreZeroish) {
  data::Table t = GaussianTable(200, 0.0, 0.5, 19);
  auto report = EvaluateFidelity(t, t);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->mean_ks, 0.0);
  EXPECT_EQ(report->correlation_difference, 0.0);
  EXPECT_LT(report->pmse, 0.01);
}

}  // namespace
}  // namespace eval
}  // namespace tablegan
