#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/table_gan.h"
#include "data/datasets.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/ml_data.h"
#include "ml/model_zoo.h"
#include "privacy/anonymizer.h"
#include "privacy/dcr.h"
#include "privacy/sdc_micro.h"

namespace tablegan {
namespace {

// End-to-end pipeline on a small slice of the Adult-like dataset: train
// table-GAN, synthesize, and exercise the paper's three evaluation axes
// (statistics, model compatibility, DCR) plus the anonymization
// baselines on the same table.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto ds = data::MakeDataset("adult", /*scale=*/0.03, /*seed=*/99);
    ASSERT_TRUE(ds.ok());
    dataset_ = new data::Dataset(std::move(ds).value());
    // Small-scale training needs a higher learning rate than the paper's
    // full-size setting: 60 epochs x ~15 batches is only ~900 Adam steps.
    core::TableGanOptions options;
    options.base_channels = 16;
    options.epochs = 60;
    options.batch_size = 64;
    options.latent_dim = 32;
    options.learning_rate = 1e-3f;
    gan_ = new core::TableGan(options);
    ASSERT_TRUE(gan_->Fit(dataset_->train, dataset_->label_col).ok());
    auto synth = gan_->Sample(dataset_->train.num_rows());
    ASSERT_TRUE(synth.ok());
    synthetic_ = new data::Table(std::move(synth).value());
  }

  static void TearDownTestSuite() {
    delete gan_;
    delete dataset_;
    delete synthetic_;
    gan_ = nullptr;
    dataset_ = nullptr;
    synthetic_ = nullptr;
  }

  static data::Dataset* dataset_;
  static core::TableGan* gan_;
  static data::Table* synthetic_;
};

data::Dataset* PipelineTest::dataset_ = nullptr;
core::TableGan* PipelineTest::gan_ = nullptr;
data::Table* PipelineTest::synthetic_ = nullptr;

TEST_F(PipelineTest, SyntheticTableHasTrainingShape) {
  EXPECT_EQ(synthetic_->num_rows(), dataset_->train.num_rows());
  EXPECT_TRUE(synthetic_->schema().Equals(dataset_->train.schema()));
}

TEST_F(PipelineTest, SyntheticMarginalsAreNonDegenerate) {
  // Continuous sensitive columns should not collapse to a constant.
  const int hours = *dataset_->train.schema().FindColumn("hours_per_week");
  double lo = 1e18, hi = -1e18;
  for (int64_t r = 0; r < synthetic_->num_rows(); ++r) {
    lo = std::min(lo, synthetic_->Get(r, hours));
    hi = std::max(hi, synthetic_->Get(r, hours));
  }
  EXPECT_GT(hi - lo, 5.0);
}

TEST_F(PipelineTest, DcrIsStrictlyPositiveUnlikeArx) {
  auto dcr_gan = privacy::ComputeDcr(
      dataset_->train, *synthetic_,
      privacy::SensitiveOnlyColumns(dataset_->train.schema()));
  ASSERT_TRUE(dcr_gan.ok());
  EXPECT_GT(dcr_gan->mean, 0.0);

  privacy::ArxOptions arx;
  arx.k = 5;
  arx.t = 0.0;  // disable merging for speed
  auto released = privacy::ArxAnonymize(dataset_->train, arx);
  ASSERT_TRUE(released.ok());
  auto dcr_arx = privacy::ComputeDcr(
      dataset_->train, released->released,
      privacy::SensitiveOnlyColumns(dataset_->train.schema()));
  ASSERT_TRUE(dcr_arx.ok());
  EXPECT_EQ(dcr_arx->mean, 0.0);  // ARX never touches sensitive values
  EXPECT_GT(dcr_gan->mean, dcr_arx->mean);
}

TEST_F(PipelineTest, ModelCompatibilityBeatsChance) {
  // A fixed classifier trained on the synthetic table should transfer to
  // real unseen test records far above chance. (As in the paper, the
  // label's source attribute stays among the features; compatibility,
  // not task difficulty, is under test.)
  auto train_real =
      ml::TableToMlData(dataset_->train, dataset_->label_col);
  auto train_synth = ml::TableToMlData(*synthetic_, dataset_->label_col);
  auto test = ml::TableToMlData(dataset_->test, dataset_->label_col);
  ASSERT_TRUE(train_real.ok() && train_synth.ok() && test.ok());
  std::vector<int> truth;
  for (double y : test->y) truth.push_back(y > 0.5 ? 1 : 0);

  ml::TreeOptions topt;
  topt.max_depth = 6;
  ml::DecisionTreeClassifier on_real(topt), on_synth(topt);
  ASSERT_TRUE(on_real.Fit(*train_real).ok());
  ASSERT_TRUE(on_synth.Fit(*train_synth).ok());
  const double f1_real = ml::F1Score(truth, on_real.PredictAll(*test));
  const double f1_synth = ml::F1Score(truth, on_synth.PredictAll(*test));
  EXPECT_GT(f1_real, 0.8);
  EXPECT_GT(f1_synth, 0.45);  // compatible: usable, within reach of real
  EXPECT_LT(std::fabs(f1_real - f1_synth), 0.5);
}

TEST_F(PipelineTest, SdcMicroPipelineRunsOnRealSchema) {
  privacy::SdcMicroOptions options;
  auto released = privacy::SdcMicroPerturb(dataset_->train, options);
  ASSERT_TRUE(released.ok());
  auto dcr = privacy::ComputeDcr(
      dataset_->train, *released,
      privacy::QidAndSensitiveColumns(dataset_->train.schema()));
  ASSERT_TRUE(dcr.ok());
  EXPECT_GE(dcr->mean, 0.0);
}

TEST_F(PipelineTest, HigherPrivacyMarginsRaiseInfoLossFloor) {
  // The hinge margins should keep the recorded info loss at or near
  // zero (the loss is clipped at the margin), while the low-privacy
  // setting keeps optimizing a positive loss.
  core::TableGanOptions high = core::TableGanOptions::HighPrivacy();
  high.base_channels = 8;
  high.epochs = 4;
  high.latent_dim = 16;
  core::TableGan high_gan(high);
  ASSERT_TRUE(high_gan.Fit(dataset_->train, dataset_->label_col).ok());
  float high_info = 0.0f;
  for (const auto& e : high_gan.history()) high_info += e.info_loss;
  float low_info = 0.0f;
  for (const auto& e : gan_->history()) low_info += e.info_loss;
  // Hinge with margin clips at least as much loss as without.
  EXPECT_LE(high_info / high_gan.history().size(),
            low_info / gan_->history().size() + 0.5f);
}

}  // namespace
}  // namespace tablegan
